// Problem serialization — persists a complete Max-Crawling instance (graph,
// targets, benefit model, acceptance model, costs) so attack pipelines are
// exactly reproducible and shareable.
//
// Versioned text format, one section per component:
//
//   #recon-problem v1
//   graph <n> <m>
//   e <u> <v> <p>                 (m lines)
//   targets <count> <t1> <t2> ...
//   acceptance base <q...>        ("uniform <q>" or "pernode" + n values)
//   acceptance boost <mutual_boost>
//   benefit paper | benefit custom (+ bf/bfof/bi vectors when custom)
//   costs uniform | costs pernode <c1> ...
//   attrs <dim> <cardinality-free values...>   (optional)
//   end                            (required terminator; detects truncation)
#pragma once

#include <iosfwd>
#include <string>

#include "sim/problem.h"

namespace recon::sim {

void write_problem(std::ostream& out, const Problem& problem);
void write_problem_file(const std::string& path, const Problem& problem);

/// Throws std::runtime_error on malformed input; the returned problem is
/// validate()d before returning.
Problem read_problem(std::istream& in);
Problem read_problem_file(const std::string& path);

}  // namespace recon::sim
