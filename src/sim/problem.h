// Max-Crawling problem instance (paper Def. 1).
//
// Bundles the probabilistic social graph, the target set T, the benefit and
// acceptance models, and the per-node request cost c(u). Immutable once
// built; all attack state lives in sim::Observation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/acceptance.h"
#include "sim/benefit.h"

namespace recon::sim {

struct Problem {
  graph::Graph graph;
  std::vector<graph::NodeId> targets;   ///< sorted target ids
  std::vector<std::uint8_t> is_target;  ///< size n bitmap
  BenefitModel benefit;
  AcceptanceModel acceptance;
  /// Request costs; empty means uniform cost 1.
  std::vector<double> cost;

  double cost_of(graph::NodeId u) const noexcept {
    return cost.empty() ? 1.0 : cost[u];
  }

  /// Maximum benefit attainable if every node were friended and every edge
  /// existed — an upper bound used for normalizations and sanity checks.
  double benefit_upper_bound() const;

  /// Validates cross-component invariants; throws std::invalid_argument.
  void validate() const;
};

/// How targets are chosen by make_problem().
enum class TargetMode {
  kRandom,    ///< uniform random nodes
  kBfsBall,   ///< a BFS ball around a random seed (an "organization")
  kHighDegree ///< the highest-degree nodes (public figures)
};

struct ProblemOptions {
  std::size_t num_targets = 50;
  TargetMode target_mode = TargetMode::kRandom;
  double base_acceptance = 0.3;       ///< constant q0
  double mutual_boost = 0.0;          ///< refusal shrink per mutual friend
  bool paper_benefit = true;          ///< paper model vs uniform benefit
  std::uint64_t seed = 1;
};

/// Builds a Problem over `g` with targets selected per the options and the
/// paper's benefit model.
Problem make_problem(graph::Graph g, const ProblemOptions& options);

/// Selects a target set (sorted) from the graph.
std::vector<graph::NodeId> select_targets(const graph::Graph& g, std::size_t count,
                                          TargetMode mode, std::uint64_t seed);

}  // namespace recon::sim
