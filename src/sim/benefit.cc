#include "sim/benefit.h"

#include <cmath>
#include <stdexcept>

namespace recon::sim {

void BenefitModel::validate(const graph::Graph& g) const {
  if (bf.size() != g.num_nodes() || bfof.size() != g.num_nodes() ||
      bi.size() != g.num_edges()) {
    throw std::invalid_argument("BenefitModel: size mismatch with graph");
  }
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (bf[u] < 0.0 || bfof[u] < 0.0) {
      throw std::invalid_argument("BenefitModel: negative node benefit");
    }
    if (bfof[u] > bf[u]) {
      throw std::invalid_argument("BenefitModel: Bfof(u) > Bf(u)");
    }
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (bi[e] < 0.0) throw std::invalid_argument("BenefitModel: negative edge benefit");
  }
}

BenefitModel make_paper_benefit(const graph::Graph& g,
                                const std::vector<std::uint8_t>& is_target) {
  if (is_target.size() != g.num_nodes()) {
    throw std::invalid_argument("make_paper_benefit: target bitmap size mismatch");
  }
  BenefitModel model;
  model.bf.resize(g.num_nodes());
  model.bfof.resize(g.num_nodes());
  model.bi.resize(g.num_edges());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    model.bf[u] = is_target[u] ? 1.0 : 0.0;
    model.bfof[u] = is_target[u] ? 0.5 : 0.0;
  }
  const double m = g.max_expected_degree();
  const double denom = m > 0.0 ? m : 1.0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const int in_t =
        (is_target[g.edge_u(e)] ? 1 : 0) + (is_target[g.edge_v(e)] ? 1 : 0);
    model.bi[e] = std::pow(2.0, in_t) / denom;
  }
  return model;
}

BenefitModel make_uniform_benefit(const graph::Graph& g, double fof_value,
                                  double edge_value) {
  BenefitModel model;
  model.bf.assign(g.num_nodes(), 1.0);
  model.bfof.assign(g.num_nodes(), fof_value);
  model.bi.assign(g.num_edges(), edge_value);
  return model;
}

}  // namespace recon::sim
