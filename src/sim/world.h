// Ground-truth world — the full realization φ the attacker cannot see.
//
// Samples, once per Monte-Carlo run: (a) the existence of every possible
// edge (Bernoulli p_e), and (b) nothing else up front — acceptance decisions
// are counter-based functions of (seed, node, attempt index), so each retry
// is an independent draw evaluated against the *current* q(u | ω). This
// realizes the paper's generalized acceptance model (Sec. IV-C, auxiliary
// graph Ga): request j to node u has its own acceptance randomness, making
// retries after topology changes meaningful.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/problem.h"

namespace recon::sim {

class World {
 public:
  /// Samples a ground-truth realization for `problem` from `seed`.
  World(const Problem& problem, std::uint64_t seed);

  const Problem& problem() const noexcept { return *problem_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Whether undirected edge e exists in this realization.
  bool edge_exists(graph::EdgeId e) const noexcept { return edge_exists_[e] != 0; }

  /// Existing neighbors of u (sorted ascending), computed on demand.
  std::vector<graph::NodeId> true_neighbors(graph::NodeId u) const;

  /// Resolves attempt number `attempt` (0-based) to u with acceptance
  /// probability `prob`: returns true iff the request is accepted. Pure in
  /// (seed, u, attempt, prob) — call order does not matter.
  bool attempt_accept(graph::NodeId u, std::uint32_t attempt, double prob) const noexcept;

  /// Number of existing edges (for diagnostics).
  std::size_t num_existing_edges() const noexcept;

 private:
  const Problem* problem_;
  std::uint64_t seed_;
  std::uint64_t accept_seed_;
  std::vector<std::uint8_t> edge_exists_;
};

}  // namespace recon::sim
