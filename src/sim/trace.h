// Attack traces — the per-batch log of one simulated reconnaissance attack.
//
// Traces carry everything the evaluation needs: benefit curves for Fig. 4/7,
// per-source breakdowns for Fig. 5, selection compute times for Table III,
// and the step structure needed to add per-batch response delays for the
// RT-RRS metric (Table IV).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/benefit.h"

namespace recon::sim {

struct BatchRecord {
  std::vector<graph::NodeId> requests;   ///< nodes requested in this batch
  std::vector<std::uint8_t> accepted;    ///< aligned accept/reject flags
  /// Aligned fault outcomes (sim::RequestOutcome values); empty means every
  /// request was delivered normally (the fault-free fast path).
  std::vector<std::uint8_t> outcome;
  BenefitBreakdown delta;                ///< benefit gained by this batch
  BenefitBreakdown cumulative;           ///< benefit after this batch
  double cost = 0.0;                     ///< total cost of this batch's requests
  double cumulative_cost = 0.0;          ///< budget spent after this batch
  double select_seconds = 0.0;           ///< wall time of batch selection
};

struct AttackTrace {
  std::vector<BatchRecord> batches;

  double total_benefit() const noexcept {
    return batches.empty() ? 0.0 : batches.back().cumulative.total();
  }
  BenefitBreakdown final_breakdown() const noexcept {
    return batches.empty() ? BenefitBreakdown{} : batches.back().cumulative;
  }
  double total_cost() const noexcept {
    return batches.empty() ? 0.0 : batches.back().cumulative_cost;
  }
  double total_select_seconds() const noexcept;
  std::size_t total_requests() const noexcept;
  std::size_t total_accepts() const noexcept;

  /// Cumulative benefit as a function of requests sent: entry r (1-based
  /// request count; index 0 ≙ after 1 request) holds Q after the batch
  /// containing request r+1 completed. Within a batch, benefit lands when
  /// the whole batch resolves — matching the parallel-send semantics.
  std::vector<double> benefit_by_request() const;

  /// First request count at which cumulative benefit reaches `threshold`;
  /// 0 if reached before any request; SIZE_MAX if never reached.
  std::size_t requests_to_reach(double threshold) const noexcept;
};

}  // namespace recon::sim
