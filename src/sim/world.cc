#include "sim/world.h"

#include <numeric>

#include "util/rng.h"

namespace recon::sim {

using graph::EdgeId;
using graph::NodeId;

World::World(const Problem& problem, std::uint64_t seed)
    : problem_(&problem),
      seed_(seed),
      accept_seed_(util::derive_seed(seed, 0xACCEB7ULL)) {
  const auto& g = problem.graph;
  edge_exists_.resize(g.num_edges());
  util::Rng rng(util::derive_seed(seed, 0xED6E5ULL));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    edge_exists_[e] = rng.bernoulli(g.edge_prob(e)) ? 1 : 0;
  }
}

std::vector<NodeId> World::true_neighbors(NodeId u) const {
  const auto nbrs = problem_->graph.neighbors(u);
  const auto eids = problem_->graph.incident_edges(u);
  std::vector<NodeId> out;
  out.reserve(nbrs.size());
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (edge_exists_[eids[i]]) out.push_back(nbrs[i]);
  }
  return out;  // adjacency is sorted, so this is sorted too
}

bool World::attempt_accept(NodeId u, std::uint32_t attempt, double prob) const noexcept {
  return util::counter_uniform(accept_seed_, u, attempt) < prob;
}

std::size_t World::num_existing_edges() const noexcept {
  return static_cast<std::size_t>(
      std::accumulate(edge_exists_.begin(), edge_exists_.end(), std::size_t{0}));
}

}  // namespace recon::sim
