// Attack-trace serialization.
//
// Traces are persisted in a line-oriented, versioned text format so bench
// runs can be archived and re-analyzed (RRS/RT-RRS are pure functions of
// traces). One file holds any number of traces:
//
//   #recon-trace v1
//   trace <index>
//   batch sel=<seconds> cost=<c> reqs=<u:a,u:a,...> df=<..> dx=<..> de=<..>
//   ...
//
// where each req entry is "<node>:<0|1>" (rejected/accepted) and df/dx/de
// are the batch's benefit deltas (friends / fofs / edges). Cumulative fields
// are recomputed on load, so files stay small and cannot go inconsistent.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace recon::sim {

void write_traces(std::ostream& out, const std::vector<AttackTrace>& traces);

/// Writes one `batch ...` line (with trailing newline) for `b`, given the
/// previous batch's cumulative cost (0.0 for the first batch of a trace).
/// This is the exact per-batch grammar of write_traces, exposed so streaming
/// writers (the campaign service appends one line per completed round) emit
/// files byte-identical to a whole-document write_traces call. The caller
/// owns stream formatting; use precision(17) to round-trip doubles.
void write_batch_line(std::ostream& out, const BatchRecord& b,
                      double prev_cumulative_cost);
void write_traces_file(const std::string& path, const std::vector<AttackTrace>& traces);

/// Throws std::runtime_error on malformed input or version mismatch.
std::vector<AttackTrace> read_traces(std::istream& in);
std::vector<AttackTrace> read_traces_file(const std::string& path);

/// Torn-tail recovery for crash-interrupted files: a partial trailing
/// record is truncated to the last complete one and a missing `end` marker
/// is tolerated, each with an explicit log line. Mid-file corruption and
/// trace-count mismatches still throw — those mean lost data, not a torn
/// append.
std::vector<AttackTrace> read_traces_recover(std::istream& in);
std::vector<AttackTrace> read_traces_file_recover(const std::string& path);

}  // namespace recon::sim
