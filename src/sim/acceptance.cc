#include "sim/acceptance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace recon::sim {

double AcceptanceModel::probability(const graph::Graph& g, graph::NodeId u,
                                    std::uint32_t mutual) const noexcept {
  double q = base(u);
  if (attr_weight != 0.0 && g.has_attributes() && !attacker_attrs.empty()) {
    const auto attrs = g.node_attributes(u);
    std::size_t matches = 0;
    const std::size_t dim = std::min(attrs.size(), attacker_attrs.size());
    for (std::size_t d = 0; d < dim; ++d) {
      if (attrs[d] == attacker_attrs[d]) ++matches;
    }
    const double sim = dim > 0 ? static_cast<double>(matches) / static_cast<double>(dim) : 0.0;
    q += attr_weight * sim;
  }
  q = std::clamp(q, 0.0, 1.0);
  if (mutual_boost > 0.0 && mutual > 0) {
    const double refuse = (1.0 - q) * std::pow(1.0 - mutual_boost, static_cast<double>(mutual));
    q = 1.0 - refuse;
  }
  return q;
}

void AcceptanceModel::validate(const graph::Graph& g) const {
  if (q0.empty() || (q0.size() != 1 && q0.size() != g.num_nodes())) {
    throw std::invalid_argument("AcceptanceModel: q0 must have 1 or n entries");
  }
  for (double q : q0) {
    if (!(q >= 0.0 && q <= 1.0)) {
      throw std::invalid_argument("AcceptanceModel: q0 outside [0,1]");
    }
  }
  if (!(mutual_boost >= 0.0 && mutual_boost < 1.0)) {
    throw std::invalid_argument("AcceptanceModel: mutual_boost outside [0,1)");
  }
  if (attr_weight != 0.0) {
    if (!g.has_attributes()) {
      throw std::invalid_argument("AcceptanceModel: attr_weight set but graph has no attributes");
    }
    if (attacker_attrs.size() != g.attribute_dim()) {
      throw std::invalid_argument("AcceptanceModel: attacker profile dimension mismatch");
    }
  }
}

AcceptanceModel make_constant_acceptance(double q) {
  AcceptanceModel m;
  m.q0 = {q};
  return m;
}

AcceptanceModel make_uniform_acceptance(const graph::Graph& g, double lo, double hi,
                                        double mutual_boost, std::uint64_t seed) {
  if (!(lo >= 0.0 && hi <= 1.0 && lo <= hi)) {
    throw std::invalid_argument("make_uniform_acceptance: bad range");
  }
  util::Rng rng(seed);
  AcceptanceModel m;
  m.q0.resize(g.num_nodes());
  for (auto& q : m.q0) q = rng.uniform(lo, hi);
  m.mutual_boost = mutual_boost;
  return m;
}

AcceptanceModel make_attribute_acceptance(const graph::Graph& g, double base_q,
                                          double attr_weight, double mutual_boost,
                                          std::uint64_t seed) {
  if (!g.has_attributes()) {
    throw std::invalid_argument("make_attribute_acceptance: graph has no attributes");
  }
  util::Rng rng(seed);
  AcceptanceModel m;
  m.q0 = {base_q};
  m.attr_weight = attr_weight;
  m.mutual_boost = mutual_boost;
  m.attacker_attrs.resize(g.attribute_dim());
  // The attacker clones the most common value per dimension (profile tuned
  // to the population) — approximated by copying a random node's profile.
  const auto u = static_cast<graph::NodeId>(rng.below(g.num_nodes()));
  const auto attrs = g.node_attributes(u);
  for (unsigned d = 0; d < g.attribute_dim(); ++d) m.attacker_attrs[d] = attrs[d];
  return m;
}

}  // namespace recon::sim
