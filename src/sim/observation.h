// Partial realization ω — everything the attacker has observed so far.
//
// Tracks per-node request state Y_u ∈ {accept, reject, ?}, per-edge state
// Y_uv ∈ {present, absent, ?}, the friend / friend-of-friend sets, mutual
// friend counters, retry attempt counts, and the exact benefit breakdown
// accumulated so far. Observation is the single mutable object threaded
// through an attack; strategies read it, the attack runner writes it.
//
// Benefit accounting follows Eq. (1): a node yields Bf when it becomes a
// friend (upgrading a friend-of-friend replaces its Bfof with Bf), a node
// yields Bfof the first time it is seen adjacent to a friend via an existing
// edge, and an existing edge yields Bi exactly once, when first revealed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/problem.h"

namespace recon::sim {

enum class NodeState : std::uint8_t { kUnknown = 0, kAccepted = 1, kRejected = 2 };
enum class EdgeState : std::uint8_t { kUnknown = 0, kPresent = 1, kAbsent = 2 };

class Observation {
 public:
  /// Binds to a problem (held by pointer; must outlive the observation).
  explicit Observation(const Problem& problem);

  const Problem& problem() const noexcept { return *problem_; }

  NodeState node_state(graph::NodeId u) const noexcept { return node_state_[u]; }
  EdgeState edge_state(graph::EdgeId e) const noexcept { return edge_state_[e]; }

  /// Flat read-only views of the per-edge / per-node state arrays, for
  /// scoring kernels that hoist the base pointers out of hot loops.
  std::span<const EdgeState> edge_states() const noexcept { return edge_state_; }
  std::span<const std::uint8_t> friend_mask() const noexcept { return is_friend_; }
  std::span<const std::uint8_t> fof_mask() const noexcept { return is_fof_; }

  bool is_friend(graph::NodeId u) const noexcept { return is_friend_[u] != 0; }
  bool is_fof(graph::NodeId u) const noexcept { return is_fof_[u] != 0; }

  /// Number of requests sent to u so far (for retry bookkeeping and as the
  /// world's per-attempt randomness index).
  std::uint32_t attempts(graph::NodeId u) const noexcept { return attempts_[u]; }

  /// Mutual friends between the attacker and u: |N(u) ∩ F| over revealed
  /// existing edges.
  std::uint32_t mutual_friends(graph::NodeId u) const noexcept { return mutual_[u]; }

  /// The attacker's current friend list (acceptance order).
  std::span<const graph::NodeId> friends() const noexcept { return friends_; }

  /// Current belief about edge e: p_e if unobserved, else 0 / 1.
  double edge_belief(graph::EdgeId e) const noexcept {
    switch (edge_state_[e]) {
      case EdgeState::kUnknown: return problem_->graph.edge_prob(e);
      case EdgeState::kPresent: return 1.0;
      case EdgeState::kAbsent: return 0.0;
    }
    return 0.0;
  }

  /// Acceptance probability q(u | ω) under the problem's model, reflecting
  /// currently revealed mutual friends.
  double acceptance_prob(graph::NodeId u) const noexcept {
    return problem_->acceptance.probability(problem_->graph, u, mutual_[u]);
  }

  /// Whether u may be requested: not yet a friend, not cooling down under a
  /// retry-backoff policy, and either never asked or previously rejected
  /// with retries allowed.
  bool requestable(graph::NodeId u, bool allow_retries) const noexcept {
    if (is_friend_[u]) return false;
    if (cooling_down(u)) return false;
    return node_state_[u] == NodeState::kUnknown ||
           (allow_retries && node_state_[u] == NodeState::kRejected);
  }

  /// Logical attack clock: batch rounds in the synchronous runner, seconds
  /// in the rolling-window runner. Only consulted by retry cooldowns.
  double clock() const noexcept { return clock_; }
  void set_clock(double now) noexcept { clock_ = now; }

  /// Blocks requests to u until the clock reaches `until` (retry backoff).
  /// Storage is allocated lazily, so attacks without backoff pay nothing.
  void set_retry_after(graph::NodeId u, double until);

  bool cooling_down(graph::NodeId u) const noexcept {
    return !retry_after_.empty() && retry_after_[u] > clock_;
  }

  /// Earliest cooldown expiry among nodes that would otherwise be
  /// requestable; +infinity when nothing is cooling down. The runner uses
  /// this to fast-forward the clock instead of ending the attack.
  double next_retry_time(bool allow_retries) const noexcept;

  /// Per-node cooldown deadlines (empty when no backoff was ever applied);
  /// exposed for checkpoint serialization.
  std::span<const double> retry_after() const noexcept { return retry_after_; }

  /// Records a rejected request to u. Returns the (empty) benefit delta.
  BenefitBreakdown record_reject(graph::NodeId u);

  /// Records a request to u that produced no observable outcome (timeout or
  /// dropped response): the attempt index is consumed — the next retry draws
  /// fresh acceptance randomness — but the node's state is unchanged.
  void record_no_response(graph::NodeId u);

  /// Records an accepted request to u and reveals its neighborhood:
  /// `true_neighbors` is the subset of graph.neighbors(u) that exist in the
  /// ground truth (must be sorted ascending). Returns the benefit delta.
  BenefitBreakdown record_accept(graph::NodeId u,
                                 std::span<const graph::NodeId> true_neighbors);

  /// Total benefit accumulated so far.
  const BenefitBreakdown& benefit() const noexcept { return benefit_; }

  /// Recomputes the benefit from node/edge states from scratch (Eq. 1);
  /// used by tests to validate incremental accounting.
  BenefitBreakdown recompute_benefit() const;

  /// Rebuilds the observation from checkpointed primary state (node/edge
  /// states, attempt counters, friends in acceptance order); derived state —
  /// friend/fof masks, mutual counters, benefit — is recomputed. Throws
  /// std::invalid_argument on size mismatches or inconsistent friends.
  void restore(std::span<const NodeState> node_states,
               std::span<const EdgeState> edge_states,
               std::span<const std::uint32_t> attempts,
               std::span<const graph::NodeId> friends_in_order);

  /// Overrides the benefit accumulator with the exact value carried by a
  /// checkpoint. restore() recomputes the benefit from scratch, which sums
  /// the same terms in a different order than the incremental accounting and
  /// can differ in the last bits — enough to perturb subsequent trace deltas
  /// and break bit-identical resume. Must be called right after restore();
  /// throws std::invalid_argument when `exact` disagrees with the recomputed
  /// value beyond floating-point reassociation tolerance (a corrupt value,
  /// not drift).
  void restore_benefit(const BenefitBreakdown& exact);

 private:
  const Problem* problem_;
  std::vector<NodeState> node_state_;
  std::vector<EdgeState> edge_state_;
  std::vector<std::uint8_t> is_friend_;
  std::vector<std::uint8_t> is_fof_;
  std::vector<std::uint32_t> attempts_;
  std::vector<std::uint32_t> mutual_;
  std::vector<graph::NodeId> friends_;
  BenefitBreakdown benefit_;
  std::vector<double> retry_after_;  ///< lazily allocated cooldown deadlines
  double clock_ = 0.0;
};

}  // namespace recon::sim
