#include "sim/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace recon::sim {

namespace {

constexpr const char* kHeader = "#recon-trace v1";

}  // namespace

void write_traces(std::ostream& out, const std::vector<AttackTrace>& traces) {
  out << kHeader << '\n';
  out.precision(17);
  for (std::size_t t = 0; t < traces.size(); ++t) {
    out << "trace " << t << '\n';
    for (const auto& b : traces[t].batches) {
      out << "batch sel=" << b.select_seconds << " cost=" << b.cost << " reqs=";
      for (std::size_t i = 0; i < b.requests.size(); ++i) {
        if (i > 0) out << ',';
        out << b.requests[i] << ':' << static_cast<int>(b.accepted[i]);
      }
      out << " df=" << b.delta.friends << " dx=" << b.delta.fofs
          << " de=" << b.delta.edges << '\n';
    }
  }
}

void write_traces_file(const std::string& path, const std::vector<AttackTrace>& traces) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_traces_file: cannot open " + path);
  write_traces(f, traces);
  if (!f) throw std::runtime_error("write_traces_file: write failed: " + path);
}

namespace {

double parse_field(const std::string& token, const char* name, std::size_t lineno) {
  const std::string prefix = std::string(name) + "=";
  if (token.rfind(prefix, 0) != 0) {
    throw std::runtime_error("read_traces: expected '" + prefix + "' at line " +
                             std::to_string(lineno));
  }
  try {
    return std::stod(token.substr(prefix.size()));
  } catch (const std::exception&) {
    throw std::runtime_error("read_traces: bad number at line " + std::to_string(lineno));
  }
}

}  // namespace

std::vector<AttackTrace> read_traces(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("read_traces: missing/unsupported header");
  }
  ++lineno;
  std::vector<AttackTrace> traces;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "trace") {
      traces.emplace_back();
      continue;
    }
    if (kind != "batch") {
      throw std::runtime_error("read_traces: unknown record '" + kind + "' at line " +
                               std::to_string(lineno));
    }
    if (traces.empty()) {
      throw std::runtime_error("read_traces: batch before trace at line " +
                               std::to_string(lineno));
    }
    std::string sel_tok, cost_tok, reqs_tok, df_tok, dx_tok, de_tok;
    ls >> sel_tok >> cost_tok >> reqs_tok >> df_tok >> dx_tok >> de_tok;
    BatchRecord b;
    b.select_seconds = parse_field(sel_tok, "sel", lineno);
    b.cost = parse_field(cost_tok, "cost", lineno);
    if (reqs_tok.rfind("reqs=", 0) != 0) {
      throw std::runtime_error("read_traces: expected reqs= at line " +
                               std::to_string(lineno));
    }
    const std::string reqs = reqs_tok.substr(5);
    std::size_t pos = 0;
    while (pos < reqs.size()) {
      const std::size_t comma = reqs.find(',', pos);
      const std::string entry = reqs.substr(pos, comma - pos);
      const std::size_t colon = entry.find(':');
      if (colon == std::string::npos) {
        throw std::runtime_error("read_traces: bad request entry at line " +
                                 std::to_string(lineno));
      }
      b.requests.push_back(
          static_cast<graph::NodeId>(std::stoul(entry.substr(0, colon))));
      b.accepted.push_back(entry.substr(colon + 1) == "1" ? 1 : 0);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    b.delta.friends = parse_field(df_tok, "df", lineno);
    b.delta.fofs = parse_field(dx_tok, "dx", lineno);
    b.delta.edges = parse_field(de_tok, "de", lineno);
    // Recompute cumulative fields.
    AttackTrace& trace = traces.back();
    const BenefitBreakdown prev =
        trace.batches.empty() ? BenefitBreakdown{} : trace.batches.back().cumulative;
    const double prev_cost =
        trace.batches.empty() ? 0.0 : trace.batches.back().cumulative_cost;
    b.cumulative = prev;
    b.cumulative += b.delta;
    b.cumulative_cost = prev_cost + b.cost;
    trace.batches.push_back(std::move(b));
  }
  return traces;
}

std::vector<AttackTrace> read_traces_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_traces_file: cannot open " + path);
  return read_traces(f);
}

}  // namespace recon::sim
