#include "sim/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/crashpoint.h"
#include "util/fs.h"
#include "util/log.h"

namespace recon::sim {

namespace {

constexpr const char* kHeader = "#recon-trace v1";

}  // namespace

void write_batch_line(std::ostream& out, const BatchRecord& b,
                      double prev_cumulative_cost) {
  out << "batch sel=" << b.select_seconds << " cost=" << b.cost << " reqs=";
  for (std::size_t i = 0; i < b.requests.size(); ++i) {
    if (i > 0) out << ',';
    out << b.requests[i] << ':' << static_cast<int>(b.accepted[i]);
    // Non-delivered outcomes get a third field; fault-free batches keep
    // the original two-field entries so old files stay byte-identical.
    if (i < b.outcome.size() && b.outcome[i] != 0) {
      out << ':' << static_cast<int>(b.outcome[i]);
    }
  }
  out << " df=" << b.delta.friends << " dx=" << b.delta.fofs
      << " de=" << b.delta.edges;
  // Send-time cost accounting (the rolling-window runner charges requests
  // when they are sent, so mid-trace cumulative cost can run ahead of the
  // resolved records) gets an explicit field; batches whose cumulative
  // cost is the plain running sum keep the original line, so synchronous
  // trace files stay byte-identical.
  if (b.cumulative_cost != prev_cumulative_cost + b.cost) {
    out << " ccost=" << b.cumulative_cost;
  }
  out << '\n';
}

void write_traces(std::ostream& out, const std::vector<AttackTrace>& traces) {
  out << kHeader << '\n';
  out.precision(17);
  for (std::size_t t = 0; t < traces.size(); ++t) {
    out << "trace " << t << '\n';
    double prev_cost = 0.0;
    for (const auto& b : traces[t].batches) {
      write_batch_line(out, b, prev_cost);
      prev_cost = b.cumulative_cost;
    }
  }
  // Explicit terminator so a truncated file is detectable: a tail cut at a
  // line boundary would otherwise silently drop batches.
  out << "end " << traces.size() << '\n';
}

void write_traces_file(const std::string& path, const std::vector<AttackTrace>& traces) {
  // Atomic durable publish (tmp + durable_rename): an interrupted writer
  // leaves the previous trace file intact, never a torn one.
  std::ostringstream buf;
  write_traces(buf, traces);
  const std::string body = buf.str();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary);
    if (!f) throw std::runtime_error("write_traces_file: cannot open " + tmp);
    const std::size_t first_line = body.find('\n') + 1;
    f.write(body.data(), static_cast<std::streamsize>(first_line));
    f.flush();
    RECON_CRASH_POINT("trace.tmp-torn");
    f.write(body.data() + first_line,
            static_cast<std::streamsize>(body.size() - first_line));
    f.flush();
    if (!f) throw std::runtime_error("write_traces_file: write failed: " + tmp);
  }
  RECON_CRASH_POINT("trace.tmp-written");
  util::durable_rename(tmp, path);
}

namespace {

[[noreturn]] void fail_at(const std::string& what, std::size_t lineno) {
  throw std::runtime_error("read_traces: " + what + " at line " +
                           std::to_string(lineno));
}

double parse_field(const std::string& token, const char* name, std::size_t lineno) {
  const std::string prefix = std::string(name) + "=";
  if (token.rfind(prefix, 0) != 0) fail_at("expected '" + prefix + "'", lineno);
  try {
    std::size_t used = 0;
    const double v = std::stod(token.substr(prefix.size()), &used);
    if (used != token.size() - prefix.size()) fail_at("trailing junk in number", lineno);
    return v;
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception&) {
    fail_at("bad number", lineno);
  }
}

/// Strict unsigned parse of a full token (rejects empty, signs, junk).
std::uint64_t parse_unsigned(const std::string& token, const char* what,
                             std::size_t lineno) {
  if (token.empty() || token[0] == '-' || token[0] == '+') {
    fail_at(std::string("bad ") + what, lineno);
  }
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(token, &used);
    if (used != token.size()) fail_at(std::string("bad ") + what, lineno);
    return v;
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception&) {
    fail_at(std::string("bad ") + what, lineno);
  }
}

/// Parses one non-empty document line into `traces`/`saw_end`; throws via
/// fail_at on malformed input.
void parse_trace_line(const std::string& line, std::size_t lineno,
                      std::vector<AttackTrace>& traces, bool& saw_end) {
  if (saw_end) fail_at("content after 'end' marker", lineno);
  std::istringstream ls(line);
  std::string kind;
  ls >> kind;
  if (kind == "trace") {
    traces.emplace_back();
    return;
  }
  if (kind == "end") {
    std::string count_tok;
    ls >> count_tok;
    const std::uint64_t count = parse_unsigned(count_tok, "end count", lineno);
    if (count != traces.size()) {
      fail_at("trace count mismatch (file is truncated or corrupt)", lineno);
    }
    saw_end = true;
    return;
  }
  if (kind != "batch") fail_at("unknown record '" + kind + "'", lineno);
  if (traces.empty()) fail_at("batch before trace", lineno);
  std::string sel_tok, cost_tok, reqs_tok, df_tok, dx_tok, de_tok;
  ls >> sel_tok >> cost_tok >> reqs_tok >> df_tok >> dx_tok >> de_tok;
  BatchRecord b;
  b.select_seconds = parse_field(sel_tok, "sel", lineno);
  b.cost = parse_field(cost_tok, "cost", lineno);
  if (reqs_tok.rfind("reqs=", 0) != 0) fail_at("expected reqs=", lineno);
  const std::string reqs = reqs_tok.substr(5);
  bool any_outcome = false;
  std::size_t pos = 0;
  while (pos < reqs.size()) {
    const std::size_t comma = reqs.find(',', pos);
    const std::string entry = reqs.substr(pos, comma - pos);
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) fail_at("bad request entry", lineno);
    const std::size_t colon2 = entry.find(':', colon + 1);
    const std::string accept_tok =
        entry.substr(colon + 1, colon2 == std::string::npos
                                    ? std::string::npos
                                    : colon2 - colon - 1);
    if (accept_tok != "0" && accept_tok != "1") {
      fail_at("accept flag must be 0 or 1", lineno);
    }
    const std::uint64_t node = parse_unsigned(entry.substr(0, colon),
                                              "request node id", lineno);
    if (node > static_cast<std::uint64_t>(graph::kInvalidNode)) {
      fail_at("request node id out of range", lineno);
    }
    std::uint8_t outcome = 0;
    if (colon2 != std::string::npos) {
      const std::uint64_t o =
          parse_unsigned(entry.substr(colon2 + 1), "request outcome", lineno);
      if (o > 4) fail_at("request outcome out of range", lineno);
      outcome = static_cast<std::uint8_t>(o);
    }
    b.requests.push_back(static_cast<graph::NodeId>(node));
    b.accepted.push_back(accept_tok == "1" ? 1 : 0);
    b.outcome.push_back(outcome);
    if (outcome != 0) any_outcome = true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  // Fault-free batches keep the empty-outcome fast-path representation.
  if (!any_outcome) b.outcome.clear();
  b.delta.friends = parse_field(df_tok, "df", lineno);
  b.delta.fofs = parse_field(dx_tok, "dx", lineno);
  b.delta.edges = parse_field(de_tok, "de", lineno);
  // Optional send-time cumulative-cost override; anything else after the
  // delta fields is junk.
  std::string cc_tok;
  bool has_ccost = false;
  double ccost = 0.0;
  if (ls >> cc_tok) {
    ccost = parse_field(cc_tok, "ccost", lineno);
    has_ccost = true;
    std::string junk;
    if (ls >> junk) fail_at("trailing junk after ccost", lineno);
  }
  // Recompute cumulative fields.
  AttackTrace& trace = traces.back();
  const BenefitBreakdown prev =
      trace.batches.empty() ? BenefitBreakdown{} : trace.batches.back().cumulative;
  const double prev_cost =
      trace.batches.empty() ? 0.0 : trace.batches.back().cumulative_cost;
  b.cumulative = prev;
  b.cumulative += b.delta;
  b.cumulative_cost = has_ccost ? ccost : prev_cost + b.cost;
  trace.batches.push_back(std::move(b));
}

/// Shared reader. In recovery mode a malformed *final* content line (the
/// torn tail a crash mid-append leaves behind) is truncated away and a
/// missing `end` marker is tolerated — both with explicit log lines.
/// Mid-file corruption and `end`-count mismatches still throw in both
/// modes: those mean data loss recovery cannot paper over.
std::vector<AttackTrace> read_traces_impl(std::istream& in, bool recover) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error(
        "read_traces: missing/unsupported header (expected '" +
        std::string(kHeader) + "')");
  }
  // Pull the whole document in up front: recovery must know whether a
  // malformed line is the very tail of the file or mid-file corruption.
  std::vector<std::string> lines;
  std::size_t last_content = 0;  // 1-based index of the last non-empty line
  while (std::getline(in, line)) {
    lines.push_back(std::move(line));
    if (!lines.back().empty()) last_content = lines.size();
  }
  std::vector<AttackTrace> traces;
  bool saw_end = false;
  bool dropped_tail = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t lineno = i + 2;  // the header was line 1
    if (lines[i].empty()) continue;
    try {
      parse_trace_line(lines[i], lineno, traces, saw_end);
    } catch (const std::exception& e) {
      // Only the final content line can be a torn append; an `end` line
      // that fails means missing traces, not a partial record.
      const bool torn_tail = recover && i + 1 == last_content &&
                             lines[i].rfind("end", 0) != 0;
      if (!torn_tail) throw;
      RECON_LOG(kWarn) << "read_traces: truncating partial trailing record "
                          "at line "
                       << lineno << " (" << e.what() << ")";
      dropped_tail = true;
    }
  }
  if (!saw_end) {
    if (!recover) {
      throw std::runtime_error(
          "read_traces: missing 'end' marker — file is truncated");
    }
    RECON_LOG(kWarn) << "read_traces: missing 'end' marker — recovered "
                     << traces.size() << " trace(s)"
                     << (dropped_tail ? " after dropping a torn tail record"
                                      : "");
  }
  return traces;
}

}  // namespace

std::vector<AttackTrace> read_traces(std::istream& in) {
  return read_traces_impl(in, /*recover=*/false);
}

std::vector<AttackTrace> read_traces_recover(std::istream& in) {
  return read_traces_impl(in, /*recover=*/true);
}

std::vector<AttackTrace> read_traces_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_traces_file: cannot open " + path);
  return read_traces(f);
}

std::vector<AttackTrace> read_traces_file_recover(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_traces_file: cannot open " + path);
  return read_traces_recover(f);
}

}  // namespace recon::sim
