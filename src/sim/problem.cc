#include "sim/problem.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace recon::sim {

using graph::Graph;
using graph::NodeId;

double Problem::benefit_upper_bound() const {
  // Every node yields at most Bf (Bf >= Bfof), every edge at most Bi.
  double total = 0.0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) total += benefit.bf[u];
  for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) total += benefit.bi[e];
  return total;
}

void Problem::validate() const {
  benefit.validate(graph);
  acceptance.validate(graph);
  if (is_target.size() != graph.num_nodes()) {
    throw std::invalid_argument("Problem: target bitmap size mismatch");
  }
  if (!std::is_sorted(targets.begin(), targets.end())) {
    throw std::invalid_argument("Problem: targets not sorted");
  }
  for (NodeId t : targets) {
    if (t >= graph.num_nodes() || !is_target[t]) {
      throw std::invalid_argument("Problem: target list/bitmap inconsistency");
    }
  }
  if (!cost.empty()) {
    if (cost.size() != graph.num_nodes()) {
      throw std::invalid_argument("Problem: cost vector size mismatch");
    }
    for (double c : cost) {
      if (c <= 0.0) throw std::invalid_argument("Problem: nonpositive cost");
    }
  }
}

std::vector<NodeId> select_targets(const Graph& g, std::size_t count, TargetMode mode,
                                   std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  count = std::min<std::size_t>(count, n);
  util::Rng rng(seed);
  std::vector<NodeId> targets;
  switch (mode) {
    case TargetMode::kRandom: {
      targets = util::sample_without_replacement(n, static_cast<std::uint32_t>(count), rng);
      break;
    }
    case TargetMode::kBfsBall: {
      // Grow a BFS ball from a random seed until `count` nodes collected;
      // restart from fresh seeds if a component is exhausted.
      std::vector<std::uint8_t> visited(n, 0);
      std::deque<NodeId> queue;
      while (targets.size() < count) {
        if (queue.empty()) {
          NodeId s;
          do {
            s = static_cast<NodeId>(rng.below(n));
          } while (visited[s]);
          visited[s] = 1;
          queue.push_back(s);
          targets.push_back(s);
          if (targets.size() >= count) break;
        }
        const NodeId u = queue.front();
        queue.pop_front();
        for (NodeId v : g.neighbors(u)) {
          if (visited[v]) continue;
          visited[v] = 1;
          queue.push_back(v);
          targets.push_back(v);
          if (targets.size() >= count) break;
        }
      }
      break;
    }
    case TargetMode::kHighDegree: {
      std::vector<NodeId> order(n);
      std::iota(order.begin(), order.end(), NodeId{0});
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
        return a < b;
      });
      targets.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(count));
      break;
    }
  }
  std::sort(targets.begin(), targets.end());
  return targets;
}

Problem make_problem(Graph g, const ProblemOptions& options) {
  Problem p;
  p.targets = select_targets(g, options.num_targets, options.target_mode,
                             util::derive_seed(options.seed, 0x7A));
  p.is_target.assign(g.num_nodes(), 0);
  for (NodeId t : p.targets) p.is_target[t] = 1;
  p.benefit = options.paper_benefit ? make_paper_benefit(g, p.is_target)
                                    : make_uniform_benefit(g);
  p.acceptance = make_constant_acceptance(options.base_acceptance);
  p.acceptance.mutual_boost = options.mutual_boost;
  p.graph = std::move(g);
  p.validate();
  return p;
}

}  // namespace recon::sim
