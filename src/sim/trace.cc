#include "sim/trace.h"

#include <limits>

namespace recon::sim {

double AttackTrace::total_select_seconds() const noexcept {
  double total = 0.0;
  for (const auto& b : batches) total += b.select_seconds;
  return total;
}

std::size_t AttackTrace::total_requests() const noexcept {
  std::size_t total = 0;
  for (const auto& b : batches) total += b.requests.size();
  return total;
}

std::size_t AttackTrace::total_accepts() const noexcept {
  std::size_t total = 0;
  for (const auto& b : batches) {
    for (std::uint8_t a : b.accepted) total += a;
  }
  return total;
}

std::vector<double> AttackTrace::benefit_by_request() const {
  std::vector<double> out;
  out.reserve(total_requests());
  for (const auto& b : batches) {
    if (b.requests.empty()) continue;
    // The batch's benefit lands when its last response arrives; earlier
    // requests in the batch show the pre-batch value.
    const double before = b.cumulative.total() - b.delta.total();
    for (std::size_t i = 0; i + 1 < b.requests.size(); ++i) out.push_back(before);
    out.push_back(b.cumulative.total());
  }
  return out;
}

std::size_t AttackTrace::requests_to_reach(double threshold) const noexcept {
  if (threshold <= 0.0) return 0;
  std::size_t requests = 0;
  for (const auto& b : batches) {
    requests += b.requests.size();
    if (b.cumulative.total() >= threshold) return requests;
  }
  return std::numeric_limits<std::size_t>::max();
}

}  // namespace recon::sim
