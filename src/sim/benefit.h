// Information-benefit model (paper Sec. II-B).
//
// Benefit comes from three sources: friends made Bf(u), friends-of-friends
// made Bfof(u) <= Bf(u), and edges revealed Bi(u, v). A node produces only
// one kind of benefit (friend supersedes friend-of-friend).
//
// The model is stored as dense per-node / per-edge coefficient vectors so
// hot loops avoid virtual dispatch; factories build the paper's
// target-based instantiation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace recon::sim {

struct BenefitModel {
  std::vector<double> bf;    ///< size n: benefit of u as a friend
  std::vector<double> bfof;  ///< size n: benefit of u as a friend-of-friend
  std::vector<double> bi;    ///< size m: benefit of revealing edge e

  double friend_benefit(graph::NodeId u) const noexcept { return bf[u]; }
  double fof_benefit(graph::NodeId u) const noexcept { return bfof[u]; }
  double edge_benefit(graph::EdgeId e) const noexcept { return bi[e]; }

  /// Validates sizes and the Bfof(u) <= Bf(u) and nonnegativity invariants.
  /// Throws std::invalid_argument on violation.
  void validate(const graph::Graph& g) const;
};

/// The paper's experimental benefit model (Sec. V):
///   Bf(u)   = 1   if u in T else 0
///   Bfof(u) = 0.5 if u in T else 0
///   Bi(u,v) = 2^{|{u,v} ∩ T|} / M, with M the maximum expected degree.
BenefitModel make_paper_benefit(const graph::Graph& g,
                                const std::vector<std::uint8_t>& is_target);

/// Uniform benefit: Bf = 1, Bfof = fof_value, Bi = edge_value for all nodes
/// and edges (targets ignored) — used by tests and ablations.
BenefitModel make_uniform_benefit(const graph::Graph& g, double fof_value = 0.5,
                                  double edge_value = 0.01);

struct BenefitBreakdown {
  double friends = 0.0;
  double fofs = 0.0;
  double edges = 0.0;

  double total() const noexcept { return friends + fofs + edges; }

  BenefitBreakdown& operator+=(const BenefitBreakdown& o) noexcept {
    friends += o.friends;
    fofs += o.fofs;
    edges += o.edges;
    return *this;
  }
  friend BenefitBreakdown operator-(BenefitBreakdown a,
                                    const BenefitBreakdown& b) noexcept {
    a.friends -= b.friends;
    a.fofs -= b.fofs;
    a.edges -= b.edges;
    return a;
  }
};

}  // namespace recon::sim
