#include "sim/fault.h"

#include <stdexcept>

#include "util/rng.h"

namespace recon::sim {

const char* outcome_name(RequestOutcome outcome) noexcept {
  switch (outcome) {
    case RequestOutcome::kDelivered: return "delivered";
    case RequestOutcome::kTimeout: return "timeout";
    case RequestOutcome::kDropped: return "dropped";
    case RequestOutcome::kThrottled: return "throttled";
    case RequestOutcome::kSuspended: return "suspended";
  }
  return "unknown";
}

void FaultOptions::validate() const {
  for (double r : {timeout_rate, drop_rate, throttle_rate}) {
    if (r < 0.0 || r > 1.0) {
      throw std::invalid_argument("FaultOptions: fault rates must be in [0, 1]");
    }
  }
  if (timeout_rate + drop_rate + throttle_rate > 1.0 + 1e-12) {
    throw std::invalid_argument("FaultOptions: fault rates must sum to at most 1");
  }
  if (suspension.max_requests > 0 &&
      (suspension.window_ticks == 0 || suspension.lockout_ticks == 0)) {
    throw std::invalid_argument(
        "FaultOptions: suspension window and lockout must be positive ticks");
  }
}

FaultModel::FaultModel(const FaultOptions& options)
    : options_(options), draw_seed_(util::derive_seed(options.seed, 0xFA17ULL)) {
  options_.validate();
}

bool FaultModel::note_request() {
  if (options_.suspension.max_requests == 0) return false;
  // Expire window entries older than window_ticks.
  const std::uint64_t horizon =
      tick_ >= options_.suspension.window_ticks
          ? tick_ - options_.suspension.window_ticks + 1
          : 0;
  while (!window_.empty() && window_.front().first < horizon) {
    window_total_ -= window_.front().second;
    window_.pop_front();
  }
  if (window_.empty() || window_.back().first != tick_) {
    window_.emplace_back(tick_, 0);
  }
  ++window_.back().second;
  ++window_total_;
  if (window_total_ > options_.suspension.max_requests) {
    suspended_until_ = tick_ + options_.suspension.lockout_ticks;
    window_.clear();
    window_total_ = 0;
    ++counters_.lockouts;
    return true;
  }
  return false;
}

RequestOutcome FaultModel::resolve(graph::NodeId u) {
  const std::uint64_t send = sends_++;
  if (suspended()) {
    ++counters_.bounced;
    return RequestOutcome::kSuspended;
  }
  if (note_request()) {
    // The request that trips the rate limit is itself refused.
    ++counters_.bounced;
    return RequestOutcome::kSuspended;
  }
  const double x = util::counter_uniform(draw_seed_, send, u);
  if (x < options_.timeout_rate) {
    ++counters_.timeouts;
    return RequestOutcome::kTimeout;
  }
  if (x < options_.timeout_rate + options_.drop_rate) {
    ++counters_.drops;
    return RequestOutcome::kDropped;
  }
  if (x < options_.timeout_rate + options_.drop_rate + options_.throttle_rate) {
    ++counters_.throttles;
    return RequestOutcome::kThrottled;
  }
  ++counters_.delivered;
  return RequestOutcome::kDelivered;
}

void FaultModel::advance_ticks(std::uint64_t ticks) { tick_ += ticks; }

FaultModel::State FaultModel::state() const {
  State s;
  s.sends = sends_;
  s.tick = tick_;
  s.suspended_until = suspended_until_;
  s.window.assign(window_.begin(), window_.end());
  s.counters = counters_;
  return s;
}

void FaultModel::restore(const State& state) {
  sends_ = state.sends;
  tick_ = state.tick;
  suspended_until_ = state.suspended_until;
  window_.assign(state.window.begin(), state.window.end());
  window_total_ = 0;
  for (const auto& [t, c] : window_) window_total_ += c;
  counters_ = state.counters;
}

}  // namespace recon::sim
