#include "sim/problem_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.h"

namespace recon::sim {

namespace {

constexpr const char* kHeader = "#recon-problem v1";

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("read_problem: " + what);
}

/// Detects whether the benefit model is exactly the paper model for the
/// given graph/targets (then it can be serialized as one token).
bool is_paper_benefit(const Problem& p) {
  const BenefitModel reference = make_paper_benefit(p.graph, p.is_target);
  return reference.bf == p.benefit.bf && reference.bfof == p.benefit.bfof &&
         reference.bi == p.benefit.bi;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  for (const auto& x : v) out << ' ' << x;
}

}  // namespace

void write_problem(std::ostream& out, const Problem& problem) {
  problem.validate();
  out.precision(17);
  out << kHeader << '\n';
  const auto& g = problem.graph;
  out << "graph " << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    out << "e " << g.edge_u(e) << ' ' << g.edge_v(e) << ' ' << g.edge_prob(e) << '\n';
  }
  out << "targets " << problem.targets.size();
  write_vector(out, problem.targets);
  out << '\n';

  const auto& acc = problem.acceptance;
  if (acc.q0.size() == 1) {
    out << "acceptance uniform " << acc.q0[0] << '\n';
  } else {
    out << "acceptance pernode";
    write_vector(out, acc.q0);
    out << '\n';
  }
  out << "acceptance-boost " << acc.mutual_boost << '\n';
  if (acc.attr_weight != 0.0) {
    out << "acceptance-attrs " << acc.attr_weight;
    write_vector(out, acc.attacker_attrs);
    out << '\n';
  }

  if (is_paper_benefit(problem)) {
    out << "benefit paper\n";
  } else {
    out << "benefit custom\n";
    out << "bf";
    write_vector(out, problem.benefit.bf);
    out << "\nbfof";
    write_vector(out, problem.benefit.bfof);
    out << "\nbi";
    write_vector(out, problem.benefit.bi);
    out << '\n';
  }

  if (problem.cost.empty()) {
    out << "costs uniform\n";
  } else {
    out << "costs pernode";
    write_vector(out, problem.cost);
    out << '\n';
  }

  if (g.has_attributes()) {
    out << "attrs " << g.attribute_dim();
    for (auto a : g.attributes()) out << ' ' << a;
    out << '\n';
  }
  // Explicit terminator: lets the reader distinguish a complete file from
  // one truncated at a section boundary.
  out << "end\n";
}

void write_problem_file(const std::string& path, const Problem& problem) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_problem_file: cannot open " + path);
  write_problem(f, problem);
  if (!f) throw std::runtime_error("write_problem_file: write failed: " + path);
}

Problem read_problem(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) fail("missing/unsupported header");

  Problem p;
  graph::NodeId n = 0;
  graph::EdgeId m = 0;
  {
    if (!std::getline(in, line)) fail("missing graph line");
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw >> n >> m) || kw != "graph") fail("bad graph line");
  }
  graph::GraphBuilder builder(n);
  for (graph::EdgeId e = 0; e < m; ++e) {
    if (!std::getline(in, line)) fail("missing edge line");
    std::istringstream ls(line);
    std::string kw;
    graph::NodeId u, v;
    double prob;
    if (!(ls >> kw >> u >> v >> prob) || kw != "e") fail("bad edge line");
    builder.add_edge(u, v, prob);
  }

  bool have_benefit = false;
  std::vector<std::uint16_t> attrs;
  unsigned attr_dim = 0;
  std::vector<double> bf, bfof, bi;
  bool paper_benefit = false;

  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (saw_end) fail("content after 'end' marker");
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "end") {
      saw_end = true;
    } else if (kw == "targets") {
      std::size_t count = 0;
      if (!(ls >> count)) fail("bad targets count");
      // Bound before allocating: a corrupt count must not trigger a huge
      // resize or leave a partially-read target list looking valid.
      if (count > static_cast<std::size_t>(n)) fail("targets count exceeds n");
      p.targets.resize(count);
      for (auto& t : p.targets) {
        if (!(ls >> t)) fail("bad target id (truncated targets line?)");
      }
    } else if (kw == "acceptance") {
      std::string mode;
      ls >> mode;
      if (mode == "uniform") {
        double q;
        if (!(ls >> q)) fail("bad uniform acceptance");
        p.acceptance.q0 = {q};
      } else if (mode == "pernode") {
        p.acceptance.q0.resize(n);
        for (auto& q : p.acceptance.q0) {
          if (!(ls >> q)) fail("bad pernode acceptance");
        }
      } else {
        fail("unknown acceptance mode " + mode);
      }
    } else if (kw == "acceptance-boost") {
      if (!(ls >> p.acceptance.mutual_boost)) fail("bad boost");
    } else if (kw == "acceptance-attrs") {
      if (!(ls >> p.acceptance.attr_weight)) fail("bad attr weight");
      std::uint16_t a;
      while (ls >> a) p.acceptance.attacker_attrs.push_back(a);
    } else if (kw == "benefit") {
      std::string mode;
      ls >> mode;
      if (mode == "paper") {
        paper_benefit = true;
        have_benefit = true;
      } else if (mode == "custom") {
        have_benefit = true;
      } else {
        fail("unknown benefit mode " + mode);
      }
    } else if (kw == "bf" || kw == "bfof" || kw == "bi") {
      auto& dst = kw == "bf" ? bf : (kw == "bfof" ? bfof : bi);
      double x;
      while (ls >> x) dst.push_back(x);
    } else if (kw == "costs") {
      std::string mode;
      ls >> mode;
      if (mode == "pernode") {
        p.cost.resize(n);
        for (auto& c : p.cost) {
          if (!(ls >> c)) fail("bad cost");
        }
      } else if (mode != "uniform") {
        fail("unknown costs mode " + mode);
      }
    } else if (kw == "attrs") {
      if (!(ls >> attr_dim)) fail("bad attrs dim");
      std::uint16_t a;
      while (ls >> a) attrs.push_back(a);
    } else {
      fail("unknown section '" + kw + "'");
    }
  }

  if (!saw_end) fail("missing 'end' marker — file is truncated");
  if (attr_dim > 0) {
    if (attrs.size() != static_cast<std::size_t>(n) * attr_dim) {
      fail("attrs line has wrong value count (truncated?)");
    }
    builder.set_attributes(std::move(attrs), attr_dim);
  }
  p.graph = builder.build();
  p.is_target.assign(n, 0);
  for (auto t : p.targets) {
    if (t >= n) fail("target id out of range");
    p.is_target[t] = 1;
  }
  if (!have_benefit) fail("missing benefit section");
  if (paper_benefit) {
    p.benefit = make_paper_benefit(p.graph, p.is_target);
  } else {
    p.benefit.bf = std::move(bf);
    p.benefit.bfof = std::move(bfof);
    p.benefit.bi = std::move(bi);
  }
  if (p.acceptance.q0.empty()) fail("missing acceptance section");
  p.validate();
  return p;
}

Problem read_problem_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_problem_file: cannot open " + path);
  return read_problem(f);
}

}  // namespace recon::sim
