#include "sim/observation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace recon::sim {

using graph::EdgeId;
using graph::NodeId;

Observation::Observation(const Problem& problem) : problem_(&problem) {
  const NodeId n = problem.graph.num_nodes();
  node_state_.assign(n, NodeState::kUnknown);
  edge_state_.assign(problem.graph.num_edges(), EdgeState::kUnknown);
  is_friend_.assign(n, 0);
  is_fof_.assign(n, 0);
  attempts_.assign(n, 0);
  mutual_.assign(n, 0);
}

BenefitBreakdown Observation::record_reject(NodeId u) {
  if (is_friend_[u]) throw std::logic_error("record_reject: u is already a friend");
  ++attempts_[u];
  node_state_[u] = NodeState::kRejected;
  return {};
}

void Observation::record_no_response(NodeId u) {
  if (is_friend_[u]) {
    throw std::logic_error("record_no_response: u is already a friend");
  }
  ++attempts_[u];
}

void Observation::set_retry_after(NodeId u, double until) {
  if (retry_after_.empty()) retry_after_.assign(node_state_.size(), 0.0);
  retry_after_[u] = until;
}

double Observation::next_retry_time(bool allow_retries) const noexcept {
  if (retry_after_.empty()) return std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  for (NodeId u = 0; u < static_cast<NodeId>(retry_after_.size()); ++u) {
    if (retry_after_[u] <= clock_) continue;
    if (is_friend_[u]) continue;
    if (node_state_[u] == NodeState::kRejected && !allow_retries) continue;
    best = std::min(best, retry_after_[u]);
  }
  return best;
}

BenefitBreakdown Observation::record_accept(NodeId u,
                                            std::span<const NodeId> true_neighbors) {
  if (is_friend_[u]) throw std::logic_error("record_accept: u is already a friend");
  ++attempts_[u];
  node_state_[u] = NodeState::kAccepted;
  is_friend_[u] = 1;
  friends_.push_back(u);

  BenefitBreakdown delta;
  delta.friends += problem_->benefit.bf[u];
  if (is_fof_[u]) {
    // Upgrade: a node produces only one kind of benefit (Sec. II-B).
    delta.fofs -= problem_->benefit.bfof[u];
    is_fof_[u] = 0;
  }

  // Reveal u's neighborhood: walk the graph adjacency and the (sorted)
  // true-neighbor list in lockstep.
  const auto nbrs = problem_->graph.neighbors(u);
  const auto eids = problem_->graph.incident_edges(u);
  std::size_t t = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const NodeId v = nbrs[i];
    const EdgeId e = eids[i];
    while (t < true_neighbors.size() && true_neighbors[t] < v) ++t;
    const bool exists = t < true_neighbors.size() && true_neighbors[t] == v;
    if (edge_state_[e] == EdgeState::kUnknown) {
      edge_state_[e] = exists ? EdgeState::kPresent : EdgeState::kAbsent;
      if (exists) delta.edges += problem_->benefit.bi[e];
    }
    if (exists) {
      // v gained the attacker's new friend u as a mutual friend.
      ++mutual_[v];
      if (!is_friend_[v] && !is_fof_[v]) {
        is_fof_[v] = 1;
        delta.fofs += problem_->benefit.bfof[v];
      }
    }
  }
  benefit_ += delta;
  return delta;
}

BenefitBreakdown Observation::recompute_benefit() const {
  BenefitBreakdown total;
  const auto& g = problem_->graph;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (is_friend_[u]) {
      total.friends += problem_->benefit.bf[u];
    } else {
      // FoF per Eq. (1): adjacent to some friend via an existing edge.
      bool fof = false;
      const auto nbrs = g.neighbors(u);
      const auto eids = g.incident_edges(u);
      for (std::size_t i = 0; i < nbrs.size() && !fof; ++i) {
        fof = is_friend_[nbrs[i]] && edge_state_[eids[i]] == EdgeState::kPresent;
      }
      if (fof) total.fofs += problem_->benefit.bfof[u];
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (edge_state_[e] == EdgeState::kPresent) total.edges += problem_->benefit.bi[e];
  }
  return total;
}

void Observation::restore(std::span<const NodeState> node_states,
                          std::span<const EdgeState> edge_states,
                          std::span<const std::uint32_t> attempts,
                          std::span<const NodeId> friends_in_order) {
  const auto& g = problem_->graph;
  if (node_states.size() != g.num_nodes() || attempts.size() != g.num_nodes() ||
      edge_states.size() != g.num_edges()) {
    throw std::invalid_argument("Observation::restore: state size mismatch");
  }
  node_state_.assign(node_states.begin(), node_states.end());
  edge_state_.assign(edge_states.begin(), edge_states.end());
  attempts_.assign(attempts.begin(), attempts.end());
  friends_.assign(friends_in_order.begin(), friends_in_order.end());
  is_friend_.assign(g.num_nodes(), 0);
  for (NodeId f : friends_) {
    if (f >= g.num_nodes() || node_state_[f] != NodeState::kAccepted ||
        is_friend_[f] != 0) {
      throw std::invalid_argument("Observation::restore: inconsistent friend list");
    }
    is_friend_[f] = 1;
  }
  // Derived state: mutual_[v] counts friends adjacent to v via revealed
  // existing edges; fof iff a non-friend has any such neighbor.
  mutual_.assign(g.num_nodes(), 0);
  for (NodeId f : friends_) {
    const auto nbrs = g.neighbors(f);
    const auto eids = g.incident_edges(f);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (edge_state_[eids[i]] == EdgeState::kPresent) ++mutual_[nbrs[i]];
    }
  }
  is_fof_.assign(g.num_nodes(), 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!is_friend_[u] && mutual_[u] > 0) is_fof_[u] = 1;
  }
  benefit_ = recompute_benefit();
  retry_after_.clear();
  clock_ = 0.0;
}

void Observation::restore_benefit(const BenefitBreakdown& exact) {
  // The recomputed value and the incrementally-accumulated one may disagree
  // only by summation-order rounding; anything larger means the checkpointed
  // value does not belong to this state.
  const auto close = [](double a, double b) {
    const double tol = 1e-9 * (1.0 + std::max(std::abs(a), std::abs(b)));
    return std::abs(a - b) <= tol;
  };
  if (!close(exact.friends, benefit_.friends) || !close(exact.fofs, benefit_.fofs) ||
      !close(exact.edges, benefit_.edges)) {
    throw std::invalid_argument(
        "Observation::restore_benefit: checkpointed benefit disagrees with the "
        "restored state beyond rounding tolerance");
  }
  benefit_ = exact;
}

}  // namespace recon::sim
