// Friend-request acceptance model (paper Sec. II-A).
//
// Each user u accepts a request with probability q(u | ω): a per-node base
// rate, optionally boosted by the number of mutual friends with the attacker
// (the paper's q'(u) > q(u) dynamic) and by attacker/user attribute
// similarity (homophily exploitation, Sec. II-B).
//
// The model is a plain value type evaluated as
//   q = 1 - (1 - q_eff) * (1 - mutual_boost)^mutual
// where q_eff = clamp(q0(u) + attr_weight * similarity(u), 0, 1); the
// saturating form keeps q in [0, 1] and makes every mutual friend
// multiplicatively shrink the refusal probability.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace recon::sim {

struct AcceptanceModel {
  /// Base acceptance probability; either one entry per node or a single
  /// entry broadcast to all nodes.
  std::vector<double> q0;

  /// Per-mutual-friend refusal shrink factor in [0, 1); 0 disables the boost.
  double mutual_boost = 0.0;

  /// Weight of attacker-profile attribute similarity (requires graph
  /// attributes and a non-empty attacker profile); 0 disables.
  double attr_weight = 0.0;

  /// Attacker profile used for similarity (size = graph attribute_dim()).
  std::vector<std::uint16_t> attacker_attrs;

  double base(graph::NodeId u) const noexcept {
    return q0.size() == 1 ? q0[0] : q0[u];
  }

  /// Effective acceptance probability for u with `mutual` mutual friends.
  double probability(const graph::Graph& g, graph::NodeId u,
                     std::uint32_t mutual) const noexcept;

  /// Validates parameter ranges; throws std::invalid_argument.
  void validate(const graph::Graph& g) const;
};

/// Constant acceptance probability q for every node, no boosts.
AcceptanceModel make_constant_acceptance(double q);

/// Per-node base rates drawn uniformly from [lo, hi], plus optional boost.
AcceptanceModel make_uniform_acceptance(const graph::Graph& g, double lo, double hi,
                                        double mutual_boost, std::uint64_t seed);

/// Attribute-homophily acceptance: base q plus attr_weight * similarity with
/// a random attacker profile. Requires g.has_attributes().
AcceptanceModel make_attribute_acceptance(const graph::Graph& g, double base_q,
                                          double attr_weight, double mutual_boost,
                                          std::uint64_t seed);

}  // namespace recon::sim
