// Seeded, deterministic fault injection for request resolution.
//
// The clean simulation resolves every request to accept/reject; a real
// campaign also sees the operational hazards that make Sec. IV-C's retry
// machinery necessary. FaultModel injects four failure modes between the
// attacker and the acceptance draw:
//
//  * timeout   — the request never reaches the user: no response, the
//                attempt index is consumed, nothing is learned;
//  * drop      — the user decided but the response was lost: observably
//                identical to a timeout (the per-attempt acceptance draw is
//                simply skipped — draws are pure in (seed, node, attempt));
//  * throttle  — the platform bounces the request (rate limiting): the
//                round-trip is wasted (cost is charged) but the user never
//                saw it, so no attempt is consumed;
//  * suspension— a detector-style sliding-window rule (cf.
//                defense::RateLimitDetector; convert one with
//                defense::suspension_rule_from) trips once the account sends
//                more than `max_requests` requests within `window_ticks`
//                ticks, locking it out for `lockout_ticks`. Requests during
//                lockout bounce for free; the runner waits the lockout out.
//
// Per-request fault draws are counter-based — pure in (seed, send index,
// node) — so a checkpointed run resumes bit-identically after restoring the
// small State struct. A tick is one unit of the runner's logical clock: a
// batch round for the synchronous runner, a resolved event for the
// rolling-window runner.
//
// Thread compatibility: FaultModel is deliberately unsynchronized. The
// sliding-window State (sends_, tick_, window_, counters_) mutates on every
// resolve(), and the attack runners own exactly one model per run on one
// thread; sharing an instance across threads without an external util::Mutex
// (see util/thread_annotations.h) would both race and — worse for this repo's
// guarantees — make the send-counter draw order scheduling-dependent.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace recon::sim {

enum class RequestOutcome : std::uint8_t {
  kDelivered = 0,  ///< reached the user; accept/reject per acceptance model
  kTimeout = 1,    ///< no response; outcome unknown, attempt consumed
  kDropped = 2,    ///< user decided but the response was lost
  kThrottled = 3,  ///< platform bounced the request (rate limiting)
  kSuspended = 4,  ///< account locked out; request not processed, no cost
};

/// Printable name ("delivered", "timeout", ...).
const char* outcome_name(RequestOutcome outcome) noexcept;

/// Sliding-window suspension rule: more than `max_requests` requests within
/// any `window_ticks` consecutive ticks trips a lockout of `lockout_ticks`.
struct SuspensionRule {
  std::size_t max_requests = 0;  ///< 0 disables suspension entirely
  std::uint64_t window_ticks = 1;
  std::uint64_t lockout_ticks = 1;
};

struct FaultOptions {
  double timeout_rate = 0.0;   ///< P[timeout] per request
  double drop_rate = 0.0;      ///< P[drop] per request
  double throttle_rate = 0.0;  ///< P[throttle] per request
  SuspensionRule suspension;
  std::uint64_t seed = 0xFA17;

  bool any_faults() const noexcept {
    return timeout_rate > 0.0 || drop_rate > 0.0 || throttle_rate > 0.0 ||
           suspension.max_requests > 0;
  }
  /// Throws std::invalid_argument on rates outside [0,1] or summing past 1.
  void validate() const;
};

class FaultModel {
 public:
  explicit FaultModel(const FaultOptions& options);

  const FaultOptions& options() const noexcept { return options_; }

  /// Resolves the fault outcome of the next request, to node u. Advances the
  /// send counter; deterministic in (seed, send index, u).
  RequestOutcome resolve(graph::NodeId u);

  /// Advances the logical clock by `ticks` (default one batch round / event).
  void advance_ticks(std::uint64_t ticks = 1);

  std::uint64_t tick() const noexcept { return tick_; }
  bool suspended() const noexcept { return tick_ < suspended_until_; }
  /// First tick at which the account is usable again (<= tick() when not
  /// suspended).
  std::uint64_t suspended_until() const noexcept { return suspended_until_; }

  /// Outcome tallies since construction (or the last restore()).
  struct Counters {
    std::uint64_t delivered = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t drops = 0;
    std::uint64_t throttles = 0;
    std::uint64_t bounced = 0;   ///< requests refused while suspended
    std::uint64_t lockouts = 0;  ///< times the suspension rule tripped
  };
  const Counters& counters() const noexcept { return counters_; }

  /// Complete mutable state, for checkpoint serialization. Restoring a saved
  /// State resumes the fault stream bit-identically.
  struct State {
    std::uint64_t sends = 0;
    std::uint64_t tick = 0;
    std::uint64_t suspended_until = 0;
    /// (tick, requests issued during that tick) for the sliding window.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> window;
    Counters counters;
  };
  State state() const;
  void restore(const State& state);

 private:
  /// Window bookkeeping for one request at the current tick; returns true if
  /// this request tripped the suspension rule.
  bool note_request();

  FaultOptions options_;
  std::uint64_t draw_seed_;
  std::uint64_t sends_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t suspended_until_ = 0;
  std::deque<std::pair<std::uint64_t, std::uint32_t>> window_;
  std::size_t window_total_ = 0;
  Counters counters_;
};

}  // namespace recon::sim
