#include "core/batch_select.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <queue>

#include "util/numa.h"
#include "util/timer.h"

namespace recon::core {

using graph::NodeId;

std::vector<std::size_t> plan_score_shards(const std::vector<double>& work,
                                           std::size_t parties,
                                           double nanos_per_unit,
                                           double target_shard_nanos) {
  std::vector<std::size_t> bounds{0};
  const std::size_t n = work.size();
  if (n == 0) return bounds;
  if (parties == 0) parties = 1;
  double total = 0.0;
  for (const double w : work) total += w;
  // Aim each shard at ~target_shard_nanos of measured scoring time: long
  // enough to amortize a task dispatch, short enough that one hub-heavy
  // shard cannot straggle the whole pass. Clamp to between 4 shards per
  // participant (steal balance) and 32 (dispatch overhead).
  double target = target_shard_nanos / std::max(nanos_per_unit, 1e-3);
  target = std::min(target, total / static_cast<double>(parties * 4));
  target = std::max(target, total / static_cast<double>(parties * 32));
  target = std::max(target, 1.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += work[i];
    if (acc >= target && i + 1 < n) {
      bounds.push_back(i + 1);
      acc = 0.0;
    }
  }
  bounds.push_back(n);
  return bounds;
}

std::vector<NodeId> batch_candidates(const sim::Observation& obs, bool allow_retries,
                                     std::uint32_t max_attempts_per_node,
                                     double max_cost) {
  const auto& problem = obs.problem();
  std::vector<NodeId> out;
  out.reserve(problem.graph.num_nodes());
  for (NodeId u = 0; u < problem.graph.num_nodes(); ++u) {
    if (!obs.requestable(u, allow_retries)) continue;
    if (max_attempts_per_node != 0 && obs.attempts(u) >= max_attempts_per_node) continue;
    if (problem.cost_of(u) > max_cost) continue;
    out.push_back(u);
  }
  return out;
}

namespace {

struct HeapEntry {
  double score;
  NodeId node;  ///< current (possibly relabeled) id, used for scoring
  NodeId rank;  ///< original pre-relabeling id (Graph::orig_id), used for ties
  std::uint32_t stamp;  ///< batch size when the score was computed

  bool operator<(const HeapEntry& o) const noexcept {
    if (score != o.score) return score < o.score;
    return rank > o.rank;  // deterministic tie-break: lower original id wins
  }
};

/// Strict total order used everywhere a "best candidate" is chosen: higher
/// score first, lower *original* node id on ties. Tie-breaking on orig_id
/// (identity for never-relabeled graphs) makes the selected batch invariant
/// under vertex relabelings such as the degree-sorted binary layout. Agrees
/// with HeapEntry::operator<.
inline bool ranks_before(const HeapEntry& a, const HeapEntry& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  return a.rank < b.rank;
}

/// One shard of the parallel frontier: the worker's top-k entries sorted by
/// ranks_before (the merged frontier reads these through a cursor), plus the
/// unsorted overflow, sorted lazily in the rare case the head runs dry
/// before the batch is full — which keeps the frontier exact, not a top-k
/// approximation.
struct ShardFrontier {
  std::vector<HeapEntry> head;
  std::vector<HeapEntry> overflow;
  std::size_t cursor = 0;
};

/// Cursor-heap entry: the current best un-consumed entry of one shard.
struct CursorRef {
  double score;
  NodeId node;
  NodeId rank;
  std::uint32_t shard;

  bool operator<(const CursorRef& o) const noexcept {
    if (score != o.score) return score < o.score;
    return rank > o.rank;
  }
};

/// Shared lazy-greedy pick loop. `frontier` must behave like the single
/// priority queue of the sequential algorithm: pop_best removes and returns
/// the maximum by (score, original node id), best_score peeks at the new
/// maximum. Because (score, orig id) is a strict total order, any frontier
/// organization with these two operations yields a bit-identical selection sequence.
template <typename Frontier, typename ScoreFn>
std::vector<NodeId> lazy_pick_loop(const sim::Observation& obs,
                                   const BatchSelectOptions& options,
                                   BatchState& state, double budget,
                                   Frontier& frontier, const ScoreFn& score_of) {
  const auto& problem = obs.problem();
  std::vector<NodeId> batch;
  batch.reserve(static_cast<std::size_t>(options.batch_size));
  while (batch.size() < static_cast<std::size_t>(options.batch_size) &&
         !frontier.empty()) {
    HeapEntry top = frontier.pop_best();
    if (problem.cost_of(top.node) > budget) continue;  // permanently unaffordable
    const auto cur = static_cast<std::uint32_t>(batch.size());
    if (top.stamp != cur) {
      top.score = score_of(top.node);
      top.stamp = cur;
      if (top.score <= 0.0) continue;
      // Re-push unless it still (weakly) dominates the next-best entry.
      if (!frontier.empty() && top.score < frontier.best_score()) {
        frontier.repush(top);
        continue;
      }
    }
    const NodeId u = top.node;
    state.select(obs, u, obs.acceptance_prob(u));
    budget -= problem.cost_of(u);
    batch.push_back(u);
  }
  return batch;
}

/// The sequential frontier: a plain binary heap.
class HeapFrontier {
 public:
  void push(HeapEntry e) { heap_.push(e); }
  void repush(HeapEntry e) { heap_.push(e); }
  bool empty() const noexcept { return heap_.empty(); }
  double best_score() const noexcept { return heap_.top().score; }
  HeapEntry pop_best() {
    HeapEntry top = heap_.top();
    heap_.pop();
    return top;
  }

 private:
  std::priority_queue<HeapEntry> heap_;
};

/// The merged parallel frontier: a cursor heap over per-shard sorted runs
/// plus a binary heap of re-pushed (stale-rescored) entries. pop_best /
/// best_score take the maximum across both sources under the same total
/// order as HeapFrontier, so the pick loop cannot tell them apart.
class MergedFrontier {
 public:
  explicit MergedFrontier(std::vector<ShardFrontier> shards)
      : shards_(std::move(shards)) {
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s].head.empty()) {
        cursors_.push({shards_[s].head[0].score, shards_[s].head[0].node,
                       shards_[s].head[0].rank, s});
      }
    }
  }

  void repush(HeapEntry e) { repush_.push(e); }
  bool empty() const noexcept { return cursors_.empty() && repush_.empty(); }

  double best_score() const noexcept {
    if (cursors_.empty()) return repush_.top().score;
    if (repush_.empty()) return cursors_.top().score;
    return std::max(cursors_.top().score, repush_.top().score);
  }

  HeapEntry pop_best() {
    const bool from_repush =
        cursors_.empty() ||
        (!repush_.empty() &&
         ranks_before(
             {repush_.top().score, repush_.top().node, repush_.top().rank, 0},
             {cursors_.top().score, cursors_.top().node, cursors_.top().rank,
              0}));
    if (from_repush) {
      HeapEntry top = repush_.top();
      repush_.pop();
      return top;
    }
    const CursorRef c = cursors_.top();
    cursors_.pop();
    advance_shard(c.shard);
    return {c.score, c.node, c.rank, 0};  // shard entries carry initial scores
  }

 private:
  void advance_shard(std::uint32_t s) {
    ShardFrontier& sf = shards_[s];
    ++sf.cursor;
    if (sf.cursor >= sf.head.size()) {
      if (sf.overflow.empty()) return;  // shard exhausted
      std::sort(sf.overflow.begin(), sf.overflow.end(), ranks_before);
      sf.head = std::move(sf.overflow);
      sf.overflow.clear();
      sf.cursor = 0;
    }
    cursors_.push({sf.head[sf.cursor].score, sf.head[sf.cursor].node,
                   sf.head[sf.cursor].rank, s});
  }

  std::vector<ShardFrontier> shards_;
  std::priority_queue<CursorRef> cursors_;
  std::priority_queue<HeapEntry> repush_;
};

}  // namespace

std::vector<NodeId> batch_select(const sim::Observation& obs,
                                 const BatchSelectOptions& options) {
  const auto& problem = obs.problem();
  BatchState state(problem.graph.num_nodes());

  const double budget = options.remaining_budget;
  std::vector<NodeId> candidates = batch_candidates(
      obs, options.allow_retries, options.max_attempts_per_node, budget);
  if (candidates.empty() || options.batch_size <= 0) return {};

  auto score_of = [&](NodeId u) {
    double s = state.gamma(obs, u, options.policy);
    if (options.cost_sensitive) s /= problem.cost_of(u);
    return s;
  };

  if (options.parallel_eager && options.pool != nullptr) {
    // Eager mode: rescore the whole candidate set each round in parallel
    // (the Table II utilization experiment's massively-parallel row sweep).
    double eager_budget = budget;
    std::vector<NodeId> batch;
    batch.reserve(static_cast<std::size_t>(options.batch_size));
    std::vector<double> scores(candidates.size());
    std::vector<std::uint8_t> taken(candidates.size(), 0);
    while (batch.size() < static_cast<std::size_t>(options.batch_size)) {
      options.pool->parallel_for(
          0, candidates.size(), [&](std::size_t lo, std::size_t hi) {
            const GammaKernel kernel(obs, state, options.policy);
            for (std::size_t i = lo; i < hi; ++i) {
              const NodeId u = candidates[i];
              if (taken[i] || problem.cost_of(u) > eager_budget) {
                scores[i] = -1.0;
                continue;
              }
              double s = kernel.score(u, obs.acceptance_prob(u));
              if (options.cost_sensitive) s /= problem.cost_of(u);
              scores[i] = s;
            }
          });
      std::size_t best = candidates.size();
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (taken[i] || scores[i] <= 0.0) continue;
        if (best == candidates.size() || scores[i] > scores[best] ||
            (scores[i] == scores[best] &&
             problem.graph.orig_id(candidates[i]) <
                 problem.graph.orig_id(candidates[best]))) {
          best = i;
        }
      }
      if (best == candidates.size()) break;
      const NodeId u = candidates[best];
      taken[best] = 1;
      state.select(obs, u, obs.acceptance_prob(u));
      eager_budget -= problem.cost_of(u);
      batch.push_back(u);
    }
    return batch;
  }

  if (options.pool != nullptr) {
    // Parallel lazy greedy: shard the candidates across workers, score each
    // shard through the flat kernel into a local top-k heap (overflow kept
    // for exactness), then run the sequential pick-and-repush loop over the
    // merged frontier. Output is bit-identical to the sequential path: the
    // shard layout only changes *where* an entry sits, never the total order
    // in which entries are popped.
    //
    // Shard boundaries are adaptive (plan_score_shards): equal estimated
    // work per shard — degree-weighted, so hub-heavy ranges split finer
    // than low-degree tails — sized against the measured ns-per-unit of
    // previous passes (the caller's calibration instance, or the process-
    // wide one). Each pass feeds its own measurement back.
    ShardCalibration& calibration = options.calibration != nullptr
                                        ? *options.calibration
                                        : process_shard_calibration();
    const std::size_t n = candidates.size();
    const std::size_t parties = static_cast<std::size_t>(options.pool->size()) + 1;
    const auto& g = problem.graph;
    std::vector<double> work(n);
    double total_work = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      work[i] = 1.0 + static_cast<double>(g.degree(candidates[i]));
      total_work += work[i];
    }
    const std::vector<std::size_t> bounds =
        plan_score_shards(work, parties, calibration.nanos_per_unit());
    const std::size_t num_shards = bounds.size() - 1;
    const std::size_t keep = static_cast<std::size_t>(options.batch_size);

    std::vector<ShardFrontier> shards(num_shards);
    std::atomic<std::uint64_t> pass_nanos{0};
    const GammaKernel kernel(obs, state, options.policy);
    auto score_shard = [&](std::size_t s) {
      // lint:hotpath-ok(sanctioned measurement site: one stopwatch per
      // shard, two clock reads amortized over the whole shard's scoring;
      // the reading calibrates future shard layouts and layout cannot
      // change the selected batch)
      const util::WallTimer shard_timer;
      const std::size_t lo = bounds[s];
      const std::size_t hi = bounds[s + 1];
      ShardFrontier& sf = shards[s];
      // First touch happens here, inside the scoring task: on the pinned
      // path the head/overflow pages land on the executing worker's node.
      sf.head.reserve(std::min(keep, hi - lo));
      // Min-heap on head (worst entry on top) caps the sorted portion at
      // k entries; the rest lands in overflow, sorted only if needed.
      for (std::size_t i = lo; i < hi; ++i) {
        const NodeId u = candidates[i];
        double sc = kernel.score(u, obs.acceptance_prob(u));
        if (options.cost_sensitive) sc /= problem.cost_of(u);
        if (sc <= 0.0) continue;
        const HeapEntry e{sc, u, g.orig_id(u), 0};
        if (sf.head.size() < keep) {
          sf.head.push_back(e);
          std::push_heap(sf.head.begin(), sf.head.end(), ranks_before);
        } else if (ranks_before(e, sf.head.front())) {
          std::pop_heap(sf.head.begin(), sf.head.end(), ranks_before);
          sf.overflow.push_back(sf.head.back());
          sf.head.back() = e;
          std::push_heap(sf.head.begin(), sf.head.end(), ranks_before);
        } else {
          sf.overflow.push_back(e);
        }
      }
      std::sort(sf.head.begin(), sf.head.end(), ranks_before);
      pass_nanos.fetch_add(shard_timer.nanos(), std::memory_order_relaxed);
    };
    const bool pin_shards =
        options.numa_aware && util::numa_topology().num_nodes > 1;
    if (pin_shards) {
      // NUMA path: shard s always runs on worker floor(s * W / S). Shards
      // are contiguous candidate ranges and numa_node_of_worker maps
      // contiguous workers to one node, so each node scores a contiguous
      // slice of the pool and re-touches the same pages pass after pass.
      // Trades work-stealing balance for locality; selection is
      // bit-identical either way (the frontier order is a total order).
      const unsigned workers = options.pool->size();
      std::vector<std::future<void>> done;
      done.reserve(num_shards);
      for (std::size_t s = 0; s < num_shards; ++s) {
        const auto worker = static_cast<unsigned>(s * workers / num_shards);
        done.push_back(
            options.pool->submit_pinned(worker, [&score_shard, s] { score_shard(s); }));
      }
      for (auto& f : done) f.get();
    } else {
      options.pool->parallel_for(0, num_shards, score_shard, /*grain=*/1);
    }
    // Shard times overlap in wall-clock, but the EWMA wants *cost*, not
    // latency: the summed per-shard nanos over the summed work is exactly
    // the average ns each work unit cost this pass.
    calibration.record_pass(pass_nanos.load(std::memory_order_relaxed),
                            total_work);

    MergedFrontier frontier(std::move(shards));
    return lazy_pick_loop(obs, options, state, budget, frontier, score_of);
  }

  // Sequential lazy greedy.
  HeapFrontier frontier;
  for (NodeId u : candidates) {
    const double s = score_of(u);
    if (s > 0.0) frontier.push({s, u, problem.graph.orig_id(u), 0});
  }
  return lazy_pick_loop(obs, options, state, budget, frontier, score_of);
}

}  // namespace recon::core
