#include "core/batch_select.h"

#include <algorithm>
#include <queue>

namespace recon::core {

using graph::NodeId;

std::vector<NodeId> batch_candidates(const sim::Observation& obs, bool allow_retries,
                                     std::uint32_t max_attempts_per_node,
                                     double max_cost) {
  const auto& problem = obs.problem();
  std::vector<NodeId> out;
  out.reserve(problem.graph.num_nodes());
  for (NodeId u = 0; u < problem.graph.num_nodes(); ++u) {
    if (!obs.requestable(u, allow_retries)) continue;
    if (max_attempts_per_node != 0 && obs.attempts(u) >= max_attempts_per_node) continue;
    if (problem.cost_of(u) > max_cost) continue;
    out.push_back(u);
  }
  return out;
}

namespace {

struct HeapEntry {
  double score;
  NodeId node;
  std::uint32_t stamp;  ///< batch size when the score was computed

  bool operator<(const HeapEntry& o) const noexcept {
    if (score != o.score) return score < o.score;
    return node > o.node;  // deterministic tie-break: lower id wins
  }
};

}  // namespace

std::vector<NodeId> batch_select(const sim::Observation& obs,
                                 const BatchSelectOptions& options) {
  const auto& problem = obs.problem();
  BatchState state(problem.graph.num_nodes());

  double budget = options.remaining_budget;
  std::vector<NodeId> candidates = batch_candidates(
      obs, options.allow_retries, options.max_attempts_per_node, budget);
  if (candidates.empty() || options.batch_size <= 0) return {};

  auto score_of = [&](NodeId u) {
    double s = state.gamma(obs, u, options.policy);
    if (options.cost_sensitive) s /= problem.cost_of(u);
    return s;
  };

  std::vector<NodeId> batch;
  batch.reserve(static_cast<std::size_t>(options.batch_size));

  if (options.parallel_eager && options.pool != nullptr) {
    // Eager mode: rescore the whole candidate set each round in parallel.
    std::vector<double> scores(candidates.size());
    std::vector<std::uint8_t> taken(candidates.size(), 0);
    while (batch.size() < static_cast<std::size_t>(options.batch_size)) {
      options.pool->parallel_for(0, candidates.size(), [&](std::size_t i) {
        if (taken[i] || problem.cost_of(candidates[i]) > budget) {
          scores[i] = -1.0;
          return;
        }
        scores[i] = score_of(candidates[i]);
      });
      std::size_t best = candidates.size();
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (taken[i] || scores[i] <= 0.0) continue;
        if (best == candidates.size() || scores[i] > scores[best] ||
            (scores[i] == scores[best] && candidates[i] < candidates[best])) {
          best = i;
        }
      }
      if (best == candidates.size()) break;
      const NodeId u = candidates[best];
      taken[best] = 1;
      state.select(obs, u, obs.acceptance_prob(u));
      budget -= problem.cost_of(u);
      batch.push_back(u);
    }
    return batch;
  }

  // Lazy greedy. Initial scores may be computed in parallel when a pool is
  // provided; the selection loop itself is sequential.
  std::vector<double> init(candidates.size());
  if (options.pool != nullptr) {
    options.pool->parallel_for(0, candidates.size(),
                               [&](std::size_t i) { init[i] = score_of(candidates[i]); });
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) init[i] = score_of(candidates[i]);
  }

  std::priority_queue<HeapEntry> heap;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (init[i] > 0.0) heap.push({init[i], candidates[i], 0});
  }

  while (batch.size() < static_cast<std::size_t>(options.batch_size) && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (problem.cost_of(top.node) > budget) continue;  // permanently unaffordable this batch
    const auto cur = static_cast<std::uint32_t>(batch.size());
    if (top.stamp != cur) {
      top.score = score_of(top.node);
      top.stamp = cur;
      if (top.score <= 0.0) continue;
      // Re-push unless it still (weakly) dominates the next-best entry.
      if (!heap.empty() && top.score < heap.top().score) {
        heap.push(top);
        continue;
      }
    }
    const NodeId u = top.node;
    state.select(obs, u, obs.acceptance_prob(u));
    budget -= problem.cost_of(u);
    batch.push_back(u);
  }
  return batch;
}

}  // namespace recon::core
