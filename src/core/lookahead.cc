#include "core/lookahead.h"

#include <algorithm>
#include <stdexcept>

#include "core/batch_select.h"

namespace recon::core {

using graph::EdgeId;
using graph::NodeId;

namespace {

/// Best myopic marginal over all requestable nodes of obs (0 if none).
double best_followup(const sim::Observation& obs, MarginalPolicy policy) {
  double best = 0.0;
  const auto& g = obs.problem().graph;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!obs.requestable(v, /*allow_retries=*/false)) continue;
    best = std::max(best, marginal_gain(obs, v, policy));
  }
  return best;
}

}  // namespace

double lookahead_score(const sim::Observation& obs, NodeId u,
                       const LookaheadOptions& options, std::uint64_t seed) {
  if (options.samples == 0) {
    throw std::invalid_argument("lookahead_score: samples must be positive");
  }
  const auto& problem = obs.problem();
  const auto& g = problem.graph;
  const double immediate = marginal_gain(obs, u, options.policy);
  const double q = obs.acceptance_prob(u);

  double followup = 0.0;
  for (std::size_t s = 0; s < options.samples; ++s) {
    util::Rng rng(util::derive_seed(seed, s));
    sim::Observation next = obs;  // value-semantics checkpoint
    if (rng.bernoulli(q)) {
      // Sample the neighborhood u would reveal from current edge beliefs.
      std::vector<NodeId> revealed;
      const auto nbrs = g.neighbors(u);
      const auto eids = g.incident_edges(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (rng.bernoulli(next.edge_belief(eids[i]))) revealed.push_back(nbrs[i]);
      }
      next.record_accept(u, revealed);
    } else {
      next.record_reject(u);
    }
    followup += best_followup(next, options.policy);
  }
  return immediate + followup / static_cast<double>(options.samples);
}

LookaheadStrategy::LookaheadStrategy(LookaheadOptions options)
    : options_(options), rng_(options.seed) {
  if (options_.pool == 0 || options_.samples == 0) {
    throw std::invalid_argument("LookaheadStrategy: pool/samples must be positive");
  }
}

void LookaheadStrategy::begin(const sim::Problem& problem, double budget) {
  (void)problem;
  (void)budget;
  rng_ = util::Rng(options_.seed);
}

std::vector<NodeId> LookaheadStrategy::next_batch(const sim::Observation& obs,
                                                  double remaining_budget) {
  // Shortlist by myopic score.
  const auto candidates =
      batch_candidates(obs, /*allow_retries=*/false, 1, remaining_budget);
  if (candidates.empty()) return {};
  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(candidates.size());
  for (NodeId u : candidates) {
    const double s = marginal_gain(obs, u, options_.policy);
    if (s > 0.0) ranked.emplace_back(s, u);
  }
  if (ranked.empty()) return {};
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (ranked.size() > options_.pool) ranked.resize(options_.pool);

  // With less than two requests of budget left, lookahead is pointless.
  if (remaining_budget < 2.0) return {ranked.front().second};

  NodeId best = ranked.front().second;
  double best_v = -1.0;
  const std::uint64_t round_seed = rng_();
  for (const auto& [myopic, u] : ranked) {
    const double v =
        lookahead_score(obs, u, options_, util::derive_seed(round_seed, u));
    if (v > best_v || (v == best_v && u < best)) {
      best_v = v;
      best = u;
    }
  }
  return {best};
}

}  // namespace recon::core
