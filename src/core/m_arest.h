// M-AReST — the sequential baseline (Li et al. [3] extended to
// Max-Crawling, paper Sec. V).
//
// Sends one request at a time, observing the response before choosing the
// next node — the best possible adaptivity, at the cost of one round trip
// per request. Equivalent to PM-AReST with k = 1 (the expectation tree
// degenerates), implemented as its own strategy for clarity and for the
// retry treatment of Fig. 4e ("M-AReST is treated as having a batch size of
// 1 for this process").
#pragma once

#include <cstdint>
#include <string>

#include "core/pm_arest.h"
#include "core/strategy.h"

namespace recon::core {

struct MArestOptions {
  MarginalPolicy policy = MarginalPolicy::kWeighted;
  bool allow_retries = false;
  std::uint32_t max_attempts_per_node = 0;  ///< 0 = ceil(K) when retrying
  bool cost_sensitive = false;
};

class MArest : public Strategy {
 public:
  explicit MArest(MArestOptions options = {});

  std::string name() const override;
  void begin(const sim::Problem& problem, double budget) override;
  std::vector<graph::NodeId> next_batch(const sim::Observation& obs,
                                        double remaining_budget) override;
  std::string save_state() const override { return inner_.save_state(); }
  void restore_state(const std::string& blob) override {
    inner_.restore_state(blob);
  }

 private:
  // lint:ckpt-coverage-ok(construction-time config; all resumable state lives
  // in inner_, whose save_state/restore_state this class delegates to)
  MArestOptions options_;
  PmArest inner_;  ///< PM-AReST with k = 1 (shares the cross-batch cache)
};

}  // namespace recon::core
