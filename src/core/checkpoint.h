// Checkpoint/resume for synchronous and rolling-window attack runs.
//
// A checkpoint captures everything needed to resume an interrupted attack
// bit-identically: the observation's primary state, budget accounting, the
// attack clock and retry cooldowns, the fault-model state, the strategy's
// serialized mutable state (RNG streams, round counters — derived caches are
// rebuilt), and the trace so far. World randomness is counter-based, so the
// world itself is reconstructed from its seed by the caller.
//
// Versioned text format (v1 = synchronous runner; v2 adds the rolling-window
// event-loop state — readers accept both, writers emit v1 unless async state
// is present so synchronous checkpoints stay byte-identical):
//
//   #recon-checkpoint v1            (or v2)
//   meta world-seed=<u64> budget=<d> spent=<d> round=<u64> clock=<d>
//   nodes <n> <digit string, one state per node>
//   edges <m> <digit string, one state per edge>
//   attempts <count> u:a,...            (sparse; only nonzero counters)
//   friends <count> f1 f2 ...           (acceptance order)
//   cooldowns <count> u:t,...           (sparse; only future deadlines)
//   benefit friends=<d> fofs=<d> edges=<d>   (exact accumulator; optional in
//                                             old files — see AttackCheckpoint)
//   fault sends=<u64> tick=<u64> until=<u64> window=t:c,... counters=...
//   async window=<W> now=<d> sent=<u64> accepts=<u64>      (v2 only)
//   rng <w0> <w1> <w2> <w3>                                (v2 only)
//   inflight <count> u:a:o:q:t ...                         (v2 only)
//   strategy <name>
//   strategy-state <opaque single-line blob>
//   end
//   <embedded trace: full #recon-trace v1 document, own terminator>
//
// In a v2 record `round` counts resolved events, the `async` line carries the
// event clock and result tallies, `rng` is the delay stream's xoshiro256**
// state (util::Rng::save_state), and `inflight` lists the outstanding
// requests in send order (node, frozen attempt index, resolved outcome,
// acceptance probability at send, absolute completion time).
//
// Readers reject truncated or inconsistent files with std::runtime_error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "sim/fault.h"
#include "sim/observation.h"
#include "sim/trace.h"

namespace recon::core {

/// Strategy-name sentinel recorded in rolling-window (v2) checkpoints; the
/// async runner has no Strategy object, and the sentinel makes cross-runner
/// resume attempts fail with the usual mismatch diagnostic.
inline constexpr const char kAsyncCheckpointStrategy[] = "rolling-window";

/// One outstanding request of the rolling-window event loop, frozen at
/// snapshot time. Everything needed to replay its resolution is here: the
/// fault outcome and completion time were decided at send.
struct InFlightRequest {
  graph::NodeId node = 0;
  std::uint32_t attempt = 0;      ///< attempt index frozen at send
  std::uint8_t outcome = 0;       ///< sim::RequestOutcome at resolution
  double q_at_send = 0.0;         ///< acceptance probability frozen at send
  double completion_time = 0.0;   ///< absolute event time of the response

  bool operator==(const InFlightRequest&) const = default;

  /// Writes the single token `u:a:o:q:t` (stream precision applies).
  void serialize(std::ostream& out) const;
  /// Parses a token produced by serialize(); throws std::runtime_error.
  static InFlightRequest deserialize(const std::string& token);
};

/// Event-loop state of the rolling-window runner beyond what the synchronous
/// record carries; present iff AttackCheckpoint::has_async.
struct AsyncCheckpointState {
  int window = 0;                  ///< the run's W, validated on resume
  double now = 0.0;                ///< event clock (== makespan so far)
  std::uint64_t requests_sent = 0;
  std::uint64_t accepts = 0;
  std::string rng_state;           ///< delay-RNG blob (util::Rng::save_state)
  /// Outstanding requests in send order — the order their collapsed
  /// batch-state corrections were applied, which resume must replay.
  std::vector<InFlightRequest> in_flight;
};

struct AttackCheckpoint {
  std::uint64_t world_seed = 0;
  double budget = 0.0;
  double spent = 0.0;
  std::uint64_t round = 0;  ///< completed batch rounds
  double clock = 0.0;       ///< observation clock at checkpoint time

  // Observation primary state (derived state is recomputed on resume).
  std::vector<sim::NodeState> node_states;
  std::vector<sim::EdgeState> edge_states;
  std::vector<std::uint32_t> attempts;
  std::vector<graph::NodeId> friends;   ///< acceptance order
  std::vector<double> retry_after;      ///< empty when no cooldown was ever set

  /// Exact accumulated benefit at snapshot time. Restoring this verbatim —
  /// rather than recomputing from node/edge states, which sums in a different
  /// order — is what makes resumed traces byte-identical. Absent in files
  /// written before the section existed; restore falls back to the recompute.
  bool has_benefit = false;
  sim::BenefitBreakdown benefit;

  bool has_fault = false;
  sim::FaultModel::State fault;

  std::string strategy_name;   ///< for mismatch diagnostics only
  std::string strategy_state;  ///< opaque Strategy::save_state() blob

  bool has_async = false;      ///< v2 record with rolling-window state
  AsyncCheckpointState async;

  sim::AttackTrace trace;
};

/// Snapshots a running attack. `fault` may be null.
AttackCheckpoint make_checkpoint(const sim::Observation& obs,
                                 const Strategy& strategy,
                                 const sim::AttackTrace& trace, double budget,
                                 double spent, std::uint64_t round,
                                 std::uint64_t world_seed,
                                 const sim::FaultModel* fault);

/// Snapshots a rolling-window run (a v2 record): `events` counts resolved
/// events and lands in the `round` field, the strategy sections carry the
/// kAsyncCheckpointStrategy sentinel. `fault` may be null.
AttackCheckpoint make_async_checkpoint(const sim::Observation& obs,
                                       const AsyncCheckpointState& async,
                                       const sim::AttackTrace& trace,
                                       double budget, double spent,
                                       std::uint64_t events,
                                       std::uint64_t world_seed,
                                       const sim::FaultModel* fault);

/// Applies a checkpoint to a freshly-constructed observation / begun strategy
/// / freshly-constructed fault model. `strategy.begin()` must have been
/// called first. Throws std::runtime_error on strategy-name mismatch and
/// std::invalid_argument on inconsistent state. Rejects rolling-window (v2)
/// checkpoints — those resume through run_async_attack.
void apply_checkpoint(const AttackCheckpoint& cp, sim::Observation& obs,
                      Strategy& strategy, sim::FaultModel* fault);

/// Rolling-window variant: restores the observation and fault model from a
/// v2 checkpoint (the event-loop state in `cp.async` is consumed by
/// run_async_attack itself). Rejects synchronous checkpoints and fault-model
/// configuration mismatches with std::runtime_error.
void apply_async_checkpoint(const AttackCheckpoint& cp, sim::Observation& obs,
                            sim::FaultModel* fault);

void write_checkpoint(std::ostream& out, const AttackCheckpoint& cp);
/// Atomic write: writes to `path`.tmp then renames, so an interrupted writer
/// never leaves a half-written checkpoint at `path`.
void write_checkpoint_file(const std::string& path, const AttackCheckpoint& cp);

AttackCheckpoint read_checkpoint(std::istream& in);
AttackCheckpoint read_checkpoint_file(const std::string& path);

}  // namespace recon::core
