// Checkpoint/resume for synchronous attack runs.
//
// A checkpoint captures everything needed to resume an interrupted attack
// bit-identically: the observation's primary state, budget accounting, the
// attack clock and retry cooldowns, the fault-model state, the strategy's
// serialized mutable state (RNG streams, round counters — derived caches are
// rebuilt), and the trace so far. World randomness is counter-based, so the
// world itself is reconstructed from its seed by the caller.
//
// Versioned text format:
//
//   #recon-checkpoint v1
//   meta world-seed=<u64> budget=<d> spent=<d> round=<u64> clock=<d>
//   nodes <n> <digit string, one state per node>
//   edges <m> <digit string, one state per edge>
//   attempts <count> u:a,...            (sparse; only nonzero counters)
//   friends <count> f1 f2 ...           (acceptance order)
//   cooldowns <count> u:t,...           (sparse; only future deadlines)
//   fault sends=<u64> tick=<u64> until=<u64> window=t:c,... counters=...
//   strategy <name>
//   strategy-state <opaque single-line blob>
//   end
//   <embedded trace: full #recon-trace v1 document, own terminator>
//
// Readers reject truncated or inconsistent files with std::runtime_error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "sim/fault.h"
#include "sim/observation.h"
#include "sim/trace.h"

namespace recon::core {

struct AttackCheckpoint {
  std::uint64_t world_seed = 0;
  double budget = 0.0;
  double spent = 0.0;
  std::uint64_t round = 0;  ///< completed batch rounds
  double clock = 0.0;       ///< observation clock at checkpoint time

  // Observation primary state (derived state is recomputed on resume).
  std::vector<sim::NodeState> node_states;
  std::vector<sim::EdgeState> edge_states;
  std::vector<std::uint32_t> attempts;
  std::vector<graph::NodeId> friends;   ///< acceptance order
  std::vector<double> retry_after;      ///< empty when no cooldown was ever set

  bool has_fault = false;
  sim::FaultModel::State fault;

  std::string strategy_name;   ///< for mismatch diagnostics only
  std::string strategy_state;  ///< opaque Strategy::save_state() blob

  sim::AttackTrace trace;
};

/// Snapshots a running attack. `fault` may be null.
AttackCheckpoint make_checkpoint(const sim::Observation& obs,
                                 const Strategy& strategy,
                                 const sim::AttackTrace& trace, double budget,
                                 double spent, std::uint64_t round,
                                 std::uint64_t world_seed,
                                 const sim::FaultModel* fault);

/// Applies a checkpoint to a freshly-constructed observation / begun strategy
/// / freshly-constructed fault model. `strategy.begin()` must have been
/// called first. Throws std::runtime_error on strategy-name mismatch and
/// std::invalid_argument on inconsistent state.
void apply_checkpoint(const AttackCheckpoint& cp, sim::Observation& obs,
                      Strategy& strategy, sim::FaultModel* fault);

void write_checkpoint(std::ostream& out, const AttackCheckpoint& cp);
/// Atomic write: writes to `path`.tmp then renames, so an interrupted writer
/// never leaves a half-written checkpoint at `path`.
void write_checkpoint_file(const std::string& path, const AttackCheckpoint& cp);

AttackCheckpoint read_checkpoint(std::istream& in);
AttackCheckpoint read_checkpoint_file(const std::string& path);

}  // namespace recon::core
