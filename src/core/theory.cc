#include "core/theory.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "graph/builder.h"
#include "util/rng.h"

namespace recon::core {

using graph::GraphBuilder;
using graph::NodeId;

double ratio_one_minus_inv_e() { return 1.0 - std::exp(-1.0); }

double ratio_pm_arest() { return 1.0 - std::exp(-(1.0 - std::exp(-1.0))); }

double ratio_batch_vs_sequential() {
  const double c = 1.0 - std::exp(-1.0);
  return 1.0 - std::exp(-c * c);
}

void MaxCoverInstance::validate() const {
  if (k > sets.size()) {
    throw std::invalid_argument("MaxCoverInstance: k exceeds number of sets");
  }
  for (const auto& s : sets) {
    for (auto e : s) {
      if (e >= num_elements) {
        throw std::invalid_argument("MaxCoverInstance: element id out of range");
      }
    }
  }
}

MaxCoverReduction reduce_max_cover(const MaxCoverInstance& instance) {
  instance.validate();
  MaxCoverReduction red;
  const auto num_sets = static_cast<NodeId>(instance.sets.size());
  const auto num_elems = static_cast<NodeId>(instance.num_elements);
  const NodeId n = num_sets + num_elems;

  GraphBuilder builder(n);
  red.set_nodes.resize(num_sets);
  red.element_nodes.resize(num_elems);
  for (NodeId i = 0; i < num_sets; ++i) red.set_nodes[i] = i;
  for (NodeId j = 0; j < num_elems; ++j) red.element_nodes[j] = num_sets + j;
  // Avoid duplicate edges when an element appears twice in one set.
  std::unordered_set<std::uint64_t> seen;
  for (NodeId i = 0; i < num_sets; ++i) {
    for (auto e : instance.sets[i]) {
      const NodeId v = red.element_nodes[e];
      const std::uint64_t key = (static_cast<std::uint64_t>(i) << 32) | v;
      if (seen.insert(key).second) builder.add_edge(i, v, 1.0);
    }
  }

  sim::Problem p;
  p.graph = builder.build();
  // Benefit per the reduction: Bf(u_i) = Bfof(u_i) = 0 for set nodes;
  // Bf(v_j) = Bfof(v_j) = 1 for element nodes; Bi = 0; q = 1 everywhere.
  p.benefit.bf.assign(n, 0.0);
  p.benefit.bfof.assign(n, 0.0);
  p.benefit.bi.assign(p.graph.num_edges(), 0.0);
  p.targets.clear();
  p.is_target.assign(n, 0);
  for (NodeId j = 0; j < num_elems; ++j) {
    const NodeId v = red.element_nodes[j];
    p.benefit.bf[v] = 1.0;
    p.benefit.bfof[v] = 1.0;
    p.is_target[v] = 1;
    p.targets.push_back(v);
  }
  p.acceptance = sim::make_constant_acceptance(1.0);
  p.validate();
  red.problem = std::move(p);
  red.budget = static_cast<double>(instance.k);
  return red;
}

std::size_t max_cover_brute_force(const MaxCoverInstance& instance) {
  instance.validate();
  const std::size_t m = instance.sets.size();
  const std::size_t k = std::min(instance.k, m);
  if (m > 24) throw std::invalid_argument("max_cover_brute_force: too many sets");
  std::size_t best = 0;
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(mask)) != k) continue;
    std::unordered_set<std::uint32_t> covered;
    for (std::size_t i = 0; i < m; ++i) {
      if (!(mask & (1u << i))) continue;
      covered.insert(instance.sets[i].begin(), instance.sets[i].end());
    }
    best = std::max(best, covered.size());
  }
  return best;
}

std::vector<std::size_t> cover_from_friends(const MaxCoverReduction& red,
                                            const std::vector<NodeId>& friends) {
  const auto num_sets = red.set_nodes.size();
  std::vector<std::size_t> cover;
  for (NodeId f : friends) {
    if (f < num_sets) {
      cover.push_back(f);
    } else {
      // Element node picked directly: substitute any set covering it (the
      // proof's exchange argument — this can only increase coverage).
      const auto nbrs = red.problem.graph.neighbors(f);
      if (!nbrs.empty()) cover.push_back(nbrs.front());
    }
  }
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  return cover;
}

AuxiliaryGraph build_auxiliary_graph(const sim::Problem& problem,
                                     std::uint32_t attempts, std::uint64_t seed) {
  if (attempts == 0) {
    throw std::invalid_argument("build_auxiliary_graph: attempts must be positive");
  }
  AuxiliaryGraph ga;
  ga.original_nodes = problem.graph.num_nodes();
  ga.attempts = attempts;
  ga.request_probs.resize(static_cast<std::size_t>(ga.original_nodes) * attempts);
  for (NodeId i = 0; i < ga.original_nodes; ++i) {
    for (std::uint32_t j = 0; j < attempts; ++j) {
      // Attempt-level probability drawn from D_{u_i}: a jittered copy of the
      // base rate (each attempt is its own independent Bernoulli edge).
      const double base = problem.acceptance.base(i);
      const double jitter =
          0.1 * (util::counter_uniform(seed, i, j) - 0.5) * base;
      ga.request_probs[static_cast<std::size_t>(i) * attempts + j] =
          std::clamp(base + jitter, 0.0, 1.0);
    }
  }
  // Hub-hub edges mirror G exactly (ids coincide with original node ids).
  GraphBuilder builder(ga.original_nodes);
  for (graph::EdgeId e = 0; e < problem.graph.num_edges(); ++e) {
    builder.add_edge(problem.graph.edge_u(e), problem.graph.edge_v(e),
                     problem.graph.edge_prob(e));
  }
  ga.hub_graph = builder.build();
  return ga;
}

AuxiliaryRealization sample_auxiliary_realization(const AuxiliaryGraph& ga,
                                                  std::uint64_t seed) {
  AuxiliaryRealization real;
  util::Rng rng(util::derive_seed(seed, 0xAA));
  real.request_live.resize(ga.request_probs.size());
  for (std::size_t i = 0; i < ga.request_probs.size(); ++i) {
    real.request_live[i] = rng.bernoulli(ga.request_probs[i]) ? 1 : 0;
  }
  real.hub_edge_live.resize(ga.hub_graph.num_edges());
  for (graph::EdgeId e = 0; e < ga.hub_graph.num_edges(); ++e) {
    real.hub_edge_live[e] = rng.bernoulli(ga.hub_graph.edge_prob(e)) ? 1 : 0;
  }
  return real;
}

std::vector<std::uint8_t> auxiliary_friends(const AuxiliaryGraph& ga,
                                            const AuxiliaryRealization& real,
                                            const std::vector<std::uint32_t>& requested) {
  if (requested.size() != ga.original_nodes) {
    throw std::invalid_argument("auxiliary_friends: requested size mismatch");
  }
  std::vector<std::uint8_t> friends(ga.original_nodes, 0);
  for (NodeId i = 0; i < ga.original_nodes; ++i) {
    const std::uint32_t tries = std::min(requested[i], ga.attempts);
    for (std::uint32_t j = 0; j < tries; ++j) {
      if (real.request_live[static_cast<std::size_t>(i) * ga.attempts + j]) {
        friends[i] = 1;
        break;
      }
    }
  }
  return friends;
}

std::vector<std::uint8_t> auxiliary_fofs(const AuxiliaryGraph& ga,
                                         const AuxiliaryRealization& real,
                                         const std::vector<std::uint8_t>& friends) {
  if (friends.size() != ga.original_nodes) {
    throw std::invalid_argument("auxiliary_fofs: friends size mismatch");
  }
  std::vector<std::uint8_t> fofs(ga.original_nodes, 0);
  for (graph::EdgeId e = 0; e < ga.hub_graph.num_edges(); ++e) {
    if (!real.hub_edge_live[e]) continue;
    const NodeId u = ga.hub_graph.edge_u(e);
    const NodeId v = ga.hub_graph.edge_v(e);
    if (friends[u] && !friends[v]) fofs[v] = 1;
    if (friends[v] && !friends[u]) fofs[u] = 1;
  }
  return fofs;
}

}  // namespace recon::core
