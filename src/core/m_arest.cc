#include "core/m_arest.h"

namespace recon::core {

namespace {

PmArestOptions to_pm_options(const MArestOptions& options) {
  PmArestOptions pm;
  pm.batch_size = 1;
  pm.policy = options.policy;
  pm.allow_retries = options.allow_retries;
  pm.max_attempts_per_node = options.max_attempts_per_node;
  pm.cost_sensitive = options.cost_sensitive;
  return pm;
}

}  // namespace

MArest::MArest(MArestOptions options)
    : options_(options), inner_(to_pm_options(options)) {}

std::string MArest::name() const {
  return options_.allow_retries ? "M-AReST(retry)" : "M-AReST";
}

void MArest::begin(const sim::Problem& problem, double budget) {
  inner_.begin(problem, budget);
}

std::vector<graph::NodeId> MArest::next_batch(const sim::Observation& obs,
                                              double remaining_budget) {
  return inner_.next_batch(obs, remaining_budget);
}

}  // namespace recon::core
