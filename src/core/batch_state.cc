#include "core/batch_state.h"

#include <cassert>
#include <stdexcept>

namespace recon::core {

using graph::EdgeId;
using graph::NodeId;

BatchState::BatchState(NodeId num_nodes) {
  factor_.assign(num_nodes, 1.0);
  factor_epoch_.assign(num_nodes, 0);
  sel_q_.assign(num_nodes, 0.0);
  sel_epoch_.assign(num_nodes, 0);
}

void BatchState::reset() noexcept {
  ++epoch_;
  selected_.clear();
}

void BatchState::select(const sim::Observation& obs, NodeId u, double q_u) {
  if (is_selected(u)) throw std::logic_error("BatchState::select: already selected");
  sel_q_[u] = q_u;
  sel_epoch_[u] = epoch_;
  selected_.push_back(u);

  const auto& g = obs.problem().graph;
  const auto nbrs = g.neighbors(u);
  const auto eids = g.incident_edges(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const NodeId v = nbrs[i];
    const double p = obs.edge_belief(eids[i]);
    if (p <= 0.0) continue;
    if (!stamp_ok(factor_epoch_[v])) {
      factor_[v] = 1.0;
      factor_epoch_[v] = epoch_;
    }
    factor_[v] *= 1.0 - q_u * p;
  }
}

double BatchState::gamma(const sim::Observation& obs, NodeId u,
                         MarginalPolicy policy) const {
  return gamma(obs, u, policy, obs.acceptance_prob(u));
}

double BatchState::gamma(const sim::Observation& obs, NodeId u, MarginalPolicy policy,
                         double q_u) const {
  assert(!obs.is_friend(u));
  assert(!is_selected(u));
  return GammaKernel(obs, *this, policy).score(u, q_u);
}

GammaKernel::GammaKernel(const sim::Observation& obs, const BatchState& state,
                         MarginalPolicy policy) noexcept
    : graph_(&obs.problem().graph),
      bf_(obs.problem().benefit.bf.data()),
      bfof_(obs.problem().benefit.bfof.data()),
      bi_(obs.problem().benefit.bi.data()),
      is_friend_(obs.friend_mask().data()),
      is_fof_(obs.fof_mask().data()),
      edge_state_(obs.edge_states().data()),
      edge_prob_(graph_->edge_probs().data()),
      factor_(state.factor_.data()),
      factor_epoch_(state.factor_epoch_.data()),
      sel_q_(state.sel_q_.data()),
      sel_epoch_(state.sel_epoch_.data()),
      epoch_(state.epoch_),
      weighted_(policy == MarginalPolicy::kWeighted) {}

double GammaKernel::score(NodeId u, double q_u) const noexcept {
  double inner = bf_[u];
  if (weighted_) {
    if (is_fof_[u] != 0) {
      inner -= bfof_[u];
    } else {
      // Probability the batch already made u a friend-of-friend, in which
      // case friending u nets Bf − Bfof.
      const double factor_u = factor_epoch_[u] == epoch_ ? factor_[u] : 1.0;
      inner -= bfof_[u] * (1.0 - factor_u);
    }
  }

  const auto nbrs = graph_->neighbors(u);
  const auto eids = graph_->incident_edges(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const NodeId v = nbrs[i];
    const EdgeId e = eids[i];
    const sim::EdgeState es = edge_state_[e];
    // Inlined edge belief: p_e if unobserved, else 0 / 1.
    const double p =
        es == sim::EdgeState::kUnknown ? edge_prob_[e]
                                       : (es == sim::EdgeState::kPresent ? 1.0 : 0.0);
    if (p <= 0.0) continue;
    const bool v_selected = sel_epoch_[v] == epoch_;
    const double survive = v_selected ? 1.0 - sel_q_[v] : 1.0;
    if (is_friend_[v] == 0 && is_fof_[v] == 0) {
      // v counts as a new FoF through u unless another batch member already
      // claimed it (fof_factor) or v itself got accepted (survive — the
      // paper-literal U bookkeeping does not model v's own acceptance).
      const double own = weighted_ ? survive : 1.0;
      const double factor_v = factor_epoch_[v] == epoch_ ? factor_[v] : 1.0;
      inner += p * bfof_[v] * factor_v * own;
    }
    if (es == sim::EdgeState::kUnknown) {
      // Edge (u, v) is newly revealed unless v was selected earlier in the
      // batch and accepted (placing it in R_E).
      inner += (weighted_ ? p : 1.0) * bi_[e] * survive;
    }
  }
  return q_u * inner;
}

}  // namespace recon::core
