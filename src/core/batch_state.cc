#include "core/batch_state.h"

#include <cassert>
#include <stdexcept>

namespace recon::core {

using graph::EdgeId;
using graph::NodeId;

BatchState::BatchState(NodeId num_nodes) {
  factor_.assign(num_nodes, 1.0);
  factor_epoch_.assign(num_nodes, 0);
  sel_q_.assign(num_nodes, 0.0);
  sel_epoch_.assign(num_nodes, 0);
}

void BatchState::reset() noexcept {
  ++epoch_;
  selected_.clear();
}

void BatchState::select(const sim::Observation& obs, NodeId u, double q_u) {
  if (is_selected(u)) throw std::logic_error("BatchState::select: already selected");
  sel_q_[u] = q_u;
  sel_epoch_[u] = epoch_;
  selected_.push_back(u);

  const auto& g = obs.problem().graph;
  const auto nbrs = g.neighbors(u);
  const auto eids = g.incident_edges(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const NodeId v = nbrs[i];
    const double p = obs.edge_belief(eids[i]);
    if (p <= 0.0) continue;
    if (!stamp_ok(factor_epoch_[v])) {
      factor_[v] = 1.0;
      factor_epoch_[v] = epoch_;
    }
    factor_[v] *= 1.0 - q_u * p;
  }
}

double BatchState::gamma(const sim::Observation& obs, NodeId u,
                         MarginalPolicy policy) const {
  return gamma(obs, u, policy, obs.acceptance_prob(u));
}

double BatchState::gamma(const sim::Observation& obs, NodeId u, MarginalPolicy policy,
                         double q_u) const {
  assert(!obs.is_friend(u));
  assert(!is_selected(u));
  const auto& problem = obs.problem();
  const auto& g = problem.graph;
  const auto& benefit = problem.benefit;
  const bool weighted = policy == MarginalPolicy::kWeighted;

  double inner = benefit.bf[u];
  if (weighted) {
    if (obs.is_fof(u)) {
      inner -= benefit.bfof[u];
    } else {
      // Probability the batch already made u a friend-of-friend, in which
      // case friending u nets Bf − Bfof.
      inner -= benefit.bfof[u] * (1.0 - fof_factor(u));
    }
  }

  const auto nbrs = g.neighbors(u);
  const auto eids = g.incident_edges(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const NodeId v = nbrs[i];
    const EdgeId e = eids[i];
    const double p = obs.edge_belief(e);
    if (p <= 0.0) continue;
    const bool v_selected = is_selected(v);
    const double survive = v_selected ? 1.0 - sel_q_[v] : 1.0;
    if (!obs.is_friend(v) && !obs.is_fof(v)) {
      // v counts as a new FoF through u unless another batch member already
      // claimed it (fof_factor) or v itself got accepted (survive — the
      // paper-literal U bookkeeping does not model v's own acceptance).
      const double own = weighted ? survive : 1.0;
      inner += p * benefit.bfof[v] * fof_factor(v) * own;
    }
    if (obs.edge_state(e) == sim::EdgeState::kUnknown) {
      // Edge (u, v) is newly revealed unless v was selected earlier in the
      // batch and accepted (placing it in R_E).
      inner += (weighted ? p : 1.0) * benefit.bi[e] * survive;
    }
  }
  return q_u * inner;
}

}  // namespace recon::core
