// Event-driven rolling-window attacks — a continuous-time generalization
// that bridges the paper's two extremes.
//
// The paper contrasts fully-sequential M-AReST (best information, one
// response round-trip per request) with synchronous batches (k requests per
// round-trip, stale within-batch information). Nothing forces the barrier:
// a real attacker can keep a *window* of W requests outstanding and send a
// new one the instant any response arrives, choosing it with everything
// observed so far plus the collapsed expectation-tree correction for the
// still-outstanding requests (the same Γ machinery as BATCHSELECT, applied
// to the in-flight set).
//
//   W = 1  -> exactly sequential M-AReST in both benefit and timing;
//   W = k  -> batch-like throughput, but each request is chosen with fresher
//             information than the k-th member of a synchronous batch.
//
// The simulation is a continuous-time event loop over per-request response
// delays; it reports the attack's wall-clock makespan alongside the usual
// trace, so the benefit-vs-time frontier (Table IV's subject) can be mapped
// for any window size.
//
// Thread compatibility: run_async_attack is a pure function of its inputs
// with no shared mutable counters — the event clock, the in-flight queue,
// and the per-run Rng all live on the caller's stack, so concurrent calls
// (e.g. sweeping window sizes from the pool) are safe as long as each call
// gets its own FaultModel (see sim/fault.h; the model's send counter is
// deliberately unsynchronized state).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/marginal.h"
#include "core/retry_policy.h"
#include "sim/fault.h"
#include "sim/problem.h"
#include "sim/trace.h"
#include "sim/world.h"

namespace recon::core {

class CheckpointChain;

/// Response-delay models for the event loop (kept local to core — the
/// metrics module has an equivalent enum for post-hoc trace scoring).
enum class ResponseDelayModel {
  kFixed,        ///< every response takes exactly mean_delay
  kExponential,  ///< delays ~ Exp(1 / mean_delay)
};

struct AsyncAttackOptions {
  int window = 5;                  ///< max outstanding requests (W)
  double mean_delay = 300.0;       ///< mean response delay, seconds
  ResponseDelayModel delay_model = ResponseDelayModel::kExponential;
  bool allow_retries = false;
  /// Per-node attempt ceiling. 0 means no explicit cap: 1 attempt without
  /// retries, otherwise ⌈budget / min node cost⌉ (the most attempts any node
  /// could possibly be charged for under the budget).
  std::uint32_t max_attempts_per_node = 0;
  MarginalPolicy policy = MarginalPolicy::kWeighted;
  std::uint64_t seed = 0xA53C;     ///< delay randomness

  /// Optional fault injection (borrowed; one fault-model tick per resolved
  /// event). Timed-out requests occupy their window slot for
  /// `timeout_seconds` (0 = 4x mean_delay). While the account is suspended
  /// the attacker pauses sending instead of burning budget.
  sim::FaultModel* fault = nullptr;
  double timeout_seconds = 0.0;
  /// Optional backoff for failed/throttled nodes, in seconds of event time.
  const RetryPolicy* retry = nullptr;

  /// Checkpoint/resume. When `checkpoint_path` is set, a v2 checkpoint is
  /// written there every `checkpoint_every_events` resolved events (0 = only
  /// when `stop_after_events` fires). `stop_after_events` suspends the run
  /// (with a forced checkpoint) after that many resolved events — outstanding
  /// requests are serialized, not drained. `resume` points at a checkpoint
  /// read with read_checkpoint_file; the run continues bit-identically to one
  /// that never stopped (same trace, makespan, accepts). The world must be
  /// rebuilt from the checkpoint's world seed and the options must match the
  /// original run.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every_events = 0;
  std::uint64_t stop_after_events = 0;
  /// When set, snapshots publish rotated generations through the chain
  /// (core/checkpoint_chain.h) instead of `checkpoint_path`. Borrowed.
  CheckpointChain* checkpoint_chain = nullptr;
  /// Cooperative stop: polled once per resolved event; on true the runner
  /// writes a forced snapshot (outstanding requests serialized) and
  /// returns. The supervised CLI wires SIGINT/SIGTERM through this.
  std::function<bool()> should_stop;
  const AttackCheckpoint* resume = nullptr;
};

struct AsyncAttackResult {
  /// One BatchRecord per *resolved request*, in resolution order (so the
  /// trace's cumulative curves are meaningful and all metrics apply).
  sim::AttackTrace trace;
  double makespan_seconds = 0.0;   ///< when the last response arrived
  std::size_t requests_sent = 0;
  std::size_t accepts = 0;
};

/// Runs the rolling-window attack with total budget `budget` requests.
AsyncAttackResult run_async_attack(const sim::Problem& problem,
                                   const sim::World& world,
                                   const AsyncAttackOptions& options, double budget);

}  // namespace recon::core
