// Runtime-adaptive execution planner: cost-model-driven dispatch among the
// interchangeable execution strategies for one BATCHSELECT step.
//
// The PM-AReST pipeline has several implementations of the same mathematical
// operation — collapsed-product lazy greedy (cached or uncached scoring),
// the literal 2^k branch-tree fan-out, and the SAA solver tiers (exact B&B,
// SAA lazy greedy) — whose relative cost shifts with k, the candidate
// frontier, the degree distribution, and the scenario count as a campaign
// progresses. Instead of freezing the choice with hand-set flags, the
// planner keeps a small per-strategy cost model (an EWMA-calibrated
// work-ratio over *deterministic* work-unit counts, plus an EWMA of
// measured ns/work-unit) and picks, per batch, the highest-quality strategy
// predicted to fit the deadline, falling back to the cheapest greedy floor —
// the FallbackStrategy deadline ladder folded in as the planner's degraded
// tiers.
//
// Determinism contract (the hard constraint):
//
//  * `plan()` is a pure function of (planner state, PlanFeatures). Features
//    are deterministic campaign quantities (k, frontier size, degree
//    moments, configured scenario count, configured deadline) — never live
//    clock reads.
//  * The *strategy-choice* calibration (work-ratio EWMAs) is fed exclusively
//    by deterministic work counts: candidates scored, cache rescores, SAA
//    objective evaluations, B&B nodes. These are identical at every thread
//    count, so identical calibration state ⇒ identical plans ⇒ bit-identical
//    selections at 1/2/8 threads.
//  * Wall-clock measurements feed only (a) the ns/work-unit EWMAs used to
//    convert predicted work into seconds for *deadline gating* (inactive
//    when no deadline is configured, and freezable via
//    `PlannerOptions::calibrate_time = false`), and (b) the shard-layout
//    calibration, which provably cannot change a selected batch (layout
//    never alters the (score, orig id) frontier total order).
//  * The full planner state — per-strategy EWMAs (serialized as exact IEEE
//    bit patterns), observation counts, tier position, shard calibration —
//    round-trips through `save_state()`/`restore_state()` and is embedded in
//    the hosting Strategy's checkpoint line, so a resumed campaign replans
//    identically from the restore point. PM-AReST additionally checkpoints
//    its cache-accounting overlay (core/cached_selector.h), so the cached
//    tier's work-ratio EWMA — which converges to the cache's dirty fraction
//    — is fed the same work counts across a resume instead of re-learning
//    from a cold cache: planner state, not just selections, is bit-identical
//    after resume (planner_test asserts full save_state() equality).
//  * `plan()` also consumes the campaign's *remaining budget* when the host
//    provides it: a near-exhausted campaign (remaining < 2k requests) bars
//    the exact B&B tier, because spending the most solver time on the final,
//    mostly-truncated batch is exactly backwards. Remaining budget is a
//    deterministic campaign quantity, so this gate preserves the contract.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace recon::core {

/// The execution strategies the planner chooses among. The first three are
/// greedy-floor selector variants (identical selections for cached vs
/// uncached — the cache is exactly equivalent — so switching between those
/// two can never change a trace); the SAA tiers trade solve time for the
/// Thm. 3 / Lemma 2 quality ladder.
enum class PlanStrategy : int {
  kCollapsedCached = 0,   ///< CachedSelector: 2-hop dirty rescore + lazy greedy
  kCollapsedUncached = 1, ///< batch_select: fresh scoring every batch
  kBranchTree = 2,        ///< branch_tree_select: literal 2^k expectation tree
  kSaaGreedy = 3,         ///< fob_greedy over sampled scenarios
  kSaaExact = 4,          ///< fob_exact (B&B) over sampled scenarios
};

inline constexpr int kNumPlanStrategies = 5;

/// Canonical names, also the `--planner fixed:<name>` tokens:
/// cached | uncached | tree | saa | exact.
const char* plan_strategy_name(PlanStrategy s) noexcept;

/// Parses a strategy token (accepts "greedy" as an alias for "uncached",
/// the fallback ladder's floor-tier name). Returns false on unknown names.
bool parse_plan_strategy(const std::string& token, PlanStrategy* out) noexcept;

/// Deterministic per-batch features the cost models key on. Everything here
/// is a pure function of campaign state and configuration — never a clock.
struct PlanFeatures {
  int batch_size = 0;              ///< k for this batch
  std::size_t frontier_size = 0;   ///< candidate count
  double mean_degree = 0.0;        ///< mean degree over the candidates
  double max_degree = 0.0;         ///< max degree over the candidates
  std::size_t scenario_count = 0;  ///< configured SAA scenarios (0 = no SAA tiers)
  /// Configured per-batch wall-clock budget, seconds (0 = none). This is a
  /// configuration constant, not a live deadline measurement.
  double deadline_seconds = 0.0;
  /// Remaining campaign request budget at plan time (0 = unknown/unlimited).
  /// Deterministic campaign state, not a clock: the simulator charges unit
  /// cost per request, so this is the campaign budget minus requests sent.
  double remaining_budget = 0.0;
};

/// One planned batch: the chosen strategy plus the model's predictions (kept
/// for telemetry and fed back to `observe()` after execution).
struct PlanDecision {
  PlanStrategy strategy = PlanStrategy::kCollapsedUncached;
  double estimated_work = 0.0;     ///< closed-form work units, pre-ratio
  double predicted_work = 0.0;     ///< estimated_work x learned work-ratio
  double predicted_seconds = 0.0;  ///< predicted_work x ns-per-unit (deadline gate)
};

enum class PlannerMode : int {
  kOff = 0,    ///< planner absent; legacy flag-driven dispatch, bit-identical
  kAuto = 1,   ///< cost-model-driven choice per batch
  kFixed = 2,  ///< pinned to `fixed_strategy` (parity runs / ablations)
};

struct PlannerOptions {
  PlannerMode mode = PlannerMode::kOff;
  PlanStrategy fixed_strategy = PlanStrategy::kCollapsedUncached;
  /// Which strategies the hosting Strategy can actually execute (PM-AReST
  /// hosts the greedy floor variants; the fallback ladder hosts uncached +
  /// both SAA tiers; the MIP strategy hosts the SAA tiers).
  std::array<bool, kNumPlanStrategies> admissible{true, true, true, true, true};
  /// Update the ns/work-unit EWMAs from measured wall time. Freezing this
  /// (false) makes even deadline-gated tier choices a pure function of
  /// checkpointed state — the configuration the determinism suite uses to
  /// prove bit-identical resume under active deadlines.
  bool calibrate_time = true;
};

/// Calibration for adaptive shard sizing (formerly a process-wide global in
/// batch_select.cc): an EWMA of the measured scoring cost per work unit (one
/// unit ~ one adjacency-row entry walked by the gamma kernel), in
/// nanoseconds. Thread-safe with relaxed atomics: racing updates at worst
/// mix two recent measurements, and the value only steers shard *layout*,
/// which cannot change the selected batch.
class ShardCalibration {
 public:
  /// Cold-start seed, ns per work unit, before any measurement lands.
  static constexpr std::uint64_t kColdStartNanosPerUnit = 64;

  double nanos_per_unit() const noexcept {
    return static_cast<double>(ewma_nanos_.load(std::memory_order_relaxed));
  }

  /// Blends one parallel scoring pass into the EWMA (blended = 0.75 old +
  /// 0.25 observed, floored at 1 ns/unit). No-op while frozen.
  void record_pass(std::uint64_t pass_nanos, double pass_work) noexcept;

  /// Freezing stops wall-clock measurements from mutating the EWMA, making
  /// the serialized value a pure function of checkpointed state. The planner
  /// freezes its instance when `PlannerOptions::calibrate_time` is false —
  /// the configuration the determinism suite uses to assert full
  /// save_state() bit-equality across resume.
  void set_frozen(bool frozen) noexcept {
    frozen_.store(frozen, std::memory_order_relaxed);
  }

  void reset() noexcept {
    ewma_nanos_.store(kColdStartNanosPerUnit, std::memory_order_relaxed);
  }

  /// Raw EWMA value for serialization (integer nanoseconds).
  std::uint64_t raw() const noexcept {
    return ewma_nanos_.load(std::memory_order_relaxed);
  }
  void set_raw(std::uint64_t v) noexcept {
    ewma_nanos_.store(v == 0 ? 1 : v, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ewma_nanos_{kColdStartNanosPerUnit};
  std::atomic<bool> frozen_{false};
};

/// The process-wide calibration instance used by `batch_select` callers that
/// do not thread a planner through (legacy paths, standalone selectors).
/// Planner-hosted campaigns use their own checkpointed instance instead.
ShardCalibration& process_shard_calibration() noexcept;

/// Restores the process-wide shard calibration to its cold-start seed so two
/// same-seed campaigns in one test process start from identical state.
void reset_shard_calibration_for_test() noexcept;

class ExecutionPlanner {
 public:
  ExecutionPlanner() = default;
  explicit ExecutionPlanner(PlannerOptions options);

  ExecutionPlanner(const ExecutionPlanner&) = delete;
  ExecutionPlanner& operator=(const ExecutionPlanner&) = delete;

  bool enabled() const noexcept { return options_.mode != PlannerMode::kOff; }
  const PlannerOptions& options() const noexcept { return options_; }

  /// Closed-form work-unit estimate for one strategy under the features
  /// (pre-ratio). Units are "adjacency-row entries walked" for the greedy
  /// floor variants and "scenario-weighted objective evaluations" for the
  /// SAA tiers; the learned work-ratio absorbs each form's constant factor.
  double estimate_work(PlanStrategy s, const PlanFeatures& f) const;

  /// Picks the strategy for the next batch: the highest-quality admissible
  /// SAA tier predicted to fit the deadline (exact > saa-greedy, skipped
  /// entirely when `scenario_count` is 0 or the tier position has degraded
  /// past it), else the cheapest admissible greedy-floor variant by
  /// predicted work. Pure function of (state, features).
  PlanDecision plan(const PlanFeatures& f) const;

  /// Feeds back one executed batch. `actual_work` is the deterministic
  /// observed work count (rescores, evaluations, B&B nodes — identical at
  /// every thread count); `nanos` is the measured wall time (feeds only the
  /// ns/unit EWMA, and only when `calibrate_time`); `overran_deadline`
  /// reports whether the strategy blew its configured deadline, which
  /// degrades the sticky tier position (re-probed after
  /// `kTierProbeInterval` clean batches).
  void observe(const PlanDecision& decision, double actual_work,
               std::uint64_t nanos, bool overran_deadline);

  /// Batches between a tier demotion and the next upward probe.
  static constexpr std::uint64_t kTierProbeInterval = 8;

  ShardCalibration& shard_calibration() noexcept { return shard_; }
  const ShardCalibration& shard_calibration() const noexcept { return shard_; }

  /// Decisions made so far this campaign (telemetry; not checkpointed —
  /// tests and benches compare plan sequences through this).
  const std::vector<PlanDecision>& decision_log() const noexcept { return log_; }

  /// Serializes the full calibration state as one space-separated line
  /// ("planner 1 ..."): tier position, probe counter, shard EWMA, and per-
  /// strategy (work-ratio bits, ns/unit bits, observation count) triples.
  /// Doubles are serialized as exact IEEE-754 bit patterns so a resumed
  /// planner replans bit-identically.
  std::string save_state() const;
  void restore_state(const std::string& blob);

  /// Back to cold-start calibration (also what `begin()` of a hosting
  /// strategy calls so reruns of one strategy object start cold).
  void reset();

 private:
  struct CostModel {
    double work_ratio = 1.0;      ///< EWMA of actual/estimated work (deterministic)
    double nanos_per_unit = 64.0; ///< EWMA of measured ns per actual work unit
    std::uint64_t observations = 0;
  };

  double predicted_seconds(PlanStrategy s, double predicted_work) const noexcept;

  // lint:ckpt-coverage-ok(construction-time config; the harness rebuilds the
  // planner with identical options before calling restore_state)
  PlannerOptions options_;
  std::array<CostModel, kNumPlanStrategies> models_;
  /// Sticky solver-tier degradation: 0 = all tiers, 1 = exact barred,
  /// 2 = both SAA tiers barred. Raised on an observed deadline overrun,
  /// relaxed one level after kTierProbeInterval clean batches.
  int tier_position_ = 0;
  std::uint64_t batches_since_demotion_ = 0;
  ShardCalibration shard_;
  // lint:ckpt-coverage-ok(telemetry log of past decisions; replayable from
  // the trace and never an input to plan())
  std::vector<PlanDecision> log_;
};

}  // namespace recon::core
