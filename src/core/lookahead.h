// Two-step lookahead selection — a non-myopic upgrade to adaptive greedy.
//
// Adaptive greedy (M-AReST / PM-AReST) maximizes the immediate conditional
// marginal Δf(u | ω). Its (1 − 1/e) guarantee is worst-case; on instances
// where *failures are informative* (e.g. a rejection frees the budget for a
// backup target) a one-step policy can leave value on the table. The
// lookahead strategy scores a candidate by
//
//   V(u) = Δf(u | ω) + E_{outcome of u, revealed edges} [ max_v Δf(v | ω') ]
//
// estimated by sampling the outcome of requesting u (acceptance plus the
// neighborhood it would reveal) and re-running the myopic scorer on the
// updated observation. This is the depth-2 expectimax of the adaptive
// optimization tree that optimal_adaptive_value() (adaptive/adaptive.h)
// expands fully on tiny instances.
//
// Cost: O(candidate_pool × samples × n·deg) per request — a research tool
// for small/medium instances, not a replacement for the greedy hot path.
#pragma once

#include <cstdint>

#include "core/marginal.h"
#include "core/strategy.h"
#include "util/rng.h"

namespace recon::core {

struct LookaheadOptions {
  /// Only the `pool` myopically-best candidates are scored with lookahead.
  std::size_t pool = 8;
  /// Outcome samples per candidate.
  std::size_t samples = 24;
  MarginalPolicy policy = MarginalPolicy::kWeighted;
  std::uint64_t seed = 0x10A;
};

/// Sequential (k = 1) strategy with two-step lookahead scoring.
class LookaheadStrategy : public Strategy {
 public:
  explicit LookaheadStrategy(LookaheadOptions options = {});

  std::string name() const override { return "Lookahead(2)"; }
  void begin(const sim::Problem& problem, double budget) override;
  std::vector<graph::NodeId> next_batch(const sim::Observation& obs,
                                        double remaining_budget) override;

 private:
  LookaheadOptions options_;
  util::Rng rng_;
};

/// The lookahead score V(u) itself (exposed for tests): immediate marginal
/// plus the sampled expectation of the best follow-up marginal.
double lookahead_score(const sim::Observation& obs, graph::NodeId u,
                       const LookaheadOptions& options, std::uint64_t seed);

}  // namespace recon::core
