#include "core/attack.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/checkpoint_chain.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/timer.h"

namespace recon::core {

using graph::NodeId;

sim::AttackTrace run_attack(const sim::Problem& problem, const sim::World& world,
                            Strategy& strategy, double budget) {
  return run_attack(problem, world, strategy, budget, AttackRunOptions{});
}

sim::AttackTrace run_attack(const sim::Problem& problem, const sim::World& world,
                            Strategy& strategy, double budget,
                            const AttackRunOptions& options) {
  if (budget <= 0.0) throw std::invalid_argument("run_attack: budget must be positive");
  if (options.retry != nullptr) options.retry->validate();
  if (options.checkpoint_every_rounds > 0 && options.checkpoint_path.empty() &&
      options.checkpoint_chain == nullptr) {
    throw std::invalid_argument(
        "run_attack: checkpoint_every_rounds requires checkpoint_path or "
        "checkpoint_chain");
  }
  sim::FaultModel* fault = options.fault;
  const bool retry_active = options.retry != nullptr && options.retry->active();

  sim::AttackTrace trace;
  sim::Observation obs(problem);
  strategy.begin(problem, budget);
  double spent = 0.0;
  std::uint64_t round = 0;
  double clock = 0.0;

  if (options.resume != nullptr) {
    const AttackCheckpoint& cp = *options.resume;
    if (cp.budget != budget) {
      throw std::runtime_error("run_attack: resume budget mismatch");
    }
    if (cp.world_seed != world.seed()) {
      throw std::runtime_error(
          "run_attack: resume world seed mismatch (rebuild the world from the "
          "checkpointed seed)");
    }
    apply_checkpoint(cp, obs, strategy, fault);
    spent = cp.spent;
    round = cp.round;
    clock = cp.clock;
    trace = cp.trace;
  }

  const auto maybe_checkpoint = [&](bool force) {
    if (options.checkpoint_path.empty() && options.checkpoint_chain == nullptr) {
      return;
    }
    const bool periodic = options.checkpoint_every_rounds > 0 &&
                          round % options.checkpoint_every_rounds == 0;
    if (!force && !periodic) return;
    const AttackCheckpoint cp = make_checkpoint(
        obs, strategy, trace, budget, spent, round, world.seed(), fault);
    if (options.checkpoint_chain != nullptr) {
      options.checkpoint_chain->write(cp);
    } else {
      write_checkpoint_file(options.checkpoint_path, cp);
    }
  };

  while (spent < budget) {
    if (options.should_stop && options.should_stop()) {
      maybe_checkpoint(/*force=*/true);
      RECON_LOG(kInfo) << "run_attack: stop requested at round " << round;
      break;
    }
    // Wait out an account suspension: bump the clock straight to the end of
    // the lockout (requests sent meanwhile would bounce anyway).
    if (fault != nullptr && fault->suspended()) {
      const std::uint64_t wait = fault->suspended_until() - fault->tick();
      fault->advance_ticks(wait);
      clock += static_cast<double>(wait);
      obs.set_clock(clock);
    }

    util::WallTimer timer;
    std::vector<NodeId> batch = strategy.next_batch(obs, budget - spent);
    const double select_seconds = timer.seconds();
    if (batch.empty()) {
      // Nothing selectable right now; if nodes are merely cooling down,
      // fast-forward to the earliest retry instead of ending the attack.
      if (retry_active) {
        const double next = obs.next_retry_time(/*allow_retries=*/true);
        if (next != std::numeric_limits<double>::infinity()) {
          const double wait = std::max(1.0, std::ceil(next - clock));
          clock += wait;
          obs.set_clock(clock);
          if (fault != nullptr) {
            fault->advance_ticks(static_cast<std::uint64_t>(wait));
          }
          continue;
        }
      }
      break;
    }

    // Truncate to the affordable prefix.
    std::size_t take = 0;
    double batch_cost = 0.0;
    for (NodeId u : batch) {
      const double c = problem.cost_of(u);
      if (spent + batch_cost + c > budget + 1e-9) break;
      batch_cost += c;
      ++take;
    }
    if (take == 0) break;
    batch.resize(take);

    // Parallel send: acceptance probabilities are frozen at batch start
    // (responses cannot influence one another within a batch).
    std::vector<double> probs(batch.size());
    std::vector<std::uint32_t> attempt_idx(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      probs[i] = obs.acceptance_prob(batch[i]);
      attempt_idx[i] = obs.attempts(batch[i]);
    }

    sim::BatchRecord record;
    record.requests = batch;
    record.accepted.resize(batch.size());
    if (fault != nullptr) record.outcome.assign(batch.size(), 0);
    const sim::BenefitBreakdown before = obs.benefit();
    // Without faults every request is charged, so `charged` recomputes
    // batch_cost with the identical addition order — keeping the fault-free
    // path bit-identical while letting suspended requests go uncharged.
    double charged = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const NodeId u = batch[i];
      const sim::RequestOutcome outcome =
          fault != nullptr ? fault->resolve(u) : sim::RequestOutcome::kDelivered;
      if (fault != nullptr) {
        record.outcome[i] = static_cast<std::uint8_t>(outcome);
      }
      bool attempt_consumed = false;
      switch (outcome) {
        case sim::RequestOutcome::kDelivered: {
          const bool accepted = world.attempt_accept(u, attempt_idx[i], probs[i]);
          record.accepted[i] = accepted ? 1 : 0;
          if (accepted) {
            const auto true_nbrs = world.true_neighbors(u);
            obs.record_accept(u, true_nbrs);
          } else {
            obs.record_reject(u);
            attempt_consumed = true;
          }
          charged += problem.cost_of(u);
          break;
        }
        case sim::RequestOutcome::kTimeout:
        case sim::RequestOutcome::kDropped:
          // No observable outcome; the attempt index is consumed so the next
          // try draws fresh acceptance randomness.
          obs.record_no_response(u);
          record.accepted[i] = 0;
          charged += problem.cost_of(u);
          attempt_consumed = true;
          break;
        case sim::RequestOutcome::kThrottled:
          // Round trip wasted (cost charged) but the user never saw the
          // request: no attempt consumed.
          record.accepted[i] = 0;
          charged += problem.cost_of(u);
          break;
        case sim::RequestOutcome::kSuspended:
          // Bounced at the platform edge: free, no attempt, wait it out.
          record.accepted[i] = 0;
          break;
      }
      if (retry_active && record.accepted[i] == 0 &&
          outcome != sim::RequestOutcome::kSuspended) {
        const std::uint32_t attempt =
            attempt_consumed ? obs.attempts(u) : obs.attempts(u) + 1;
        const double delay = options.retry->delay_for(u, attempt);
        if (delay > 0.0) obs.set_retry_after(u, clock + delay);
      }
    }
    const bool any_outcome =
        fault != nullptr &&
        std::any_of(record.outcome.begin(), record.outcome.end(),
                    [](std::uint8_t o) { return o != 0; });
    if (!any_outcome) record.outcome.clear();
    spent += fault != nullptr ? charged : batch_cost;
    record.delta = obs.benefit() - before;
    record.cumulative = obs.benefit();
    record.cost = fault != nullptr ? charged : batch_cost;
    record.cumulative_cost = spent;
    record.select_seconds = select_seconds;
    trace.batches.push_back(std::move(record));
    if (options.on_round) options.on_round(trace, round + 1);

    ++round;
    clock += 1.0;
    obs.set_clock(clock);
    if (fault != nullptr) fault->advance_ticks(1);
    maybe_checkpoint(/*force=*/false);
    if (options.stop_after_rounds > 0 && round >= options.stop_after_rounds) {
      maybe_checkpoint(/*force=*/true);
      RECON_LOG(kInfo) << "run_attack: stopping after " << round
                      << " rounds (checkpoint "
                      << (options.checkpoint_path.empty() ? "not written"
                                                          : options.checkpoint_path)
                      << ")";
      break;
    }
  }
  return trace;
}

double MonteCarloResult::mean_benefit() const {
  if (traces.empty()) return 0.0;
  double total = 0.0;
  for (const auto& t : traces) total += t.total_benefit();
  return total / static_cast<double>(traces.size());
}

double MonteCarloResult::mean_requests() const {
  if (traces.empty()) return 0.0;
  double total = 0.0;
  for (const auto& t : traces) total += static_cast<double>(t.total_requests());
  return total / static_cast<double>(traces.size());
}

MonteCarloResult run_monte_carlo(const sim::Problem& problem,
                                 const StrategyFactory& factory, int runs,
                                 double budget, std::uint64_t seed,
                                 util::ThreadPool* pool,
                                 const sim::FaultOptions* fault,
                                 const RetryPolicy* retry) {
  if (runs <= 0) throw std::invalid_argument("run_monte_carlo: runs must be positive");
  if (fault != nullptr) fault->validate();
  if (retry != nullptr) retry->validate();
  MonteCarloResult result;
  result.traces.resize(static_cast<std::size_t>(runs));
  auto run_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const sim::World world(problem, util::derive_seed(seed, r));
      auto strategy = factory(static_cast<int>(r));
      if (fault == nullptr && retry == nullptr) {
        result.traces[r] = run_attack(problem, world, *strategy, budget);
        continue;
      }
      AttackRunOptions o;
      std::unique_ptr<sim::FaultModel> fm;
      if (fault != nullptr) {
        sim::FaultOptions fo = *fault;
        fo.seed = util::derive_seed(fault->seed, r);  // independent per run
        fm = std::make_unique<sim::FaultModel>(fo);
        o.fault = fm.get();
      }
      o.retry = retry;
      result.traces[r] = run_attack(problem, world, *strategy, budget, o);
    }
  };
  if (pool != nullptr) {
    // lint:hotpath-ok(coarse per-replica fan-out, not a scoring kernel: each
    // body iteration runs one whole attack, which legitimately checkpoints,
    // logs, and reads deadline clocks on its own thread)
    pool->parallel_for(0, static_cast<std::size_t>(runs), run_range, /*grain=*/1);
  } else {
    run_range(0, static_cast<std::size_t>(runs));
  }
  return result;
}

}  // namespace recon::core
