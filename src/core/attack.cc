#include "core/attack.h"

#include <stdexcept>

#include "util/rng.h"
#include "util/timer.h"

namespace recon::core {

using graph::NodeId;

sim::AttackTrace run_attack(const sim::Problem& problem, const sim::World& world,
                            Strategy& strategy, double budget) {
  if (budget <= 0.0) throw std::invalid_argument("run_attack: budget must be positive");
  sim::AttackTrace trace;
  sim::Observation obs(problem);
  strategy.begin(problem, budget);
  double spent = 0.0;

  while (spent < budget) {
    util::WallTimer timer;
    std::vector<NodeId> batch = strategy.next_batch(obs, budget - spent);
    const double select_seconds = timer.seconds();
    if (batch.empty()) break;

    // Truncate to the affordable prefix.
    std::size_t take = 0;
    double batch_cost = 0.0;
    for (NodeId u : batch) {
      const double c = problem.cost_of(u);
      if (spent + batch_cost + c > budget + 1e-9) break;
      batch_cost += c;
      ++take;
    }
    if (take == 0) break;
    batch.resize(take);

    // Parallel send: acceptance probabilities are frozen at batch start
    // (responses cannot influence one another within a batch).
    std::vector<double> probs(batch.size());
    std::vector<std::uint32_t> attempt_idx(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      probs[i] = obs.acceptance_prob(batch[i]);
      attempt_idx[i] = obs.attempts(batch[i]);
    }

    sim::BatchRecord record;
    record.requests = batch;
    record.accepted.resize(batch.size());
    const sim::BenefitBreakdown before = obs.benefit();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const NodeId u = batch[i];
      const bool accepted = world.attempt_accept(u, attempt_idx[i], probs[i]);
      record.accepted[i] = accepted ? 1 : 0;
      if (accepted) {
        const auto true_nbrs = world.true_neighbors(u);
        obs.record_accept(u, true_nbrs);
      } else {
        obs.record_reject(u);
      }
    }
    spent += batch_cost;
    record.delta = obs.benefit() - before;
    record.cumulative = obs.benefit();
    record.cost = batch_cost;
    record.cumulative_cost = spent;
    record.select_seconds = select_seconds;
    trace.batches.push_back(std::move(record));
  }
  return trace;
}

double MonteCarloResult::mean_benefit() const {
  if (traces.empty()) return 0.0;
  double total = 0.0;
  for (const auto& t : traces) total += t.total_benefit();
  return total / static_cast<double>(traces.size());
}

double MonteCarloResult::mean_requests() const {
  if (traces.empty()) return 0.0;
  double total = 0.0;
  for (const auto& t : traces) total += static_cast<double>(t.total_requests());
  return total / static_cast<double>(traces.size());
}

MonteCarloResult run_monte_carlo(const sim::Problem& problem,
                                 const StrategyFactory& factory, int runs,
                                 double budget, std::uint64_t seed,
                                 util::ThreadPool* pool) {
  if (runs <= 0) throw std::invalid_argument("run_monte_carlo: runs must be positive");
  MonteCarloResult result;
  result.traces.resize(static_cast<std::size_t>(runs));
  auto run_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const sim::World world(problem, util::derive_seed(seed, r));
      auto strategy = factory(static_cast<int>(r));
      result.traces[r] = run_attack(problem, world, *strategy, budget);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, static_cast<std::size_t>(runs), run_range, /*grain=*/1);
  } else {
    run_range(0, static_cast<std::size_t>(runs));
  }
  return result;
}

}  // namespace recon::core
