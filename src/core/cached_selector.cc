#include "core/cached_selector.h"

#include <queue>

#include "core/batch_state.h"
#include "core/marginal.h"

namespace recon::core {

using graph::NodeId;

CachedSelector::CachedSelector(const sim::Observation& obs, MarginalPolicy policy,
                               bool cost_sensitive, util::ThreadPool* pool)
    : obs_(&obs), policy_(policy), cost_sensitive_(cost_sensitive), pool_(pool) {
  const NodeId n = obs.problem().graph.num_nodes();
  cached_.assign(n, 0.0);
  dirty_.assign(n, 1);  // everything needs an initial score
  acct_dirty_.assign(n, 1);
}

std::vector<NodeId> CachedSelector::accounting_dirty_nodes() const {
  std::vector<NodeId> nodes;
  for (NodeId u = 0; u < static_cast<NodeId>(acct_dirty_.size()); ++u) {
    if (acct_dirty_[u]) nodes.push_back(u);
  }
  return nodes;
}

void CachedSelector::restore_accounting(const std::vector<NodeId>& dirty_nodes) {
  acct_dirty_.assign(acct_dirty_.size(), 0);
  for (const NodeId u : dirty_nodes) {
    if (static_cast<std::size_t>(u) < acct_dirty_.size()) acct_dirty_[u] = 1;
  }
  acct_rescores_ = 0;
}

double CachedSelector::base_score(NodeId u) {
  if (dirty_[u]) {
    double s = obs_->is_friend(u) ? 0.0 : marginal_gain(*obs_, u, policy_);
    if (cost_sensitive_) s /= obs_->problem().cost_of(u);
    cached_[u] = s;
    dirty_[u] = 0;
    rescores_.fetch_add(1, std::memory_order_relaxed);
  }
  return cached_[u];
}

void CachedSelector::mark_two_hop_dirty(NodeId u) {
  const auto& g = obs_->problem().graph;
  dirty_[u] = 1;
  acct_dirty_[u] = 1;
  for (NodeId v : g.neighbors(u)) {
    dirty_[v] = 1;
    acct_dirty_[v] = 1;
    for (NodeId w : g.neighbors(v)) {
      dirty_[w] = 1;
      acct_dirty_[w] = 1;
    }
  }
}

void CachedSelector::notify_accept(NodeId u) { mark_two_hop_dirty(u); }

void CachedSelector::notify_reject(NodeId u) {
  dirty_[u] = 1;
  acct_dirty_[u] = 1;
}

std::vector<NodeId> CachedSelector::select_batch(int batch_size, bool allow_retries,
                                                 std::uint32_t max_attempts_per_node,
                                                 double remaining_budget) {
  const auto& problem = obs_->problem();
  const NodeId n = problem.graph.num_nodes();
  if (batch_size <= 0) return {};

  struct Entry {
    double score;
    NodeId node;
    NodeId rank;  ///< original id: ties resolve identically across relabelings
    std::uint32_t stamp;
    bool operator<(const Entry& o) const noexcept {
      if (score != o.score) return score < o.score;
      return rank > o.rank;
    }
  };

  BatchState state(n);
  double budget = remaining_budget;

  std::vector<NodeId> candidates;
  candidates.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    if (!obs_->requestable(u, allow_retries)) continue;
    if (max_attempts_per_node != 0 && obs_->attempts(u) >= max_attempts_per_node) {
      continue;
    }
    if (problem.cost_of(u) > budget) continue;
    candidates.push_back(u);
  }

  // Accounting pass (sequential, before any real rescoring): every candidate
  // whose accounting bit is set counts one rescore, then clears its bit —
  // exactly mirroring what base_score does with the real bitmap over this
  // same candidate set, but replayable from a checkpoint (see the header).
  for (const NodeId u : candidates) {
    if (acct_dirty_[u]) {
      ++acct_rescores_;
      acct_dirty_[u] = 0;
    }
  }

  if (pool_ != nullptr) {
    // Parallel rescore of the dirty candidates before the sequential heap
    // build. Distinct nodes touch distinct cache slots, so the only shared
    // write is the (atomic) rescore counter.
    pool_->parallel_for(0, candidates.size(),
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) {
                            if (dirty_[candidates[i]]) (void)base_score(candidates[i]);
                          }
                        });
  }

  std::priority_queue<Entry> heap;
  for (NodeId u : candidates) {
    const double s = base_score(u);  // exact at batch start (cache + dirty)
    if (s > 0.0) heap.push({s, u, problem.graph.orig_id(u), 0});
  }

  std::vector<NodeId> batch;
  batch.reserve(static_cast<std::size_t>(batch_size));
  while (batch.size() < static_cast<std::size_t>(batch_size) && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (problem.cost_of(top.node) > budget) continue;
    const auto cur = static_cast<std::uint32_t>(batch.size());
    if (top.stamp != cur) {
      double s = state.gamma(*obs_, top.node, policy_);
      if (cost_sensitive_) s /= problem.cost_of(top.node);
      top.score = s;
      top.stamp = cur;
      if (top.score <= 0.0) continue;
      if (!heap.empty() && top.score < heap.top().score) {
        heap.push(top);
        continue;
      }
    }
    state.select(*obs_, top.node, obs_->acceptance_prob(top.node));
    budget -= problem.cost_of(top.node);
    batch.push_back(top.node);
  }
  return batch;
}

}  // namespace recon::core
