#include "core/marginal.h"

#include <cassert>

namespace recon::core {

using graph::EdgeId;
using graph::NodeId;

double marginal_gain(const sim::Observation& obs, NodeId u, MarginalPolicy policy) {
  assert(!obs.is_friend(u));
  const auto& problem = obs.problem();
  const auto& g = problem.graph;
  const auto& benefit = problem.benefit;

  double inner = benefit.bf[u];
  if (policy == MarginalPolicy::kWeighted && obs.is_fof(u)) {
    inner -= benefit.bfof[u];  // upgrade replaces the FoF benefit
  }

  const auto nbrs = g.neighbors(u);
  const auto eids = g.incident_edges(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const NodeId v = nbrs[i];
    const EdgeId e = eids[i];
    const double p = obs.edge_belief(e);
    if (p <= 0.0) continue;
    if (!obs.is_friend(v) && !obs.is_fof(v)) {
      inner += p * benefit.bfof[v];
    }
    if (obs.edge_state(e) == sim::EdgeState::kUnknown) {
      inner += (policy == MarginalPolicy::kWeighted ? p : 1.0) * benefit.bi[e];
    }
  }
  return obs.acceptance_prob(u) * inner;
}

}  // namespace recon::core
