// Cross-batch score caching (paper Alg. 2, lines 8–11, applied across the
// whole attack).
//
// batch_select() recomputes every candidate's base score at the start of
// each batch — O(n · deg) per batch. But an observation only changes the
// marginal gain of nodes within two hops of what was observed: accepting u
// reveals u's edges (touching u's neighbors' FoF terms and their neighbors'
// edge/FoF sums) and bumps mutual counters of u's neighbors. CachedSelector
// keeps the base marginal Δf(u | ω) of every candidate across batches and
// re-scores only the dirty 2-hop region, exactly like the paper's CΔ cache.
//
// Equivalence contract (tested): CachedSelector::select_batch returns the
// same batch as core::batch_select for every observation sequence, provided
// the observation is only mutated through notify_accept / notify_reject.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_select.h"
#include "sim/observation.h"

namespace recon::core {

class CachedSelector {
 public:
  /// Binds to an observation (must outlive the selector). `policy` and
  /// `cost_sensitive` are fixed for the selector's lifetime; batch size,
  /// retries, and budget vary per call.
  CachedSelector(const sim::Observation& obs, MarginalPolicy policy,
                 bool cost_sensitive = false);

  /// Must be called after every observation mutation, with the same node.
  void notify_accept(graph::NodeId u);
  void notify_reject(graph::NodeId u);

  /// Selects a batch using cached base scores + the collapsed batch state.
  std::vector<graph::NodeId> select_batch(int batch_size, bool allow_retries,
                                          std::uint32_t max_attempts_per_node,
                                          double remaining_budget);

  /// Number of base-score recomputations performed so far (for tests and
  /// the cache-efficiency microbenchmark).
  std::uint64_t rescore_count() const noexcept { return rescores_; }

 private:
  double base_score(graph::NodeId u);
  void mark_two_hop_dirty(graph::NodeId u);

  const sim::Observation* obs_;
  MarginalPolicy policy_;
  bool cost_sensitive_;
  std::vector<double> cached_;        ///< base Δf (cost-adjusted) per node
  std::vector<std::uint8_t> dirty_;   ///< cache invalid flags
  std::uint64_t rescores_ = 0;
};

}  // namespace recon::core
