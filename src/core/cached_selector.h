// Cross-batch score caching (paper Alg. 2, lines 8–11, applied across the
// whole attack).
//
// batch_select() recomputes every candidate's base score at the start of
// each batch — O(n · deg) per batch. But an observation only changes the
// marginal gain of nodes within two hops of what was observed: accepting u
// reveals u's edges (touching u's neighbors' FoF terms and their neighbors'
// edge/FoF sums) and bumps mutual counters of u's neighbors. CachedSelector
// keeps the base marginal Δf(u | ω) of every candidate across batches and
// re-scores only the dirty 2-hop region, exactly like the paper's CΔ cache.
//
// With a thread pool the cache composes with parallelism: the batch-start
// rescore of dirty candidates fans out over the pool (each node's score is
// independent; the rescore counter is atomic), while the pick loop stays
// sequential for determinism. Batches are identical with and without a pool.
//
// Equivalence contract (tested): CachedSelector::select_batch returns the
// same batch as core::batch_select for every observation sequence, provided
// the observation is only mutated through notify_accept / notify_reject.
//
// Thread compatibility: the memo tables (cached_, dirty_) are not guarded by
// a mutex on purpose — during the parallel rescore each pool worker writes a
// disjoint index range of both vectors (data-race-free by partitioning, not
// locking; TSan-verified in cached_selector_test), and the only cross-thread
// write is the atomic rescore counter. Outside select_batch the selector is
// single-thread confined: callers must not invoke notify_* / select_batch
// concurrently on one instance.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/batch_select.h"
#include "sim/observation.h"
#include "util/thread_pool.h"

namespace recon::core {

class CachedSelector {
 public:
  /// Binds to an observation (must outlive the selector). `policy` and
  /// `cost_sensitive` are fixed for the selector's lifetime; batch size,
  /// retries, and budget vary per call. When `pool` is non-null, dirty
  /// candidates are re-scored in parallel at the start of each batch.
  CachedSelector(const sim::Observation& obs, MarginalPolicy policy,
                 bool cost_sensitive = false, util::ThreadPool* pool = nullptr);

  /// Must be called after every observation mutation, with the same node.
  void notify_accept(graph::NodeId u);
  void notify_reject(graph::NodeId u);

  /// Selects a batch using cached base scores + the collapsed batch state.
  std::vector<graph::NodeId> select_batch(int batch_size, bool allow_retries,
                                          std::uint32_t max_attempts_per_node,
                                          double remaining_budget);

  /// Number of base-score recomputations performed so far (for tests and
  /// the cache-efficiency microbenchmark).
  std::uint64_t rescore_count() const noexcept {
    return rescores_.load(std::memory_order_relaxed);
  }

  /// Checkpointable rescore accounting. `rescore_count()` measures the real
  /// recomputations, which on a resumed campaign include the one-off cost of
  /// rebuilding the cache cold — work the uninterrupted run never did, which
  /// previously made the planner's cached-tier work-ratio EWMA re-learn its
  /// dirty fraction after resume. The accounting overlay mirrors the dirty
  /// bitmap (same initial state, same notify marks, cleared for the same
  /// candidate sets) but is serializable: PmArest checkpoints it and feeds
  /// the planner accounted deltas, so a resumed campaign observes exactly
  /// the work counts the warm run would have.
  std::uint64_t accounted_rescore_count() const noexcept {
    return acct_rescores_;
  }
  /// Sparse list of nodes whose accounting-dirty bit is set (ascending ids).
  std::vector<graph::NodeId> accounting_dirty_nodes() const;
  /// Replaces the accounting overlay with a checkpointed one: only the
  /// listed nodes are accounting-dirty. The real dirty bitmap is untouched
  /// (a rebuilt cache must still rescore everything for correctness).
  void restore_accounting(const std::vector<graph::NodeId>& dirty_nodes);

 private:
  double base_score(graph::NodeId u);
  void mark_two_hop_dirty(graph::NodeId u);

  const sim::Observation* obs_;
  MarginalPolicy policy_;
  bool cost_sensitive_;
  util::ThreadPool* pool_;
  std::vector<double> cached_;        ///< base Δf (cost-adjusted) per node
  std::vector<std::uint8_t> dirty_;   ///< cache invalid flags
  std::atomic<std::uint64_t> rescores_{0};
  /// Accounting twin of `dirty_` (see accounted_rescore_count). Marked in
  /// lockstep with the real bitmap, cleared sequentially per batch over the
  /// candidate set, never read by the parallel rescore pass.
  std::vector<std::uint8_t> acct_dirty_;
  std::uint64_t acct_rescores_ = 0;
};

}  // namespace recon::core
