// Attack-strategy interface.
//
// A strategy is a policy mapping the current partial realization to the next
// batch of friend requests. The attack runner (core/attack.h) owns the
// send/observe loop; strategies never see the ground-truth World.
#pragma once

#include <string>
#include <vector>

#include "sim/observation.h"

namespace recon::core {

class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string name() const = 0;

  /// Called once before an attack begins (K is the total budget).
  virtual void begin(const sim::Problem& problem, double budget) {
    (void)problem;
    (void)budget;
  }

  /// Returns the next batch of nodes to request (total cost should not
  /// exceed remaining_budget; the runner truncates if it does). An empty
  /// batch ends the attack.
  virtual std::vector<graph::NodeId> next_batch(const sim::Observation& obs,
                                                double remaining_budget) = 0;

  /// Serializes the strategy's mutable state (RNG streams, round counters)
  /// as a single line of text for checkpointing. Derived caches that are a
  /// pure function of the observation must NOT be serialized — they are
  /// rebuilt on resume. The default (empty string) suits stateless
  /// strategies.
  virtual std::string save_state() const { return {}; }

  /// Restores state produced by save_state(). Called after begin(), before
  /// any next_batch(). Must make a subsequent run bit-identical to one that
  /// was never checkpointed. Throws std::invalid_argument on a malformed
  /// blob.
  virtual void restore_state(const std::string& blob) { (void)blob; }
};

}  // namespace recon::core
