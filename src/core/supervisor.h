// Self-healing supervised execution: fork a worker per attempt, resume it
// from the last good checkpoint generation when it crashes.
//
// The supervisor is the process-level half of the crash-resilience layer:
// the checkpoint chain (core/checkpoint_chain.h) guarantees a trustworthy
// snapshot always exists; run_supervised guarantees somebody restarts the
// worker from it. Each attempt runs in a forked child so a crash — a real
// one or an injected crash point (util/crashpoint.h) — never takes the
// supervisor down with it. Restarts are bounded two ways:
//
//   * a restart budget (max_restarts) caps total crashes, and
//   * crash-loop detection gives up after `crash_loop_threshold`
//     consecutive crashes with no checkpoint progress (the resumed round
//     never advanced), catching deterministic crashers long before the
//     budget runs out.
//
// Backoff between restarts is a deterministic bounded-exponential sequence
// (base * multiplier^i, capped), slept with nanosleep — no wall-clock reads,
// so the restart schedule is reproducible.
//
// SIGINT/SIGTERM: the supervisor forwards a pending stop signal to the
// worker; a worker that wants graceful stop semantics (final forced
// snapshot, then exit) returns kWorkerStopExit, which the supervisor
// reports without restarting. Crash-injection note: the RECON_CRASH_AT
// environment arming applies to the first attempt only — restarted workers
// run with it cleared, so an env-armed chaos sweep recovers instead of
// crash-looping on the same site forever.
#pragma once

#include <cstdint>
#include <functional>

#include "core/checkpoint.h"
#include "core/checkpoint_chain.h"

namespace recon::core {

/// Exit status a worker uses to report "stopped gracefully on request
/// after writing a final snapshot" (EX_TEMPFAIL: rerun to continue). The
/// supervisor passes it through without restarting.
inline constexpr int kWorkerStopExit = 75;

struct SuperviseOptions {
  /// Worker restarts after crashes before giving up. 0 = never restart.
  int max_restarts = 8;
  double backoff_base_seconds = 0.5;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 30.0;
  /// Consecutive crashes without checkpoint progress before declaring a
  /// crash loop. Must be >= 1.
  int crash_loop_threshold = 3;
};

struct SuperviseResult {
  /// 0 = worker completed; kWorkerStopExit = graceful stop on signal;
  /// 1 = restart budget exhausted or crash loop detected.
  int exit_code = 0;
  int restarts = 0;
  bool crash_loop = false;
  bool restart_budget_exhausted = false;
};

/// Worker body, executed in a forked child. `resume` is the last good
/// generation (null on a fresh start); `attempt` counts launches from 0.
/// The return value becomes the child's exit status: 0 done,
/// kWorkerStopExit graceful stop, anything else a failure the supervisor
/// treats like a crash. Thrown exceptions exit the child with status 1.
using SupervisedWorker =
    std::function<int(const AttackCheckpoint* resume, int attempt)>;

/// Runs `worker` under supervision until it completes, stops gracefully,
/// or the restart bounds trip. The chain is loaded (and corrupt
/// generations quarantined) before every launch.
SuperviseResult run_supervised(CheckpointChain& chain,
                               const SuperviseOptions& options,
                               const SupervisedWorker& worker);

}  // namespace recon::core
