// PM-AReST — the Parallel and adaptive Maximum-benefit Reconnaissance
// Strategy (paper Alg. 1).
//
// Each round, BATCHSELECT greedily picks k nodes using the collapsed
// expectation tree (or the literal branch tree), all k requests are sent in
// parallel, and the observation phase reveals accept/reject states plus the
// neighborhoods of accepting users. Variants implemented via options:
//
//  * retries (Sec. IV-C "Retrying Failed Requests"): rejected nodes return
//    to the candidate pool, capped at m = K/k attempts per node;
//  * varying batch sizes (Sec. IV-C, Thm. 5): k drawn uniformly from
//    [vary_k_min, vary_k_max] each round to evade OSN rate monitors;
//  * generalized costs: greedy ratio Δf(u|ω)/c(u);
//  * paper-literal vs probability-weighted marginal policies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_select.h"
#include "core/cached_selector.h"
#include "core/planner.h"
#include "core/strategy.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace recon::core {

struct PmArestOptions {
  int batch_size = 5;
  MarginalPolicy policy = MarginalPolicy::kWeighted;
  bool allow_retries = false;
  /// 0 = default cap of max(1, ceil(K / k)) attempts per node (paper's m).
  std::uint32_t max_attempts_per_node = 0;
  bool cost_sensitive = false;
  /// When vary_k_max > 0, each round's batch size is drawn uniformly from
  /// [vary_k_min, vary_k_max].
  int vary_k_min = 0;
  int vary_k_max = 0;
  /// Use the exponential branch-tree selector instead of the collapsed one.
  bool use_branch_tree = false;
  /// Keep base marginal scores cached across batches, re-scoring only the
  /// 2-hop neighborhood of observed nodes (paper Alg. 2 lines 8-11). Exactly
  /// equivalent to the uncached selector; large speedup on big graphs.
  /// Composes with `pool` (parallel rescore of the dirty region).
  bool use_cache = true;
  /// Optional pool: parallelizes candidate scoring (cached and uncached
  /// selectors alike) without changing any batch — selection is bit-identical
  /// for every pool size, including none.
  util::ThreadPool* pool = nullptr;
  bool parallel_eager = false;
  std::uint64_t seed = 0x9d5f;  ///< randomness for varying batch sizes
  /// Runtime planner (core/planner.h). Off (default): dispatch frozen by the
  /// use_branch_tree / use_cache flags above, bit-identical to pre-planner
  /// builds. Auto: per batch, the cheapest of {cached, uncached, tree} by
  /// the calibrated cost models (cached and uncached select identical
  /// batches — the cache is exactly equivalent — so only the branch tree
  /// choice can alter a trace, and its 2^k cost model keeps it to tiny
  /// frontiers). Fixed: pinned to one selector for parity runs. Ignored in
  /// parallel_eager mode. The planner's shard calibration replaces the
  /// process-wide one and is checkpointed with the strategy.
  PlannerOptions planner = {};
};

class PmArest : public Strategy {
 public:
  explicit PmArest(PmArestOptions options);

  std::string name() const override;
  void begin(const sim::Problem& problem, double budget) override;
  std::vector<graph::NodeId> next_batch(const sim::Observation& obs,
                                        double remaining_budget) override;
  /// Checkpoints the varying-k RNG stream, plus — when the planner is on and
  /// the cached selector has run — the cache-accounting section (sparse
  /// last-seen attempt counters and the accounting-dirty node set), so a
  /// resumed campaign feeds the planner the same cached-tier work counts as
  /// the uninterrupted run. The score cache itself stays a pure function of
  /// the observation and is rebuilt on resume.
  std::string save_state() const override;
  void restore_state(const std::string& blob) override;

  const PmArestOptions& options() const noexcept { return options_; }
  const ExecutionPlanner& planner() const noexcept { return planner_; }

 private:
  int draw_batch_size();
  std::vector<graph::NodeId> planned_batch(const sim::Observation& obs,
                                           double remaining_budget, int k);
  /// Diffs the observation against the last-seen attempt counters and feeds
  /// accept/reject notifications into the cached selector.
  void sync_cache(const sim::Observation& obs);

  // lint:ckpt-coverage-ok(construction-time config; the harness rebuilds the
  // strategy with identical options before calling restore_state)
  PmArestOptions options_;
  // lint:ckpt-coverage-ok(re-derived in begin() from options_ and the
  // fault-model retry budget on every run, including resumed ones)
  std::uint32_t attempt_cap_ = 0;
  util::Rng rng_;
  // lint:ckpt-coverage-ok(cross-batch score cache, a pure function of the
  // observation; sync_cache rebuilds it on the first post-resume batch and
  // re-applies the checkpointed accounting overlay to it)
  std::unique_ptr<CachedSelector> cache_;
  // lint:ckpt-coverage-ok(transient pointer identity of the last-seen
  // observation, only meaningful within one process lifetime)
  const sim::Observation* cache_obs_ = nullptr;
  // lint:ckpt-coverage-ok(checkpointed via the cache section: save_state
  // emits the sparse nonzero entries and restore_state parses them into
  // restored_attempts_, which sync_cache applies when it rebuilds the
  // selector on the first post-resume batch)
  std::vector<std::uint32_t> last_attempts_;
  /// Cache section parsed out of a checkpoint blob, held until sync_cache
  /// rebuilds the selector and can apply it: sparse (node, attempts) pairs
  /// for last_attempts_ and the accounting-dirty node set.
  std::vector<std::pair<graph::NodeId, std::uint32_t>> restored_attempts_;
  std::vector<graph::NodeId> restored_acct_dirty_;
  bool has_restored_cache_ = false;
  // lint:ckpt-coverage-ok(planner serializes itself; its blob is appended to
  // this strategy's state line when the planner is enabled)
  ExecutionPlanner planner_;
};

}  // namespace recon::core
