// Attack runner — the send/observe loop of Alg. 1 and its Monte-Carlo
// harness.
//
// One attack: repeatedly ask the strategy for a batch, send every request in
// the batch "in parallel" (all acceptance decisions are evaluated against
// the observation as it stood when the batch was chosen), then run the
// observation phase, until the budget K is exhausted or the strategy yields
// an empty batch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/retry_policy.h"
#include "core/strategy.h"
#include "sim/fault.h"
#include "sim/trace.h"
#include "sim/world.h"
#include "util/thread_pool.h"

namespace recon::core {

class CheckpointChain;

/// Optional robustness machinery for a single synchronous attack run. With
/// everything defaulted the runner is byte-for-byte the plain Alg. 1 loop.
struct AttackRunOptions {
  /// Fault injection for request resolution (borrowed; the runner advances
  /// its clock — one tick per batch round). Null disables faults.
  sim::FaultModel* fault = nullptr;
  /// Backoff applied to failed/throttled nodes via observation cooldowns
  /// (every selector respects them through Observation::requestable). Null
  /// or an inactive policy disables backoff.
  const RetryPolicy* retry = nullptr;
  /// Stop (successfully) after this many batch rounds; 0 = run to the end.
  /// Used with `checkpoint_path` to simulate an interrupted attack.
  std::uint64_t stop_after_rounds = 0;
  /// Write a checkpoint to `checkpoint_path` every N completed rounds
  /// (0 = only on stop_after_rounds). Writes are atomic (tmp + rename).
  std::uint64_t checkpoint_every_rounds = 0;
  std::string checkpoint_path;
  /// When set, snapshots publish rotated generations through the chain
  /// (core/checkpoint_chain.h) instead of the single `checkpoint_path`
  /// file; `checkpoint_every_rounds` applies unchanged. Borrowed.
  CheckpointChain* checkpoint_chain = nullptr;
  /// Cooperative stop: polled once per completed round. When it returns
  /// true the runner writes a forced snapshot and returns the trace so
  /// far — the supervised CLI wires SIGINT/SIGTERM through this.
  std::function<bool()> should_stop;
  /// Resume from a previously-written checkpoint: the world must be built
  /// from the checkpointed seed and the strategy/fault configuration must
  /// match. The resumed run's trace is bit-identical to an uninterrupted
  /// run (modulo select_seconds, which is wall-clock).
  const AttackCheckpoint* resume = nullptr;
  /// Streaming hook: called after each completed round with the trace so far
  /// (the newest batch is `trace.batches.back()`) and the 1-based round
  /// count. The campaign service appends each batch to a per-campaign trace
  /// file through this. Runs on the attack thread; must not mutate the
  /// observation or strategy.
  std::function<void(const sim::AttackTrace&, std::uint64_t round)> on_round;
};

/// Runs a single attack of total budget `budget` (the paper's K).
sim::AttackTrace run_attack(const sim::Problem& problem, const sim::World& world,
                            Strategy& strategy, double budget);

/// As above, with fault injection / retry backoff / checkpointing. With
/// default options this is exactly the plain runner.
sim::AttackTrace run_attack(const sim::Problem& problem, const sim::World& world,
                            Strategy& strategy, double budget,
                            const AttackRunOptions& options);

/// Factory producing a fresh strategy per Monte-Carlo run (strategies are
/// stateful). The argument is the run index.
using StrategyFactory = std::function<std::unique_ptr<Strategy>(int run)>;

struct MonteCarloResult {
  std::vector<sim::AttackTrace> traces;

  double mean_benefit() const;
  double mean_requests() const;
};

/// Runs `runs` independent attacks with worlds seeded from `seed` (run r
/// uses derive_seed(seed, r)). When `pool` is non-null runs execute in
/// parallel; the factory must produce strategies that do not share mutable
/// state. Strategies may use the same pool internally (the pool's joins are
/// deadlock-free — waiting threads steal work), but per-strategy busy-time
/// accounting then mixes across runs; use a separate pool when measuring
/// utilization.
///
/// When `fault` is non-null each run gets its own fault model with the seed
/// re-derived per run (derive_seed(fault->seed, r)), so runs stay
/// order-independent. `retry` applies the same backoff policy to every run.
MonteCarloResult run_monte_carlo(const sim::Problem& problem,
                                 const StrategyFactory& factory, int runs,
                                 double budget, std::uint64_t seed,
                                 util::ThreadPool* pool = nullptr,
                                 const sim::FaultOptions* fault = nullptr,
                                 const RetryPolicy* retry = nullptr);

}  // namespace recon::core
