// Attack runner — the send/observe loop of Alg. 1 and its Monte-Carlo
// harness.
//
// One attack: repeatedly ask the strategy for a batch, send every request in
// the batch "in parallel" (all acceptance decisions are evaluated against
// the observation as it stood when the batch was chosen), then run the
// observation phase, until the budget K is exhausted or the strategy yields
// an empty batch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/strategy.h"
#include "sim/trace.h"
#include "sim/world.h"
#include "util/thread_pool.h"

namespace recon::core {

/// Runs a single attack of total budget `budget` (the paper's K).
sim::AttackTrace run_attack(const sim::Problem& problem, const sim::World& world,
                            Strategy& strategy, double budget);

/// Factory producing a fresh strategy per Monte-Carlo run (strategies are
/// stateful). The argument is the run index.
using StrategyFactory = std::function<std::unique_ptr<Strategy>(int run)>;

struct MonteCarloResult {
  std::vector<sim::AttackTrace> traces;

  double mean_benefit() const;
  double mean_requests() const;
};

/// Runs `runs` independent attacks with worlds seeded from `seed` (run r
/// uses derive_seed(seed, r)). When `pool` is non-null runs execute in
/// parallel; the factory must produce strategies that do not share mutable
/// state. Strategies may use the same pool internally (the pool's joins are
/// deadlock-free — waiting threads steal work), but per-strategy busy-time
/// accounting then mixes across runs; use a separate pool when measuring
/// utilization.
MonteCarloResult run_monte_carlo(const sim::Problem& problem,
                                 const StrategyFactory& factory, int runs,
                                 double budget, std::uint64_t seed,
                                 util::ThreadPool* pool = nullptr);

}  // namespace recon::core
