#include "core/multi_attacker.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "core/batch_state.h"
#include "util/timer.h"

namespace recon::core {

using graph::NodeId;

MultiObservation::MultiObservation(const sim::Problem& problem, int num_attackers)
    : shared_(problem), num_attackers_(num_attackers) {
  if (num_attackers <= 0) {
    throw std::invalid_argument("MultiObservation: need at least one attacker");
  }
  const std::size_t cells =
      static_cast<std::size_t>(num_attackers) * problem.graph.num_nodes();
  mutual_.assign(cells, 0);
  attempts_.assign(cells, 0);
}

double MultiObservation::acceptance_prob(int attacker, NodeId u) const {
  const auto& p = shared_.problem();
  return p.acceptance.probability(p.graph, u, mutual_[index(attacker, u)]);
}

sim::BenefitBreakdown MultiObservation::record_accept(
    int attacker, NodeId u, std::span<const NodeId> true_neighbors) {
  ++attempts_[index(attacker, u)];
  const sim::BenefitBreakdown delta = shared_.record_accept(u, true_neighbors);
  // Only the accepting bot gains mutual-friend leverage over u's neighbors.
  for (NodeId v : true_neighbors) ++mutual_[index(attacker, v)];
  return delta;
}

void MultiObservation::record_reject(int attacker, NodeId u) {
  ++attempts_[index(attacker, u)];
  // The shared node state records the latest outcome; a node rejected by one
  // bot may still be approached by another (it stays requestable via
  // retries semantics handled by the caller).
  if (!shared_.is_friend(u) &&
      shared_.node_state(u) != sim::NodeState::kAccepted) {
    shared_.record_reject(u);
  }
}

namespace {

struct Pick {
  NodeId node;
  int attacker;
  double q;
};

/// Jointly selects one fleet batch: greedy over (node, best-bot) pairs with
/// the collapsed expectation tree. Returns picks in selection order.
std::vector<Pick> select_fleet_batch(const MultiObservation& obs,
                                     const MultiAttackOptions& options,
                                     std::uint32_t attempt_cap, double remaining_budget) {
  const auto& problem = obs.shared().problem();
  const NodeId n = problem.graph.num_nodes();
  const int fleet_k = options.num_attackers * options.batch_per_attacker;

  // Per-round quota: each bot sends at most batch_per_attacker requests.
  std::vector<int> quota(static_cast<std::size_t>(options.num_attackers),
                         options.batch_per_attacker);

  // For each candidate, the bot with the best leverage among those with
  // remaining quota; quota ties break toward the less-loaded bot so the
  // fleet spreads its leverage.
  auto best_bot = [&](NodeId u) {
    Pick p{u, -1, -1.0};
    for (int a = 0; a < options.num_attackers; ++a) {
      if (quota[static_cast<std::size_t>(a)] <= 0) continue;
      if (attempt_cap != 0 && obs.attempts(a, u) >= attempt_cap) continue;
      const double q = obs.acceptance_prob(a, u);
      if (q > p.q + 1e-15 ||
          (q > p.q - 1e-15 && p.attacker >= 0 &&
           quota[static_cast<std::size_t>(a)] >
               quota[static_cast<std::size_t>(p.attacker)])) {
        p.q = q;
        p.attacker = a;
      }
    }
    return p;
  };

  BatchState state(n);
  std::vector<Pick> picks;
  double budget = remaining_budget;

  struct Entry {
    double score;
    NodeId node;
    NodeId rank;  ///< original id: ties resolve identically across relabelings
    std::uint32_t stamp;
    bool operator<(const Entry& o) const noexcept {
      if (score != o.score) return score < o.score;
      return rank > o.rank;
    }
  };
  std::priority_queue<Entry> heap;
  for (NodeId u = 0; u < n; ++u) {
    if (!obs.requestable(u, options.allow_retries)) continue;
    const Pick p = best_bot(u);
    if (p.attacker < 0) continue;
    const double s = state.gamma(obs.shared(), u, options.policy, p.q);
    if (s > 0.0) heap.push({s, u, problem.graph.orig_id(u), 0});
  }
  while (static_cast<int>(picks.size()) < fleet_k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (problem.cost_of(top.node) > budget) continue;
    const auto cur = static_cast<std::uint32_t>(picks.size());
    const Pick p = best_bot(top.node);
    if (p.attacker < 0) continue;
    if (top.stamp != cur) {
      top.score = state.gamma(obs.shared(), top.node, options.policy, p.q);
      top.stamp = cur;
      if (top.score <= 0.0) continue;
      if (!heap.empty() && top.score < heap.top().score) {
        heap.push(top);
        continue;
      }
    }
    state.select(obs.shared(), top.node, p.q);
    budget -= problem.cost_of(top.node);
    --quota[static_cast<std::size_t>(p.attacker)];
    picks.push_back(p);
  }
  return picks;
}

}  // namespace

MultiAttackResult run_multi_attack(const sim::Problem& problem, const sim::World& world,
                                   const MultiAttackOptions& options, double budget) {
  if (budget <= 0.0) {
    throw std::invalid_argument("run_multi_attack: budget must be positive");
  }
  if (options.num_attackers <= 0 || options.batch_per_attacker <= 0) {
    throw std::invalid_argument("run_multi_attack: bad fleet shape");
  }
  std::uint32_t attempt_cap = options.max_attempts_per_node;
  if (attempt_cap == 0) {
    attempt_cap =
        options.allow_retries
            ? static_cast<std::uint32_t>(std::max(
                  1.0, std::ceil(budget / std::max(1, options.batch_per_attacker))))
            : 1;
  }

  MultiObservation obs(problem, options.num_attackers);
  MultiAttackResult result;
  result.per_bot.resize(static_cast<std::size_t>(options.num_attackers));
  result.requests_per_bot.assign(static_cast<std::size_t>(options.num_attackers), 0);
  result.accepts_per_bot.assign(static_cast<std::size_t>(options.num_attackers), 0);
  double spent = 0.0;

  while (spent < budget) {
    util::WallTimer timer;
    std::vector<Pick> picks =
        select_fleet_batch(obs, options, attempt_cap, budget - spent);
    const double select_seconds = timer.seconds();
    if (picks.empty()) break;

    // Affordable prefix.
    std::size_t take = 0;
    double batch_cost = 0.0;
    for (const Pick& p : picks) {
      const double c = problem.cost_of(p.node);
      if (spent + batch_cost + c > budget + 1e-9) break;
      batch_cost += c;
      ++take;
    }
    if (take == 0) break;
    picks.resize(take);

    sim::BatchRecord record;
    record.select_seconds = select_seconds;
    std::vector<sim::BatchRecord> bot_records(
        static_cast<std::size_t>(options.num_attackers));
    for (auto& br : bot_records) br.select_seconds = select_seconds;
    const sim::BenefitBreakdown before = obs.shared().benefit();
    for (const Pick& p : picks) {
      // Per-(bot, node, attempt) randomness: encode the bot in the attempt
      // stream (bots are independent channels to the same user).
      const std::uint32_t stream =
          (static_cast<std::uint32_t>(p.attacker) << 20) |
          obs.attempts(p.attacker, p.node);
      const bool accepted = world.attempt_accept(p.node, stream, p.q);
      record.requests.push_back(p.node);
      record.accepted.push_back(accepted ? 1 : 0);
      auto& bot_record = bot_records[static_cast<std::size_t>(p.attacker)];
      bot_record.requests.push_back(p.node);
      bot_record.accepted.push_back(accepted ? 1 : 0);
      bot_record.cost += problem.cost_of(p.node);
      ++result.requests_per_bot[static_cast<std::size_t>(p.attacker)];
      if (accepted) {
        ++result.accepts_per_bot[static_cast<std::size_t>(p.attacker)];
        const sim::BenefitBreakdown delta =
            obs.record_accept(p.attacker, p.node, world.true_neighbors(p.node));
        bot_record.delta += delta;
      } else {
        obs.record_reject(p.attacker, p.node);
      }
    }
    spent += batch_cost;
    record.cost = batch_cost;
    record.cumulative_cost = spent;
    record.delta = obs.shared().benefit() - before;
    record.cumulative = obs.shared().benefit();
    result.combined.batches.push_back(std::move(record));
    for (int a = 0; a < options.num_attackers; ++a) {
      auto& bt = result.per_bot[static_cast<std::size_t>(a)];
      auto& br = bot_records[static_cast<std::size_t>(a)];
      const sim::BenefitBreakdown prev =
          bt.batches.empty() ? sim::BenefitBreakdown{} : bt.batches.back().cumulative;
      const double prev_cost =
          bt.batches.empty() ? 0.0 : bt.batches.back().cumulative_cost;
      br.cumulative = prev;
      br.cumulative += br.delta;
      br.cumulative_cost = prev_cost + br.cost;
      bt.batches.push_back(std::move(br));
    }
  }
  return result;
}

}  // namespace recon::core
