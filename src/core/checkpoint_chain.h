// Checkpoint generation chains — rotated, checksummed snapshots with
// last-good recovery.
//
// A single checkpoint file answers "where was I?" but not "can I trust
// this?": a crash mid-publish, a torn disk write, or bit rot leaves the
// resume path with exactly one snapshot and no fallback. A chain keeps the
// last N generations:
//
//   <base>.gen-0        oldest retained generation
//   <base>.gen-1
//   <base>.gen-2        newest generation
//   <base>.manifest     index of live generations (informational)
//
// Each generation is a complete `#recon-checkpoint` document followed by a
// trailing whole-file checksum footer (byte-wise FNV-1a over everything
// before the footer line, the same prime/offset scheme as the graph binary
// format):
//
//   #recon-ckpt-footer fnv=<16 hex digits>
//
// Generations are published atomically (tmp + util::durable_rename), so a
// crash at any instrumented point leaves either no new generation or a
// complete one. load_last_good() walks generations newest to oldest,
// verifying footer and parse; a generation that fails verification is
// renamed to `<file>.quarantine` — never silently deleted — and skipped.
// Quarantined files are ignored by all subsequent scans, so recovery is
// deterministic: the same directory state always resumes from the same
// snapshot.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.h"

namespace recon::core {

struct CheckpointChainOptions {
  /// Live generations retained after each write (older ones are pruned,
  /// quarantined files are never touched). Must be >= 1.
  std::size_t max_generations = 3;
};

/// A generation that passed footer + parse verification.
struct LoadedGeneration {
  AttackCheckpoint checkpoint;
  std::uint64_t generation = 0;  ///< index parsed from the file name
  std::string path;
  /// Files quarantined while walking the chain during this load.
  std::size_t quarantined = 0;
};

/// Frames a serialized checkpoint document with the chain footer line.
std::string frame_generation(const std::string& body);

/// Verifies the footer frame and returns the enclosed document. Throws
/// std::runtime_error naming the defect (missing footer, checksum
/// mismatch) — the caller decides whether that means quarantine.
std::string unframe_generation(const std::string& bytes);

class CheckpointChain {
 public:
  /// `base_path` names the chain; generation files live beside it as
  /// `<base_path>.gen-N`. Throws std::invalid_argument when the directory
  /// does not exist or max_generations is 0.
  explicit CheckpointChain(std::string base_path,
                           CheckpointChainOptions options = {});

  const std::string& base_path() const { return base_; }
  std::string generation_path(std::uint64_t gen) const;
  std::string manifest_path() const { return base_ + ".manifest"; }

  /// Publishes `cp` as the next generation (atomic + durable), rewrites the
  /// manifest, and prunes generations beyond max_generations. Generation
  /// indices are recomputed from the directory on every call, so forked
  /// workers sharing one chain never collide. Returns the new index.
  std::uint64_t write(const AttackCheckpoint& cp);

  /// Newest generation that verifies (footer checksum + full parse).
  /// Corrupt or torn generations are quarantined with a logged reason and
  /// skipped; returns nullopt when no generation survives.
  std::optional<LoadedGeneration> load_last_good();

  /// Live (non-quarantined) generation indices, ascending. Purely a
  /// directory scan — the manifest is informational.
  std::vector<std::uint64_t> list_generations() const;

 private:
  std::string base_;
  CheckpointChainOptions options_;
};

}  // namespace recon::core
