#include "core/checkpoint_chain.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/crashpoint.h"
#include "util/fs.h"
#include "util/log.h"

namespace recon::core {

namespace {

constexpr const char kFooterPrefix[] = "#recon-ckpt-footer fnv=";
constexpr std::size_t kFooterHexDigits = 16;
constexpr const char kManifestHeader[] = "#recon-ckpt-manifest v1";
constexpr const char kQuarantineSuffix[] = ".quarantine";

std::string to_hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return s;
}

/// Parses the trailing decimal generation index of `name` after
/// `prefix` ("<basename>.gen-"); npos-style nullopt when it is not a live
/// generation file.
std::optional<std::uint64_t> parse_generation(const std::string& name,
                                              const std::string& prefix) {
  if (name.size() <= prefix.size() || name.rfind(prefix, 0) != 0) {
    return std::nullopt;
  }
  std::uint64_t gen = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return gen;
}

/// True when `name` is a quarantined (or tmp) relative of the chain —
/// anything with the generation prefix that is not a live generation.
bool is_chain_relative(const std::string& name, const std::string& prefix) {
  return name.rfind(prefix, 0) == 0;
}

}  // namespace

std::string frame_generation(const std::string& body) {
  return body + kFooterPrefix +
         to_hex16(util::fnv1a64(body.data(), body.size())) + "\n";
}

std::string unframe_generation(const std::string& bytes) {
  // The footer is the final line: prefix + 16 hex digits + '\n'.
  const std::size_t footer_len =
      sizeof(kFooterPrefix) - 1 + kFooterHexDigits + 1;
  if (bytes.size() < footer_len || bytes.back() != '\n') {
    throw std::runtime_error("generation footer missing (file torn?)");
  }
  const std::size_t footer_start = bytes.size() - footer_len;
  if (footer_start != 0 && bytes[footer_start - 1] != '\n') {
    throw std::runtime_error("generation footer not on its own line");
  }
  if (bytes.compare(footer_start, sizeof(kFooterPrefix) - 1, kFooterPrefix) !=
      0) {
    throw std::runtime_error("generation footer missing (file torn?)");
  }
  std::uint64_t want = 0;
  for (std::size_t i = 0; i < kFooterHexDigits; ++i) {
    const char c = bytes[footer_start + sizeof(kFooterPrefix) - 1 + i];
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') nibble = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    else throw std::runtime_error("generation footer checksum is not hex");
    want = (want << 4) | nibble;
  }
  const std::uint64_t got = util::fnv1a64(bytes.data(), footer_start);
  if (got != want) {
    throw std::runtime_error("generation checksum mismatch (want " +
                             to_hex16(want) + ", got " + to_hex16(got) + ")");
  }
  return bytes.substr(0, footer_start);
}

CheckpointChain::CheckpointChain(std::string base_path,
                                 CheckpointChainOptions options)
    : base_(std::move(base_path)), options_(options) {
  if (base_.empty()) {
    throw std::invalid_argument("CheckpointChain: base path is empty");
  }
  if (options_.max_generations == 0) {
    throw std::invalid_argument("CheckpointChain: max_generations must be >= 1");
  }
  const std::string dir = util::parent_dir(base_);
  if (!util::directory_exists(dir)) {
    throw std::invalid_argument("CheckpointChain: directory '" + dir +
                                "' does not exist; create it first");
  }
}

std::string CheckpointChain::generation_path(std::uint64_t gen) const {
  return base_ + ".gen-" + std::to_string(gen);
}

std::vector<std::uint64_t> CheckpointChain::list_generations() const {
  const std::string dir = util::parent_dir(base_);
  const std::string prefix =
      std::filesystem::path(base_).filename().string() + ".gen-";
  std::vector<std::uint64_t> gens;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const auto gen = parse_generation(entry.path().filename().string(), prefix);
    if (gen.has_value()) gens.push_back(*gen);
  }
  // directory_iterator order is filesystem-dependent; sorting keeps every
  // chain walk deterministic.
  std::sort(gens.begin(), gens.end());
  return gens;
}

std::uint64_t CheckpointChain::write(const AttackCheckpoint& cp) {
  // Recompute the next index from disk: a restarted (forked) worker may hold
  // a stale in-memory copy of the chain, and quarantined generations must
  // never be overwritten. Quarantine/tmp relatives share the prefix, so
  // their embedded index is skipped too.
  const std::string dir = util::parent_dir(base_);
  const std::string prefix =
      std::filesystem::path(base_).filename().string() + ".gen-";
  std::uint64_t next = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (!is_chain_relative(name, prefix)) continue;
    std::uint64_t gen = 0;
    bool any_digit = false;
    for (std::size_t i = prefix.size(); i < name.size(); ++i) {
      const char c = name[i];
      if (c < '0' || c > '9') break;
      gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
      any_digit = true;
    }
    if (any_digit && gen + 1 > next) next = gen + 1;
  }

  std::ostringstream buf;
  write_checkpoint(buf, cp);
  const std::string framed = frame_generation(buf.str());

  const std::string path = generation_path(next);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary);
    if (!f) {
      throw std::runtime_error("CheckpointChain: cannot open " + tmp);
    }
    RECON_CRASH_POINT("chain.tmp-open");
    // Flush after the first line so a kill at the torn point leaves a
    // deterministic prefix on disk (header only, no footer).
    const std::size_t first_line = framed.find('\n') + 1;
    f.write(framed.data(), static_cast<std::streamsize>(first_line));
    f.flush();
    RECON_CRASH_POINT("chain.tmp-torn");
    f.write(framed.data() + first_line,
            static_cast<std::streamsize>(framed.size() - first_line));
    f.flush();
    if (!f) {
      throw std::runtime_error("CheckpointChain: write failed: " + tmp);
    }
  }
  RECON_CRASH_POINT("chain.tmp-written");
  util::durable_rename(tmp, path);
  RECON_CRASH_POINT("chain.gen-published");

  // The kept set after this write: the newest max_generations live files.
  std::vector<std::uint64_t> gens = list_generations();
  std::vector<std::uint64_t> kept = gens;
  if (kept.size() > options_.max_generations) {
    kept.erase(kept.begin(),
               kept.end() - static_cast<std::ptrdiff_t>(options_.max_generations));
  }

  // Manifest lists the kept generations (written before pruning so a crash
  // between the two leaves only extra files, never a manifest pointing at
  // missing ones). It is informational — recovery trusts the scan.
  std::ostringstream mf;
  mf << kManifestHeader << '\n';
  for (const std::uint64_t g : kept) {
    const std::string bytes = util::read_file_bytes(generation_path(g));
    mf << "gen " << g << " fnv="
       << to_hex16(util::fnv1a64(bytes.data(), bytes.size())) << " bytes="
       << bytes.size() << '\n';
  }
  mf << "end " << kept.size() << '\n';
  const std::string mtmp = manifest_path() + ".tmp";
  {
    std::ofstream f(mtmp, std::ios::binary);
    if (!f) {
      throw std::runtime_error("CheckpointChain: cannot open " + mtmp);
    }
    const std::string text = mf.str();
    f.write(text.data(), static_cast<std::streamsize>(text.size()));
    f.flush();
    if (!f) {
      throw std::runtime_error("CheckpointChain: write failed: " + mtmp);
    }
  }
  util::durable_rename(mtmp, manifest_path());
  RECON_CRASH_POINT("chain.manifest-written");

  for (std::size_t i = 0; i + options_.max_generations < gens.size(); ++i) {
    const std::string old = generation_path(gens[i]);
    if (std::remove(old.c_str()) != 0) {
      RECON_LOG(kWarn) << "CheckpointChain: could not prune " << old;
    }
  }
  if (gens.size() > options_.max_generations) {
    // Make the deletions themselves durable.
    util::fsync_parent_dir(base_);
  }
  RECON_CRASH_POINT("chain.pruned");
  return next;
}

std::optional<LoadedGeneration> CheckpointChain::load_last_good() {
  std::vector<std::uint64_t> gens = list_generations();
  std::size_t quarantined = 0;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    const std::string path = generation_path(*it);
    try {
      const std::string body = unframe_generation(util::read_file_bytes(path));
      std::istringstream in(body);
      LoadedGeneration loaded;
      loaded.checkpoint = read_checkpoint(in);
      loaded.generation = *it;
      loaded.path = path;
      loaded.quarantined = quarantined;
      RECON_LOG(kInfo) << "CheckpointChain: resuming from " << path
                       << " (round " << loaded.checkpoint.round << ")";
      return loaded;
    } catch (const std::exception& e) {
      // Quarantine, never delete: the operator can inspect the corpse. The
      // rename is durable so the bad file cannot reappear as a live
      // generation after a crash.
      const std::string dest = path + kQuarantineSuffix;
      RECON_LOG(kWarn) << "CheckpointChain: quarantining " << path << " -> "
                       << dest << ": " << e.what();
      util::durable_rename(path, dest);
      ++quarantined;
    }
  }
  return std::nullopt;
}

}  // namespace recon::core
