// Constructions from the paper's theory sections, implemented as code:
//
//  * the Max-Cover -> Max-Crawling reduction of Theorem 1 (Fig. 1), used to
//    validate the inapproximability argument and as a worst-case instance
//    generator;
//  * the auxiliary graph Ga of Sec. IV-C (Fig. 3) that models repeated
//    friend requests as m parallel request-edges per user, used in the
//    analysis of retrying failed requests;
//  * the approximation-ratio constants of Theorems 1–5.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/problem.h"

namespace recon::core {

// ---------------------------------------------------------------------------
// Approximation constants (Theorems 1, 2, 3, 5).
// ---------------------------------------------------------------------------

/// (1 − 1/e): the inapproximability threshold (Thm. 1) and the ratio of the
/// exact-FOB variant (Thm. 3).
double ratio_one_minus_inv_e();

/// (1 − e^{−(1−1/e)}): PM-AReST's guarantee (Thms. 2 and 4) ≈ 0.4685.
double ratio_pm_arest();

/// (1 − e^{−(1−1/e)^2}): the varying-batch vs optimal-sequential gap
/// (Thm. 5) ≈ 0.3293.
double ratio_batch_vs_sequential();

// ---------------------------------------------------------------------------
// Theorem 1: reduction from Max-Cover (Fig. 1).
// ---------------------------------------------------------------------------

/// A Max-Cover instance: `sets[i]` lists the elements covered by set i;
/// elements are 0-based ids < num_elements.
struct MaxCoverInstance {
  std::size_t num_elements = 0;
  std::vector<std::vector<std::uint32_t>> sets;
  std::size_t k = 0;  ///< number of sets to pick

  void validate() const;  ///< throws std::invalid_argument on bad ids
};

/// The reduction's output: a Max-Crawling problem plus the mapping back.
struct MaxCoverReduction {
  sim::Problem problem;
  /// Node id of the crawling node u_i created for set i.
  std::vector<graph::NodeId> set_nodes;
  /// Node id of the crawling node v_j created for element j.
  std::vector<graph::NodeId> element_nodes;
  double budget = 0.0;  ///< K = k
};

/// Builds the Max-Crawling instance of Thm. 1: one node per set, one per
/// element, directed edges set->element with p = 1, q(u) = 1, Bf(set) = 0,
/// Bf(element) = Bfof(element) = 1, Bi = 0, K = k. Friending the k best set
/// nodes yields exactly the optimal coverage as FoF benefit.
MaxCoverReduction reduce_max_cover(const MaxCoverInstance& instance);

/// Exact Max-Cover optimum by enumeration (for small instances / tests).
std::size_t max_cover_brute_force(const MaxCoverInstance& instance);

/// Recovers a cover (set indices) from a crawling strategy's friended set
/// nodes; element-node picks are lifted to an arbitrary covering set,
/// mirroring the proof's substitution argument.
std::vector<std::size_t> cover_from_friends(const MaxCoverReduction& reduction,
                                            const std::vector<graph::NodeId>& friends);

// ---------------------------------------------------------------------------
// Sec. IV-C: the auxiliary graph Ga for repeated requests (Fig. 3).
// ---------------------------------------------------------------------------

/// Ga = (Va, Ea): for each original node u_i, a hub u_{i0} plus m request
/// nodes u_{ij} (j = 1..m) wired to the hub; hub-hub edges mirror G's edges.
/// Request-edge j of node i carries that attempt's acceptance probability.
struct AuxiliaryGraph {
  graph::NodeId original_nodes = 0;
  std::uint32_t attempts = 0;  ///< m

  /// Hub node id for original node i (in Ga's own id space).
  graph::NodeId hub(graph::NodeId i) const noexcept { return i; }
  /// Request node id for original node i, attempt j in [0, m).
  graph::NodeId request_node(graph::NodeId i, std::uint32_t j) const noexcept {
    return original_nodes + i * attempts + j;
  }
  graph::NodeId num_nodes() const noexcept {
    return original_nodes * (1 + attempts);
  }

  /// Acceptance probability attached to request edge (u_{ij}, u_{i0}).
  double request_prob(graph::NodeId i, std::uint32_t j) const {
    return request_probs[static_cast<std::size_t>(i) * attempts + j];
  }

  std::vector<double> request_probs;  ///< original_nodes * attempts
  graph::Graph hub_graph;             ///< mirror of G (hub-hub edges, same p)
};

/// Builds Ga with m = `attempts` request nodes per user. Request-edge
/// probabilities are drawn from the problem's acceptance distribution: base
/// q(u) for attempt 0 and the mutual-boost-free base for later attempts
/// (attempt-level variation enters through the boost at attack time; the
/// draw seed makes each attempt's edge distinct, realizing the paper's
/// "probability randomly drawn from distribution D_{u_i}").
AuxiliaryGraph build_auxiliary_graph(const sim::Problem& problem,
                                     std::uint32_t attempts, std::uint64_t seed);

/// Live-edge semantics on a sampled realization of Ga: node i is a *friend*
/// if any of its requested attempt edges is live; a *friend-of-friend* if a
/// hub-hub live edge connects it to a friend. `requested[i]` = number of
/// attempts issued to node i (first `requested[i]` request edges count).
struct AuxiliaryRealization {
  std::vector<std::uint8_t> request_live;  ///< original_nodes * attempts
  std::vector<std::uint8_t> hub_edge_live; ///< per hub_graph edge
};

AuxiliaryRealization sample_auxiliary_realization(const AuxiliaryGraph& ga,
                                                  std::uint64_t seed);

std::vector<std::uint8_t> auxiliary_friends(const AuxiliaryGraph& ga,
                                            const AuxiliaryRealization& real,
                                            const std::vector<std::uint32_t>& requested);

std::vector<std::uint8_t> auxiliary_fofs(const AuxiliaryGraph& ga,
                                         const AuxiliaryRealization& real,
                                         const std::vector<std::uint8_t>& friends);

}  // namespace recon::core
