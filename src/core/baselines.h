// Non-adaptive / heuristic baselines for comparison and sanity checks.
#pragma once

#include <cstdint>
#include <string>

#include "core/strategy.h"
#include "util/rng.h"

namespace recon::core {

/// Requests uniformly-random unrequested nodes in batches of k.
class RandomStrategy : public Strategy {
 public:
  RandomStrategy(int batch_size, std::uint64_t seed);

  std::string name() const override { return "Random"; }
  void begin(const sim::Problem& problem, double budget) override;
  std::vector<graph::NodeId> next_batch(const sim::Observation& obs,
                                        double remaining_budget) override;
  std::string save_state() const override;
  void restore_state(const std::string& blob) override;

 private:
  // lint:ckpt-coverage-ok(construction-time config; the harness rebuilds the
  // strategy with the same batch size before calling restore_state)
  int batch_size_;
  // lint:ckpt-coverage-ok(only re-seeds rng_ in begin(); save_state snapshots
  // the live rng_ state words directly, which supersede the seed on resume)
  std::uint64_t seed_;
  util::Rng rng_;
};

/// Requests the highest-degree unrequested nodes (a strong non-adaptive
/// heuristic: hubs reveal the most edges).
class HighDegreeStrategy : public Strategy {
 public:
  explicit HighDegreeStrategy(int batch_size);

  std::string name() const override { return "HighDegree"; }
  std::vector<graph::NodeId> next_batch(const sim::Observation& obs,
                                        double remaining_budget) override;

 private:
  int batch_size_;
};

/// Requests targets directly (highest Bf first), ignoring the social-circle
/// route — the naive attacker the paper's introduction argues against.
class TargetFirstStrategy : public Strategy {
 public:
  explicit TargetFirstStrategy(int batch_size);

  std::string name() const override { return "TargetFirst"; }
  std::vector<graph::NodeId> next_batch(const sim::Observation& obs,
                                        double remaining_budget) override;

 private:
  int batch_size_;
};

}  // namespace recon::core
