// Literal expectation-tree BATCHSELECT (paper Alg. 2 / Fig. 2).
//
// Materializes every branch of the accept/reject tree: after j selections
// there are 2^j branch states β = (γ, R_E, U). Because branches correspond
// to accept/reject bitmasks over the selected prefix, a branch is encoded as
// a mask; γ(mask) = Π_j (mask_j ? q_j : 1 − q_j), and the per-branch R_E / U
// are reconstructed from the mask on the fly.
//
// Exponential in the batch size — intended for validation (the property
// tests check it agrees with the collapsed BatchState to FP tolerance) and
// for the branch-parallelism microbenchmarks. Practical attacks use
// core/batch_select.h.
#pragma once

#include <cstdint>
#include <vector>

#include "core/marginal.h"
#include "sim/observation.h"
#include "util/thread_pool.h"

namespace recon::core {

/// Γ(u | A) computed by explicit enumeration of all 2^|batch| branches.
/// `batch` is the ordered list of already-selected nodes. Requires
/// |batch| <= 24.
///
/// With a pool, the expectation tree is cut at its top levels into
/// independent subtree tasks (contiguous mask ranges) that fan out across
/// the workers; partial expectations merge pairwise in fixed child order
/// along the same summation tree the sequential path uses, so the returned
/// double is bit-identical at every thread count (see docs/API.md,
/// "Solver parallelism").
double branch_tree_gamma(const sim::Observation& obs,
                         const std::vector<graph::NodeId>& batch, graph::NodeId u,
                         MarginalPolicy policy, util::ThreadPool* pool = nullptr);

struct BranchTreeOptions {
  int batch_size = 5;
  MarginalPolicy policy = MarginalPolicy::kWeighted;
  bool allow_retries = false;
  std::uint32_t max_attempts_per_node = 0;
  util::ThreadPool* pool = nullptr;  ///< parallelize across branches/candidates
};

/// Greedy batch selection evaluating Γ by explicit branch enumeration.
std::vector<graph::NodeId> branch_tree_select(const sim::Observation& obs,
                                              const BranchTreeOptions& options);

}  // namespace recon::core
