// BATCHSELECT (paper Alg. 2) — greedy selection of one batch of k requests.
//
// Default implementation uses the collapsed expectation tree (BatchState)
// with lazy greedy evaluation: adaptive submodularity guarantees scores only
// decrease as the batch grows, so a stale heap entry whose recomputed score
// still tops the heap can be selected without rescoring the rest (the CΔ
// cache of Alg. 2, lines 3–11).
//
// When a thread pool is supplied the default is a *parallel lazy greedy*:
// candidates are sharded across workers, each worker scores its shard
// through the flat CSR kernel (GammaKernel) into a local top-k heap, the
// shard heaps are merged into a frontier, and the sequential pick-and-repush
// loop runs over the merged frontier. The output is bit-identical to the
// sequential lazy greedy for every thread count (the (score, node-id) order
// is a strict total order, so the frontier organization cannot change which
// entry pops next).
//
// A parallel-eager mode rescoring all candidates each round through a thread
// pool reproduces the paper's massively-parallel row evaluation (used by the
// Table II utilization experiment).
#pragma once

#include <cstdint>
#include <vector>

#include "core/batch_state.h"
#include "core/marginal.h"
#include "core/planner.h"
#include "sim/observation.h"
#include "util/thread_pool.h"

namespace recon::core {

struct BatchSelectOptions {
  int batch_size = 5;
  MarginalPolicy policy = MarginalPolicy::kWeighted;
  /// Divide scores by request cost (generalized cost function, Sec. IV-C).
  bool cost_sensitive = false;
  /// Retries: include previously-rejected nodes as candidates.
  bool allow_retries = false;
  /// Cap on requests per node (0 = unlimited); the paper's auxiliary-graph
  /// analysis allows up to m = K/k attempts per node.
  std::uint32_t max_attempts_per_node = 0;
  /// Remaining budget; candidates costing more are skipped. Batch stops
  /// early when nothing affordable remains.
  double remaining_budget = 1e18;
  /// Optional pool for the parallel lazy greedy (nullptr = sequential).
  /// Batches are bit-identical with and without a pool.
  util::ThreadPool* pool = nullptr;
  /// Rescore every candidate each round via the pool instead of lazy greedy.
  bool parallel_eager = false;
  /// Pin shard-scoring tasks to fixed workers (ThreadPool::submit_pinned) so
  /// each shard's frontier memory first-touches the scoring worker's NUMA
  /// node. Takes effect only when util::numa_topology() reports more than
  /// one node (RECON_NUMA builds or an RECON_NUMA_NODES override); the
  /// selected batch is bit-identical either way, so this is purely a memory
  /// placement decision.
  bool numa_aware = true;
  /// Shard-sizing calibration (measured ns per work unit) read when planning
  /// the scoring shards and fed by each pass's measurement. nullptr uses the
  /// process-wide `process_shard_calibration()`; planner-hosted campaigns
  /// pass their own checkpointed instance. Purely a layout decision — the
  /// selected batch is identical under every calibration value.
  ShardCalibration* calibration = nullptr;
};

/// Selects up to options.batch_size nodes to request, greedily maximizing
/// the batch-aware marginal gain Γ. Returns fewer than k nodes when
/// candidates are exhausted or nothing affordable has positive gain.
std::vector<graph::NodeId> batch_select(const sim::Observation& obs,
                                        const BatchSelectOptions& options);

/// Enumerates the candidate set for a batch under the options (requestable
/// nodes, attempt cap, affordability). Exposed for tests and the MIP
/// strategy.
std::vector<graph::NodeId> batch_candidates(const sim::Observation& obs,
                                            bool allow_retries,
                                            std::uint32_t max_attempts_per_node,
                                            double max_cost);

/// Shard boundaries for the parallel scoring pass: shard s covers
/// candidates [bounds[s], bounds[s+1]), bounds.front() == 0 and
/// bounds.back() == work.size(). Shards hold roughly equal *estimated
/// work* (work[i] models candidate i's scoring cost — the gamma kernel
/// walks the adjacency row, so batch_select uses 1 + degree), not equal
/// candidate counts: a hub-heavy prefix of a BA candidate list is split
/// into many small shards while the low-degree tail coarsens. The target
/// work per shard aims each shard at ~`target_shard_nanos` of measured
/// scoring time (`nanos_per_unit` comes from a process-wide calibration of
/// previous passes), clamped to between 4 and 32 shards per participant.
/// The plan only decides *where* candidates sit, never the (score, node)
/// frontier order, so selected batches are identical under every plan.
/// Exposed for tests and the shard-size benchmarks.
std::vector<std::size_t> plan_score_shards(const std::vector<double>& work,
                                           std::size_t parties,
                                           double nanos_per_unit,
                                           double target_shard_nanos = 100000.0);

}  // namespace recon::core
