#include "core/branch_tree.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/batch_select.h"

namespace recon::core {

using graph::EdgeId;
using graph::NodeId;

namespace {

/// Subtrees with at most 2^kSubtreeLeafBits branches are evaluated
/// sequentially; above that the expectation tree splits in half (see
/// subtree_expectation). 6 keeps a leaf around ~64 branch_delta calls —
/// enough work to amortize a task dispatch, small enough that a pool can
/// fan a k=10 tree into 16 subtree tasks.
constexpr std::uint32_t kSubtreeLeafBits = 6;

/// Δb(u | ω, R_E, U) for the branch encoded by `mask` over `batch`.
/// Reconstructs U[v] (product over accepted batch members adjacent to v of
/// 1 − p̂) and the R_E membership test from the mask.
double branch_delta(const sim::Observation& obs, const std::vector<NodeId>& batch,
                    std::uint32_t mask, NodeId u, MarginalPolicy policy) {
  const auto& problem = obs.problem();
  const auto& g = problem.graph;
  const auto& benefit = problem.benefit;
  const bool weighted = policy == MarginalPolicy::kWeighted;

  // Which batch members accepted in this branch, by node id.
  auto accepted_index = [&](NodeId v) -> int {
    for (std::size_t j = 0; j < batch.size(); ++j) {
      if (batch[j] == v) return static_cast<int>(j);
    }
    return -1;
  };

  // U[v]: unlikelihood that v became a FoF through an accepted batch member.
  auto unlikelihood = [&](NodeId v) {
    double uv = 1.0;
    const auto nbrs = g.neighbors(v);
    const auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const int j = accepted_index(nbrs[i]);
      if (j < 0 || !(mask & (1u << j))) continue;
      uv *= 1.0 - obs.edge_belief(eids[i]);
    }
    return uv;
  };

  double inner = benefit.bf[u];
  if (weighted) {
    if (obs.is_fof(u)) {
      inner -= benefit.bfof[u];
    } else {
      inner -= benefit.bfof[u] * (1.0 - unlikelihood(u));
    }
  }

  const auto nbrs = g.neighbors(u);
  const auto eids = g.incident_edges(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const NodeId v = nbrs[i];
    const EdgeId e = eids[i];
    const double p = obs.edge_belief(e);
    if (p <= 0.0) continue;
    const int j = accepted_index(v);
    const bool v_accepted_in_branch = j >= 0 && (mask & (1u << j));
    if (!obs.is_friend(v) && !obs.is_fof(v)) {
      // In the weighted policy a batch member that accepted is a friend,
      // not a FoF candidate; the paper-literal U bookkeeping ignores this.
      const bool skip_own = weighted && v_accepted_in_branch;
      if (!skip_own) inner += p * benefit.bfof[v] * unlikelihood(v);
    }
    if (obs.edge_state(e) == sim::EdgeState::kUnknown) {
      // Edge already in R_E iff v accepted earlier in the batch.
      if (!v_accepted_in_branch) {
        inner += (weighted ? p : 1.0) * benefit.bi[e];
      }
    }
  }
  return obs.acceptance_prob(u) * inner;
}

/// Expectation mass of the branch subtree covering masks [lo, hi) — the
/// subtree of the accept/reject tree whose root fixes the high-order mask
/// bits (the most recently selected batch members; the split keeps subtree
/// mask ranges contiguous). The summation shape is FIXED: ranges larger
/// than 2^kSubtreeLeafBits split in half and merge with one addition in
/// child order (reject half first, accept half second); leaf ranges
/// accumulate left-to-right. The shape depends only on |batch|, never on
/// the thread count, so the parallel fan-out below merges partials along
/// the identical tree and the result is bit-exact at any parallelism.
double subtree_expectation(const sim::Observation& obs, const std::vector<NodeId>& batch,
                           const std::vector<double>& batch_q, std::uint32_t lo,
                           std::uint32_t hi, NodeId u, MarginalPolicy policy) {
  if (hi - lo <= (1u << kSubtreeLeafBits)) {
    double total = 0.0;
    for (std::uint32_t mask = lo; mask < hi; ++mask) {
      double gamma_branch = 1.0;
      for (std::size_t j = 0; j < batch.size(); ++j) {
        gamma_branch *= (mask & (1u << j)) ? batch_q[j] : 1.0 - batch_q[j];
      }
      if (gamma_branch <= 0.0) continue;
      total += gamma_branch * branch_delta(obs, batch, mask, u, policy);
    }
    return total;
  }
  const std::uint32_t mid = lo + (hi - lo) / 2;
  return subtree_expectation(obs, batch, batch_q, lo, mid, u, policy) +
         subtree_expectation(obs, batch, batch_q, mid, hi, u, policy);
}

}  // namespace

double branch_tree_gamma(const sim::Observation& obs, const std::vector<NodeId>& batch,
                         NodeId u, MarginalPolicy policy, util::ThreadPool* pool) {
  if (batch.size() > 24) {
    throw std::invalid_argument("branch_tree_gamma: batch too large to enumerate");
  }
  std::vector<double> batch_q(batch.size());
  for (std::size_t j = 0; j < batch.size(); ++j) {
    batch_q[j] = obs.acceptance_prob(batch[j]);
  }
  const std::uint32_t num_branches = 1u << batch.size();

  // Parallel subtree fan-out: cut the tree at its top levels into 2^depth
  // independent subtrees (one task each), deep enough to feed every
  // participant a few tasks but never below the sequential leaf cutoff.
  if (pool != nullptr && batch.size() > kSubtreeLeafBits + 1) {
    const std::uint32_t max_depth =
        static_cast<std::uint32_t>(batch.size()) - kSubtreeLeafBits;
    std::uint32_t depth = 0;
    const std::uint32_t want = 4u * (pool->size() + 1);
    while (depth < max_depth && (1u << depth) < want) ++depth;
    const std::uint32_t leaves = 1u << depth;
    const std::uint32_t stride = num_branches >> depth;
    std::vector<double> partials(leaves);
    pool->parallel_for(
        0, leaves,
        [&](std::size_t s) {
          const auto lo = static_cast<std::uint32_t>(s) * stride;
          partials[s] =
              subtree_expectation(obs, batch, batch_q, lo, lo + stride, u, policy);
        },
        /*grain=*/1);
    // Deterministic merge: fold adjacent partials pairwise, bottom-up. The
    // ranges are equal power-of-two halves, so this reproduces exactly the
    // association subtree_expectation would have used sequentially.
    for (std::uint32_t width = leaves; width > 1; width /= 2) {
      for (std::uint32_t i = 0; i < width / 2; ++i) {
        partials[i] = partials[2 * i] + partials[2 * i + 1];
      }
    }
    return partials[0];
  }

  return subtree_expectation(obs, batch, batch_q, 0, num_branches, u, policy);
}

std::vector<NodeId> branch_tree_select(const sim::Observation& obs,
                                       const BranchTreeOptions& options) {
  if (options.batch_size > 20) {
    throw std::invalid_argument("branch_tree_select: batch size too large");
  }
  const std::vector<NodeId> candidates = batch_candidates(
      obs, options.allow_retries, options.max_attempts_per_node, 1e18);
  std::vector<NodeId> batch;
  std::vector<std::uint8_t> taken(obs.problem().graph.num_nodes(), 0);
  std::vector<double> scores(candidates.size());
  while (batch.size() < static_cast<std::size_t>(options.batch_size)) {
    // Two parallel axes share the pool: candidates fan out across workers,
    // and each candidate's expectation tree fans out into subtree tasks
    // (which matters in the late rounds, where few candidates remain but
    // each tree has 2^|batch| branches). Nested joins are deadlock-free —
    // a blocked participant steals — and scores are bit-identical either
    // way because the summation shape is fixed.
    auto score_one = [&](std::size_t i) {
      scores[i] = taken[candidates[i]]
                      ? -1.0
                      : branch_tree_gamma(obs, batch, candidates[i], options.policy,
                                          options.pool);
    };
    if (options.pool != nullptr) {
      options.pool->parallel_for(0, candidates.size(), score_one);
    } else {
      for (std::size_t i = 0; i < candidates.size(); ++i) score_one(i);
    }
    std::size_t best = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (taken[candidates[i]] || scores[i] <= 0.0) continue;
      if (best == candidates.size() || scores[i] > scores[best] ||
          (scores[i] == scores[best] && candidates[i] < candidates[best])) {
        best = i;
      }
    }
    if (best == candidates.size()) break;
    taken[candidates[best]] = 1;
    batch.push_back(candidates[best]);
  }
  return batch;
}

}  // namespace recon::core
