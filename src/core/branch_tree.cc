#include "core/branch_tree.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/batch_select.h"

namespace recon::core {

using graph::EdgeId;
using graph::NodeId;

namespace {

/// Δb(u | ω, R_E, U) for the branch encoded by `mask` over `batch`.
/// Reconstructs U[v] (product over accepted batch members adjacent to v of
/// 1 − p̂) and the R_E membership test from the mask.
double branch_delta(const sim::Observation& obs, const std::vector<NodeId>& batch,
                    std::uint32_t mask, NodeId u, MarginalPolicy policy) {
  const auto& problem = obs.problem();
  const auto& g = problem.graph;
  const auto& benefit = problem.benefit;
  const bool weighted = policy == MarginalPolicy::kWeighted;

  // Which batch members accepted in this branch, by node id.
  auto accepted_index = [&](NodeId v) -> int {
    for (std::size_t j = 0; j < batch.size(); ++j) {
      if (batch[j] == v) return static_cast<int>(j);
    }
    return -1;
  };

  // U[v]: unlikelihood that v became a FoF through an accepted batch member.
  auto unlikelihood = [&](NodeId v) {
    double uv = 1.0;
    const auto nbrs = g.neighbors(v);
    const auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const int j = accepted_index(nbrs[i]);
      if (j < 0 || !(mask & (1u << j))) continue;
      uv *= 1.0 - obs.edge_belief(eids[i]);
    }
    return uv;
  };

  double inner = benefit.bf[u];
  if (weighted) {
    if (obs.is_fof(u)) {
      inner -= benefit.bfof[u];
    } else {
      inner -= benefit.bfof[u] * (1.0 - unlikelihood(u));
    }
  }

  const auto nbrs = g.neighbors(u);
  const auto eids = g.incident_edges(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const NodeId v = nbrs[i];
    const EdgeId e = eids[i];
    const double p = obs.edge_belief(e);
    if (p <= 0.0) continue;
    const int j = accepted_index(v);
    const bool v_accepted_in_branch = j >= 0 && (mask & (1u << j));
    if (!obs.is_friend(v) && !obs.is_fof(v)) {
      // In the weighted policy a batch member that accepted is a friend,
      // not a FoF candidate; the paper-literal U bookkeeping ignores this.
      const bool skip_own = weighted && v_accepted_in_branch;
      if (!skip_own) inner += p * benefit.bfof[v] * unlikelihood(v);
    }
    if (obs.edge_state(e) == sim::EdgeState::kUnknown) {
      // Edge already in R_E iff v accepted earlier in the batch.
      if (!v_accepted_in_branch) {
        inner += (weighted ? p : 1.0) * benefit.bi[e];
      }
    }
  }
  return obs.acceptance_prob(u) * inner;
}

}  // namespace

double branch_tree_gamma(const sim::Observation& obs, const std::vector<NodeId>& batch,
                         NodeId u, MarginalPolicy policy) {
  if (batch.size() > 24) {
    throw std::invalid_argument("branch_tree_gamma: batch too large to enumerate");
  }
  std::vector<double> batch_q(batch.size());
  for (std::size_t j = 0; j < batch.size(); ++j) {
    batch_q[j] = obs.acceptance_prob(batch[j]);
  }
  const std::uint32_t num_branches = 1u << batch.size();
  double total = 0.0;
  for (std::uint32_t mask = 0; mask < num_branches; ++mask) {
    double gamma_branch = 1.0;
    for (std::size_t j = 0; j < batch.size(); ++j) {
      gamma_branch *= (mask & (1u << j)) ? batch_q[j] : 1.0 - batch_q[j];
    }
    if (gamma_branch <= 0.0) continue;
    total += gamma_branch * branch_delta(obs, batch, mask, u, policy);
  }
  return total;
}

std::vector<NodeId> branch_tree_select(const sim::Observation& obs,
                                       const BranchTreeOptions& options) {
  if (options.batch_size > 20) {
    throw std::invalid_argument("branch_tree_select: batch size too large");
  }
  const std::vector<NodeId> candidates = batch_candidates(
      obs, options.allow_retries, options.max_attempts_per_node, 1e18);
  std::vector<NodeId> batch;
  std::vector<std::uint8_t> taken(obs.problem().graph.num_nodes(), 0);
  std::vector<double> scores(candidates.size());
  while (batch.size() < static_cast<std::size_t>(options.batch_size)) {
    auto score_one = [&](std::size_t i) {
      scores[i] = taken[candidates[i]]
                      ? -1.0
                      : branch_tree_gamma(obs, batch, candidates[i], options.policy);
    };
    if (options.pool != nullptr) {
      options.pool->parallel_for(0, candidates.size(), score_one);
    } else {
      for (std::size_t i = 0; i < candidates.size(); ++i) score_one(i);
    }
    std::size_t best = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (taken[candidates[i]] || scores[i] <= 0.0) continue;
      if (best == candidates.size() || scores[i] > scores[best] ||
          (scores[i] == scores[best] && candidates[i] < candidates[best])) {
        best = i;
      }
    }
    if (best == candidates.size()) break;
    taken[candidates[best]] = 1;
    batch.push_back(candidates[best]);
  }
  return batch;
}

}  // namespace recon::core
