// Collapsed expectation-tree state for BATCHSELECT (Sec. III-B).
//
// The paper's Alg. 2 carries, per branch β of the accept/reject tree, the
// revealed-edge set R_E and the "unlikelihood" map U[v]. Because the
// accept/reject events of distinct batch members are independent and the
// batch marginal Δb is linear over branches, the γ-weighted sum over all 2^j
// branches factorizes per node (DESIGN.md §2.3):
//
//   E_β[ U[v] ] = Π_{w ∈ F', v ∈ N(w)} (1 − q(w|ω) · p̂_wv)   (fof_factor)
//   Pr[ (u,v) ∉ R_E ] = (1 − q(v|ω)) if v ∈ F' else 1
//
// BatchState maintains these products incrementally: selecting w multiplies
// fof_factor[v] for every neighbor v of w. Epoch stamping makes reset O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/marginal.h"
#include "sim/observation.h"

namespace recon::core {

class BatchState {
 public:
  explicit BatchState(graph::NodeId num_nodes);

  /// Clears the batch (O(1) via epoch bump).
  void reset() noexcept;

  bool empty() const noexcept { return selected_.empty(); }
  std::size_t size() const noexcept { return selected_.size(); }
  const std::vector<graph::NodeId>& selected() const noexcept { return selected_; }

  bool is_selected(graph::NodeId u) const noexcept {
    return stamp_ok(sel_epoch_[u]);
  }

  /// q(u | ω) frozen at selection time (valid only for selected nodes).
  double selected_q(graph::NodeId u) const noexcept { return sel_q_[u]; }

  /// E[U[v]] — the probability v has not been made a friend-of-friend by the
  /// batch members selected so far (1.0 for untouched nodes).
  double fof_factor(graph::NodeId v) const noexcept {
    return stamp_ok(factor_epoch_[v]) ? factor_[v] : 1.0;
  }

  /// Adds u to the batch with acceptance probability q_u, updating the
  /// neighbors' fof factors using current edge beliefs.
  void select(const sim::Observation& obs, graph::NodeId u, double q_u);

  /// Γ(u | A): the batch-aware expected marginal gain of adding u, equal to
  /// the γ-weighted sum of Δb over every branch of the expectation tree
  /// (computed in closed form). For an empty batch this equals
  /// marginal_gain(obs, u, policy). Requires u not a friend and not already
  /// selected.
  double gamma(const sim::Observation& obs, graph::NodeId u,
               MarginalPolicy policy) const;

  /// Γ(u | A) with an explicit acceptance probability for u (used by the
  /// multi-attacker extension where q depends on which bot sends the
  /// request); the selected batch members' frozen q values still apply.
  double gamma(const sim::Observation& obs, graph::NodeId u, MarginalPolicy policy,
               double q_u) const;

 private:
  friend class GammaKernel;

  bool stamp_ok(std::uint32_t stamp) const noexcept { return stamp == epoch_; }

  std::uint32_t epoch_ = 1;
  std::vector<double> factor_;
  std::vector<std::uint32_t> factor_epoch_;
  std::vector<double> sel_q_;
  std::vector<std::uint32_t> sel_epoch_;
  std::vector<graph::NodeId> selected_;
};

/// Flat CSR scoring kernel: computes Γ(u | A) with every array base pointer
/// (benefit coefficients, edge states/probabilities, friend/FoF masks, batch
/// factors) hoisted out of the per-neighbor loop. Bit-identical to
/// BatchState::gamma — gamma delegates here — so parallel shards scoring
/// through a kernel produce exactly the sequential scores.
///
/// The kernel holds pointers into the observation and batch state: it stays
/// valid across BatchState::select calls (vectors never reallocate after
/// construction) but must be rebuilt after BatchState::reset (the epoch is
/// captured by value) or any observation mutation.
class GammaKernel {
 public:
  GammaKernel(const sim::Observation& obs, const BatchState& state,
              MarginalPolicy policy) noexcept;

  /// Γ(u | A) with acceptance probability q_u. Requires u not a friend and
  /// not selected, as BatchState::gamma does.
  double score(graph::NodeId u, double q_u) const noexcept;

 private:
  const graph::Graph* graph_;
  const double* bf_;
  const double* bfof_;
  const double* bi_;
  const std::uint8_t* is_friend_;
  const std::uint8_t* is_fof_;
  const sim::EdgeState* edge_state_;
  const double* edge_prob_;
  const double* factor_;
  const std::uint32_t* factor_epoch_;
  const double* sel_q_;
  const std::uint32_t* sel_epoch_;
  std::uint32_t epoch_;
  bool weighted_;
};

}  // namespace recon::core
