#include "core/baselines.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/batch_select.h"

namespace recon::core {

using graph::NodeId;

namespace {

int check_batch_size(int k) {
  if (k <= 0) throw std::invalid_argument("baseline: batch_size must be positive");
  return k;
}

}  // namespace

RandomStrategy::RandomStrategy(int batch_size, std::uint64_t seed)
    : batch_size_(check_batch_size(batch_size)), seed_(seed), rng_(seed) {}

void RandomStrategy::begin(const sim::Problem& problem, double budget) {
  (void)problem;
  (void)budget;
  rng_ = util::Rng(seed_);
}

std::vector<NodeId> RandomStrategy::next_batch(const sim::Observation& obs,
                                               double remaining_budget) {
  std::vector<NodeId> candidates =
      batch_candidates(obs, /*allow_retries=*/false, /*max_attempts=*/1,
                       remaining_budget);
  if (candidates.empty()) return {};
  util::shuffle(candidates, rng_);
  const std::size_t take =
      std::min<std::size_t>(candidates.size(), static_cast<std::size_t>(batch_size_));
  candidates.resize(take);
  return candidates;
}

std::string RandomStrategy::save_state() const {
  const auto w = rng_.state_words();
  std::ostringstream ss;
  ss << "random " << w[0] << ' ' << w[1] << ' ' << w[2] << ' ' << w[3];
  return ss.str();
}

void RandomStrategy::restore_state(const std::string& blob) {
  std::istringstream ss(blob);
  std::string tag;
  std::array<std::uint64_t, 4> w{};
  if (!(ss >> tag >> w[0] >> w[1] >> w[2] >> w[3]) || tag != "random") {
    throw std::invalid_argument("RandomStrategy::restore_state: bad state blob");
  }
  rng_.set_state_words(w);
}

HighDegreeStrategy::HighDegreeStrategy(int batch_size)
    : batch_size_(check_batch_size(batch_size)) {}

std::vector<NodeId> HighDegreeStrategy::next_batch(const sim::Observation& obs,
                                                   double remaining_budget) {
  std::vector<NodeId> candidates =
      batch_candidates(obs, false, 1, remaining_budget);
  const auto& g = obs.problem().graph;
  std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  const std::size_t take =
      std::min<std::size_t>(candidates.size(), static_cast<std::size_t>(batch_size_));
  candidates.resize(take);
  return candidates;
}

TargetFirstStrategy::TargetFirstStrategy(int batch_size)
    : batch_size_(check_batch_size(batch_size)) {}

std::vector<NodeId> TargetFirstStrategy::next_batch(const sim::Observation& obs,
                                                    double remaining_budget) {
  std::vector<NodeId> candidates =
      batch_candidates(obs, false, 1, remaining_budget);
  const auto& benefit = obs.problem().benefit;
  std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
    if (benefit.bf[a] != benefit.bf[b]) return benefit.bf[a] > benefit.bf[b];
    return a < b;
  });
  // Drop zero-benefit nodes only if any target remains; otherwise fall back
  // to arbitrary nodes so the attack can still finish its budget.
  const auto first_zero =
      std::find_if(candidates.begin(), candidates.end(),
                   [&](NodeId u) { return benefit.bf[u] <= 0.0; });
  if (first_zero != candidates.begin()) candidates.erase(first_zero, candidates.end());
  const std::size_t take =
      std::min<std::size_t>(candidates.size(), static_cast<std::size_t>(batch_size_));
  candidates.resize(take);
  return candidates;
}

}  // namespace recon::core
