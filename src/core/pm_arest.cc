#include "core/pm_arest.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/branch_tree.h"
#include "util/timer.h"

namespace recon::core {

using graph::NodeId;

namespace {

/// This host runs the greedy-floor selector variants only (the SAA tiers
/// live in the fallback/MIP strategies).
PlannerOptions host_planner_options(PlannerOptions po) {
  po.admissible[static_cast<int>(PlanStrategy::kSaaGreedy)] = false;
  po.admissible[static_cast<int>(PlanStrategy::kSaaExact)] = false;
  return po;
}

}  // namespace

PmArest::PmArest(PmArestOptions options)
    : options_(options), rng_(options.seed),
      planner_(host_planner_options(options.planner)) {
  if (options_.batch_size <= 0) {
    throw std::invalid_argument("PmArest: batch_size must be positive");
  }
  if (options_.vary_k_max > 0 &&
      (options_.vary_k_min <= 0 || options_.vary_k_min > options_.vary_k_max)) {
    throw std::invalid_argument("PmArest: bad varying-k range");
  }
  if (planner_.options().mode == PlannerMode::kFixed &&
      !planner_.options()
           .admissible[static_cast<int>(planner_.options().fixed_strategy)]) {
    throw std::invalid_argument(
        "PmArest: fixed planner strategy must be cached, uncached, or tree");
  }
}

std::string PmArest::name() const {
  std::string n = "PM-AReST(k=";
  if (options_.vary_k_max > 0) {
    n += std::to_string(options_.vary_k_min) + ".." + std::to_string(options_.vary_k_max);
  } else {
    n += std::to_string(options_.batch_size);
  }
  if (options_.allow_retries) n += ",retry";
  if (options_.use_branch_tree) n += ",tree";
  n += ")";
  return n;
}

void PmArest::begin(const sim::Problem& problem, double budget) {
  (void)problem;
  rng_ = util::Rng(options_.seed);
  cache_.reset();
  cache_obs_ = nullptr;
  last_attempts_.clear();
  restored_attempts_.clear();
  restored_acct_dirty_.clear();
  has_restored_cache_ = false;
  planner_.reset();
  if (options_.max_attempts_per_node != 0) {
    attempt_cap_ = options_.max_attempts_per_node;
  } else if (options_.allow_retries) {
    // The paper's auxiliary-graph analysis allows m = K/k requests per node.
    const double k = options_.vary_k_max > 0
                         ? static_cast<double>(options_.vary_k_min)
                         : static_cast<double>(options_.batch_size);
    attempt_cap_ = static_cast<std::uint32_t>(
        std::max(1.0, std::ceil(budget / std::max(1.0, k))));
  } else {
    attempt_cap_ = 1;
  }
}

std::string PmArest::save_state() const {
  const auto w = rng_.state_words();
  std::ostringstream ss;
  ss << "pmarest " << w[0] << ' ' << w[1] << ' ' << w[2] << ' ' << w[3];
  // Cache-accounting section: only written when the planner consumes the
  // accounted work counts (legacy planner-off blobs stay byte-identical). A
  // strategy that was restored but never ran a cached batch re-emits the
  // section it was restored with, so checkpoint→checkpoint round-trips are
  // lossless.
  if (planner_.enabled() && (cache_ != nullptr || has_restored_cache_)) {
    ss << " cache ";
    if (cache_ != nullptr) {
      std::size_t pairs = 0;
      for (const std::uint32_t a : last_attempts_) {
        if (a != 0) ++pairs;
      }
      ss << pairs;
      for (NodeId u = 0; u < static_cast<NodeId>(last_attempts_.size()); ++u) {
        if (last_attempts_[u] != 0) ss << ' ' << u << ':' << last_attempts_[u];
      }
      const std::vector<NodeId> dirty = cache_->accounting_dirty_nodes();
      ss << ' ' << dirty.size();
      for (const NodeId u : dirty) ss << ' ' << u;
    } else {
      ss << restored_attempts_.size();
      for (const auto& [u, a] : restored_attempts_) ss << ' ' << u << ':' << a;
      ss << ' ' << restored_acct_dirty_.size();
      for (const NodeId u : restored_acct_dirty_) ss << ' ' << u;
    }
  }
  if (planner_.enabled()) ss << ' ' << planner_.save_state();
  return ss.str();
}

void PmArest::restore_state(const std::string& blob) {
  std::istringstream ss(blob);
  std::string tag;
  std::array<std::uint64_t, 4> w{};
  if (!(ss >> tag >> w[0] >> w[1] >> w[2] >> w[3]) || tag != "pmarest") {
    throw std::invalid_argument("PmArest::restore_state: bad state blob");
  }
  std::vector<std::pair<NodeId, std::uint32_t>> attempts;
  std::vector<NodeId> acct_dirty;
  bool have_cache = false;
  std::string token;
  if (ss >> token && token == "cache") {
    std::size_t pairs = 0;
    if (!(ss >> pairs)) {
      throw std::invalid_argument(
          "PmArest::restore_state: truncated cache section");
    }
    attempts.reserve(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
      std::string entry;
      std::uint64_t u = 0;
      std::uint64_t a = 0;
      char colon = 0;
      if (!(ss >> entry)) {
        throw std::invalid_argument(
            "PmArest::restore_state: truncated cache section");
      }
      std::istringstream es(entry);
      if (!(es >> u >> colon >> a) || colon != ':' || a == 0 ||
          u > static_cast<std::uint64_t>(graph::kInvalidNode)) {
        throw std::invalid_argument(
            "PmArest::restore_state: bad cache attempt entry");
      }
      attempts.emplace_back(static_cast<NodeId>(u),
                            static_cast<std::uint32_t>(a));
    }
    std::size_t dirty = 0;
    if (!(ss >> dirty)) {
      throw std::invalid_argument(
          "PmArest::restore_state: truncated cache section");
    }
    acct_dirty.reserve(dirty);
    for (std::size_t i = 0; i < dirty; ++i) {
      std::uint64_t u = 0;
      if (!(ss >> u) || u > static_cast<std::uint64_t>(graph::kInvalidNode)) {
        throw std::invalid_argument(
            "PmArest::restore_state: bad cache dirty entry");
      }
      acct_dirty.push_back(static_cast<NodeId>(u));
    }
    have_cache = true;
    if (!(ss >> token)) token.clear();
  }
  if (planner_.enabled()) {
    if (token != "planner") {
      throw std::invalid_argument(
          "PmArest::restore_state: planner enabled but state blob carries no "
          "planner line");
    }
    std::string rest;
    std::getline(ss, rest);
    planner_.restore_state(token + rest);
  }
  rng_.set_state_words(w);
  restored_attempts_ = std::move(attempts);
  restored_acct_dirty_ = std::move(acct_dirty);
  has_restored_cache_ = have_cache;
  cache_.reset();
  cache_obs_ = nullptr;
}

int PmArest::draw_batch_size() {
  if (options_.vary_k_max <= 0) return options_.batch_size;
  return static_cast<int>(
      rng_.range(options_.vary_k_min, options_.vary_k_max));
}

void PmArest::sync_cache(const sim::Observation& obs) {
  if (cache_ == nullptr || cache_obs_ != &obs) {
    cache_ = std::make_unique<CachedSelector>(obs, options_.policy,
                                              options_.cost_sensitive,
                                              options_.pool);
    cache_obs_ = &obs;
    last_attempts_.assign(obs.problem().graph.num_nodes(), 0);
    // A fresh cache starts all-dirty, so pre-existing observation state is
    // picked up on first scoring; only record current attempt counters.
    if (has_restored_cache_) {
      // Resume: re-seed the attempt counters and the accounting overlay from
      // the checkpoint. The real dirty bitmap stays all-dirty (the rebuilt
      // cache must rescore everything once for correctness), but the
      // accounting side replays as if the cache had never been torn down, so
      // the diff below and the per-batch accounted deltas exactly match the
      // uninterrupted run's notifications and work counts.
      for (const auto& [u, a] : restored_attempts_) {
        if (static_cast<std::size_t>(u) < last_attempts_.size()) {
          last_attempts_[u] = a;
        }
      }
      cache_->restore_accounting(restored_acct_dirty_);
      restored_attempts_.clear();
      restored_acct_dirty_.clear();
      has_restored_cache_ = false;
    }
  }
  const NodeId n = obs.problem().graph.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    const std::uint32_t a = obs.attempts(u);
    if (a == last_attempts_[u]) continue;
    last_attempts_[u] = a;
    if (obs.is_friend(u)) {
      cache_->notify_accept(u);
    } else {
      cache_->notify_reject(u);
    }
  }
}

std::vector<NodeId> PmArest::planned_batch(const sim::Observation& obs,
                                           double remaining_budget, int k) {
  const auto& g = obs.problem().graph;
  const std::vector<NodeId> candidates = batch_candidates(
      obs, options_.allow_retries, attempt_cap_, remaining_budget);
  if (candidates.empty()) return {};

  PlanFeatures f;
  f.batch_size = k;
  f.frontier_size = candidates.size();
  for (const NodeId u : candidates) {
    const auto deg = static_cast<double>(g.degree(u));
    f.mean_degree += deg;
    f.max_degree = std::max(f.max_degree, deg);
  }
  f.mean_degree /= static_cast<double>(candidates.size());

  const PlanDecision decision = planner_.plan(f);
  const double row = 1.0 + f.mean_degree;
  const util::WallTimer timer;
  std::vector<NodeId> batch;
  double actual_work = 0.0;
  switch (decision.strategy) {
    case PlanStrategy::kCollapsedCached: {
      sync_cache(obs);
      const std::uint64_t before = cache_->accounted_rescore_count();
      batch = cache_->select_batch(k, options_.allow_retries, attempt_cap_,
                                   remaining_budget);
      // Observed work = candidates accounted as rescored this batch (the
      // dirty region), in the same row-walk units as the estimate — the
      // ratio EWMA converges to the cache's dirty fraction. The *accounted*
      // count is checkpointable: unlike the raw rescore counter it excludes
      // the one-off cold rebuild a resume incurs, so resumed planner state
      // is bit-identical to the uninterrupted run's.
      actual_work =
          static_cast<double>(cache_->accounted_rescore_count() - before) *
          row;
      break;
    }
    case PlanStrategy::kCollapsedUncached: {
      BatchSelectOptions bs;
      bs.batch_size = k;
      bs.policy = options_.policy;
      bs.cost_sensitive = options_.cost_sensitive;
      bs.allow_retries = options_.allow_retries;
      bs.max_attempts_per_node = attempt_cap_;
      bs.remaining_budget = remaining_budget;
      bs.pool = options_.pool;
      bs.calibration = &planner_.shard_calibration();
      batch = batch_select(obs, bs);
      actual_work = static_cast<double>(f.frontier_size) * row;
      break;
    }
    case PlanStrategy::kBranchTree: {
      BranchTreeOptions bt;
      bt.batch_size = k;
      bt.policy = options_.policy;
      bt.allow_retries = options_.allow_retries;
      bt.max_attempts_per_node = attempt_cap_;
      bt.pool = options_.pool;
      batch = branch_tree_select(obs, bt);
      actual_work = decision.estimated_work;  // closed-form 2^k enumeration
      break;
    }
    default:
      throw std::logic_error("PmArest: planner chose an inadmissible strategy");
  }
  planner_.observe(decision, actual_work, timer.nanos(),
                   /*overran_deadline=*/false);
  return batch;
}

std::vector<NodeId> PmArest::next_batch(const sim::Observation& obs,
                                        double remaining_budget) {
  const int k = draw_batch_size();
  if (planner_.enabled() && !options_.parallel_eager) {
    return planned_batch(obs, remaining_budget, k);
  }
  if (options_.use_branch_tree) {
    BranchTreeOptions bt;
    bt.batch_size = k;
    bt.policy = options_.policy;
    bt.allow_retries = options_.allow_retries;
    bt.max_attempts_per_node = attempt_cap_;
    bt.pool = options_.pool;
    return branch_tree_select(obs, bt);
  }
  // The cache composes with the pool: parallel rescore of dirty candidates,
  // then the deterministic sequential pick loop. Parallel-eager mode bypasses
  // the cache (it rescores everything each round anyway).
  if (options_.use_cache && !options_.parallel_eager) {
    sync_cache(obs);
    return cache_->select_batch(k, options_.allow_retries, attempt_cap_,
                                remaining_budget);
  }
  BatchSelectOptions bs;
  bs.batch_size = k;
  bs.policy = options_.policy;
  bs.cost_sensitive = options_.cost_sensitive;
  bs.allow_retries = options_.allow_retries;
  bs.max_attempts_per_node = attempt_cap_;
  bs.remaining_budget = remaining_budget;
  bs.pool = options_.pool;
  bs.parallel_eager = options_.parallel_eager;
  return batch_select(obs, bs);
}

}  // namespace recon::core
