// Multi-attacker extension (paper Sec. II-B, footnote 1: "our solutions are
// readily extended to the case of multiple attackers").
//
// A colluding fleet of A bot accounts shares all intelligence: revealed
// edges, friend/FoF sets and harvested benefit are pooled (a node yields its
// benefit once, to the fleet). What stays per-bot is the social leverage —
// u's acceptance probability for bot a depends on u's mutual friends with
// *that bot* — and the per-(bot, node) attempt history.
//
// Each round the fleet jointly greedily selects one batch of
// A × k_per_attacker requests using the collapsed expectation tree: every
// (candidate, bot) pair is scored with the bot-specific q, the best pair is
// taken, and the batch state is updated with that q. A node is requested by
// at most one bot per round.
#pragma once

#include <cstdint>
#include <vector>

#include "core/marginal.h"
#include "sim/problem.h"
#include "sim/trace.h"
#include "sim/world.h"

namespace recon::core {

/// Pooled observation plus per-bot leverage state.
class MultiObservation {
 public:
  MultiObservation(const sim::Problem& problem, int num_attackers);

  const sim::Observation& shared() const noexcept { return shared_; }
  int num_attackers() const noexcept { return num_attackers_; }

  /// Acceptance probability of u for bot a (mutual friends with bot a).
  double acceptance_prob(int attacker, graph::NodeId u) const;

  std::uint32_t attempts(int attacker, graph::NodeId u) const {
    return attempts_[index(attacker, u)];
  }
  std::uint32_t mutual_friends(int attacker, graph::NodeId u) const {
    return mutual_[index(attacker, u)];
  }

  bool requestable(graph::NodeId u, bool allow_retries) const {
    return shared_.requestable(u, allow_retries);
  }

  /// Bot `attacker` friended u; reveals u's neighborhood into the shared
  /// observation (benefit counted once for the fleet) and credits the bot's
  /// mutual-friend leverage.
  sim::BenefitBreakdown record_accept(int attacker, graph::NodeId u,
                                      std::span<const graph::NodeId> true_neighbors);
  void record_reject(int attacker, graph::NodeId u);

 private:
  std::size_t index(int attacker, graph::NodeId u) const {
    return static_cast<std::size_t>(attacker) *
               shared_.problem().graph.num_nodes() +
           u;
  }

  sim::Observation shared_;
  int num_attackers_;
  std::vector<std::uint32_t> mutual_;    ///< A × n
  std::vector<std::uint32_t> attempts_;  ///< A × n
};

struct MultiAttackOptions {
  int num_attackers = 3;
  int batch_per_attacker = 5;
  bool allow_retries = false;
  std::uint32_t max_attempts_per_node = 0;  ///< per (bot, node); 0 = 1 / auto
  MarginalPolicy policy = MarginalPolicy::kWeighted;
};

struct MultiAttackResult {
  sim::AttackTrace combined;                 ///< fleet-level trace
  /// Per-bot view of the same attack: bot a's trace contains, per fleet
  /// round, only the requests that bot sent (empty rounds included so
  /// timelines align across bots). Benefit deltas are attributed to the bot
  /// whose accepted requests produced them; FoF/edge spillovers from other
  /// bots' accepts appear only in `combined`. Used to evaluate per-account
  /// defenses (rate limits are per-identity).
  std::vector<sim::AttackTrace> per_bot;
  std::vector<std::size_t> requests_per_bot; ///< request counts per attacker
  std::vector<std::size_t> accepts_per_bot;
};

/// Runs a multi-attacker Max-Crawling attack with total budget `budget`
/// (requests across the whole fleet). Each bot's acceptance randomness is an
/// independent per-(bot, node, attempt) draw from the shared World seed.
MultiAttackResult run_multi_attack(const sim::Problem& problem, const sim::World& world,
                                   const MultiAttackOptions& options, double budget);

}  // namespace recon::core
