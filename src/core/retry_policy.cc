#include "core/retry_policy.h"

namespace recon::core {

const char* retry_backoff_name(RetryBackoff b) noexcept {
  switch (b) {
    case RetryBackoff::kNone: return "none";
    case RetryBackoff::kFixed: return "fixed";
    case RetryBackoff::kExponential: return "exponential";
  }
  return "unknown";
}

RetryBackoff parse_retry_backoff(const std::string& name) {
  if (name == "none") return RetryBackoff::kNone;
  if (name == "fixed") return RetryBackoff::kFixed;
  if (name == "exponential" || name == "exp") return RetryBackoff::kExponential;
  throw std::invalid_argument("unknown retry backoff '" + name +
                              "' (expected none|fixed|exponential)");
}

}  // namespace recon::core
