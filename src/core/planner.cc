#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace recon::core {

namespace {

/// Exact double <-> u64 round-trip for checkpoint lines: the EWMAs must
/// restore bit-identically or a resumed planner could diverge from the
/// uninterrupted run on the first post-resume comparison.
std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

constexpr double kEwmaKeep = 0.75;  ///< same blend as the shard calibration

bool is_saa_tier(PlanStrategy s) noexcept {
  return s == PlanStrategy::kSaaGreedy || s == PlanStrategy::kSaaExact;
}

}  // namespace

const char* plan_strategy_name(PlanStrategy s) noexcept {
  switch (s) {
    case PlanStrategy::kCollapsedCached: return "cached";
    case PlanStrategy::kCollapsedUncached: return "uncached";
    case PlanStrategy::kBranchTree: return "tree";
    case PlanStrategy::kSaaGreedy: return "saa";
    case PlanStrategy::kSaaExact: return "exact";
  }
  return "?";
}

bool parse_plan_strategy(const std::string& token, PlanStrategy* out) noexcept {
  for (int i = 0; i < kNumPlanStrategies; ++i) {
    const auto s = static_cast<PlanStrategy>(i);
    if (token == plan_strategy_name(s)) {
      *out = s;
      return true;
    }
  }
  if (token == "greedy") {  // the fallback ladder's floor-tier name
    *out = PlanStrategy::kCollapsedUncached;
    return true;
  }
  return false;
}

void ShardCalibration::record_pass(std::uint64_t pass_nanos,
                                   double pass_work) noexcept {
  if (frozen_.load(std::memory_order_relaxed)) return;
  if (pass_work <= 0.0 || pass_nanos == 0) return;
  const double observed = static_cast<double>(pass_nanos) / pass_work;
  const double old =
      static_cast<double>(ewma_nanos_.load(std::memory_order_relaxed));
  const double blended = kEwmaKeep * old + (1.0 - kEwmaKeep) * observed;
  ewma_nanos_.store(static_cast<std::uint64_t>(std::max(1.0, blended)),
                    std::memory_order_relaxed);
}

ShardCalibration& process_shard_calibration() noexcept {
  static ShardCalibration calibration;
  return calibration;
}

void reset_shard_calibration_for_test() noexcept {
  process_shard_calibration().reset();
}

ExecutionPlanner::ExecutionPlanner(PlannerOptions options) : options_(options) {
  // calibrate_time=false promises "no wall-clock mutates checkpointed
  // state"; the shard EWMA is checkpointed state, so freeze it too.
  shard_.set_frozen(!options_.calibrate_time);
}

double ExecutionPlanner::estimate_work(PlanStrategy s,
                                       const PlanFeatures& f) const {
  const double frontier = static_cast<double>(f.frontier_size);
  const double row = 1.0 + f.mean_degree;  // one candidate's adjacency walk
  const double k = static_cast<double>(std::max(1, f.batch_size));
  const double scenarios = static_cast<double>(f.scenario_count);
  switch (s) {
    case PlanStrategy::kCollapsedCached:
    case PlanStrategy::kCollapsedUncached:
      // One full scoring pass; the cached variant's learned work-ratio
      // converges to its dirty fraction, which is its whole advantage.
      return frontier * row;
    case PlanStrategy::kBranchTree: {
      // k greedy rounds, round j scoring the frontier across 2^j branches:
      // sum_j 2^j = 2^k - 1 full passes. Clamped at the selector's own
      // enumeration bound so the estimate cannot overflow.
      const double branches =
          std::exp2(std::min(k, 24.0)) - 1.0;
      return frontier * row * branches;
    }
    case PlanStrategy::kSaaGreedy:
      // Lazy greedy: ~frontier singleton evaluations + repush rescores, each
      // touching every scenario.
      return scenarios * (frontier + k * k) * row;
    case PlanStrategy::kSaaExact:
      // Greedy incumbent + candidate ranking + B&B search; the tree size is
      // the learned part, seeded at ~(k+1) greedy-equivalents.
      return scenarios * (frontier + k * k) * row * (k + 1.0);
  }
  return 0.0;
}

double ExecutionPlanner::predicted_seconds(PlanStrategy s,
                                           double predicted_work) const noexcept {
  const auto& m = models_[static_cast<int>(s)];
  return predicted_work * m.nanos_per_unit * 1e-9;
}

PlanDecision ExecutionPlanner::plan(const PlanFeatures& f) const {
  auto decide = [&](PlanStrategy s) {
    PlanDecision d;
    d.strategy = s;
    d.estimated_work = estimate_work(s, f);
    d.predicted_work =
        d.estimated_work * models_[static_cast<int>(s)].work_ratio;
    d.predicted_seconds = predicted_seconds(s, d.predicted_work);
    return d;
  };
  if (options_.mode == PlannerMode::kFixed) {
    return decide(options_.fixed_strategy);
  }

  const auto admissible = [&](PlanStrategy s) {
    if (!options_.admissible[static_cast<int>(s)]) return false;
    if (is_saa_tier(s) && f.scenario_count == 0) return false;
    // branch_tree_select enumerates 2^k branches and refuses k > 20.
    if (s == PlanStrategy::kBranchTree && f.batch_size > 20) return false;
    // Near-exhausted campaign budget bars the exact B&B tier: with fewer
    // than two full batches of requests left (unit cost per request), the
    // most expensive solve would be spent on the final, mostly-truncated
    // batch. Deterministic campaign state, so plans stay reproducible.
    if (s == PlanStrategy::kSaaExact && f.remaining_budget > 0.0 &&
        f.remaining_budget < 2.0 * static_cast<double>(f.batch_size)) {
      return false;
    }
    return true;
  };
  const auto fits_deadline = [&](const PlanDecision& d) {
    return f.deadline_seconds <= 0.0 ||
           d.predicted_seconds <= f.deadline_seconds;
  };

  // Solver tiers, best quality first, gated by the sticky tier position and
  // the predicted-vs-deadline fit.
  if (tier_position_ <= 0 && admissible(PlanStrategy::kSaaExact)) {
    const PlanDecision d = decide(PlanStrategy::kSaaExact);
    if (fits_deadline(d)) return d;
  }
  if (tier_position_ <= 1 && admissible(PlanStrategy::kSaaGreedy)) {
    const PlanDecision d = decide(PlanStrategy::kSaaGreedy);
    if (fits_deadline(d)) return d;
  }

  // Greedy floor: cheapest admissible selector variant by predicted work
  // (all floor variants share the same work unit, so no clock enters the
  // comparison). Ties break toward the lower enum value.
  bool have = false;
  PlanDecision best;
  for (const PlanStrategy s :
       {PlanStrategy::kCollapsedCached, PlanStrategy::kCollapsedUncached,
        PlanStrategy::kBranchTree}) {
    if (!admissible(s)) continue;
    const PlanDecision d = decide(s);
    if (!have || d.predicted_work < best.predicted_work) {
      best = d;
      have = true;
    }
  }
  if (have) return best;

  // No floor variant is admissible (pure solver hosts): fall back to the
  // cheapest admissible SAA tier even though it missed the deadline.
  for (const PlanStrategy s :
       {PlanStrategy::kSaaGreedy, PlanStrategy::kSaaExact}) {
    if (admissible(s)) return decide(s);
  }
  throw std::logic_error("ExecutionPlanner::plan: no admissible strategy");
}

void ExecutionPlanner::observe(const PlanDecision& decision, double actual_work,
                               std::uint64_t nanos, bool overran_deadline) {
  CostModel& m = models_[static_cast<int>(decision.strategy)];
  if (decision.estimated_work > 0.0 && actual_work > 0.0) {
    const double ratio = actual_work / decision.estimated_work;
    m.work_ratio = kEwmaKeep * m.work_ratio + (1.0 - kEwmaKeep) * ratio;
  }
  if (options_.calibrate_time && actual_work > 0.0 && nanos > 0) {
    const double npu = static_cast<double>(nanos) / actual_work;
    m.nanos_per_unit =
        std::max(1e-3, kEwmaKeep * m.nanos_per_unit + (1.0 - kEwmaKeep) * npu);
  }
  ++m.observations;

  if (overran_deadline && is_saa_tier(decision.strategy)) {
    const int demoted =
        decision.strategy == PlanStrategy::kSaaExact ? 1 : 2;
    tier_position_ = std::max(tier_position_, demoted);
    batches_since_demotion_ = 0;
  } else if (tier_position_ > 0) {
    ++batches_since_demotion_;
    if (batches_since_demotion_ >= kTierProbeInterval) {
      --tier_position_;
      batches_since_demotion_ = 0;
    }
  }
  log_.push_back(decision);
}

std::string ExecutionPlanner::save_state() const {
  std::ostringstream ss;
  ss << "planner 1 " << tier_position_ << ' ' << batches_since_demotion_ << ' '
     << shard_.raw() << ' ' << kNumPlanStrategies;
  for (const CostModel& m : models_) {
    ss << ' ' << double_bits(m.work_ratio) << ' '
       << double_bits(m.nanos_per_unit) << ' ' << m.observations;
  }
  return ss.str();
}

void ExecutionPlanner::restore_state(const std::string& blob) {
  std::istringstream ss(blob);
  std::string tag;
  int version = 0;
  int tier = 0;
  std::uint64_t since = 0;
  std::uint64_t shard_raw = 0;
  int count = 0;
  if (!(ss >> tag >> version >> tier >> since >> shard_raw >> count) ||
      tag != "planner" || version != 1 || tier < 0 || tier > 2 ||
      count != kNumPlanStrategies) {
    throw std::invalid_argument("ExecutionPlanner::restore_state: bad state blob");
  }
  std::array<CostModel, kNumPlanStrategies> models;
  for (CostModel& m : models) {
    std::uint64_t ratio_bits = 0;
    std::uint64_t npu_bits = 0;
    if (!(ss >> ratio_bits >> npu_bits >> m.observations)) {
      throw std::invalid_argument(
          "ExecutionPlanner::restore_state: truncated state blob");
    }
    m.work_ratio = bits_double(ratio_bits);
    m.nanos_per_unit = bits_double(npu_bits);
    if (!std::isfinite(m.work_ratio) || !std::isfinite(m.nanos_per_unit)) {
      throw std::invalid_argument(
          "ExecutionPlanner::restore_state: non-finite cost model");
    }
  }
  tier_position_ = tier;
  batches_since_demotion_ = since;
  shard_.set_raw(shard_raw);
  models_ = models;
  log_.clear();
}

void ExecutionPlanner::reset() {
  models_ = {};
  tier_position_ = 0;
  batches_since_demotion_ = 0;
  shard_.reset();
  log_.clear();
}

}  // namespace recon::core
