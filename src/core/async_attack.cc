#include "core/async_attack.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "core/batch_select.h"
#include "core/batch_state.h"
#include "util/rng.h"

namespace recon::core {

using graph::NodeId;

namespace {

double draw_delay(double mean, ResponseDelayModel model, util::Rng& rng) {
  switch (model) {
    case ResponseDelayModel::kFixed:
      return mean;
    case ResponseDelayModel::kExponential:
      return -mean * std::log(std::max(1e-300, 1.0 - rng.uniform()));
  }
  return mean;
}

/// An in-flight request.
struct Outstanding {
  double completion_time;
  NodeId node;
  double q_at_send;
  std::uint32_t attempt;
  sim::RequestOutcome outcome = sim::RequestOutcome::kDelivered;

  bool operator>(const Outstanding& o) const noexcept {
    if (completion_time != o.completion_time) {
      return completion_time > o.completion_time;
    }
    return node > o.node;
  }
};

/// Best next request given the observation and the in-flight set (linear
/// scan with the collapsed batch-state correction).
NodeId best_candidate(const sim::Observation& obs, const BatchState& state,
                      const AsyncAttackOptions& options, std::uint32_t attempt_cap) {
  const auto candidates = batch_candidates(obs, options.allow_retries, attempt_cap,
                                           /*max_cost=*/1e18);
  NodeId best = graph::kInvalidNode;
  double best_score = 0.0;
  for (NodeId u : candidates) {
    if (state.is_selected(u)) continue;  // already in flight
    const double s = state.gamma(obs, u, options.policy);
    if (s > best_score || (s == best_score && best != graph::kInvalidNode && u < best)) {
      best_score = s;
      best = u;
    }
  }
  return best_score > 0.0 ? best : graph::kInvalidNode;
}

}  // namespace

AsyncAttackResult run_async_attack(const sim::Problem& problem,
                                   const sim::World& world,
                                   const AsyncAttackOptions& options, double budget) {
  if (budget <= 0.0) {
    throw std::invalid_argument("run_async_attack: budget must be positive");
  }
  if (options.window <= 0) {
    throw std::invalid_argument("run_async_attack: window must be positive");
  }
  if (options.mean_delay < 0.0) {
    throw std::invalid_argument("run_async_attack: negative delay");
  }
  if (options.retry != nullptr) options.retry->validate();
  const bool retry_active = options.retry != nullptr && options.retry->active();
  sim::FaultModel* fault = options.fault;
  const double timeout_seconds = options.timeout_seconds > 0.0
                                     ? options.timeout_seconds
                                     : 4.0 * options.mean_delay;
  std::uint32_t attempt_cap = options.max_attempts_per_node;
  if (attempt_cap == 0) {
    attempt_cap = options.allow_retries
                      ? static_cast<std::uint32_t>(std::max(1.0, std::ceil(budget)))
                      : 1;
  }

  sim::Observation obs(problem);
  util::Rng delay_rng(options.seed);
  AsyncAttackResult result;
  std::priority_queue<Outstanding, std::vector<Outstanding>, std::greater<>> in_flight;

  double now = 0.0;
  double spent = 0.0;
  // The in-flight set as a collapsed batch state; priority_queue has no
  // iteration, so a mirror list backs the rebuilds after each resolution.
  BatchState state(problem.graph.num_nodes());
  std::vector<Outstanding> mirror;

  auto rebuild = [&] {
    state.reset();
    for (const auto& o : mirror) state.select(obs, o.node, o.q_at_send);
  };

  auto send_one = [&]() -> bool {
    if (fault != nullptr && fault->suspended()) return false;  // pause sending
    const NodeId u = best_candidate(obs, state, options, attempt_cap);
    if (u == graph::kInvalidNode) return false;
    const double cost = problem.cost_of(u);
    if (spent + cost > budget + 1e-9) return false;
    Outstanding o;
    o.node = u;
    o.q_at_send = obs.acceptance_prob(u);
    o.attempt = obs.attempts(u);
    // The delay is always drawn, so the RNG stream (and hence every zero-
    // fault trace) is unchanged by enabling the fault model.
    const double delay = draw_delay(options.mean_delay, options.delay_model,
                                    delay_rng);
    if (fault != nullptr) {
      o.outcome = fault->resolve(u);
      if (o.outcome == sim::RequestOutcome::kSuspended) {
        // This send tripped the rate limit: it bounces for free and the
        // attacker pauses until the lockout expires.
        return false;
      }
    }
    spent += cost;
    o.completion_time =
        now + (o.outcome == sim::RequestOutcome::kTimeout ? timeout_seconds
                                                          : delay);
    state.select(obs, u, o.q_at_send);
    mirror.push_back(o);
    in_flight.push(o);
    ++result.requests_sent;
    return true;
  };

  for (;;) {
    // Fill the window.
    while (static_cast<int>(in_flight.size()) < options.window && send_one()) {
    }
    if (in_flight.empty()) {
      // Nothing outstanding. If the account is suspended, wait the lockout
      // out (nominal mean_delay of wall time per remaining tick) and retry.
      if (fault != nullptr && fault->suspended()) {
        const std::uint64_t wait = fault->suspended_until() - fault->tick();
        fault->advance_ticks(wait);
        now += options.mean_delay * static_cast<double>(wait);
        result.makespan_seconds = now;
        obs.set_clock(now);
        continue;
      }
      // If nodes are merely cooling down under backoff, jump to the
      // earliest retry time.
      if (retry_active) {
        const double next = obs.next_retry_time(options.allow_retries);
        if (next != std::numeric_limits<double>::infinity()) {
          now = std::max(now, next);
          result.makespan_seconds = now;
          obs.set_clock(now);
          continue;
        }
      }
      break;  // nothing outstanding and nothing to send
    }
    // Advance time to the next response.
    const Outstanding done = in_flight.top();
    in_flight.pop();
    mirror.erase(std::find_if(mirror.begin(), mirror.end(), [&](const Outstanding& o) {
      return o.node == done.node && o.completion_time == done.completion_time;
    }));
    now = done.completion_time;
    result.makespan_seconds = now;
    obs.set_clock(now);

    sim::BatchRecord record;
    record.requests = {done.node};
    const sim::BenefitBreakdown before = obs.benefit();
    bool accepted = false;
    bool attempt_consumed = false;
    switch (done.outcome) {
      case sim::RequestOutcome::kDelivered:
        // NOTE: the attempt index was frozen at send time; the acceptance
        // probability too (the user decides based on the state when they saw
        // the request).
        accepted = world.attempt_accept(done.node, done.attempt, done.q_at_send);
        if (accepted) {
          ++result.accepts;
          obs.record_accept(done.node, world.true_neighbors(done.node));
        } else {
          obs.record_reject(done.node);
          attempt_consumed = true;
        }
        break;
      case sim::RequestOutcome::kTimeout:
      case sim::RequestOutcome::kDropped:
        obs.record_no_response(done.node);
        attempt_consumed = true;
        break;
      case sim::RequestOutcome::kThrottled:
        break;  // cost charged at send; no attempt consumed
      case sim::RequestOutcome::kSuspended:
        break;  // unreachable: suspended sends are never enqueued
    }
    record.accepted = {static_cast<std::uint8_t>(accepted ? 1 : 0)};
    if (done.outcome != sim::RequestOutcome::kDelivered) {
      record.outcome = {static_cast<std::uint8_t>(done.outcome)};
    }
    if (retry_active && !accepted) {
      const std::uint32_t attempt = attempt_consumed
                                        ? obs.attempts(done.node)
                                        : obs.attempts(done.node) + 1;
      const double delay = options.retry->delay_for(done.node, attempt);
      if (delay > 0.0) obs.set_retry_after(done.node, now + delay);
    }
    record.delta = obs.benefit() - before;
    record.cumulative = obs.benefit();
    record.cost = problem.cost_of(done.node);
    record.cumulative_cost =
        result.trace.batches.empty()
            ? record.cost
            : result.trace.batches.back().cumulative_cost + record.cost;
    result.trace.batches.push_back(std::move(record));
    if (fault != nullptr) fault->advance_ticks(1);
    // The observation changed: rebuild the in-flight expectation state.
    rebuild();
  }
  return result;
}

}  // namespace recon::core
