#include "core/async_attack.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>

#include "core/batch_select.h"
#include "core/batch_state.h"
#include "core/checkpoint_chain.h"
#include "util/rng.h"

namespace recon::core {

using graph::NodeId;

namespace {

double draw_delay(double mean, ResponseDelayModel model, util::Rng& rng) {
  switch (model) {
    case ResponseDelayModel::kFixed:
      return mean;
    case ResponseDelayModel::kExponential:
      return -mean * std::log(std::max(1e-300, 1.0 - rng.uniform()));
  }
  return mean;
}

/// An in-flight request.
struct Outstanding {
  double completion_time;
  NodeId node;
  double q_at_send;
  std::uint32_t attempt;
  sim::RequestOutcome outcome = sim::RequestOutcome::kDelivered;

  bool operator>(const Outstanding& o) const noexcept {
    if (completion_time != o.completion_time) {
      return completion_time > o.completion_time;
    }
    return node > o.node;
  }
};

/// Best next request given the observation and the in-flight set (linear
/// scan with the collapsed batch-state correction).
NodeId best_candidate(const sim::Observation& obs, const BatchState& state,
                      const AsyncAttackOptions& options, std::uint32_t attempt_cap) {
  const auto candidates = batch_candidates(obs, options.allow_retries, attempt_cap,
                                           /*max_cost=*/1e18);
  NodeId best = graph::kInvalidNode;
  double best_score = 0.0;
  for (NodeId u : candidates) {
    if (state.is_selected(u)) continue;  // already in flight
    const double s = state.gamma(obs, u, options.policy);
    if (s > best_score || (s == best_score && best != graph::kInvalidNode && u < best)) {
      best_score = s;
      best = u;
    }
  }
  return best_score > 0.0 ? best : graph::kInvalidNode;
}

}  // namespace

AsyncAttackResult run_async_attack(const sim::Problem& problem,
                                   const sim::World& world,
                                   const AsyncAttackOptions& options, double budget) {
  if (budget <= 0.0) {
    throw std::invalid_argument("run_async_attack: budget must be positive");
  }
  if (options.window <= 0) {
    throw std::invalid_argument("run_async_attack: window must be positive");
  }
  if (options.mean_delay < 0.0) {
    throw std::invalid_argument("run_async_attack: negative delay");
  }
  if (options.retry != nullptr) options.retry->validate();
  if (options.checkpoint_every_events > 0 && options.checkpoint_path.empty() &&
      options.checkpoint_chain == nullptr) {
    throw std::invalid_argument(
        "run_async_attack: checkpoint_every_events requires checkpoint_path "
        "or checkpoint_chain");
  }
  const bool retry_active = options.retry != nullptr && options.retry->active();
  sim::FaultModel* fault = options.fault;
  const double timeout_seconds = options.timeout_seconds > 0.0
                                     ? options.timeout_seconds
                                     : 4.0 * options.mean_delay;
  std::uint32_t attempt_cap = options.max_attempts_per_node;
  if (attempt_cap == 0) {
    if (!options.allow_retries) {
      attempt_cap = 1;
    } else {
      // The cheapest node bounds how many attempts the budget can possibly
      // fund; unit costs reduce this to the old ceil(budget) cap.
      double min_cost = 1.0;
      if (!problem.cost.empty()) {
        min_cost = *std::min_element(problem.cost.begin(), problem.cost.end());
      }
      constexpr auto kMaxCap = std::numeric_limits<std::uint32_t>::max();
      if (min_cost <= 0.0) {
        attempt_cap = kMaxCap;
      } else {
        const double cap = std::ceil(budget / min_cost);
        attempt_cap = cap >= static_cast<double>(kMaxCap)
                          ? kMaxCap
                          : static_cast<std::uint32_t>(std::max(1.0, cap));
      }
    }
  }

  sim::Observation obs(problem);
  util::Rng delay_rng(options.seed);
  AsyncAttackResult result;
  std::priority_queue<Outstanding, std::vector<Outstanding>, std::greater<>> in_flight;

  double now = 0.0;
  double spent = 0.0;
  std::uint64_t events = 0;  ///< resolved events (the v2 record's `round`)
  // The in-flight set as a collapsed batch state; priority_queue has no
  // iteration, so a mirror list backs the rebuilds after each resolution.
  BatchState state(problem.graph.num_nodes());
  std::vector<Outstanding> mirror;

  auto rebuild = [&] {
    state.reset();
    for (const auto& o : mirror) state.select(obs, o.node, o.q_at_send);
  };

  if (options.resume != nullptr) {
    const AttackCheckpoint& cp = *options.resume;
    if (cp.budget != budget) {
      throw std::runtime_error("run_async_attack: resume budget mismatch");
    }
    if (cp.world_seed != world.seed()) {
      throw std::runtime_error(
          "run_async_attack: resume world seed mismatch (rebuild the world "
          "from the checkpointed seed)");
    }
    if (cp.has_async && cp.async.window != options.window) {
      throw std::runtime_error(
          "run_async_attack: resume window mismatch (checkpoint W=" +
          std::to_string(cp.async.window) + ", options W=" +
          std::to_string(options.window) + ")");
    }
    apply_async_checkpoint(cp, obs, fault);
    delay_rng.restore_state(cp.async.rng_state);
    now = cp.async.now;
    spent = cp.spent;
    events = cp.round;
    result.trace = cp.trace;
    result.requests_sent = static_cast<std::size_t>(cp.async.requests_sent);
    result.accepts = static_cast<std::size_t>(cp.async.accepts);
    result.makespan_seconds = now;
    // Re-enqueue the outstanding requests in send order (the mirror's order
    // fixes the order their batch-state corrections are applied).
    for (const auto& r : cp.async.in_flight) {
      Outstanding o;
      o.completion_time = r.completion_time;
      o.node = r.node;
      o.q_at_send = r.q_at_send;
      o.attempt = r.attempt;
      o.outcome = static_cast<sim::RequestOutcome>(r.outcome);
      mirror.push_back(o);
      in_flight.push(o);
    }
    rebuild();
  }

  const auto snapshot_async = [&] {
    AsyncCheckpointState a;
    a.window = options.window;
    a.now = now;
    a.requests_sent = result.requests_sent;
    a.accepts = result.accepts;
    a.rng_state = delay_rng.save_state();
    a.in_flight.reserve(mirror.size());
    for (const auto& o : mirror) {
      InFlightRequest r;
      r.node = o.node;
      r.attempt = o.attempt;
      r.outcome = static_cast<std::uint8_t>(o.outcome);
      r.q_at_send = o.q_at_send;
      r.completion_time = o.completion_time;
      a.in_flight.push_back(r);
    }
    return a;
  };

  const auto maybe_checkpoint = [&](bool force) {
    if (options.checkpoint_path.empty() && options.checkpoint_chain == nullptr) {
      return;
    }
    const bool periodic = options.checkpoint_every_events > 0 &&
                          events % options.checkpoint_every_events == 0;
    if (!force && !periodic) return;
    const AttackCheckpoint cp =
        make_async_checkpoint(obs, snapshot_async(), result.trace, budget,
                              spent, events, world.seed(), fault);
    if (options.checkpoint_chain != nullptr) {
      options.checkpoint_chain->write(cp);
    } else {
      write_checkpoint_file(options.checkpoint_path, cp);
    }
  };

  auto send_one = [&]() -> bool {
    if (fault != nullptr && fault->suspended()) return false;  // pause sending
    const NodeId u = best_candidate(obs, state, options, attempt_cap);
    if (u == graph::kInvalidNode) return false;
    const double cost = problem.cost_of(u);
    if (spent + cost > budget + 1e-9) return false;
    Outstanding o;
    o.node = u;
    o.q_at_send = obs.acceptance_prob(u);
    o.attempt = obs.attempts(u);
    // The delay is always drawn, so the RNG stream (and hence every zero-
    // fault trace) is unchanged by enabling the fault model.
    const double delay = draw_delay(options.mean_delay, options.delay_model,
                                    delay_rng);
    if (fault != nullptr) {
      o.outcome = fault->resolve(u);
      if (o.outcome == sim::RequestOutcome::kSuspended) {
        // This send tripped the rate limit: it bounces for free and the
        // attacker pauses until the lockout expires.
        return false;
      }
    }
    spent += cost;
    o.completion_time =
        now + (o.outcome == sim::RequestOutcome::kTimeout ? timeout_seconds
                                                          : delay);
    state.select(obs, u, o.q_at_send);
    mirror.push_back(o);
    in_flight.push(o);
    ++result.requests_sent;
    return true;
  };

  for (;;) {
    if (options.should_stop && options.should_stop()) {
      maybe_checkpoint(/*force=*/true);
      break;
    }
    // Fill the window.
    while (static_cast<int>(in_flight.size()) < options.window && send_one()) {
    }
    if (in_flight.empty()) {
      // Nothing outstanding. If the account is suspended, wait the lockout
      // out (nominal mean_delay of wall time per remaining tick) and retry.
      if (fault != nullptr && fault->suspended()) {
        const std::uint64_t wait = fault->suspended_until() - fault->tick();
        fault->advance_ticks(wait);
        now += options.mean_delay * static_cast<double>(wait);
        result.makespan_seconds = now;
        obs.set_clock(now);
        continue;
      }
      // If nodes are merely cooling down under backoff, jump to the
      // earliest retry time.
      if (retry_active) {
        const double next = obs.next_retry_time(options.allow_retries);
        if (next != std::numeric_limits<double>::infinity()) {
          now = std::max(now, next);
          result.makespan_seconds = now;
          obs.set_clock(now);
          continue;
        }
      }
      break;  // nothing outstanding and nothing to send
    }
    // Advance time to the next response.
    const Outstanding done = in_flight.top();
    in_flight.pop();
    // Erasing end() (mirror/queue disagreement) would be UB — that can only
    // mean a bookkeeping bug or a corrupted resume, so fail loudly instead.
    const auto it =
        std::find_if(mirror.begin(), mirror.end(), [&](const Outstanding& o) {
          return o.node == done.node && o.completion_time == done.completion_time;
        });
    if (it == mirror.end()) {
      throw std::logic_error(
          "run_async_attack: in-flight mirror out of sync with event queue");
    }
    mirror.erase(it);
    now = done.completion_time;
    result.makespan_seconds = now;
    obs.set_clock(now);

    sim::BatchRecord record;
    record.requests = {done.node};
    const sim::BenefitBreakdown before = obs.benefit();
    bool accepted = false;
    bool attempt_consumed = false;
    switch (done.outcome) {
      case sim::RequestOutcome::kDelivered:
        // NOTE: the attempt index was frozen at send time; the acceptance
        // probability too (the user decides based on the state when they saw
        // the request).
        accepted = world.attempt_accept(done.node, done.attempt, done.q_at_send);
        if (accepted) {
          ++result.accepts;
          obs.record_accept(done.node, world.true_neighbors(done.node));
        } else {
          obs.record_reject(done.node);
          attempt_consumed = true;
        }
        break;
      case sim::RequestOutcome::kTimeout:
      case sim::RequestOutcome::kDropped:
        obs.record_no_response(done.node);
        attempt_consumed = true;
        break;
      case sim::RequestOutcome::kThrottled:
        break;  // cost charged at send; no attempt consumed
      case sim::RequestOutcome::kSuspended:
        break;  // unreachable: suspended sends are never enqueued
    }
    record.accepted = {static_cast<std::uint8_t>(accepted ? 1 : 0)};
    if (done.outcome != sim::RequestOutcome::kDelivered) {
      record.outcome = {static_cast<std::uint8_t>(done.outcome)};
    }
    if (retry_active && !accepted) {
      const std::uint32_t attempt = attempt_consumed
                                        ? obs.attempts(done.node)
                                        : obs.attempts(done.node) + 1;
      const double delay = options.retry->delay_for(done.node, attempt);
      if (delay > 0.0) obs.set_retry_after(done.node, now + delay);
    }
    record.delta = obs.benefit() - before;
    record.cumulative = obs.benefit();
    record.cost = problem.cost_of(done.node);
    // Send-time accounting, matching the synchronous runner: `spent` already
    // includes every request charged so far (including ones still in flight),
    // so both runners' cost curves report the same cumulative spend.
    record.cumulative_cost = spent;
    result.trace.batches.push_back(std::move(record));
    if (fault != nullptr) fault->advance_ticks(1);
    // The observation changed: rebuild the in-flight expectation state.
    rebuild();
    ++events;
    maybe_checkpoint(/*force=*/false);
    if (options.stop_after_events > 0 && events >= options.stop_after_events) {
      maybe_checkpoint(/*force=*/true);
      break;
    }
  }
  return result;
}

}  // namespace recon::core
