// Expected marginal benefit Δf(u | ω) of a single friend request (Sec. III).
//
// Closed form (Lemma 1):
//   Δf(u | ω) = q(u | ω) · ( Bf(u)
//                          + Σ_{v ∈ N'(u)}  p̂_uv · Bfof(v)
//                          + Σ_{e ∈ N''(u)} [p̂_e ·] Bi(e) )
// where N'(u) excludes current friends and friends-of-friends, N''(u) are
// u's unrevealed incident edges, and p̂ is the current edge belief.
//
// Two policies are supported (DESIGN.md §2.1–2.2):
//  * kWeighted (default): weights the Bi term by p̂_e (an edge only yields
//    benefit if it exists) and charges the friend term Bf(u) − Bfof(u) when
//    u is already a friend-of-friend (a node produces one kind of benefit).
//  * kPaperLiteral: reproduces the paper's formulas verbatim — unweighted
//    Bi and unconditional Bf(u).
#pragma once

#include "graph/graph.h"
#include "sim/observation.h"

namespace recon::core {

enum class MarginalPolicy { kWeighted, kPaperLiteral };

/// Δf(u | ω): the expected gain of requesting u given the observation, with
/// no batch context. Requires u not already a friend.
double marginal_gain(const sim::Observation& obs, graph::NodeId u,
                     MarginalPolicy policy = MarginalPolicy::kWeighted);

}  // namespace recon::core
