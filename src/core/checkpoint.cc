#include "core/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/trace_io.h"
#include "util/crashpoint.h"
#include "util/fs.h"

namespace recon::core {

using graph::NodeId;

namespace {

constexpr const char* kHeader = "#recon-checkpoint v1";
constexpr const char* kHeaderV2 = "#recon-checkpoint v2";

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("read_checkpoint: " + what);
}

/// Parses a "key=value" token, checking the key.
std::string expect_kv(std::istream& in, const char* key) {
  std::string token;
  if (!(in >> token)) fail(std::string("missing ") + key + "=");
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) fail("expected " + prefix + ", got " + token);
  return token.substr(prefix.size());
}

std::uint64_t to_u64(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(s, &used);
    if (used != s.size() || s.empty() || s[0] == '-') fail(std::string("bad ") + what);
    return v;
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception&) {
    fail(std::string("bad ") + what);
  }
}

double to_double(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) fail(std::string("bad ") + what);
    return v;
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception&) {
    fail(std::string("bad ") + what);
  }
}

/// Captures the observation / budget / fault sections shared by both runner
/// flavors into `cp`.
void capture_common(AttackCheckpoint& cp, const sim::Observation& obs,
                    double budget, double spent, std::uint64_t round,
                    std::uint64_t world_seed, const sim::FaultModel* fault) {
  cp.world_seed = world_seed;
  cp.budget = budget;
  cp.spent = spent;
  cp.round = round;
  cp.clock = obs.clock();
  const auto& g = obs.problem().graph;
  cp.node_states.resize(g.num_nodes());
  cp.attempts.resize(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    cp.node_states[u] = obs.node_state(u);
    cp.attempts[u] = obs.attempts(u);
  }
  cp.edge_states.assign(obs.edge_states().begin(), obs.edge_states().end());
  cp.friends.assign(obs.friends().begin(), obs.friends().end());
  cp.retry_after.assign(obs.retry_after().begin(), obs.retry_after().end());
  cp.has_benefit = true;
  cp.benefit = obs.benefit();
  if (fault != nullptr) {
    cp.has_fault = true;
    cp.fault = fault->state();
  }
}

/// Restores the observation / cooldown / fault state shared by both runner
/// flavors; the fault-configuration check is common too.
void restore_common(const AttackCheckpoint& cp, sim::Observation& obs,
                    sim::FaultModel* fault, const char* who) {
  if (cp.has_fault != (fault != nullptr)) {
    throw std::runtime_error(
        std::string(who) +
        ": fault-model configuration differs from the checkpointed run "
        "(fault injection must be enabled on resume iff it was enabled "
        "originally)");
  }
  obs.restore(cp.node_states, cp.edge_states, cp.attempts, cp.friends);
  if (cp.has_benefit) obs.restore_benefit(cp.benefit);
  obs.set_clock(cp.clock);
  for (NodeId u = 0; u < static_cast<NodeId>(cp.retry_after.size()); ++u) {
    if (cp.retry_after[u] != 0.0) obs.set_retry_after(u, cp.retry_after[u]);
  }
  if (fault != nullptr) fault->restore(cp.fault);
}

}  // namespace

void InFlightRequest::serialize(std::ostream& out) const {
  out << node << ':' << attempt << ':' << static_cast<int>(outcome) << ':'
      << q_at_send << ':' << completion_time;
}

InFlightRequest InFlightRequest::deserialize(const std::string& token) {
  std::size_t pos = 0;
  std::string parts[5];
  for (int i = 0; i < 5; ++i) {
    const std::size_t colon = token.find(':', pos);
    if ((colon == std::string::npos) != (i == 4)) fail("bad inflight entry");
    parts[i] = token.substr(pos, colon - pos);
    pos = colon + 1;
  }
  InFlightRequest r;
  r.node = static_cast<NodeId>(to_u64(parts[0], "inflight node"));
  r.attempt = static_cast<std::uint32_t>(to_u64(parts[1], "inflight attempt"));
  const std::uint64_t outcome = to_u64(parts[2], "inflight outcome");
  if (outcome > 4) fail("inflight outcome out of range");
  r.outcome = static_cast<std::uint8_t>(outcome);
  r.q_at_send = to_double(parts[3], "inflight q");
  r.completion_time = to_double(parts[4], "inflight completion time");
  return r;
}

AttackCheckpoint make_checkpoint(const sim::Observation& obs,
                                 const Strategy& strategy,
                                 const sim::AttackTrace& trace, double budget,
                                 double spent, std::uint64_t round,
                                 std::uint64_t world_seed,
                                 const sim::FaultModel* fault) {
  AttackCheckpoint cp;
  capture_common(cp, obs, budget, spent, round, world_seed, fault);
  cp.strategy_name = strategy.name();
  cp.strategy_state = strategy.save_state();
  if (cp.strategy_state.find('\n') != std::string::npos) {
    throw std::logic_error("make_checkpoint: strategy state must be one line");
  }
  cp.trace = trace;
  return cp;
}

AttackCheckpoint make_async_checkpoint(const sim::Observation& obs,
                                       const AsyncCheckpointState& async,
                                       const sim::AttackTrace& trace,
                                       double budget, double spent,
                                       std::uint64_t events,
                                       std::uint64_t world_seed,
                                       const sim::FaultModel* fault) {
  AttackCheckpoint cp;
  capture_common(cp, obs, budget, spent, events, world_seed, fault);
  cp.strategy_name = kAsyncCheckpointStrategy;
  cp.has_async = true;
  cp.async = async;
  cp.trace = trace;
  return cp;
}

void apply_checkpoint(const AttackCheckpoint& cp, sim::Observation& obs,
                      Strategy& strategy, sim::FaultModel* fault) {
  if (cp.has_async) {
    throw std::runtime_error(
        "apply_checkpoint: checkpoint was taken by the rolling-window runner; "
        "resume it through run_async_attack");
  }
  if (cp.strategy_name != strategy.name()) {
    throw std::runtime_error("apply_checkpoint: checkpoint was taken with strategy '" +
                             cp.strategy_name + "' but resuming with '" +
                             strategy.name() + "'");
  }
  restore_common(cp, obs, fault, "apply_checkpoint");
  if (!cp.strategy_state.empty()) strategy.restore_state(cp.strategy_state);
}

void apply_async_checkpoint(const AttackCheckpoint& cp, sim::Observation& obs,
                            sim::FaultModel* fault) {
  if (!cp.has_async || cp.strategy_name != kAsyncCheckpointStrategy) {
    throw std::runtime_error(
        "apply_async_checkpoint: checkpoint was taken by the synchronous "
        "runner (strategy '" + cp.strategy_name +
        "'); resume it through run_attack");
  }
  restore_common(cp, obs, fault, "apply_async_checkpoint");
}

void write_checkpoint(std::ostream& out, const AttackCheckpoint& cp) {
  out.precision(17);
  out << (cp.has_async ? kHeaderV2 : kHeader) << '\n';
  out << "meta world-seed=" << cp.world_seed << " budget=" << cp.budget
      << " spent=" << cp.spent << " round=" << cp.round << " clock=" << cp.clock
      << '\n';
  out << "nodes " << cp.node_states.size() << ' ';
  for (auto s : cp.node_states) out << static_cast<int>(s);
  out << '\n';
  out << "edges " << cp.edge_states.size() << ' ';
  for (auto s : cp.edge_states) out << static_cast<int>(s);
  out << '\n';
  std::size_t nonzero = 0;
  for (auto a : cp.attempts) nonzero += a != 0;
  out << "attempts " << nonzero;
  for (std::size_t u = 0; u < cp.attempts.size(); ++u) {
    if (cp.attempts[u] != 0) out << ' ' << u << ':' << cp.attempts[u];
  }
  out << '\n';
  out << "friends " << cp.friends.size();
  for (NodeId f : cp.friends) out << ' ' << f;
  out << '\n';
  std::size_t cooling = 0;
  for (auto t : cp.retry_after) cooling += t != 0.0;
  out << "cooldowns " << cooling;
  for (std::size_t u = 0; u < cp.retry_after.size(); ++u) {
    if (cp.retry_after[u] != 0.0) out << ' ' << u << ':' << cp.retry_after[u];
  }
  out << '\n';
  if (cp.has_benefit) {
    out << "benefit friends=" << cp.benefit.friends << " fofs=" << cp.benefit.fofs
        << " edges=" << cp.benefit.edges << '\n';
  }
  if (cp.has_fault) {
    const auto& f = cp.fault;
    out << "fault sends=" << f.sends << " tick=" << f.tick
        << " until=" << f.suspended_until << " window=";
    if (f.window.empty()) {
      out << '-';
    } else {
      for (std::size_t i = 0; i < f.window.size(); ++i) {
        if (i > 0) out << ',';
        out << f.window[i].first << ':' << f.window[i].second;
      }
    }
    out << " counters=" << f.counters.delivered << ',' << f.counters.timeouts
        << ',' << f.counters.drops << ',' << f.counters.throttles << ','
        << f.counters.bounced << ',' << f.counters.lockouts << '\n';
  }
  if (cp.has_async) {
    const auto& a = cp.async;
    out << "async window=" << a.window << " now=" << a.now
        << " sent=" << a.requests_sent << " accepts=" << a.accepts << '\n';
    out << "rng " << a.rng_state << '\n';
    out << "inflight " << a.in_flight.size();
    for (const auto& r : a.in_flight) {
      out << ' ';
      r.serialize(out);
    }
    out << '\n';
  }
  out << "strategy " << cp.strategy_name << '\n';
  out << "strategy-state " << cp.strategy_state << '\n';
  out << "end\n";
  sim::write_traces(out, {cp.trace});
}

void write_checkpoint_file(const std::string& path, const AttackCheckpoint& cp) {
  // Serialize first so the torn-write crash point leaves a deterministic
  // prefix (header line only) on disk.
  std::ostringstream buf;
  write_checkpoint(buf, cp);
  const std::string body = buf.str();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary);
    if (!f) throw std::runtime_error("write_checkpoint_file: cannot open " + tmp);
    RECON_CRASH_POINT("ckpt.tmp-open");
    const std::size_t first_line = body.find('\n') + 1;
    f.write(body.data(), static_cast<std::streamsize>(first_line));
    f.flush();
    RECON_CRASH_POINT("ckpt.tmp-torn");
    f.write(body.data() + first_line,
            static_cast<std::streamsize>(body.size() - first_line));
    f.flush();
    if (!f) throw std::runtime_error("write_checkpoint_file: write failed: " + tmp);
  }
  RECON_CRASH_POINT("ckpt.tmp-written");
  util::durable_rename(tmp, path);
}

AttackCheckpoint read_checkpoint(std::istream& in) {
  std::string line;
  int version = 0;
  if (std::getline(in, line)) {
    if (line == kHeader) version = 1;
    if (line == kHeaderV2) version = 2;
  }
  if (version == 0) {
    fail("missing/unsupported header (expected '" + std::string(kHeader) +
         "' or '" + std::string(kHeaderV2) + "')");
  }
  AttackCheckpoint cp;
  bool saw_end = false;
  bool saw_meta = false, saw_nodes = false, saw_edges = false;
  bool saw_attempts = false, saw_friends = false, saw_cooldowns = false;
  bool saw_strategy = false, saw_state = false;
  bool saw_async = false, saw_rng = false, saw_inflight = false;
  while (!saw_end && std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "end") {
      saw_end = true;
    } else if (kw == "meta") {
      cp.world_seed = to_u64(expect_kv(ls, "world-seed"), "world-seed");
      cp.budget = to_double(expect_kv(ls, "budget"), "budget");
      cp.spent = to_double(expect_kv(ls, "spent"), "spent");
      cp.round = to_u64(expect_kv(ls, "round"), "round");
      cp.clock = to_double(expect_kv(ls, "clock"), "clock");
      saw_meta = true;
    } else if (kw == "nodes" || kw == "edges") {
      std::size_t count = 0;
      if (!(ls >> count)) fail("bad " + kw + " line");
      std::string digits;
      ls >> digits;
      if (digits.size() != count) {
        fail(kw + " digit string has wrong length (truncated?)");
      }
      if (kw == "nodes") {
        cp.node_states.resize(count);
        for (std::size_t i = 0; i < count; ++i) {
          if (digits[i] < '0' || digits[i] > '2') fail("bad node state digit");
          cp.node_states[i] = static_cast<sim::NodeState>(digits[i] - '0');
        }
        saw_nodes = true;
      } else {
        cp.edge_states.resize(count);
        for (std::size_t i = 0; i < count; ++i) {
          if (digits[i] < '0' || digits[i] > '2') fail("bad edge state digit");
          cp.edge_states[i] = static_cast<sim::EdgeState>(digits[i] - '0');
        }
        saw_edges = true;
      }
    } else if (kw == "attempts") {
      if (!saw_nodes) fail("attempts before nodes");
      std::size_t count = 0;
      if (!(ls >> count)) fail("bad attempts count");
      cp.attempts.assign(cp.node_states.size(), 0);
      for (std::size_t i = 0; i < count; ++i) {
        std::string pair;
        if (!(ls >> pair)) fail("truncated attempts line");
        const std::size_t colon = pair.find(':');
        if (colon == std::string::npos) fail("bad attempts entry");
        const std::uint64_t u = to_u64(pair.substr(0, colon), "attempts node");
        if (u >= cp.attempts.size()) fail("attempts node out of range");
        cp.attempts[u] = static_cast<std::uint32_t>(
            to_u64(pair.substr(colon + 1), "attempts value"));
      }
      saw_attempts = true;
    } else if (kw == "friends") {
      std::size_t count = 0;
      if (!(ls >> count)) fail("bad friends count");
      if (count > cp.node_states.size()) fail("friends count exceeds n");
      cp.friends.resize(count);
      for (auto& f : cp.friends) {
        std::string tok;
        if (!(ls >> tok)) fail("truncated friends line");
        f = static_cast<NodeId>(to_u64(tok, "friend id"));
      }
      saw_friends = true;
    } else if (kw == "cooldowns") {
      if (!saw_nodes) fail("cooldowns before nodes");
      std::size_t count = 0;
      if (!(ls >> count)) fail("bad cooldowns count");
      if (count > 0) cp.retry_after.assign(cp.node_states.size(), 0.0);
      for (std::size_t i = 0; i < count; ++i) {
        std::string pair;
        if (!(ls >> pair)) fail("truncated cooldowns line");
        const std::size_t colon = pair.find(':');
        if (colon == std::string::npos) fail("bad cooldown entry");
        const std::uint64_t u = to_u64(pair.substr(0, colon), "cooldown node");
        if (u >= cp.retry_after.size()) fail("cooldown node out of range");
        cp.retry_after[u] = to_double(pair.substr(colon + 1), "cooldown time");
      }
      saw_cooldowns = true;
    } else if (kw == "benefit") {
      cp.benefit.friends = to_double(expect_kv(ls, "friends"), "benefit friends");
      cp.benefit.fofs = to_double(expect_kv(ls, "fofs"), "benefit fofs");
      cp.benefit.edges = to_double(expect_kv(ls, "edges"), "benefit edges");
      cp.has_benefit = true;
    } else if (kw == "fault") {
      cp.has_fault = true;
      cp.fault.sends = to_u64(expect_kv(ls, "sends"), "fault sends");
      cp.fault.tick = to_u64(expect_kv(ls, "tick"), "fault tick");
      cp.fault.suspended_until = to_u64(expect_kv(ls, "until"), "fault until");
      const std::string window = expect_kv(ls, "window");
      cp.fault.window.clear();
      if (window != "-") {
        std::size_t pos = 0;
        while (pos < window.size()) {
          const std::size_t comma = window.find(',', pos);
          const std::string entry = window.substr(pos, comma - pos);
          const std::size_t colon = entry.find(':');
          if (colon == std::string::npos) fail("bad fault window entry");
          cp.fault.window.emplace_back(
              to_u64(entry.substr(0, colon), "window tick"),
              to_u64(entry.substr(colon + 1), "window count"));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      }
      const std::string counters = expect_kv(ls, "counters");
      std::uint64_t vals[6] = {};
      std::size_t pos = 0;
      for (int i = 0; i < 6; ++i) {
        const std::size_t comma = counters.find(',', pos);
        if (i < 5 && comma == std::string::npos) fail("bad fault counters");
        vals[i] = to_u64(counters.substr(pos, comma - pos), "fault counter");
        pos = comma + 1;
      }
      cp.fault.counters.delivered = vals[0];
      cp.fault.counters.timeouts = vals[1];
      cp.fault.counters.drops = vals[2];
      cp.fault.counters.throttles = vals[3];
      cp.fault.counters.bounced = vals[4];
      cp.fault.counters.lockouts = vals[5];
    } else if (version >= 2 && kw == "async") {
      const std::uint64_t window = to_u64(expect_kv(ls, "window"), "async window");
      if (window == 0 || window > 1u << 20) fail("async window out of range");
      cp.async.window = static_cast<int>(window);
      cp.async.now = to_double(expect_kv(ls, "now"), "async now");
      cp.async.requests_sent = to_u64(expect_kv(ls, "sent"), "async sent");
      cp.async.accepts = to_u64(expect_kv(ls, "accepts"), "async accepts");
      saw_async = true;
    } else if (version >= 2 && kw == "rng") {
      // Validate the blob as four full decimal words and store it in the
      // canonical single-space form util::Rng::restore_state accepts.
      std::string words[4];
      for (auto& w : words) {
        if (!(ls >> w)) fail("truncated rng line");
        (void)to_u64(w, "rng word");
      }
      std::string junk;
      if (ls >> junk) fail("trailing junk on rng line");
      cp.async.rng_state =
          words[0] + ' ' + words[1] + ' ' + words[2] + ' ' + words[3];
      saw_rng = true;
    } else if (version >= 2 && kw == "inflight") {
      if (!saw_async) fail("inflight before async");
      std::size_t count = 0;
      if (!(ls >> count)) fail("bad inflight count");
      if (count > static_cast<std::size_t>(cp.async.window)) {
        fail("inflight count exceeds window");
      }
      cp.async.in_flight.clear();
      cp.async.in_flight.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        std::string token;
        if (!(ls >> token)) fail("truncated inflight line");
        cp.async.in_flight.push_back(InFlightRequest::deserialize(token));
      }
      saw_inflight = true;
    } else if (kw == "strategy") {
      // The name may contain spaces/parentheses: take the rest of the line.
      const std::size_t sp = line.find(' ');
      cp.strategy_name = sp == std::string::npos ? "" : line.substr(sp + 1);
      saw_strategy = true;
    } else if (kw == "strategy-state") {
      const std::size_t sp = line.find(' ');
      cp.strategy_state = sp == std::string::npos ? "" : line.substr(sp + 1);
      saw_state = true;
    } else {
      fail("unknown section '" + kw + "'");
    }
  }
  if (!saw_end) fail("missing 'end' marker — file is truncated");
  if (!saw_meta || !saw_nodes || !saw_edges || !saw_attempts || !saw_friends ||
      !saw_cooldowns || !saw_strategy || !saw_state) {
    fail("incomplete checkpoint (missing section)");
  }
  if (version >= 2) {
    if (!saw_async || !saw_rng || !saw_inflight) {
      fail("incomplete v2 checkpoint (missing async/rng/inflight section)");
    }
    cp.has_async = true;
  }
  // The embedded trace follows, as a complete trace document with its own
  // header and terminator (read_traces rejects truncation itself).
  auto traces = sim::read_traces(in);
  if (traces.size() != 1) fail("expected exactly one embedded trace");
  cp.trace = std::move(traces[0]);
  return cp;
}

AttackCheckpoint read_checkpoint_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_checkpoint_file: cannot open " + path);
  return read_checkpoint(f);
}

}  // namespace recon::core
