#include "core/supervisor.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <stdexcept>

#include "util/crashpoint.h"
#include "util/log.h"

namespace recon::core {

namespace {

volatile std::sig_atomic_t g_pending_signal = 0;

void record_signal(int sig) { g_pending_signal = sig; }

/// Deterministic bounded-exponential backoff, slept in one nanosleep call
/// (resumed across EINTR so signal forwarding does not shorten it; a
/// pending stop signal aborts the wait instead).
void backoff_sleep(const SuperviseOptions& o, int restart_index) {
  double seconds = o.backoff_base_seconds;
  for (int i = 1; i < restart_index; ++i) {
    seconds *= o.backoff_multiplier;
    if (seconds >= o.backoff_max_seconds) break;
  }
  seconds = std::min(seconds, o.backoff_max_seconds);
  if (seconds <= 0.0) return;
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) * 1e9);
  while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
    if (g_pending_signal != 0) return;
  }
}

struct ScopedSignalHandlers {
  struct sigaction old_int {};
  struct sigaction old_term {};
  ScopedSignalHandlers() {
    struct sigaction sa {};
    sa.sa_handler = record_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: waitpid must wake on a signal
    sigaction(SIGINT, &sa, &old_int);
    sigaction(SIGTERM, &sa, &old_term);
  }
  ~ScopedSignalHandlers() {
    sigaction(SIGINT, &old_int, nullptr);
    sigaction(SIGTERM, &old_term, nullptr);
  }
};

}  // namespace

SuperviseResult run_supervised(CheckpointChain& chain,
                               const SuperviseOptions& options,
                               const SupervisedWorker& worker) {
  if (options.crash_loop_threshold < 1) {
    throw std::invalid_argument(
        "run_supervised: crash_loop_threshold must be >= 1");
  }
  if (options.max_restarts < 0) {
    throw std::invalid_argument("run_supervised: max_restarts must be >= 0");
  }
  g_pending_signal = 0;
  ScopedSignalHandlers handlers;

  SuperviseResult result;
  std::optional<std::uint64_t> prev_round;
  int no_progress = 0;
  for (int attempt = 0;; ++attempt) {
    std::optional<LoadedGeneration> good = chain.load_last_good();
    if (attempt > 0) {
      const bool progressed =
          good.has_value() &&
          (!prev_round.has_value() || good->checkpoint.round > *prev_round);
      no_progress = progressed ? 0 : no_progress + 1;
      if (no_progress >= options.crash_loop_threshold) {
        RECON_LOG(kError) << "supervisor: crash loop — " << no_progress
                          << " consecutive crashes with no checkpoint "
                             "progress; giving up";
        result.crash_loop = true;
        result.exit_code = 1;
        return result;
      }
    }
    if (good.has_value()) prev_round = good->checkpoint.round;

    // Flush all stdio before forking so buffered output is not duplicated
    // by the child's exit path.
    std::cout.flush();
    std::cerr.flush();
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid < 0) {
      throw std::runtime_error("run_supervised: fork failed");
    }
    if (pid == 0) {
      // Child. Environment crash arming applies to the first attempt only;
      // a restarted worker must not re-kill itself at the same site.
      if (attempt > 0) {
        ::unsetenv(util::crashpoint::kEnvVar);
        util::crashpoint::disarm();
      }
      int code = 1;
      try {
        code = worker(good.has_value() ? &good->checkpoint : nullptr, attempt);
      } catch (const std::exception& e) {
        RECON_LOG(kError) << "supervised worker: " << e.what();
        code = 1;
      } catch (...) {
        code = 1;
      }
      std::cout.flush();
      std::cerr.flush();
      std::fflush(nullptr);
      // _exit: the parent's atexit handlers and stream destructors must not
      // run again in the child.
      ::_exit(code);
    }

    int status = 0;
    for (;;) {
      const pid_t w = ::waitpid(pid, &status, 0);
      if (w == pid) break;
      if (w < 0 && errno == EINTR) {
        if (g_pending_signal != 0) {
          // Forward the stop request; the worker's handlers write a final
          // forced snapshot and exit with kWorkerStopExit.
          ::kill(pid, g_pending_signal);
        }
        continue;
      }
      throw std::runtime_error("run_supervised: waitpid failed");
    }

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      result.exit_code = 0;
      return result;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == kWorkerStopExit) {
      RECON_LOG(kInfo) << "supervisor: worker stopped gracefully on request";
      result.exit_code = kWorkerStopExit;
      return result;
    }

    // Crash (injected kill, real crash, signal, or nonzero failure).
    ++result.restarts;
    if (WIFSIGNALED(status)) {
      RECON_LOG(kWarn) << "supervisor: worker killed by signal "
                       << WTERMSIG(status) << " (attempt " << attempt << ")";
    } else {
      RECON_LOG(kWarn) << "supervisor: worker exited with status "
                       << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
                       << " (attempt " << attempt << ")";
    }
    if (g_pending_signal != 0) {
      // A stop was requested and the worker is gone; do not restart.
      result.exit_code = kWorkerStopExit;
      return result;
    }
    if (result.restarts > options.max_restarts) {
      RECON_LOG(kError) << "supervisor: restart budget exhausted ("
                        << options.max_restarts << "); giving up";
      result.restart_budget_exhausted = true;
      result.exit_code = 1;
      return result;
    }
    backoff_sleep(options, result.restarts);
    if (g_pending_signal != 0) {
      result.exit_code = kWorkerStopExit;
      return result;
    }
  }
}

}  // namespace recon::core
