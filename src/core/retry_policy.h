// Retry/backoff policies for failed or throttled requests (extends the
// Sec. IV-C retry machinery).
//
// A policy maps the attempt count of a node to a cooldown delay, measured in
// attack-clock units (batch rounds in the synchronous runner, seconds in the
// rolling-window runner). The runner applies the delay through
// Observation::set_retry_after, which every selector respects via
// Observation::requestable — strategies need no retry-specific code.
//
// Jitter is deterministic: a counter-based draw keyed on (seed, node,
// attempt), so a checkpointed-and-resumed attack recomputes the exact same
// delays without serializing any RNG stream.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/graph.h"
#include "util/rng.h"

namespace recon::core {

enum class RetryBackoff : std::uint8_t {
  kNone = 0,         ///< failed nodes are immediately requestable again
  kFixed = 1,        ///< constant delay per failure
  kExponential = 2,  ///< base * multiplier^(attempt-1), capped at max_delay
};

struct RetryPolicy {
  RetryBackoff backoff = RetryBackoff::kNone;
  double base_delay = 1.0;   ///< delay after the first failure (clock units)
  double multiplier = 2.0;   ///< exponential growth factor
  double max_delay = 64.0;   ///< cap on any single delay
  /// Fraction of the delay randomized: the actual delay is drawn uniformly
  /// from [d*(1-jitter), d*(1+jitter)]. 0 disables jitter.
  double jitter = 0.0;
  std::uint64_t seed = 0x8e7751;  ///< jitter stream (counter-based)

  void validate() const {
    if (base_delay < 0.0 || max_delay < 0.0) {
      throw std::invalid_argument("RetryPolicy: delays must be non-negative");
    }
    if (multiplier < 1.0) {
      throw std::invalid_argument("RetryPolicy: multiplier must be >= 1");
    }
    if (jitter < 0.0 || jitter > 1.0) {
      throw std::invalid_argument("RetryPolicy: jitter must be in [0, 1]");
    }
  }

  bool active() const noexcept { return backoff != RetryBackoff::kNone; }

  /// Cooldown after the `attempt`-th request to `u` failed (attempt >= 1).
  /// Pure in (policy, u, attempt): safe to recompute after a resume.
  double delay_for(graph::NodeId u, std::uint32_t attempt) const noexcept {
    if (backoff == RetryBackoff::kNone) return 0.0;
    double d = base_delay;
    if (backoff == RetryBackoff::kExponential) {
      for (std::uint32_t i = 1; i < attempt && d < max_delay; ++i) d *= multiplier;
    }
    d = std::min(d, max_delay);
    if (jitter > 0.0) {
      const double x = util::counter_uniform(seed, u, attempt);  // [0, 1)
      d *= 1.0 + jitter * (2.0 * x - 1.0);
    }
    return d;
  }
};

const char* retry_backoff_name(RetryBackoff b) noexcept;

/// Parses "none" | "fixed" | "exponential"; throws std::invalid_argument.
RetryBackoff parse_retry_backoff(const std::string& name);

}  // namespace recon::core
