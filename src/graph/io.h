// Edge-list I/O.
//
// Format (SNAP-compatible, whitespace-separated):
//   # comment lines start with '#'
//   u v [p]
// Node ids are 0-based unsigned integers; p defaults to 1.0 when omitted.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace recon::graph {

/// Parses an edge list from a stream. `num_nodes` of 0 means "infer as
/// max id + 1". Throws std::runtime_error on malformed input.
Graph read_edge_list(std::istream& in, NodeId num_nodes = 0);

/// Reads an edge-list file. Throws std::runtime_error if unopenable.
Graph read_edge_list_file(const std::string& path, NodeId num_nodes = 0);

/// Writes "u v p" lines (with a header comment).
void write_edge_list(std::ostream& out, const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

}  // namespace recon::graph
