// Node centrality measures.
//
// Used on the defense side to compare *structural* monitor placements
// (instrument the gatekeepers) against the simulation-driven placements in
// defense/placement.h, and generally useful graph tooling.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace recon::graph {

/// Exact betweenness centrality (Brandes' algorithm, unweighted, O(n·m)).
/// Returns one value per node; endpoints are not counted, undirected paths
/// are counted once (values are halved per the undirected convention).
std::vector<double> betweenness_centrality(const Graph& g);

/// Harmonic closeness centrality: Σ_{v != u} 1 / d(u, v), with 1/∞ = 0 for
/// unreachable pairs (well-defined on disconnected graphs). O(n·m).
std::vector<double> harmonic_centrality(const Graph& g);

/// Core number of every node (k-core decomposition, O(m)): the largest k
/// such that the node belongs to a subgraph of minimum degree k.
std::vector<NodeId> core_numbers(const Graph& g);

/// The `count` nodes with the largest values in `scores` (stable by id).
std::vector<NodeId> top_nodes(const std::vector<double>& scores, std::size_t count);

}  // namespace recon::graph
