// Random graph generators used to synthesize OSN-like topologies.
//
// The paper evaluates on SNAP datasets (Facebook, Enron, Slashdot, Twitter)
// and the US-Political-Books network; those are not redistributable, so the
// dataset stand-ins in graph/datasets.h are built from these generators with
// matched node counts and densities (DESIGN.md §2.5).
//
// All generators are deterministic given their seed and produce simple
// undirected graphs with edge probability 1.0; use assign_edge_probs() to
// attach a probabilistic belief model afterwards.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace recon::graph {

/// Erdős–Rényi G(n, m): exactly m distinct uniform random edges.
Graph erdos_renyi_gnm(NodeId n, EdgeId m, std::uint64_t seed);

/// Erdős–Rényi G(n, p): each pair independently with probability p.
/// Uses geometric skipping; intended for sparse p.
Graph erdos_renyi_gnp(NodeId n, double p, std::uint64_t seed);

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m_per_node + 1` nodes, then each new node attaches to `m_per_node`
/// distinct existing nodes chosen proportionally to degree.
Graph barabasi_albert(NodeId n, NodeId m_per_node, std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with `k_ring` neighbors per side
/// rewired with probability beta.
Graph watts_strogatz(NodeId n, NodeId k_ring, double beta, std::uint64_t seed);

/// Stochastic block model: `blocks` communities of (near-)equal size;
/// within-community pairs connected with p_in, across with p_out.
Graph stochastic_block_model(NodeId n, unsigned blocks, double p_in, double p_out,
                             std::uint64_t seed);

/// Forest Fire model (Leskovec et al.) — the generative model SNAP proposes
/// for networks like the paper's datasets: each new node links to a random
/// ambassador, then recursively "burns" through the ambassador's neighbors
/// with forward-burning probability p_forward, linking to every burned node.
/// Produces heavy tails, densification, and community structure.
Graph forest_fire(NodeId n, double p_forward, std::uint64_t seed);

/// Power-law configuration model: degrees drawn from a discrete power law
/// with the given exponent on [min_degree, max_degree], then stubs matched
/// uniformly (self-loops and multi-edges dropped).
Graph powerlaw_configuration(NodeId n, double exponent, NodeId min_degree,
                             NodeId max_degree, std::uint64_t seed);

/// Edge-probability belief models attachable to a generated topology.
struct EdgeProbModel {
  enum class Kind {
    kConstant,   ///< p_e = a
    kUniform,    ///< p_e ~ U[a, b]
    kBeta,       ///< p_e ~ Beta(a, b)
    kStructural, ///< p_e = clamp(a + b * jaccard(u, v)), favoring embedded edges
  };
  Kind kind = Kind::kConstant;
  double a = 1.0;
  double b = 0.0;

  static EdgeProbModel constant(double p) { return {Kind::kConstant, p, 0.0}; }
  static EdgeProbModel uniform(double lo, double hi) { return {Kind::kUniform, lo, hi}; }
  static EdgeProbModel beta(double alpha, double beta_) { return {Kind::kBeta, alpha, beta_}; }
  static EdgeProbModel structural(double base, double weight) {
    return {Kind::kStructural, base, weight};
  }
};

/// Returns a copy of g with edge probabilities drawn from the model.
Graph assign_edge_probs(const Graph& g, const EdgeProbModel& model, std::uint64_t seed);

/// Attaches `dim` synthetic categorical attributes (e.g. location, employer)
/// to a copy of g. Attribute values are correlated with community structure:
/// each node copies each attribute from a random neighbor with probability
/// `homophily`, otherwise draws uniformly from [0, cardinality).
Graph assign_attributes(const Graph& g, unsigned dim, std::uint16_t cardinality,
                        double homophily, std::uint64_t seed);

/// Gamma(shape, 1) sample via Marsaglia–Tsang; used for Beta sampling.
double sample_gamma(double shape, util::Rng& rng);

/// Beta(a, b) sample.
double sample_beta(double a, double b, util::Rng& rng);

}  // namespace recon::graph
