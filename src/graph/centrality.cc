#include "graph/centrality.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stack>

namespace recon::graph {

std::vector<double> betweenness_centrality(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> centrality(n, 0.0);
  // Brandes: one BFS + dependency accumulation per source.
  std::vector<std::vector<NodeId>> predecessors(n);
  std::vector<double> sigma(n);      // shortest-path counts
  std::vector<std::int64_t> dist(n);
  std::vector<double> delta(n);      // dependencies
  for (NodeId s = 0; s < n; ++s) {
    std::stack<NodeId> order;
    for (NodeId v = 0; v < n; ++v) {
      predecessors[v].clear();
      sigma[v] = 0.0;
      dist[v] = -1;
      delta[v] = 0.0;
    }
    sigma[s] = 1.0;
    dist[s] = 0;
    std::queue<NodeId> queue;
    queue.push(s);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      order.push(v);
      for (NodeId w : g.neighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          predecessors[w].push_back(v);
        }
      }
    }
    while (!order.empty()) {
      const NodeId w = order.top();
      order.pop();
      for (NodeId v : predecessors[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) centrality[w] += delta[w];
    }
  }
  // Undirected graphs count each pair twice.
  for (auto& c : centrality) c *= 0.5;
  return centrality;
}

std::vector<double> harmonic_centrality(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> centrality(n, 0.0);
  std::vector<std::int64_t> dist(n);
  for (NodeId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[s] = 0;
    std::queue<NodeId> queue;
    queue.push(s);
    double total = 0.0;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      if (v != s) total += 1.0 / static_cast<double>(dist[v]);
      for (NodeId w : g.neighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push(w);
        }
      }
    }
    centrality[s] = total;
  }
  return centrality;
}

std::vector<NodeId> core_numbers(const Graph& g) {
  // Matula-Beck / Batagelj-Zaversnik bucket peeling.
  const NodeId n = g.num_nodes();
  std::vector<NodeId> degree(n);
  NodeId max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = g.degree(u);
    max_degree = std::max(max_degree, degree[u]);
  }
  // Bucket sort nodes by degree.
  std::vector<NodeId> bin(max_degree + 2, 0);
  for (NodeId u = 0; u < n; ++u) ++bin[degree[u]];
  NodeId start = 0;
  for (NodeId d = 0; d <= max_degree; ++d) {
    const NodeId count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> position(n), sorted(n);
  {
    std::vector<NodeId> cursor(bin.begin(), bin.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      position[u] = cursor[degree[u]];
      sorted[position[u]] = u;
      ++cursor[degree[u]];
    }
  }
  std::vector<NodeId> core = degree;
  for (NodeId i = 0; i < n; ++i) {
    const NodeId u = sorted[i];
    for (NodeId v : g.neighbors(u)) {
      if (core[v] > core[u]) {
        // Move v one bucket down: swap with the first node of its bucket.
        const NodeId dv = core[v];
        const NodeId pv = position[v];
        const NodeId pw = bin[dv];
        const NodeId w = sorted[pw];
        if (v != w) {
          std::swap(sorted[pv], sorted[pw]);
          position[v] = pw;
          position[w] = pv;
        }
        ++bin[dv];
        --core[v];
      }
    }
  }
  return core;
}

std::vector<NodeId> top_nodes(const std::vector<double>& scores, std::size_t count) {
  std::vector<NodeId> order(scores.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  if (order.size() > count) order.resize(count);
  return order;
}

}  // namespace recon::graph
