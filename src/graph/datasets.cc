#include "graph/datasets.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace recon::graph {

std::vector<DatasetId> all_dataset_ids() {
  return {DatasetId::kUsPolBooks, DatasetId::kFacebook, DatasetId::kEnronEmail,
          DatasetId::kSlashdot, DatasetId::kTwitter};
}

std::vector<DatasetId> snap_dataset_ids() {
  return {DatasetId::kEnronEmail, DatasetId::kFacebook, DatasetId::kSlashdot,
          DatasetId::kTwitter};
}

std::string dataset_name(DatasetId id) {
  switch (id) {
    case DatasetId::kUsPolBooks: return "US Pol. Books";
    case DatasetId::kFacebook: return "Facebook";
    case DatasetId::kEnronEmail: return "Enron Email";
    case DatasetId::kSlashdot: return "Slashdot";
    case DatasetId::kTwitter: return "Twitter";
  }
  throw std::invalid_argument("dataset_name: unknown id");
}

namespace {

NodeId scaled(NodeId paper_n, double scale, NodeId min_n) {
  const double n = static_cast<double>(paper_n) * scale / 10.0;
  return std::max<NodeId>(min_n, static_cast<NodeId>(std::llround(n)));
}

}  // namespace

Dataset make_dataset(DatasetId id, double scale, std::uint64_t seed,
                     bool uniform_probs) {
  if (scale <= 0.0) throw std::invalid_argument("make_dataset: scale must be > 0");
  Dataset ds;
  ds.id = id;
  ds.name = dataset_name(id);
  const std::uint64_t topo_seed = util::derive_seed(seed, 0xD5);
  switch (id) {
    case DatasetId::kUsPolBooks: {
      // 105 nodes, ~441 edges, 3 communities (liberal / conservative /
      // neutral in the original). Never scaled.
      ds.graph = stochastic_block_model(105, 3, 0.20, 0.023, topo_seed);
      ds.paper_nodes = 105;
      ds.paper_edges = 441;
      ds.generator = "SBM(3, 0.20, 0.023)";
      break;
    }
    case DatasetId::kFacebook: {
      // 4k nodes, 88k edges (mean degree ~44), very high clustering.
      const NodeId n = scaled(4000, scale, 120);
      ds.graph = watts_strogatz(n, 22, 0.15, topo_seed);
      ds.paper_nodes = 4000;
      ds.paper_edges = 88000;
      ds.generator = "WattsStrogatz(k=22, beta=0.15)";
      break;
    }
    case DatasetId::kEnronEmail: {
      // 37k nodes, 184k edges (mean degree ~10), heavy-tailed.
      const NodeId n = scaled(37000, scale, 300);
      const NodeId max_deg = std::max<NodeId>(20, n / 10);
      ds.graph = powerlaw_configuration(n, 2.0, 3, max_deg, topo_seed);
      ds.paper_nodes = 37000;
      ds.paper_edges = 184000;
      ds.generator = "PowerLawConfig(2.0, 3..n/10)";
      break;
    }
    case DatasetId::kSlashdot: {
      // 77k nodes, 905k edges (mean degree ~23.5).
      const NodeId n = scaled(77000, scale, 300);
      ds.graph = barabasi_albert(n, 12, topo_seed);
      ds.paper_nodes = 77000;
      ds.paper_edges = 905000;
      ds.generator = "BarabasiAlbert(m=12)";
      break;
    }
    case DatasetId::kTwitter: {
      // 81k nodes, 1.77M edges (mean degree ~43.7).
      const NodeId n = scaled(81000, scale, 300);
      ds.graph = barabasi_albert(n, 22, topo_seed);
      ds.paper_nodes = 81000;
      ds.paper_edges = 1770000;
      ds.generator = "BarabasiAlbert(m=22)";
      break;
    }
  }
  if (!uniform_probs) {
    ds.graph = assign_edge_probs(ds.graph, EdgeProbModel::structural(0.4, 0.5),
                                 util::derive_seed(seed, 0xE0));
  }
  return ds;
}

namespace {

/// Per-edge probability draw for the streaming generators. Structural probs
/// need the finished topology (jaccard over final neighborhoods), which a
/// streaming pass does not have.
double stream_prob(const EdgeProbModel& model, util::Rng& rng) {
  switch (model.kind) {
    case EdgeProbModel::Kind::kConstant:
      return std::clamp(model.a, 0.0, 1.0);
    case EdgeProbModel::Kind::kUniform:
      return std::clamp(model.a + (model.b - model.a) * rng.uniform(), 0.0, 1.0);
    case EdgeProbModel::Kind::kBeta:
      return std::clamp(sample_beta(model.a, model.b, rng), 0.0, 1.0);
    case EdgeProbModel::Kind::kStructural:
      throw std::invalid_argument(
          "streaming generators: structural edge probabilities need the full "
          "graph; use a constant/uniform/beta model");
  }
  throw std::invalid_argument("streaming generators: unknown prob model");
}

}  // namespace

GraphBinaryInfo stream_barabasi_albert_binary(
    const std::string& path, NodeId n, NodeId m_per_node,
    const EdgeProbModel& probs, std::uint64_t seed,
    const GraphBinaryWriteOptions& options) {
  if (m_per_node == 0) {
    throw std::invalid_argument("stream_barabasi_albert_binary: m == 0");
  }
  if (n < m_per_node + 1) {
    throw std::invalid_argument("stream_barabasi_albert_binary: n too small");
  }
  util::Rng rng(seed);
  const NodeId seed_nodes = m_per_node + 1;
  const std::size_t clique_edges =
      static_cast<std::size_t>(seed_nodes) * (seed_nodes - 1) / 2;
  const std::size_t total =
      clique_edges + static_cast<std::size_t>(n - seed_nodes) * m_per_node;

  std::vector<NodeId> us, vs;
  std::vector<double> ps;
  us.reserve(total);
  vs.reserve(total);
  ps.reserve(total);
  // Repeated-endpoint list: a uniform pick samples proportionally to degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * total);
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) {
      us.push_back(u);
      vs.push_back(v);
      ps.push_back(stream_prob(probs, rng));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<NodeId> picks;
  std::unordered_set<NodeId> chosen;
  for (NodeId u = seed_nodes; u < n; ++u) {
    picks.clear();
    chosen.clear();
    while (picks.size() < m_per_node) {
      const NodeId v = endpoints[rng.below(endpoints.size())];
      if (chosen.insert(v).second) picks.push_back(v);
    }
    for (NodeId v : picks) {
      us.push_back(v);  // canonical: targets predate u
      vs.push_back(u);
      ps.push_back(stream_prob(probs, rng));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  endpoints.clear();
  endpoints.shrink_to_fit();

  const Graph g = GraphBuilder::from_unique_edges(n, std::move(us),
                                                  std::move(vs), std::move(ps));
  return write_graph_binary_file(path, g, options);
}

GraphBinaryInfo stream_erdos_renyi_binary(const std::string& path, NodeId n,
                                          EdgeId m, const EdgeProbModel& probs,
                                          std::uint64_t seed,
                                          const GraphBinaryWriteOptions& options) {
  if (n < 2 && m > 0) {
    throw std::invalid_argument("stream_erdos_renyi_binary: n too small");
  }
  const std::uint64_t max_edges = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (m > max_edges) {
    throw std::invalid_argument("stream_erdos_renyi_binary: m too large");
  }
  util::Rng rng(seed);
  std::vector<NodeId> us, vs;
  std::vector<double> ps;
  us.reserve(m);
  vs.reserve(m);
  ps.reserve(m);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  while (seen.size() < m) {
    auto u = static_cast<NodeId>(rng.below(n));
    auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!seen.insert((static_cast<std::uint64_t>(u) << 32) | v).second) continue;
    us.push_back(u);
    vs.push_back(v);
    ps.push_back(stream_prob(probs, rng));
  }
  seen.clear();

  const Graph g = GraphBuilder::from_unique_edges(n, std::move(us),
                                                  std::move(vs), std::move(ps));
  return write_graph_binary_file(path, g, options);
}

}  // namespace recon::graph
