#include "graph/datasets.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/generators.h"
#include "util/rng.h"

namespace recon::graph {

std::vector<DatasetId> all_dataset_ids() {
  return {DatasetId::kUsPolBooks, DatasetId::kFacebook, DatasetId::kEnronEmail,
          DatasetId::kSlashdot, DatasetId::kTwitter};
}

std::vector<DatasetId> snap_dataset_ids() {
  return {DatasetId::kEnronEmail, DatasetId::kFacebook, DatasetId::kSlashdot,
          DatasetId::kTwitter};
}

std::string dataset_name(DatasetId id) {
  switch (id) {
    case DatasetId::kUsPolBooks: return "US Pol. Books";
    case DatasetId::kFacebook: return "Facebook";
    case DatasetId::kEnronEmail: return "Enron Email";
    case DatasetId::kSlashdot: return "Slashdot";
    case DatasetId::kTwitter: return "Twitter";
  }
  throw std::invalid_argument("dataset_name: unknown id");
}

namespace {

NodeId scaled(NodeId paper_n, double scale, NodeId min_n) {
  const double n = static_cast<double>(paper_n) * scale / 10.0;
  return std::max<NodeId>(min_n, static_cast<NodeId>(std::llround(n)));
}

}  // namespace

Dataset make_dataset(DatasetId id, double scale, std::uint64_t seed,
                     bool uniform_probs) {
  if (scale <= 0.0) throw std::invalid_argument("make_dataset: scale must be > 0");
  Dataset ds;
  ds.id = id;
  ds.name = dataset_name(id);
  const std::uint64_t topo_seed = util::derive_seed(seed, 0xD5);
  switch (id) {
    case DatasetId::kUsPolBooks: {
      // 105 nodes, ~441 edges, 3 communities (liberal / conservative /
      // neutral in the original). Never scaled.
      ds.graph = stochastic_block_model(105, 3, 0.20, 0.023, topo_seed);
      ds.paper_nodes = 105;
      ds.paper_edges = 441;
      ds.generator = "SBM(3, 0.20, 0.023)";
      break;
    }
    case DatasetId::kFacebook: {
      // 4k nodes, 88k edges (mean degree ~44), very high clustering.
      const NodeId n = scaled(4000, scale, 120);
      ds.graph = watts_strogatz(n, 22, 0.15, topo_seed);
      ds.paper_nodes = 4000;
      ds.paper_edges = 88000;
      ds.generator = "WattsStrogatz(k=22, beta=0.15)";
      break;
    }
    case DatasetId::kEnronEmail: {
      // 37k nodes, 184k edges (mean degree ~10), heavy-tailed.
      const NodeId n = scaled(37000, scale, 300);
      const NodeId max_deg = std::max<NodeId>(20, n / 10);
      ds.graph = powerlaw_configuration(n, 2.0, 3, max_deg, topo_seed);
      ds.paper_nodes = 37000;
      ds.paper_edges = 184000;
      ds.generator = "PowerLawConfig(2.0, 3..n/10)";
      break;
    }
    case DatasetId::kSlashdot: {
      // 77k nodes, 905k edges (mean degree ~23.5).
      const NodeId n = scaled(77000, scale, 300);
      ds.graph = barabasi_albert(n, 12, topo_seed);
      ds.paper_nodes = 77000;
      ds.paper_edges = 905000;
      ds.generator = "BarabasiAlbert(m=12)";
      break;
    }
    case DatasetId::kTwitter: {
      // 81k nodes, 1.77M edges (mean degree ~43.7).
      const NodeId n = scaled(81000, scale, 300);
      ds.graph = barabasi_albert(n, 22, topo_seed);
      ds.paper_nodes = 81000;
      ds.paper_edges = 1770000;
      ds.generator = "BarabasiAlbert(m=22)";
      break;
    }
  }
  if (!uniform_probs) {
    ds.graph = assign_edge_probs(ds.graph, EdgeProbModel::structural(0.4, 0.5),
                                 util::derive_seed(seed, 0xE0));
  }
  return ds;
}

}  // namespace recon::graph
