#include "graph/graph.h"

#include <algorithm>
#include <stdexcept>

#include "util/mmap_file.h"

namespace recon::graph {

void Graph::rebind_owned() noexcept {
  off_p_ = offsets_.data();
  adj_p_ = adjacency_.data();
  eid_p_ = edge_ids_.data();
  prob_p_ = edge_prob_.data();
  eu_p_ = edge_u_.data();
  ev_p_ = edge_v_.data();
  attr_p_ = attributes_.data();
  orig_p_ = orig_ids_.empty() ? nullptr : orig_ids_.data();
}

void Graph::fix_pointers(const Graph& o) noexcept {
  // A pointer that referenced the source's own vector rebinds to this
  // object's copy of that vector; an arena-backed pointer (or nullptr) is
  // shared verbatim — the shared_ptr arena keeps it valid.
  off_p_ = o.off_p_ == o.offsets_.data() ? offsets_.data() : o.off_p_;
  adj_p_ = o.adj_p_ == o.adjacency_.data() ? adjacency_.data() : o.adj_p_;
  eid_p_ = o.eid_p_ == o.edge_ids_.data() ? edge_ids_.data() : o.eid_p_;
  prob_p_ = o.prob_p_ == o.edge_prob_.data() ? edge_prob_.data() : o.prob_p_;
  eu_p_ = o.eu_p_ == o.edge_u_.data() ? edge_u_.data() : o.eu_p_;
  ev_p_ = o.ev_p_ == o.edge_v_.data() ? edge_v_.data() : o.ev_p_;
  attr_p_ = o.attr_p_ == o.attributes_.data() ? attributes_.data() : o.attr_p_;
  orig_p_ = (o.orig_p_ != nullptr && o.orig_p_ == o.orig_ids_.data())
                ? orig_ids_.data()
                : o.orig_p_;
}

Graph::Graph(const Graph& o)
    : num_nodes_(o.num_nodes_),
      num_edges_(o.num_edges_),
      offsets_(o.offsets_),
      adjacency_(o.adjacency_),
      edge_ids_(o.edge_ids_),
      edge_prob_(o.edge_prob_),
      edge_u_(o.edge_u_),
      edge_v_(o.edge_v_),
      attributes_(o.attributes_),
      orig_ids_(o.orig_ids_),
      attribute_dim_(o.attribute_dim_),
      arena_(o.arena_) {
  fix_pointers(o);
}

Graph::Graph(Graph&& o) noexcept
    : num_nodes_(o.num_nodes_),
      num_edges_(o.num_edges_),
      offsets_(std::move(o.offsets_)),
      adjacency_(std::move(o.adjacency_)),
      edge_ids_(std::move(o.edge_ids_)),
      edge_prob_(std::move(o.edge_prob_)),
      edge_u_(std::move(o.edge_u_)),
      edge_v_(std::move(o.edge_v_)),
      attributes_(std::move(o.attributes_)),
      orig_ids_(std::move(o.orig_ids_)),
      attribute_dim_(o.attribute_dim_),
      arena_(std::move(o.arena_)),
      // Moving a vector transfers its buffer, so the source's pointers stay
      // valid for this object — arena or vector backed alike.
      off_p_(o.off_p_),
      adj_p_(o.adj_p_),
      eid_p_(o.eid_p_),
      prob_p_(o.prob_p_),
      eu_p_(o.eu_p_),
      ev_p_(o.ev_p_),
      attr_p_(o.attr_p_),
      orig_p_(o.orig_p_) {
  o.num_nodes_ = 0;
  o.num_edges_ = 0;
  o.attribute_dim_ = 0;
  o.rebind_owned();  // leave the moved-from source self-consistent and empty
}

Graph& Graph::operator=(const Graph& o) {
  if (this == &o) return *this;
  Graph tmp(o);
  *this = std::move(tmp);
  return *this;
}

Graph& Graph::operator=(Graph&& o) noexcept {
  if (this == &o) return *this;
  num_nodes_ = o.num_nodes_;
  num_edges_ = o.num_edges_;
  offsets_ = std::move(o.offsets_);
  adjacency_ = std::move(o.adjacency_);
  edge_ids_ = std::move(o.edge_ids_);
  edge_prob_ = std::move(o.edge_prob_);
  edge_u_ = std::move(o.edge_u_);
  edge_v_ = std::move(o.edge_v_);
  attributes_ = std::move(o.attributes_);
  orig_ids_ = std::move(o.orig_ids_);
  attribute_dim_ = o.attribute_dim_;
  arena_ = std::move(o.arena_);
  off_p_ = o.off_p_;
  adj_p_ = o.adj_p_;
  eid_p_ = o.eid_p_;
  prob_p_ = o.prob_p_;
  eu_p_ = o.eu_p_;
  ev_p_ = o.ev_p_;
  attr_p_ = o.attr_p_;
  orig_p_ = o.orig_p_;
  o.num_nodes_ = 0;
  o.num_edges_ = 0;
  o.attribute_dim_ = 0;
  o.rebind_owned();
  return *this;
}

void Graph::set_orig_ids(std::vector<NodeId> new_to_old) {
  if (!new_to_old.empty() && new_to_old.size() != num_nodes_) {
    throw std::invalid_argument(
        "Graph::set_orig_ids: map size " + std::to_string(new_to_old.size()) +
        " != num_nodes " + std::to_string(num_nodes_));
  }
  orig_ids_ = std::move(new_to_old);
  orig_p_ = orig_ids_.empty() ? nullptr : orig_ids_.data();
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const noexcept {
  if (u >= num_nodes_ || v >= num_nodes_) return kInvalidEdge;
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return eid_p_[off_p_[u] + static_cast<std::size_t>(it - nbrs.begin())];
}

double Graph::expected_degree(NodeId u) const noexcept {
  double sum = 0.0;
  for (EdgeId e : incident_edges(u)) sum += prob_p_[e];
  return sum;
}

double Graph::max_expected_degree() const noexcept {
  double best = 0.0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    best = std::max(best, expected_degree(u));
  }
  return best;
}

}  // namespace recon::graph
