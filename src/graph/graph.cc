#include "graph/graph.h"

#include <algorithm>

namespace recon::graph {

EdgeId Graph::find_edge(NodeId u, NodeId v) const noexcept {
  if (u >= num_nodes_ || v >= num_nodes_) return kInvalidEdge;
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return edge_ids_[offsets_[u] + static_cast<std::size_t>(it - nbrs.begin())];
}

double Graph::expected_degree(NodeId u) const noexcept {
  double sum = 0.0;
  for (EdgeId e : incident_edges(u)) sum += edge_prob_[e];
  return sum;
}

double Graph::max_expected_degree() const noexcept {
  double best = 0.0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    best = std::max(best, expected_degree(u));
  }
  return best;
}

}  // namespace recon::graph
