#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "graph/builder.h"

namespace recon::graph {

namespace {

/// Packs an unordered pair into a 64-bit key for dedup sets.
std::uint64_t pair_key(NodeId u, NodeId v) noexcept {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph erdos_renyi_gnm(NodeId n, EdgeId m, std::uint64_t seed) {
  if (n < 2 && m > 0) throw std::invalid_argument("erdos_renyi_gnm: n too small");
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (m > max_edges) throw std::invalid_argument("erdos_renyi_gnm: m too large");
  util::Rng rng(seed);
  GraphBuilder builder(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    if (seen.insert(pair_key(u, v)).second) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph erdos_renyi_gnp(NodeId n, double p, std::uint64_t seed) {
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument("erdos_renyi_gnp: bad p");
  util::Rng rng(seed);
  GraphBuilder builder(n);
  if (p <= 0.0 || n < 2) return builder.build();
  if (p >= 1.0) {
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v) builder.add_edge(u, v);
    return builder.build();
  }
  // Geometric skipping over the linearized upper triangle.
  const double log1mp = std::log1p(-p);
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = 0;
  for (;;) {
    const double r = std::max(rng.uniform(), 1e-300);
    const auto skip = static_cast<std::uint64_t>(std::floor(std::log(r) / log1mp));
    if (skip >= total - idx) break;
    idx += skip;
    // Decode idx -> (u, v) in the linearized upper triangle: row u holds the
    // n-1-u pairs (u, u+1..n-1) and starts at u*(n-1) - u*(u-1)/2.
    auto row_start = [&](std::uint64_t row) {
      return row * (n - 1) - row * (row - 1) / 2;
    };
    const double nd = static_cast<double>(n) - 0.5;
    const double disc = std::max(0.0, nd * nd - 2.0 * static_cast<double>(idx));
    auto u64 = static_cast<std::uint64_t>(std::max(0.0, nd - std::sqrt(disc)));
    // Guard against FP rounding: adjust u so idx lies in row u's range.
    while (u64 > 0 && row_start(u64) > idx) --u64;
    while (u64 + 2 < n && row_start(u64 + 1) <= idx) ++u64;
    const auto u = static_cast<NodeId>(u64);
    const NodeId v = static_cast<NodeId>(u64 + 1 + (idx - row_start(u64)));
    builder.add_edge(u, v);
    ++idx;
    if (idx >= total) break;
  }
  return builder.build();
}

Graph barabasi_albert(NodeId n, NodeId m_per_node, std::uint64_t seed) {
  if (m_per_node == 0) throw std::invalid_argument("barabasi_albert: m == 0");
  if (n < m_per_node + 1) throw std::invalid_argument("barabasi_albert: n too small");
  util::Rng rng(seed);
  GraphBuilder builder(n);
  // Repeated-endpoint list: choosing a uniform entry samples proportionally
  // to degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n) * m_per_node);
  const NodeId seed_nodes = m_per_node + 1;
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<NodeId> picks;
  for (NodeId u = seed_nodes; u < n; ++u) {
    picks.clear();
    std::unordered_set<NodeId> chosen;
    while (picks.size() < m_per_node) {
      const NodeId v = endpoints[rng.below(endpoints.size())];
      if (chosen.insert(v).second) picks.push_back(v);
    }
    for (NodeId v : picks) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return builder.build();
}

Graph watts_strogatz(NodeId n, NodeId k_ring, double beta, std::uint64_t seed) {
  if (k_ring == 0 || 2 * k_ring >= n) {
    throw std::invalid_argument("watts_strogatz: need 0 < k_ring < n/2");
  }
  if (!(beta >= 0.0 && beta <= 1.0)) throw std::invalid_argument("watts_strogatz: bad beta");
  util::Rng rng(seed);
  std::unordered_set<std::uint64_t> edges;
  edges.reserve(static_cast<std::size_t>(n) * k_ring * 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId j = 1; j <= k_ring; ++j) {
      const NodeId v = static_cast<NodeId>((u + j) % n);
      edges.insert(pair_key(u, v));
    }
  }
  // Rewire each lattice edge's far endpoint with probability beta.
  std::vector<std::uint64_t> keys(edges.begin(), edges.end());
  std::sort(keys.begin(), keys.end());  // determinism across set iteration orders
  for (std::uint64_t key : keys) {
    if (!rng.bernoulli(beta)) continue;
    const auto u = static_cast<NodeId>(key >> 32);
    const auto v = static_cast<NodeId>(key & 0xffffffffULL);
    // Pick a new endpoint w != u, avoiding existing edges.
    for (int tries = 0; tries < 32; ++tries) {
      const auto w = static_cast<NodeId>(rng.below(n));
      if (w == u || w == v) continue;
      const std::uint64_t nk = pair_key(u, w);
      if (edges.count(nk)) continue;
      edges.erase(key);
      edges.insert(nk);
      break;
    }
  }
  GraphBuilder builder(n);
  keys.assign(edges.begin(), edges.end());
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t key : keys) {
    builder.add_edge(static_cast<NodeId>(key >> 32),
                     static_cast<NodeId>(key & 0xffffffffULL));
  }
  return builder.build();
}

Graph stochastic_block_model(NodeId n, unsigned blocks, double p_in, double p_out,
                             std::uint64_t seed) {
  if (blocks == 0 || blocks > n) throw std::invalid_argument("sbm: bad block count");
  util::Rng rng(seed);
  std::vector<unsigned> block_of(n);
  for (NodeId u = 0; u < n; ++u) block_of[u] = u % blocks;
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = block_of[u] == block_of[v] ? p_in : p_out;
      if (rng.bernoulli(p)) builder.add_edge(u, v);
    }
  }
  return builder.build();
}

Graph forest_fire(NodeId n, double p_forward, std::uint64_t seed) {
  if (!(p_forward >= 0.0 && p_forward < 1.0)) {
    throw std::invalid_argument("forest_fire: p_forward must be in [0,1)");
  }
  if (n < 2) throw std::invalid_argument("forest_fire: need at least 2 nodes");
  util::Rng rng(seed);
  // Adjacency grown incrementally (needed for burning through neighbors).
  std::vector<std::vector<NodeId>> adj(n);
  GraphBuilder builder(n);
  auto link = [&](NodeId u, NodeId v) {
    builder.add_edge(u, v);
    adj[u].push_back(v);
    adj[v].push_back(u);
  };
  link(0, 1);
  std::vector<std::uint8_t> burned(n, 0);
  std::vector<NodeId> burn_list;
  for (NodeId u = 2; u < n; ++u) {
    const auto ambassador = static_cast<NodeId>(rng.below(u));
    burn_list.clear();
    burned[ambassador] = 1;
    burn_list.push_back(ambassador);
    // Breadth-first burning: from each burning node, burn a geometric
    // number of its unburned neighbors (mean p/(1-p)).
    std::size_t cursor = 0;
    while (cursor < burn_list.size() && burn_list.size() < 256) {
      const NodeId w = burn_list[cursor++];
      std::size_t burns = 0;
      while (rng.bernoulli(p_forward)) ++burns;  // geometric draw
      for (NodeId x : adj[w]) {
        if (burns == 0) break;
        if (burned[x]) continue;
        burned[x] = 1;
        burn_list.push_back(x);
        --burns;
      }
    }
    for (NodeId w : burn_list) {
      link(u, w);
      burned[w] = 0;  // reset for the next arrival
    }
  }
  return builder.build();
}

Graph powerlaw_configuration(NodeId n, double exponent, NodeId min_degree,
                             NodeId max_degree, std::uint64_t seed) {
  if (min_degree == 0 || min_degree > max_degree || max_degree >= n) {
    throw std::invalid_argument("powerlaw_configuration: bad degree bounds");
  }
  util::Rng rng(seed);
  // Inverse-CDF sampling of a discrete power law on [min_degree, max_degree].
  std::vector<double> cdf;
  cdf.reserve(max_degree - min_degree + 1);
  double total = 0.0;
  for (NodeId d = min_degree; d <= max_degree; ++d) {
    total += std::pow(static_cast<double>(d), -exponent);
    cdf.push_back(total);
  }
  std::vector<NodeId> stubs;
  std::vector<NodeId> degree(n);
  for (NodeId u = 0; u < n; ++u) {
    const double r = rng.uniform() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    degree[u] = min_degree + static_cast<NodeId>(it - cdf.begin());
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId i = 0; i < degree[u]; ++i) stubs.push_back(u);
  }
  if (stubs.size() % 2 == 1) stubs.push_back(static_cast<NodeId>(rng.below(n)));
  util::shuffle(stubs, rng);
  GraphBuilder builder(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(stubs.size());
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId u = stubs[i];
    const NodeId v = stubs[i + 1];
    if (u == v) continue;
    if (!seen.insert(pair_key(u, v)).second) continue;
    builder.add_edge(u, v);
  }
  return builder.build();
}

double sample_gamma(double shape, util::Rng& rng) {
  if (shape < 1.0) {
    // Boost via Gamma(shape+1) * U^(1/shape).
    const double g = sample_gamma(shape + 1.0, rng);
    return g * std::pow(std::max(rng.uniform(), 1e-300), 1.0 / shape);
  }
  // Marsaglia–Tsang.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    // Standard normal via Box–Muller.
    const double u1 = std::max(rng.uniform(), 1e-300);
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double v = 1.0 + c * z;
    if (v <= 0.0) continue;
    const double v3 = v * v * v;
    const double u = std::max(rng.uniform(), 1e-300);
    if (std::log(u) < 0.5 * z * z + d - d * v3 + d * std::log(v3)) return d * v3;
  }
}

double sample_beta(double a, double b, util::Rng& rng) {
  const double x = sample_gamma(a, rng);
  const double y = sample_gamma(b, rng);
  return x / (x + y);
}

namespace {

double jaccard_similarity(const Graph& g, NodeId u, NodeId v) {
  const auto nu = g.neighbors(u);
  const auto nv = g.neighbors(v);
  std::size_t inter = 0;
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == nv[j]) { ++inter; ++i; ++j; }
    else if (nu[i] < nv[j]) ++i;
    else ++j;
  }
  const std::size_t uni = nu.size() + nv.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

Graph assign_edge_probs(const Graph& g, const EdgeProbModel& model, std::uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder builder(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId u = g.edge_u(e);
    const NodeId v = g.edge_v(e);
    double p = 1.0;
    switch (model.kind) {
      case EdgeProbModel::Kind::kConstant:
        p = model.a;
        break;
      case EdgeProbModel::Kind::kUniform:
        p = rng.uniform(model.a, model.b);
        break;
      case EdgeProbModel::Kind::kBeta:
        p = sample_beta(model.a, model.b, rng);
        break;
      case EdgeProbModel::Kind::kStructural:
        p = model.a + model.b * jaccard_similarity(g, u, v);
        break;
    }
    builder.add_edge(u, v, std::clamp(p, 0.0, 1.0));
  }
  if (g.has_attributes()) {
    builder.set_attributes(
        std::vector<std::uint16_t>(g.attributes().begin(), g.attributes().end()),
        g.attribute_dim());
  }
  return builder.build();
}

Graph assign_attributes(const Graph& g, unsigned dim, std::uint16_t cardinality,
                        double homophily, std::uint64_t seed) {
  if (dim == 0 || cardinality == 0) {
    throw std::invalid_argument("assign_attributes: dim/cardinality must be positive");
  }
  util::Rng rng(seed);
  const NodeId n = g.num_nodes();
  std::vector<std::uint16_t> attrs(static_cast<std::size_t>(n) * dim);
  // Initialize uniformly, then do a homophily-propagation pass in node order:
  // copy from a random (already-assigned or not) neighbor with prob homophily.
  for (auto& a : attrs) a = static_cast<std::uint16_t>(rng.below(cardinality));
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) continue;
    for (unsigned d = 0; d < dim; ++d) {
      if (rng.bernoulli(homophily)) {
        const NodeId v = nbrs[rng.below(nbrs.size())];
        attrs[static_cast<std::size_t>(u) * dim + d] =
            attrs[static_cast<std::size_t>(v) * dim + d];
      }
    }
  }
  GraphBuilder builder(n);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    builder.add_edge(g.edge_u(e), g.edge_v(e), g.edge_prob(e));
  }
  builder.set_attributes(std::move(attrs), dim);
  return builder.build();
}

}  // namespace recon::graph
