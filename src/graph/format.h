// `#recon-graph v1` — versioned binary CSR graph format + mmap loader.
//
// A graph is parsed from text once (`recon graph convert`) and mapped
// forever after: opening a million-node binary graph touches only the
// header pages, so load time is milliseconds instead of a full re-parse.
// The format is little-endian with every section 8-byte aligned, so the
// on-disk arrays are exactly the in-memory CSR arrays and the loader hands
// the scoring kernels pointers straight into the mapping (zero copy).
//
// Layout (see docs/API.md for the normative grammar):
//
//   bytes 0..23   magic "#recon-graph v1\n" padded with NULs to 24 bytes
//   8 x u64       endian_tag (0x0123456789ABCDEF), num_nodes, num_edges,
//                 attribute_dim, flags, section_count,
//                 payload_checksum, header_checksum
//   section table section_count x {u64 section_id, u64 offset, u64 bytes}
//   sections      8-byte aligned, zero-padded, in section-id order:
//                   1 offsets    u64 x (n+1)      5 edge_u     u32 x m
//                   2 adjacency  u32 x 2m         6 edge_v     u32 x m
//                   3 edge_ids   u32 x 2m         7 new_to_old u32 x n  (flag 0)
//                   4 edge_prob  f64 x m          8 old_to_new u32 x n  (flag 0)
//                                                 9 attributes u16 x n*d (flag 1)
//
// Checksums are FNV-1a folded over 64-bit words (tail bytes folded singly):
// header_checksum covers bytes [0, 80), payload_checksum covers every byte
// from the first section to end-of-file (padding included). The header
// checksum is always verified at open; payload verification and structural
// validation (offset monotonicity, id bounds, row sortedness, CSR/edge-list
// cross-consistency, probability range, remap bijectivity) are on by
// default and can be disabled for minimum-latency opens of trusted files.
//
// Degree-sorted layout: the writer can relabel nodes by (degree descending,
// old id ascending) before serializing, so hot high-degree rows sit in
// dense leading cache lines. The new->old and old->new maps ride along in
// the file; Graph::orig_id() exposes the original labeling, and selection
// tie-breaks on it, keeping selected batches identical across layouts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace recon::graph {

/// How the writer lays out vertices on disk.
enum class GraphLayout {
  kKeep,          ///< preserve the graph's current labeling
  kDegreeSorted,  ///< relabel by (degree desc, old id asc); maps stored
};

struct GraphBinaryWriteOptions {
  GraphLayout layout = GraphLayout::kDegreeSorted;
};

struct GraphBinaryReadOptions {
  /// Verify the payload checksum at open. Touches every page (trades away
  /// mmap laziness for end-to-end corruption detection).
  bool verify_checksum = true;
  /// Validate CSR structure (bounds, sortedness, cross-consistency). Keeps
  /// a malicious or torn file from ever producing an out-of-bounds node or
  /// edge id downstream.
  bool validate_structure = true;
};

struct GraphBinaryInfo {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  bool relabeled = false;
  unsigned attribute_dim = 0;
  std::uint64_t file_bytes = 0;
};

/// Serializes g to `path` (atomically: tmp file + rename). With the default
/// degree-sorted layout the graph is relabeled before writing and the file
/// carries the id maps; an already-degree-sorted graph degrades to kKeep.
/// Throws std::runtime_error on I/O failure.
GraphBinaryInfo write_graph_binary_file(const std::string& path, const Graph& g,
                                        const GraphBinaryWriteOptions& options = {});

/// Opens a binary graph as a zero-copy mmap-backed Graph. The returned Graph
/// (and every copy of it) keeps the mapping alive; it is immutable and safe
/// to read from any number of threads. Throws std::runtime_error on open or
/// format errors (truncation, bad magic/endianness, checksum mismatch,
/// structural violations).
Graph map_graph_binary_file(const std::string& path,
                            const GraphBinaryReadOptions& options = {});

/// Header-only probe: counts and flags without touching payload pages.
GraphBinaryInfo probe_graph_binary_file(const std::string& path);

/// True when the file starts with the `#recon-graph v1` magic (used by the
/// CLI to auto-detect binary vs text graph inputs).
bool is_graph_binary_file(const std::string& path);

/// Stable degree-descending relabeling: old_to_new[old] = new, ordered by
/// (degree desc, old id asc). new id 0 is the highest-degree vertex.
std::vector<NodeId> degree_sort_permutation(const Graph& g);

/// Relabels every node u of g to old_to_new[u] (a bijection on [0, n)).
/// Edge ids are re-canonicalized; probabilities and attributes follow their
/// edges/nodes. The result's orig_ids() composes with g's own relabeling,
/// always mapping back to the *original* labeling.
Graph remap_graph(const Graph& g, std::span<const NodeId> old_to_new);

/// FNV-1a folded over 64-bit little-endian words (tail bytes folded singly);
/// `seed` chains incremental use. Exposed for tests and the bench harness.
std::uint64_t fnv64_words(const void* data, std::size_t bytes,
                          std::uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace recon::graph
