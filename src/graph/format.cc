#include "graph/format.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "graph/builder.h"
#include "util/crashpoint.h"
#include "util/fs.h"
#include "util/mmap_file.h"

namespace recon::graph {

/// Befriended by Graph: the only way to build an arena-backed Graph whose
/// accessor pointers alias a mapping, and the writer's window into the CSR
/// arrays without copying them out through spans.
class GraphArena {
 public:
  static const std::uint64_t* off(const Graph& g) noexcept { return g.off_p_; }
  static const NodeId* adj(const Graph& g) noexcept { return g.adj_p_; }
  static const EdgeId* eid(const Graph& g) noexcept { return g.eid_p_; }
  static const double* prob(const Graph& g) noexcept { return g.prob_p_; }
  static const NodeId* eu(const Graph& g) noexcept { return g.eu_p_; }
  static const NodeId* ev(const Graph& g) noexcept { return g.ev_p_; }
  static const std::uint16_t* attr(const Graph& g) noexcept { return g.attr_p_; }

  static Graph make(std::shared_ptr<const util::MappedFile> arena, NodeId n,
                    EdgeId m, unsigned attr_dim, const std::uint64_t* off,
                    const NodeId* adj, const EdgeId* eid, const double* prob,
                    const NodeId* eu, const NodeId* ev,
                    const std::uint16_t* attr, const NodeId* orig) {
    Graph g;
    g.num_nodes_ = n;
    g.num_edges_ = m;
    g.attribute_dim_ = attr_dim;
    g.arena_ = std::move(arena);
    g.off_p_ = off;
    g.adj_p_ = adj;
    g.eid_p_ = eid;
    g.prob_p_ = prob;
    g.eu_p_ = eu;
    g.ev_p_ = ev;
    g.attr_p_ = attr;
    g.orig_p_ = orig;
    return g;
  }
};

namespace {

constexpr std::size_t kMagicBytes = 24;
constexpr char kMagic[kMagicBytes] = {'#', 'r', 'e', 'c', 'o', 'n', '-', 'g',
                                      'r', 'a', 'p', 'h', ' ', 'v', '1', '\n',
                                      0,   0,   0,   0,   0,   0,   0,   0};
constexpr std::uint64_t kEndianTag = 0x0123456789ABCDEFull;

constexpr std::uint64_t kFlagRelabeled = 1u << 0;
constexpr std::uint64_t kFlagAttributes = 1u << 1;

enum SectionId : std::uint64_t {
  kSecOffsets = 1,
  kSecAdjacency = 2,
  kSecEdgeIds = 3,
  kSecEdgeProb = 4,
  kSecEdgeU = 5,
  kSecEdgeV = 6,
  kSecNewToOld = 7,
  kSecOldToNew = 8,
  kSecAttributes = 9,
};

struct HeaderFields {
  std::uint64_t endian_tag;
  std::uint64_t num_nodes;
  std::uint64_t num_edges;
  std::uint64_t attribute_dim;
  std::uint64_t flags;
  std::uint64_t section_count;
  std::uint64_t payload_checksum;
  std::uint64_t header_checksum;
};
static_assert(sizeof(HeaderFields) == 64);
static_assert(std::is_trivially_copyable_v<HeaderFields>);

constexpr std::size_t kHeaderBytes = kMagicBytes + sizeof(HeaderFields);
// header_checksum covers everything before itself.
constexpr std::size_t kHeaderChecksumSpan = kHeaderBytes - sizeof(std::uint64_t);

struct SectionTableEntry {
  std::uint64_t id;
  std::uint64_t offset;
  std::uint64_t bytes;
};
static_assert(sizeof(SectionTableEntry) == 24);

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("recon-graph binary '" + path + "': " + what);
}

std::uint64_t byteswap64(std::uint64_t v) {
  std::uint64_t r = 0;
  for (int i = 0; i < 8; ++i) r = (r << 8) | ((v >> (8 * i)) & 0xFF);
  return r;
}

std::size_t pad8(std::size_t bytes) { return (8 - bytes % 8) % 8; }

struct PendingSection {
  std::uint64_t id;
  const void* data;
  std::uint64_t bytes;
};

void fwrite_checked(const void* data, std::size_t bytes, std::FILE* f,
                    const std::string& path) {
  if (bytes == 0) return;
  if (std::fwrite(data, 1, bytes, f) != bytes) fail(path, "write failed");
}

}  // namespace

std::uint64_t fnv64_words(const void* data, std::size_t bytes,
                          std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h ^= w;
    h *= kPrime;
  }
  for (; i < bytes; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

std::vector<NodeId> degree_sort_permutation(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), NodeId{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&g](NodeId a, NodeId b) { return g.degree(a) > g.degree(b); });
  std::vector<NodeId> old_to_new(n);
  for (NodeId rank = 0; rank < n; ++rank) old_to_new[by_degree[rank]] = rank;
  return old_to_new;
}

Graph remap_graph(const Graph& g, std::span<const NodeId> old_to_new) {
  const NodeId n = g.num_nodes();
  if (old_to_new.size() != n) {
    throw std::invalid_argument("remap_graph: permutation size mismatch");
  }
  {
    std::vector<bool> seen(n, false);
    for (NodeId u = 0; u < n; ++u) {
      const NodeId nu = old_to_new[u];
      if (nu >= n || seen[nu]) {
        throw std::invalid_argument("remap_graph: map is not a bijection on [0, n)");
      }
      seen[nu] = true;
    }
  }

  GraphBuilder b(n);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    b.add_edge(old_to_new[g.edge_u(e)], old_to_new[g.edge_v(e)], g.edge_prob(e));
  }
  if (g.has_attributes()) {
    const unsigned d = g.attribute_dim();
    std::vector<std::uint16_t> attrs(static_cast<std::size_t>(n) * d);
    for (NodeId u = 0; u < n; ++u) {
      const auto row = g.node_attributes(u);
      std::copy(row.begin(), row.end(),
                attrs.begin() + static_cast<std::size_t>(old_to_new[u]) * d);
    }
    b.set_attributes(std::move(attrs), d);
  }
  Graph out = b.build();

  // Compose with g's own relabeling so orig_id always reaches the original
  // (pre-every-remap) labeling.
  std::vector<NodeId> new_to_orig(n);
  for (NodeId u = 0; u < n; ++u) new_to_orig[old_to_new[u]] = g.orig_id(u);
  out.set_orig_ids(std::move(new_to_orig));
  return out;
}

GraphBinaryInfo write_graph_binary_file(const std::string& path, const Graph& g,
                                        const GraphBinaryWriteOptions& options) {
  const Graph* src = &g;
  Graph remapped;
  if (options.layout == GraphLayout::kDegreeSorted) {
    std::vector<NodeId> perm = degree_sort_permutation(g);
    bool identity = true;
    for (NodeId u = 0; u < g.num_nodes() && identity; ++u) {
      identity = perm[u] == u;
    }
    if (!identity) {
      remapped = remap_graph(g, perm);
      src = &remapped;
    }
  }

  const NodeId n = src->num_nodes();
  const EdgeId m = src->num_edges();
  const unsigned d = src->attribute_dim();

  // Maps stored when the written labeling differs from the original one.
  std::vector<NodeId> new_to_old, old_to_new;
  if (src->is_relabeled()) {
    const auto orig = src->orig_ids();
    new_to_old.assign(orig.begin(), orig.end());
    old_to_new.resize(n);
    for (NodeId u = 0; u < n; ++u) old_to_new[new_to_old[u]] = u;
  }

  // A default-constructed (empty) Graph has no offsets array; every built
  // graph carries n + 1 entries.
  static constexpr std::uint64_t kZeroOffset = 0;
  const std::uint64_t* off = GraphArena::off(*src);
  if (off == nullptr) off = &kZeroOffset;

  std::vector<PendingSection> sections;
  const auto slots = 2 * static_cast<std::uint64_t>(m);
  sections.push_back({kSecOffsets, off, (static_cast<std::uint64_t>(n) + 1) * 8});
  sections.push_back({kSecAdjacency, GraphArena::adj(*src), slots * 4});
  sections.push_back({kSecEdgeIds, GraphArena::eid(*src), slots * 4});
  sections.push_back({kSecEdgeProb, GraphArena::prob(*src),
                      static_cast<std::uint64_t>(m) * 8});
  sections.push_back({kSecEdgeU, GraphArena::eu(*src),
                      static_cast<std::uint64_t>(m) * 4});
  sections.push_back({kSecEdgeV, GraphArena::ev(*src),
                      static_cast<std::uint64_t>(m) * 4});
  if (!new_to_old.empty()) {
    sections.push_back({kSecNewToOld, new_to_old.data(),
                        static_cast<std::uint64_t>(n) * 4});
    sections.push_back({kSecOldToNew, old_to_new.data(),
                        static_cast<std::uint64_t>(n) * 4});
  }
  if (d > 0) {
    sections.push_back({kSecAttributes, GraphArena::attr(*src),
                        static_cast<std::uint64_t>(n) * d * 2});
  }

  // Lay out sections (8-byte aligned, zero padded) and checksum the payload
  // exactly as it will appear on disk.
  std::vector<SectionTableEntry> table(sections.size());
  const std::size_t payload_start =
      kHeaderBytes + sections.size() * sizeof(SectionTableEntry);
  std::uint64_t cursor = payload_start;
  std::uint64_t payload_checksum = 0xcbf29ce484222325ull;
  static constexpr char kPad[8] = {0};
  for (std::size_t i = 0; i < sections.size(); ++i) {
    table[i] = {sections[i].id, cursor, sections[i].bytes};
    // Chain word-aligned: hash whole words of the section, then fold the
    // tail bytes zero-extended to one word — exactly what the reader sees
    // when it hashes section + padding as one contiguous byte range.
    const std::uint64_t whole = sections[i].bytes / 8 * 8;
    if (whole > 0) {
      payload_checksum = fnv64_words(sections[i].data, whole, payload_checksum);
    }
    const std::size_t tail = static_cast<std::size_t>(sections[i].bytes - whole);
    if (tail > 0) {
      unsigned char last[8] = {0};
      std::memcpy(last,
                  static_cast<const unsigned char*>(sections[i].data) + whole,
                  tail);
      payload_checksum = fnv64_words(last, 8, payload_checksum);
    }
    cursor += sections[i].bytes + pad8(sections[i].bytes);
  }

  HeaderFields h{};
  h.endian_tag = kEndianTag;
  h.num_nodes = n;
  h.num_edges = m;
  h.attribute_dim = d;
  h.flags = (new_to_old.empty() ? 0 : kFlagRelabeled) |
            (d > 0 ? kFlagAttributes : 0);
  h.section_count = sections.size();
  h.payload_checksum = payload_checksum;
  {
    std::uint64_t hc = fnv64_words(kMagic, kMagicBytes);
    hc = fnv64_words(&h, kHeaderChecksumSpan - kMagicBytes, hc);
    h.header_checksum = hc;
  }

  // Atomic publish: write the tmp file fully, then rename into place.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail(path, "cannot create " + tmp);
  try {
    fwrite_checked(kMagic, kMagicBytes, f, path);
    fwrite_checked(&h, sizeof(h), f, path);
    if (std::fflush(f) != 0) fail(path, "flush failed");
    RECON_CRASH_POINT("graph.tmp-torn");
    fwrite_checked(table.data(), table.size() * sizeof(SectionTableEntry), f,
                   path);
    for (const auto& s : sections) {
      fwrite_checked(s.data, s.bytes, f, path);
      fwrite_checked(kPad, pad8(s.bytes), f, path);
    }
    if (std::fflush(f) != 0) fail(path, "flush failed");
  } catch (...) {
    std::fclose(f);
    std::remove(tmp.c_str());
    throw;
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    fail(path, "close failed");
  }
  RECON_CRASH_POINT("graph.tmp-written");
  // Durable publish: fsync the tmp file, rename, fsync the directory — a
  // crash after return can no longer lose the file.
  util::durable_rename(tmp, path);

  GraphBinaryInfo info;
  info.num_nodes = n;
  info.num_edges = m;
  info.relabeled = !new_to_old.empty();
  info.attribute_dim = d;
  info.file_bytes = cursor;
  return info;
}

namespace {

/// Header + section-table validation shared by probe and map. Returns the
/// parsed header; `out_table` receives the bounds-checked table pointer.
const HeaderFields& read_header(const util::MappedFile& mf,
                                const SectionTableEntry** out_table) {
  const std::string& path = mf.path();
  if (mf.size() < kHeaderBytes) fail(path, "truncated header");
  if (std::memcmp(mf.data(), kMagic, kMagicBytes) != 0) {
    fail(path, "bad magic (not a #recon-graph v1 file)");
  }
  const HeaderFields& h = *mf.range<HeaderFields>(kMagicBytes, 1);
  if (h.endian_tag != kEndianTag) {
    if (byteswap64(h.endian_tag) == kEndianTag) {
      fail(path, "endianness mismatch (file written on a byte-swapped host)");
    }
    fail(path, "corrupt endian tag");
  }
  {
    std::uint64_t hc = fnv64_words(mf.data(), kHeaderChecksumSpan);
    if (hc != h.header_checksum) fail(path, "header checksum mismatch");
  }
  if (h.num_nodes > 0xFFFFFFFFull - 1 || h.num_edges > 0xFFFFFFFFull - 1) {
    fail(path, "node/edge count exceeds 32-bit id space");
  }
  if (h.num_nodes == 0 && h.num_edges > 0) fail(path, "edges without nodes");
  if (h.attribute_dim > 0xFFFF) fail(path, "implausible attribute dimension");
  if (h.section_count == 0 || h.section_count > 16) {
    fail(path, "implausible section count");
  }
  const auto* table = reinterpret_cast<const SectionTableEntry*>(
      mf.range<std::uint64_t>(kHeaderBytes, 3 * h.section_count));
  *out_table = table;
  return h;
}

struct SectionPtrs {
  const std::uint64_t* off = nullptr;
  const NodeId* adj = nullptr;
  const EdgeId* eid = nullptr;
  const double* prob = nullptr;
  const NodeId* eu = nullptr;
  const NodeId* ev = nullptr;
  const NodeId* new_to_old = nullptr;
  const NodeId* old_to_new = nullptr;
  const std::uint16_t* attr = nullptr;
};

SectionPtrs locate_sections(const util::MappedFile& mf, const HeaderFields& h,
                            const SectionTableEntry* table) {
  const std::string& path = mf.path();
  const std::uint64_t n = h.num_nodes;
  const std::uint64_t m = h.num_edges;
  const bool relabeled = (h.flags & kFlagRelabeled) != 0;
  const bool has_attrs = (h.flags & kFlagAttributes) != 0;
  if (has_attrs != (h.attribute_dim > 0)) {
    fail(path, "attribute flag/dimension disagreement");
  }

  SectionPtrs p;
  std::uint64_t seen_mask = 0;
  for (std::uint64_t i = 0; i < h.section_count; ++i) {
    const SectionTableEntry& s = table[i];
    if (s.id == 0 || s.id > kSecAttributes) {
      fail(path, "unknown section id " + std::to_string(s.id));
    }
    if (seen_mask & (1ull << s.id)) {
      fail(path, "duplicate section id " + std::to_string(s.id));
    }
    seen_mask |= 1ull << s.id;
    if (s.offset % 8 != 0) {
      fail(path, "misaligned section " + std::to_string(s.id));
    }
    const auto expect = [&](std::uint64_t count, std::uint64_t elem) {
      if (s.bytes != count * elem) {
        fail(path, "section " + std::to_string(s.id) + " has " +
                       std::to_string(s.bytes) + " bytes, expected " +
                       std::to_string(count * elem));
      }
      return count;
    };
    // MappedFile::range bounds- and alignment-checks every access.
    switch (s.id) {
      case kSecOffsets:
        p.off = mf.range<std::uint64_t>(s.offset, expect(n + 1, 8));
        break;
      case kSecAdjacency:
        p.adj = mf.range<NodeId>(s.offset, expect(2 * m, 4));
        break;
      case kSecEdgeIds:
        p.eid = mf.range<EdgeId>(s.offset, expect(2 * m, 4));
        break;
      case kSecEdgeProb:
        p.prob = mf.range<double>(s.offset, expect(m, 8));
        break;
      case kSecEdgeU:
        p.eu = mf.range<NodeId>(s.offset, expect(m, 4));
        break;
      case kSecEdgeV:
        p.ev = mf.range<NodeId>(s.offset, expect(m, 4));
        break;
      case kSecNewToOld:
        p.new_to_old = mf.range<NodeId>(s.offset, expect(n, 4));
        break;
      case kSecOldToNew:
        p.old_to_new = mf.range<NodeId>(s.offset, expect(n, 4));
        break;
      case kSecAttributes:
        p.attr = mf.range<std::uint16_t>(s.offset,
                                         expect(n * h.attribute_dim, 2));
        break;
    }
  }

  constexpr std::uint64_t kRequired =
      (1ull << kSecOffsets) | (1ull << kSecAdjacency) | (1ull << kSecEdgeIds) |
      (1ull << kSecEdgeProb) | (1ull << kSecEdgeU) | (1ull << kSecEdgeV);
  std::uint64_t want = kRequired;
  if (relabeled) want |= (1ull << kSecNewToOld) | (1ull << kSecOldToNew);
  if (has_attrs) want |= 1ull << kSecAttributes;
  if (seen_mask != want) fail(path, "missing or unexpected sections");
  return p;
}

/// Full CSR validation: O(n + m), single pass. Guarantees every id handed
/// out by any Graph accessor is in range, so downstream code can index
/// without checks even on untrusted files.
void validate_structure(const util::MappedFile& mf, const HeaderFields& h,
                        const SectionPtrs& p) {
  const std::string& path = mf.path();
  const std::uint64_t n = h.num_nodes;
  const std::uint64_t m = h.num_edges;

  if (p.off[0] != 0) fail(path, "offsets[0] != 0");
  if (p.off[n] != 2 * m) fail(path, "offsets[n] != 2m");
  for (std::uint64_t e = 0; e < m; ++e) {
    if (p.eu[e] >= p.ev[e] || p.ev[e] >= n) {
      fail(path, "edge " + std::to_string(e) + " has invalid endpoints");
    }
    const double pe = p.prob[e];
    if (!(pe >= 0.0 && pe <= 1.0)) {
      fail(path, "edge " + std::to_string(e) + " probability outside [0,1]");
    }
  }
  for (std::uint64_t u = 0; u < n; ++u) {
    const std::uint64_t lo = p.off[u];
    const std::uint64_t hi = p.off[u + 1];
    if (lo > hi || hi > 2 * m) fail(path, "offsets not monotone");
    for (std::uint64_t i = lo; i < hi; ++i) {
      const NodeId v = p.adj[i];
      const EdgeId e = p.eid[i];
      if (v >= n || v == u) fail(path, "adjacency id out of range");
      if (i > lo && p.adj[i - 1] >= v) fail(path, "adjacency row not sorted");
      if (e >= m) fail(path, "edge id out of range");
      // Strictly-sorted rows + 2m total slots force each edge to appear
      // exactly once per endpoint, so this cross-check pins the whole CSR to
      // the edge list.
      const NodeId a = static_cast<NodeId>(std::min<std::uint64_t>(u, v));
      const NodeId b = static_cast<NodeId>(std::max<std::uint64_t>(u, v));
      if (p.eu[e] != a || p.ev[e] != b) {
        fail(path, "adjacency disagrees with edge list at slot " +
                       std::to_string(i));
      }
    }
  }
  if (p.new_to_old != nullptr) {
    std::vector<bool> seen(n, false);
    for (std::uint64_t u = 0; u < n; ++u) {
      const NodeId old = p.new_to_old[u];
      if (old >= n || seen[old]) fail(path, "new_to_old is not a bijection");
      seen[old] = true;
      if (p.old_to_new[old] != u) {
        fail(path, "old_to_new is not the inverse of new_to_old");
      }
    }
  }
}

}  // namespace

Graph map_graph_binary_file(const std::string& path,
                            const GraphBinaryReadOptions& options) {
  std::shared_ptr<const util::MappedFile> mf = util::MappedFile::open(path);
  const SectionTableEntry* table = nullptr;
  const HeaderFields& h = read_header(*mf, &table);
  if (options.verify_checksum) {
    const std::size_t payload_start =
        kHeaderBytes + h.section_count * sizeof(SectionTableEntry);
    if (payload_start > mf->size()) fail(path, "truncated section table");
    const std::uint64_t got =
        fnv64_words(mf->data() + payload_start, mf->size() - payload_start);
    if (got != h.payload_checksum) fail(path, "payload checksum mismatch");
  }
  const SectionPtrs p = locate_sections(*mf, h, table);
  if (options.validate_structure) validate_structure(*mf, h, p);

  const auto n = static_cast<NodeId>(h.num_nodes);
  const auto m = static_cast<EdgeId>(h.num_edges);
  return GraphArena::make(std::move(mf), n, m,
                          static_cast<unsigned>(h.attribute_dim), p.off, p.adj,
                          p.eid, p.prob, p.eu, p.ev, p.attr, p.new_to_old);
}

GraphBinaryInfo probe_graph_binary_file(const std::string& path) {
  std::shared_ptr<const util::MappedFile> mf = util::MappedFile::open(path);
  const SectionTableEntry* table = nullptr;
  const HeaderFields& h = read_header(*mf, &table);
  GraphBinaryInfo info;
  info.num_nodes = h.num_nodes;
  info.num_edges = h.num_edges;
  info.relabeled = (h.flags & kFlagRelabeled) != 0;
  info.attribute_dim = static_cast<unsigned>(h.attribute_dim);
  info.file_bytes = mf->size();
  return info;
}

bool is_graph_binary_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[kMagicBytes];
  const std::size_t got = std::fread(buf, 1, kMagicBytes, f);
  std::fclose(f);
  return got == kMagicBytes && std::memcmp(buf, kMagic, kMagicBytes) == 0;
}

}  // namespace recon::graph
