// Structural graph metrics (used by dataset validation and Table I).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace recon::graph {

struct DegreeStats {
  double mean = 0.0;
  NodeId min = 0;
  NodeId max = 0;
};

DegreeStats degree_stats(const Graph& g);

/// Global clustering coefficient estimated by sampling `samples` wedges
/// (exact when the graph has fewer wedges than samples is not attempted;
/// sampling is deterministic given the seed).
double clustering_coefficient(const Graph& g, std::size_t samples, std::uint64_t seed);

/// Number of connected components (edges treated as existing; probabilities
/// ignored).
std::size_t connected_components(const Graph& g);

/// Size of the largest connected component.
std::size_t largest_component_size(const Graph& g);

/// Component label per node (labels are arbitrary but consistent).
std::vector<std::uint32_t> component_labels(const Graph& g);

}  // namespace recon::graph
