// Synthetic stand-ins for the paper's evaluation networks (Table I).
//
// The SNAP datasets (Facebook, Enron Email, Slashdot, Twitter) and the
// US-Political-Books network are not redistributable here, so each is
// replaced by a generator-backed surrogate with matched node count, matched
// mean degree, and a qualitatively similar topology class:
//
//   US Pol. Books  -> stochastic block model (3 communities, 105 / 441)
//   Facebook       -> Watts-Strogatz (high clustering, mean degree ~44)
//   Enron Email    -> power-law configuration model (mean degree ~10)
//   Slashdot       -> Barabási–Albert m=12 (mean degree ~24)
//   Twitter        -> Barabási–Albert m=22 (mean degree ~44)
//
// `scale` linearly scales node counts: scale 10 reproduces the paper's node
// counts, scale 1 (bench default) is a 1/10-size instance. US Pol. Books is
// never scaled (it is already tiny and Fig. 6 depends on its exact size).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/format.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace recon::graph {

enum class DatasetId {
  kUsPolBooks,
  kFacebook,
  kEnronEmail,
  kSlashdot,
  kTwitter,
};

struct Dataset {
  DatasetId id;
  std::string name;        ///< Paper's display name.
  Graph graph;             ///< Surrogate topology with edge probabilities.
  NodeId paper_nodes;      ///< Node count reported in Table I.
  EdgeId paper_edges;      ///< Edge count reported in Table I.
  std::string generator;   ///< Which generator produced the surrogate.
};

/// All dataset ids, in Table I order.
std::vector<DatasetId> all_dataset_ids();

/// The four medium/large networks used in Figs. 4–5 and Tables II–IV.
std::vector<DatasetId> snap_dataset_ids();

std::string dataset_name(DatasetId id);

/// Builds the surrogate for `id` at the given linear scale (clamped to a
/// minimum viable size). Edge probabilities follow the structural model
/// p_e = 0.4 + 0.5 * jaccard(u, v) (see DESIGN.md); pass `uniform_probs` to
/// use p_e = 1 instead (deterministic topology knowledge).
Dataset make_dataset(DatasetId id, double scale, std::uint64_t seed,
                     bool uniform_probs = false);

// SNAP-scale streaming generators: generate -> CSR -> `#recon-graph v1`
// binary file, with no text edge list and no retained pending-edge copy
// (GraphBuilder::from_unique_edges consumes the arrays in place). This is
// how million-node campaign inputs are produced: the file is then mapped
// zero-copy with map_graph_binary_file. Deterministic per seed. `probs`
// must be a streamable model (constant / uniform / beta) — structural
// probabilities need the finished topology, so kStructural is rejected.

/// Streams Barabási–Albert (attachment m_per_node) with n nodes to `path`.
GraphBinaryInfo stream_barabasi_albert_binary(
    const std::string& path, NodeId n, NodeId m_per_node,
    const EdgeProbModel& probs, std::uint64_t seed,
    const GraphBinaryWriteOptions& options = {});

/// Streams Erdős–Rényi G(n, m) with exactly m distinct edges to `path`.
GraphBinaryInfo stream_erdos_renyi_binary(
    const std::string& path, NodeId n, EdgeId m, const EdgeProbModel& probs,
    std::uint64_t seed, const GraphBinaryWriteOptions& options = {});

}  // namespace recon::graph
