// Compressed-sparse-row social graph with per-edge existence probabilities.
//
// The paper models an OSN as a graph G = (V, E) where each possible
// friendship e carries an existence probability p_e estimated via link
// prediction (Sec. II-A). Friendships are symmetric, so we store an
// undirected multigraph-free simple graph in CSR form: every undirected edge
// appears in both endpoints' adjacency lists, and both directed slots carry
// the same undirected EdgeId, which indexes per-edge state elsewhere
// (probabilities, revealed bitmaps, ground-truth existence).
//
// Storage: every accessor reads through a raw array pointer that binds to
// one of two backings —
//   * owned std::vectors (GraphBuilder / generators / text parse), or
//   * a shared read-only mmap arena (graph/format.h, `#recon-graph v1`
//     files), in which case the Graph holds the arena alive via shared_ptr
//     and the vectors stay empty: opening a million-node graph touches only
//     the header pages, not the whole file.
// The two backings are indistinguishable through the public API and produce
// bit-identical results everywhere (same arrays, same iteration order).
//
// Relabeled graphs: a degree-sorted binary file stores the graph under new
// ids together with the new->old map; orig_id(u) recovers a node's original
// (pre-remap) id, and is the identity for graphs that were never relabeled.
// Selection code tie-breaks on orig_id so relabeling cannot change which of
// two equally-scored candidates is picked (see core/batch_select.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace recon::util {
class MappedFile;
}

namespace recon::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

class GraphBuilder;
class GraphArena;  // graph/format.cc: constructs mmap-backed graphs

/// Immutable undirected graph in CSR form. Construct via GraphBuilder or map
/// a binary file with graph::map_graph_binary_file (graph/format.h).
class Graph {
 public:
  Graph() = default;
  Graph(const Graph& o);
  Graph(Graph&& o) noexcept;
  Graph& operator=(const Graph& o);
  Graph& operator=(Graph&& o) noexcept;
  ~Graph() = default;

  NodeId num_nodes() const noexcept { return num_nodes_; }
  EdgeId num_edges() const noexcept { return num_edges_; }

  /// Neighbors of u (sorted ascending).
  std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return {adj_p_ + off_p_[u], adj_p_ + off_p_[u + 1]};
  }

  /// Undirected edge ids aligned with neighbors(u).
  std::span<const EdgeId> incident_edges(NodeId u) const noexcept {
    return {eid_p_ + off_p_[u], eid_p_ + off_p_[u + 1]};
  }

  NodeId degree(NodeId u) const noexcept {
    return static_cast<NodeId>(off_p_[u + 1] - off_p_[u]);
  }

  /// Existence probability of undirected edge e.
  double edge_prob(EdgeId e) const noexcept { return prob_p_[e]; }

  /// All edge probabilities, indexed by EdgeId (for flat scoring kernels
  /// that hoist the array base pointer out of per-neighbor loops).
  std::span<const double> edge_probs() const noexcept {
    return {prob_p_, num_edges_};
  }

  /// Endpoints of undirected edge e, with endpoint_u < endpoint_v.
  NodeId edge_u(EdgeId e) const noexcept { return eu_p_[e]; }
  NodeId edge_v(EdgeId e) const noexcept { return ev_p_[e]; }

  /// Given edge e and one endpoint, returns the other endpoint.
  NodeId other_endpoint(EdgeId e, NodeId u) const noexcept {
    return eu_p_[e] == u ? ev_p_[e] : eu_p_[e];
  }

  /// Finds the undirected edge id between u and v (binary search over the
  /// smaller adjacency list); kInvalidEdge when absent.
  EdgeId find_edge(NodeId u, NodeId v) const noexcept;

  bool has_edge(NodeId u, NodeId v) const noexcept {
    return find_edge(u, v) != kInvalidEdge;
  }

  /// Expected degree of u: sum of incident edge probabilities.
  double expected_degree(NodeId u) const noexcept;

  /// Maximum expected degree over all nodes (the paper's constant M in the
  /// Bi benefit definition). Returns 0 for an empty graph.
  double max_expected_degree() const noexcept;

  /// Optional per-node categorical attributes (empty when unset). Attribute
  /// dimension d of node u is attributes()[u * attribute_dim() + d].
  std::span<const std::uint16_t> attributes() const noexcept {
    return {attr_p_, static_cast<std::size_t>(num_nodes_) * attribute_dim_};
  }
  unsigned attribute_dim() const noexcept { return attribute_dim_; }
  bool has_attributes() const noexcept { return attribute_dim_ > 0; }
  std::span<const std::uint16_t> node_attributes(NodeId u) const noexcept {
    return {attr_p_ + static_cast<std::size_t>(u) * attribute_dim_,
            attribute_dim_};
  }

  /// Original (pre-relabeling) id of node u; the identity for graphs that
  /// were never relabeled. Selection tie-breaks use this so a degree-sorted
  /// layout selects exactly the same nodes as the original labeling.
  NodeId orig_id(NodeId u) const noexcept {
    return orig_p_ != nullptr ? orig_p_[u] : u;
  }

  /// The full new->old map (empty span for identity labelings).
  std::span<const NodeId> orig_ids() const noexcept {
    return orig_p_ != nullptr
               ? std::span<const NodeId>{orig_p_, num_nodes_}
               : std::span<const NodeId>{};
  }
  bool is_relabeled() const noexcept { return orig_p_ != nullptr; }

  /// Attaches the new->old id map of a relabeling (size must be num_nodes).
  /// Pass an empty vector to clear back to the identity.
  void set_orig_ids(std::vector<NodeId> new_to_old);

  /// True when the arrays live in a shared mmap arena rather than owned
  /// vectors. Mapped graphs are safe to copy (copies share the arena) and
  /// keep the mapping alive until the last copy is destroyed.
  bool is_mapped() const noexcept { return arena_ != nullptr; }

 private:
  friend class GraphBuilder;
  friend class GraphArena;

  /// Points every accessor pointer at this object's own vectors. Called
  /// after the vectors are (re)filled and after copies/moves of owned
  /// storage.
  void rebind_owned() noexcept;
  /// After copying storage from `o`, fixes each pointer: arena-backed
  /// pointers are shared verbatim, vector-backed pointers rebind to the
  /// corresponding own vector.
  void fix_pointers(const Graph& o) noexcept;

  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  // Owned storage (empty for arena-backed sections).
  std::vector<std::uint64_t> offsets_;  // n + 1
  std::vector<NodeId> adjacency_;       // 2m, sorted within each node
  std::vector<EdgeId> edge_ids_;        // 2m, aligned with adjacency_
  std::vector<double> edge_prob_;       // m
  std::vector<NodeId> edge_u_, edge_v_; // m, with edge_u_ < edge_v_
  std::vector<std::uint16_t> attributes_;
  std::vector<NodeId> orig_ids_;        // n when relabeled, else empty
  unsigned attribute_dim_ = 0;
  // Keeps the mapped pages alive for arena-backed graphs.
  std::shared_ptr<const util::MappedFile> arena_;
  // The accessor pointers: each binds to the matching vector or the arena.
  const std::uint64_t* off_p_ = nullptr;
  const NodeId* adj_p_ = nullptr;
  const EdgeId* eid_p_ = nullptr;
  const double* prob_p_ = nullptr;
  const NodeId* eu_p_ = nullptr;
  const NodeId* ev_p_ = nullptr;
  const std::uint16_t* attr_p_ = nullptr;
  const NodeId* orig_p_ = nullptr;
};

}  // namespace recon::graph
