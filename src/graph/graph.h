// Compressed-sparse-row social graph with per-edge existence probabilities.
//
// The paper models an OSN as a graph G = (V, E) where each possible
// friendship e carries an existence probability p_e estimated via link
// prediction (Sec. II-A). Friendships are symmetric, so we store an
// undirected multigraph-free simple graph in CSR form: every undirected edge
// appears in both endpoints' adjacency lists, and both directed slots carry
// the same undirected EdgeId, which indexes per-edge state elsewhere
// (probabilities, revealed bitmaps, ground-truth existence).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace recon::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

class GraphBuilder;

/// Immutable undirected graph in CSR form. Construct via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  NodeId num_nodes() const noexcept { return num_nodes_; }
  EdgeId num_edges() const noexcept { return num_edges_; }

  /// Neighbors of u (sorted ascending).
  std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return {adjacency_.data() + offsets_[u], adjacency_.data() + offsets_[u + 1]};
  }

  /// Undirected edge ids aligned with neighbors(u).
  std::span<const EdgeId> incident_edges(NodeId u) const noexcept {
    return {edge_ids_.data() + offsets_[u], edge_ids_.data() + offsets_[u + 1]};
  }

  NodeId degree(NodeId u) const noexcept {
    return static_cast<NodeId>(offsets_[u + 1] - offsets_[u]);
  }

  /// Existence probability of undirected edge e.
  double edge_prob(EdgeId e) const noexcept { return edge_prob_[e]; }

  /// All edge probabilities, indexed by EdgeId (for flat scoring kernels
  /// that hoist the array base pointer out of per-neighbor loops).
  std::span<const double> edge_probs() const noexcept { return edge_prob_; }

  /// Endpoints of undirected edge e, with endpoint_u < endpoint_v.
  NodeId edge_u(EdgeId e) const noexcept { return edge_u_[e]; }
  NodeId edge_v(EdgeId e) const noexcept { return edge_v_[e]; }

  /// Given edge e and one endpoint, returns the other endpoint.
  NodeId other_endpoint(EdgeId e, NodeId u) const noexcept {
    return edge_u_[e] == u ? edge_v_[e] : edge_u_[e];
  }

  /// Finds the undirected edge id between u and v (binary search over the
  /// smaller adjacency list); kInvalidEdge when absent.
  EdgeId find_edge(NodeId u, NodeId v) const noexcept;

  bool has_edge(NodeId u, NodeId v) const noexcept {
    return find_edge(u, v) != kInvalidEdge;
  }

  /// Expected degree of u: sum of incident edge probabilities.
  double expected_degree(NodeId u) const noexcept;

  /// Maximum expected degree over all nodes (the paper's constant M in the
  /// Bi benefit definition). Returns 0 for an empty graph.
  double max_expected_degree() const noexcept;

  /// Optional per-node categorical attributes (empty when unset). Attribute
  /// dimension d of node u is attributes()[u * attribute_dim() + d].
  std::span<const std::uint16_t> attributes() const noexcept { return attributes_; }
  unsigned attribute_dim() const noexcept { return attribute_dim_; }
  bool has_attributes() const noexcept { return attribute_dim_ > 0; }
  std::span<const std::uint16_t> node_attributes(NodeId u) const noexcept {
    return {attributes_.data() + static_cast<std::size_t>(u) * attribute_dim_,
            attribute_dim_};
  }

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  std::vector<std::size_t> offsets_;    // n + 1
  std::vector<NodeId> adjacency_;       // 2m, sorted within each node
  std::vector<EdgeId> edge_ids_;        // 2m, aligned with adjacency_
  std::vector<double> edge_prob_;       // m
  std::vector<NodeId> edge_u_, edge_v_; // m, with edge_u_ < edge_v_
  std::vector<std::uint16_t> attributes_;
  unsigned attribute_dim_ = 0;
};

}  // namespace recon::graph
