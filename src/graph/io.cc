#include "graph/io.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/builder.h"

namespace recon::graph {

namespace {

// Single-pass tokenizer over a fully-buffered edge list. Compared to the
// old one-istringstream-per-line parser this is one allocation and one scan
// for the whole file, which is what makes `recon graph convert` on a
// million-node text file parse-bound rather than allocator-bound.
//
// Grammar per line (SNAP-compatible):
//   '#' starts a comment running to end of line
//   blank / comment-only lines are skipped
//   otherwise: <u> <v> [<p>] [ignored trailing tokens]
// Self-loops are silently dropped, as SNAP loaders do. Malformed or
// out-of-range ids and probabilities are hard errors with line numbers —
// silently truncating a 64-bit id to 32 bits would corrupt the graph.
class EdgeListScanner {
 public:
  EdgeListScanner(const char* data, std::size_t size)
      : p_(data), end_(data + size) {}

  struct Rec {
    NodeId u, v;
    double p;
  };

  /// Scans one line; false at end of input. Comment-only lines produce
  /// has_edge = false.
  bool next_line(Rec& rec, bool& has_edge) {
    if (p_ == end_) return false;
    ++lineno_;
    const char* line_end = p_;
    while (line_end != end_ && *line_end != '\n') ++line_end;
    const char* cur = p_;
    p_ = line_end == end_ ? line_end : line_end + 1;

    cur = skip_ws(cur, line_end);
    if (cur == line_end || *cur == '#') {
      has_edge = false;
      return true;
    }
    const NodeId u = parse_id(cur, line_end, "source");
    cur = skip_ws(cur, line_end);
    if (cur == line_end || *cur == '#') {
      throw error("missing target id");
    }
    const NodeId v = parse_id(cur, line_end, "target");
    cur = skip_ws(cur, line_end);
    double p = 1.0;
    if (cur != line_end && *cur != '#') {
      p = parse_prob(cur, line_end);
      // Trailing tokens (timestamps etc. in SNAP exports) are ignored.
    }
    rec = {u, v, p};
    has_edge = true;
    return true;
  }

  std::size_t lineno() const { return lineno_; }

 private:
  static const char* skip_ws(const char* cur, const char* end) {
    while (cur != end &&
           (*cur == ' ' || *cur == '\t' || *cur == '\r' || *cur == '\v' ||
            *cur == '\f')) {
      ++cur;
    }
    return cur;
  }

  std::runtime_error error(const std::string& what) const {
    return std::runtime_error("read_edge_list: " + what + " at line " +
                              std::to_string(lineno_));
  }

  NodeId parse_id(const char*& cur, const char* end, const char* which) {
    if (cur != end && *cur == '-') {
      throw error(std::string("negative ") + which + " node id");
    }
    if (cur != end && *cur == '+') ++cur;  // istream-compatible leniency
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(cur, end, value);
    if (ec == std::errc::invalid_argument || ptr == cur) {
      throw error(std::string("malformed ") + which + " node id");
    }
    // kInvalidNode is reserved and num_nodes = max_id + 1 must also fit.
    if (ec == std::errc::result_out_of_range || value >= kInvalidNode) {
      throw error(std::string(which) + " node id " +
                  std::string(cur, ptr - cur) +
                  " out of range (ids must be < " +
                  std::to_string(kInvalidNode) + ")");
    }
    if (ptr != end && !is_separator(*ptr)) {
      throw error(std::string("malformed ") + which + " node id");
    }
    cur = ptr;
    return static_cast<NodeId>(value);
  }

  double parse_prob(const char*& cur, const char* end) {
    double value = 1.0;
    const auto [ptr, ec] = std::from_chars(cur, end, value);
    if (ec == std::errc::invalid_argument || ptr == cur ||
        (ptr != end && !is_separator(*ptr))) {
      throw error("malformed probability");
    }
    if (ec == std::errc::result_out_of_range || !(value >= 0.0 && value <= 1.0)) {
      throw error("probability outside [0,1]");
    }
    cur = ptr;
    return value;
  }

  static bool is_separator(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' ||
           c == '#';
  }

  const char* p_;
  const char* end_;
  std::size_t lineno_ = 0;
};

Graph parse_edge_list(const char* data, std::size_t size, NodeId num_nodes) {
  EdgeListScanner scanner(data, size);
  std::vector<EdgeListScanner::Rec> recs;
  NodeId max_id = 0;
  EdgeListScanner::Rec rec{};
  bool has_edge = false;
  while (scanner.next_line(rec, has_edge)) {
    if (!has_edge) continue;
    if (rec.u == rec.v) continue;
    recs.push_back(rec);
    max_id = std::max(max_id, std::max(rec.u, rec.v));
  }
  const NodeId n = num_nodes != 0 ? num_nodes : (recs.empty() ? 0 : max_id + 1);
  GraphBuilder builder(n);
  for (const auto& r : recs) builder.add_edge(r.u, r.v, r.p);
  return builder.build();
}

}  // namespace

Graph read_edge_list(std::istream& in, NodeId num_nodes) {
  std::string buf(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>{});
  return parse_edge_list(buf.data(), buf.size(), num_nodes);
}

Graph read_edge_list_file(const std::string& path, NodeId num_nodes) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("read_edge_list_file: cannot open " + path);
  return read_edge_list(f, num_nodes);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# recon edge list: " << g.num_nodes() << " nodes, " << g.num_edges()
      << " edges\n";
  char buf[64];
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    // Shortest representation that round-trips exactly, so text -> binary
    // -> text is lossless for probabilities.
    const auto r = std::to_chars(buf, buf + sizeof(buf), g.edge_prob(e));
    out << g.edge_u(e) << ' ' << g.edge_v(e) << ' ';
    out.write(buf, r.ptr - buf);
    out.put('\n');
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_edge_list_file: cannot open " + path);
  write_edge_list(f, g);
  if (!f) throw std::runtime_error("write_edge_list_file: write failed: " + path);
}

}  // namespace recon::graph
