#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/builder.h"

namespace recon::graph {

Graph read_edge_list(std::istream& in, NodeId num_nodes) {
  struct Rec {
    NodeId u, v;
    double p;
  };
  std::vector<Rec> recs;
  NodeId max_id = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    long long u64 = -1, v64 = -1;
    double p = 1.0;
    if (!(ls >> u64)) continue;  // blank / comment-only line
    if (!(ls >> v64)) {
      throw std::runtime_error("read_edge_list: missing target id at line " +
                               std::to_string(lineno));
    }
    if (!(ls >> p)) p = 1.0;
    if (u64 < 0 || v64 < 0) {
      throw std::runtime_error("read_edge_list: negative node id at line " +
                               std::to_string(lineno));
    }
    const auto u = static_cast<NodeId>(u64);
    const auto v = static_cast<NodeId>(v64);
    if (u == v) continue;  // silently drop self-loops, as SNAP loaders do
    recs.push_back({u, v, p});
    max_id = std::max(max_id, std::max(u, v));
  }
  const NodeId n = num_nodes != 0 ? num_nodes : (recs.empty() ? 0 : max_id + 1);
  GraphBuilder builder(n);
  for (const auto& r : recs) builder.add_edge(r.u, r.v, r.p);
  return builder.build();
}

Graph read_edge_list_file(const std::string& path, NodeId num_nodes) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_edge_list_file: cannot open " + path);
  return read_edge_list(f, num_nodes);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# recon edge list: " << g.num_nodes() << " nodes, " << g.num_edges()
      << " edges\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    out << g.edge_u(e) << ' ' << g.edge_v(e) << ' ' << g.edge_prob(e) << '\n';
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_edge_list_file: cannot open " + path);
  write_edge_list(f, g);
  if (!f) throw std::runtime_error("write_edge_list_file: write failed: " + path);
}

}  // namespace recon::graph
