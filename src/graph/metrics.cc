#include "graph/metrics.h"

#include <algorithm>
#include <unordered_map>

#include "util/rng.h"

namespace recon::graph {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  if (g.num_nodes() == 0) return s;
  s.min = g.degree(0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId d = g.degree(u);
    s.mean += d;
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
  }
  s.mean /= static_cast<double>(g.num_nodes());
  return s;
}

double clustering_coefficient(const Graph& g, std::size_t samples, std::uint64_t seed) {
  // Sample wedges (v, {a, b}) with v chosen proportionally to the number of
  // wedges centered at it, then test whether (a, b) is closed.
  util::Rng rng(seed);
  std::vector<double> wedge_cdf(g.num_nodes());
  double total = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const double d = static_cast<double>(g.degree(u));
    total += d * (d - 1.0) / 2.0;
    wedge_cdf[u] = total;
  }
  if (total <= 0.0 || samples == 0) return 0.0;
  std::size_t closed = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const double r = rng.uniform() * total;
    const auto it = std::lower_bound(wedge_cdf.begin(), wedge_cdf.end(), r);
    const NodeId v = static_cast<NodeId>(it - wedge_cdf.begin());
    const auto nbrs = g.neighbors(v);
    const std::size_t d = nbrs.size();
    const std::size_t i = static_cast<std::size_t>(rng.below(d));
    std::size_t j = static_cast<std::size_t>(rng.below(d - 1));
    if (j >= i) ++j;
    if (g.has_edge(nbrs[i], nbrs[j])) ++closed;
  }
  return static_cast<double>(closed) / static_cast<double>(samples);
}

std::vector<std::uint32_t> component_labels(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> label(n, static_cast<std::uint32_t>(-1));
  std::vector<NodeId> stack;
  std::uint32_t next = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (label[s] != static_cast<std::uint32_t>(-1)) continue;
    label[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : g.neighbors(u)) {
        if (label[v] == static_cast<std::uint32_t>(-1)) {
          label[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  return label;
}

std::size_t connected_components(const Graph& g) {
  const auto labels = component_labels(g);
  std::uint32_t max_label = 0;
  for (std::uint32_t l : labels) max_label = std::max(max_label, l);
  return labels.empty() ? 0 : static_cast<std::size_t>(max_label) + 1;
}

std::size_t largest_component_size(const Graph& g) {
  const auto labels = component_labels(g);
  std::unordered_map<std::uint32_t, std::size_t> counts;
  for (std::uint32_t l : labels) ++counts[l];
  std::size_t best = 0;
  // lint:hash-order-ok(max over values is commutative; no order-sensitive output)
  for (const auto& [l, c] : counts) best = std::max(best, c);
  return best;
}

}  // namespace recon::graph
