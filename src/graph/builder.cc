#include "graph/builder.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace recon::graph {

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

void GraphBuilder::add_edge(NodeId u, NodeId v, double p) {
  if (u == v) throw std::invalid_argument("GraphBuilder: self-loop");
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw std::invalid_argument("GraphBuilder: node id out of range");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("GraphBuilder: probability outside [0,1]");
  }
  if (u > v) std::swap(u, v);
  us_.push_back(u);
  vs_.push_back(v);
  ps_.push_back(p);
}

bool GraphBuilder::has_pending_edge(NodeId u, NodeId v) const noexcept {
  if (u > v) std::swap(u, v);
  for (std::size_t i = 0; i < us_.size(); ++i) {
    if (us_[i] == u && vs_[i] == v) return true;
  }
  return false;
}

void GraphBuilder::set_attributes(std::vector<std::uint16_t> values, unsigned dim) {
  if (dim == 0 || values.size() != static_cast<std::size_t>(num_nodes_) * dim) {
    throw std::invalid_argument("GraphBuilder: attribute size mismatch");
  }
  attributes_ = std::move(values);
  attribute_dim_ = dim;
}

Graph GraphBuilder::build() const {
  // Sort edge indices by (u, v) and merge duplicates with max probability.
  std::vector<std::size_t> order(us_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (us_[a] != us_[b]) return us_[a] < us_[b];
    return vs_[a] < vs_[b];
  });

  Graph g;
  g.num_nodes_ = num_nodes_;
  g.edge_u_.reserve(us_.size());
  g.edge_v_.reserve(us_.size());
  g.edge_prob_.reserve(us_.size());
  for (std::size_t i : order) {
    if (!g.edge_u_.empty() && g.edge_u_.back() == us_[i] && g.edge_v_.back() == vs_[i]) {
      g.edge_prob_.back() = std::max(g.edge_prob_.back(), ps_[i]);
      continue;
    }
    g.edge_u_.push_back(us_[i]);
    g.edge_v_.push_back(vs_[i]);
    g.edge_prob_.push_back(ps_[i]);
  }
  g.num_edges_ = static_cast<EdgeId>(g.edge_u_.size());

  // Count degrees, fill CSR.
  g.offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (EdgeId e = 0; e < g.num_edges_; ++e) {
    ++g.offsets_[g.edge_u_[e] + 1];
    ++g.offsets_[g.edge_v_[e] + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.adjacency_.resize(2 * static_cast<std::size_t>(g.num_edges_));
  g.edge_ids_.resize(2 * static_cast<std::size_t>(g.num_edges_));
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  // Edges are visited in (u, v) sorted order, so u-side adjacency fills
  // sorted automatically; the v-side also fills sorted because edge_u_ is
  // nondecreasing and, for equal v, u values arrive in increasing order.
  for (EdgeId e = 0; e < g.num_edges_; ++e) {
    const NodeId u = g.edge_u_[e];
    const NodeId v = g.edge_v_[e];
    g.adjacency_[cursor[u]] = v;
    g.edge_ids_[cursor[u]] = e;
    ++cursor[u];
    g.adjacency_[cursor[v]] = u;
    g.edge_ids_[cursor[v]] = e;
    ++cursor[v];
  }
  // The v-side ordering argument above is subtle; enforce sortedness
  // defensively (cheap: almost always already sorted).
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const std::size_t lo = g.offsets_[u];
    const std::size_t hi = g.offsets_[u + 1];
    if (!std::is_sorted(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(lo),
                        g.adjacency_.begin() + static_cast<std::ptrdiff_t>(hi))) {
      std::vector<std::pair<NodeId, EdgeId>> tmp;
      tmp.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) tmp.emplace_back(g.adjacency_[i], g.edge_ids_[i]);
      std::sort(tmp.begin(), tmp.end());
      for (std::size_t i = lo; i < hi; ++i) {
        g.adjacency_[i] = tmp[i - lo].first;
        g.edge_ids_[i] = tmp[i - lo].second;
      }
    }
  }

  g.attributes_ = attributes_;
  g.attribute_dim_ = attribute_dim_;
  return g;
}

}  // namespace recon::graph
