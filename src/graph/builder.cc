#include "graph/builder.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace recon::graph {

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

void GraphBuilder::add_edge(NodeId u, NodeId v, double p) {
  if (u == v) throw std::invalid_argument("GraphBuilder: self-loop");
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw std::invalid_argument("GraphBuilder: node id out of range");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("GraphBuilder: probability outside [0,1]");
  }
  if (u > v) std::swap(u, v);
  us_.push_back(u);
  vs_.push_back(v);
  ps_.push_back(p);
}

bool GraphBuilder::has_pending_edge(NodeId u, NodeId v) const noexcept {
  if (u > v) std::swap(u, v);
  for (std::size_t i = 0; i < us_.size(); ++i) {
    if (us_[i] == u && vs_[i] == v) return true;
  }
  return false;
}

void GraphBuilder::set_attributes(std::vector<std::uint16_t> values, unsigned dim) {
  if (dim == 0 || values.size() != static_cast<std::size_t>(num_nodes_) * dim) {
    throw std::invalid_argument("GraphBuilder: attribute size mismatch");
  }
  attributes_ = std::move(values);
  attribute_dim_ = dim;
}

Graph GraphBuilder::build() const {
  // Sort edge indices by (u, v) and merge duplicates with max probability.
  std::vector<std::size_t> order(us_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (us_[a] != us_[b]) return us_[a] < us_[b];
    return vs_[a] < vs_[b];
  });

  Graph g;
  g.num_nodes_ = num_nodes_;
  g.edge_u_.reserve(us_.size());
  g.edge_v_.reserve(us_.size());
  g.edge_prob_.reserve(us_.size());
  for (std::size_t i : order) {
    if (!g.edge_u_.empty() && g.edge_u_.back() == us_[i] && g.edge_v_.back() == vs_[i]) {
      g.edge_prob_.back() = std::max(g.edge_prob_.back(), ps_[i]);
      continue;
    }
    g.edge_u_.push_back(us_[i]);
    g.edge_v_.push_back(vs_[i]);
    g.edge_prob_.push_back(ps_[i]);
  }
  g.num_edges_ = static_cast<EdgeId>(g.edge_u_.size());

  // Count degrees, fill CSR.
  g.offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (EdgeId e = 0; e < g.num_edges_; ++e) {
    ++g.offsets_[g.edge_u_[e] + 1];
    ++g.offsets_[g.edge_v_[e] + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.adjacency_.resize(2 * static_cast<std::size_t>(g.num_edges_));
  g.edge_ids_.resize(2 * static_cast<std::size_t>(g.num_edges_));
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  // Edges are visited in (u, v) sorted order, so u-side adjacency fills
  // sorted automatically; the v-side also fills sorted because edge_u_ is
  // nondecreasing and, for equal v, u values arrive in increasing order.
  for (EdgeId e = 0; e < g.num_edges_; ++e) {
    const NodeId u = g.edge_u_[e];
    const NodeId v = g.edge_v_[e];
    g.adjacency_[cursor[u]] = v;
    g.edge_ids_[cursor[u]] = e;
    ++cursor[u];
    g.adjacency_[cursor[v]] = u;
    g.edge_ids_[cursor[v]] = e;
    ++cursor[v];
  }
  // The v-side ordering argument above is subtle; enforce sortedness
  // defensively (cheap: almost always already sorted).
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const std::size_t lo = g.offsets_[u];
    const std::size_t hi = g.offsets_[u + 1];
    if (!std::is_sorted(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(lo),
                        g.adjacency_.begin() + static_cast<std::ptrdiff_t>(hi))) {
      std::vector<std::pair<NodeId, EdgeId>> tmp;
      tmp.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) tmp.emplace_back(g.adjacency_[i], g.edge_ids_[i]);
      std::sort(tmp.begin(), tmp.end());
      for (std::size_t i = lo; i < hi; ++i) {
        g.adjacency_[i] = tmp[i - lo].first;
        g.edge_ids_[i] = tmp[i - lo].second;
      }
    }
  }

  g.attributes_ = attributes_;
  g.attribute_dim_ = attribute_dim_;
  g.rebind_owned();  // the accessor pointers bind to the freshly filled vectors
  return g;
}

Graph GraphBuilder::from_unique_edges(NodeId num_nodes, std::vector<NodeId> us,
                                      std::vector<NodeId> vs,
                                      std::vector<double> ps) {
  const std::size_t m = us.size();
  if (vs.size() != m || ps.size() != m) {
    throw std::invalid_argument("from_unique_edges: array length mismatch");
  }
  if (m > static_cast<std::size_t>(kInvalidEdge)) {
    throw std::invalid_argument("from_unique_edges: too many edges");
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (us[i] > vs[i]) std::swap(us[i], vs[i]);
    if (us[i] == vs[i]) throw std::invalid_argument("from_unique_edges: self-loop");
    if (vs[i] >= num_nodes) {
      throw std::invalid_argument("from_unique_edges: node id out of range");
    }
    if (!(ps[i] >= 0.0 && ps[i] <= 1.0)) {
      throw std::invalid_argument("from_unique_edges: probability outside [0,1]");
    }
  }

  Graph g;
  g.num_nodes_ = num_nodes;
  g.num_edges_ = static_cast<EdgeId>(m);

  // Counting sort by u, then sort each u-bucket by v: O(n + m log maxdeg)
  // and one EdgeId index array instead of build()'s comparison sort over a
  // retained copy of the pending edge list.
  std::vector<std::uint64_t> bucket(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (std::size_t i = 0; i < m; ++i) ++bucket[us[i] + 1];
  for (std::size_t i = 1; i < bucket.size(); ++i) bucket[i] += bucket[i - 1];
  std::vector<EdgeId> order(m);
  {
    std::vector<std::uint64_t> cur(bucket.begin(), bucket.end() - 1);
    for (std::size_t i = 0; i < m; ++i) order[cur[us[i]]++] = static_cast<EdgeId>(i);
  }
  for (NodeId u = 0; u < num_nodes; ++u) {
    const auto lo = static_cast<std::ptrdiff_t>(bucket[u]);
    const auto hi = static_cast<std::ptrdiff_t>(bucket[u + 1]);
    std::sort(order.begin() + lo, order.begin() + hi,
              [&vs](EdgeId a, EdgeId b) { return vs[a] < vs[b]; });
    for (std::ptrdiff_t i = lo + 1; i < hi; ++i) {
      if (vs[order[i]] == vs[order[i - 1]]) {
        throw std::invalid_argument("from_unique_edges: duplicate edge");
      }
    }
  }

  g.edge_u_.resize(m);
  g.edge_v_.resize(m);
  g.edge_prob_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const EdgeId e = order[i];
    g.edge_u_[i] = us[e];
    g.edge_v_[i] = vs[e];
    g.edge_prob_[i] = ps[e];
  }
  us.clear();
  us.shrink_to_fit();
  vs.clear();
  vs.shrink_to_fit();
  ps.clear();
  ps.shrink_to_fit();

  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (EdgeId e = 0; e < g.num_edges_; ++e) {
    ++g.offsets_[g.edge_u_[e] + 1];
    ++g.offsets_[g.edge_v_[e] + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adjacency_.resize(2 * static_cast<std::size_t>(g.num_edges_));
  g.edge_ids_.resize(2 * static_cast<std::size_t>(g.num_edges_));
  {
    std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (EdgeId e = 0; e < g.num_edges_; ++e) {
      const NodeId u = g.edge_u_[e];
      const NodeId v = g.edge_v_[e];
      g.adjacency_[cursor[u]] = v;
      g.edge_ids_[cursor[u]] = e;
      ++cursor[u];
      g.adjacency_[cursor[v]] = u;
      g.edge_ids_[cursor[v]] = e;
      ++cursor[v];
    }
  }
  // Same defensive row-sortedness pass as build(): the u-side fills sorted
  // by construction, the v-side ordering argument is subtle.
  for (NodeId u = 0; u < num_nodes; ++u) {
    const std::size_t lo = g.offsets_[u];
    const std::size_t hi = g.offsets_[u + 1];
    if (!std::is_sorted(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(lo),
                        g.adjacency_.begin() + static_cast<std::ptrdiff_t>(hi))) {
      std::vector<std::pair<NodeId, EdgeId>> tmp;
      tmp.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) tmp.emplace_back(g.adjacency_[i], g.edge_ids_[i]);
      std::sort(tmp.begin(), tmp.end());
      for (std::size_t i = lo; i < hi; ++i) {
        g.adjacency_[i] = tmp[i - lo].first;
        g.edge_ids_[i] = tmp[i - lo].second;
      }
    }
  }
  g.rebind_owned();
  return g;
}

}  // namespace recon::graph
