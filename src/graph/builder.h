// Mutable edge-list accumulator that produces an immutable CSR Graph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace recon::graph {

/// Accumulates undirected edges and node attributes, then builds a Graph.
///
/// Duplicate edges (in either orientation) are merged: the *maximum*
/// probability wins, matching the "most optimistic link prediction"
/// convention. Self-loops are rejected.
class GraphBuilder {
 public:
  /// Creates a builder for `num_nodes` nodes.
  explicit GraphBuilder(NodeId num_nodes);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_pending_edges() const noexcept { return us_.size(); }

  /// Adds an undirected edge {u, v} with existence probability p in [0, 1].
  /// Throws std::invalid_argument on self-loops, out-of-range ids, or p
  /// outside [0, 1].
  void add_edge(NodeId u, NodeId v, double p = 1.0);

  /// Returns true if the edge has already been added (linear in pending
  /// edges; intended for tests and generators that need dedup-on-insert
  /// should keep their own set).
  bool has_pending_edge(NodeId u, NodeId v) const noexcept;

  /// Attaches categorical attributes: `values` has num_nodes * dim entries.
  void set_attributes(std::vector<std::uint16_t> values, unsigned dim);

  /// Builds the CSR graph. The builder may be reused afterwards (its pending
  /// edges are retained).
  Graph build() const;

  /// Zero-copy CSR assembly for streaming generators: consumes parallel edge
  /// arrays that are already *unique* (no duplicate pairs in either
  /// orientation). Endpoints are canonicalized in place; edges are counting-
  /// sorted by (u, v) — O(n + m log maxdeg) and no second copy of the edge
  /// list, versus build()'s retained pending arrays plus comparison sort.
  /// Throws std::invalid_argument on self-loops, out-of-range ids, bad
  /// probabilities, duplicate edges, or length mismatches.
  static Graph from_unique_edges(NodeId num_nodes, std::vector<NodeId> us,
                                 std::vector<NodeId> vs, std::vector<double> ps);

 private:
  NodeId num_nodes_;
  std::vector<NodeId> us_, vs_;   // canonicalized: us_[i] < vs_[i]
  std::vector<double> ps_;
  std::vector<std::uint16_t> attributes_;
  unsigned attribute_dim_ = 0;
};

}  // namespace recon::graph
