#include "linkpred/scores.h"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace recon::linkpred {

using graph::Graph;
using graph::NodeId;

namespace {

double aa_weight(const Graph& g, NodeId w) {
  const double d = static_cast<double>(g.degree(w));
  return 1.0 / std::log(std::max(2.0, d));
}

double ra_weight(const Graph& g, NodeId w) {
  const double d = static_cast<double>(g.degree(w));
  return d > 0.0 ? 1.0 / d : 0.0;
}

}  // namespace

double pair_score(const Graph& g, NodeId u, NodeId v, ScoreKind kind) {
  if (u == v) throw std::invalid_argument("pair_score: u == v");
  const auto nu = g.neighbors(u);
  const auto nv = g.neighbors(v);
  double cn = 0.0, aa = 0.0, ra = 0.0;
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == nv[j]) {
      cn += 1.0;
      aa += aa_weight(g, nu[i]);
      ra += ra_weight(g, nu[i]);
      ++i;
      ++j;
    } else if (nu[i] < nv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  switch (kind) {
    case ScoreKind::kCommonNeighbors:
      return cn;
    case ScoreKind::kJaccard: {
      const double uni = static_cast<double>(nu.size() + nv.size()) - cn;
      return uni > 0.0 ? cn / uni : 0.0;
    }
    case ScoreKind::kAdamicAdar:
      return aa;
    case ScoreKind::kResourceAllocation:
      return ra;
  }
  throw std::invalid_argument("pair_score: unknown kind");
}

std::vector<ScoredPair> two_hop_candidates(const Graph& g, NodeId u, ScoreKind kind) {
  std::vector<ScoredPair> out;
  std::unordered_map<NodeId, bool> visited;  // value unused; presence marks seen
  for (NodeId w : g.neighbors(u)) visited[w] = true;
  visited[u] = true;
  for (NodeId w : g.neighbors(u)) {
    for (NodeId v : g.neighbors(w)) {
      if (visited.count(v)) continue;
      visited[v] = true;
      const NodeId a = std::min(u, v);
      const NodeId b = std::max(u, v);
      out.push_back({a, b, pair_score(g, u, v, kind)});
    }
  }
  return out;
}

std::vector<ScoredPair> all_two_hop_candidates(const Graph& g, ScoreKind kind) {
  std::vector<ScoredPair> out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& sp : two_hop_candidates(g, u, kind)) {
      if (sp.u == u) out.push_back(sp);  // emit each unordered pair once
    }
  }
  return out;
}

}  // namespace recon::linkpred
