#include "linkpred/calibration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linkpred/scores.h"

#include "graph/builder.h"
#include "util/rng.h"

namespace recon::linkpred {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;

double LogisticModel::predict(double score) const noexcept {
  const double z = w0 + w1 * score;
  return 1.0 / (1.0 + std::exp(-z));
}

LogisticModel fit_logistic(const std::vector<LabeledScore>& data, int iterations,
                           double learning_rate) {
  if (data.empty()) throw std::invalid_argument("fit_logistic: empty data");
  // Standardize the score for stable optimization, then fold the transform
  // back into (w0, w1).
  double mean = 0.0;
  for (const auto& d : data) mean += d.score;
  mean /= static_cast<double>(data.size());
  double var = 0.0;
  for (const auto& d : data) var += (d.score - mean) * (d.score - mean);
  var /= static_cast<double>(data.size());
  const double sd = std::sqrt(std::max(var, 1e-12));

  double a = 0.0, b = 0.0;  // logit = a + b * z, z = (score - mean) / sd
  const double n = static_cast<double>(data.size());
  for (int it = 0; it < iterations; ++it) {
    double ga = 0.0, gb = 0.0;
    for (const auto& d : data) {
      const double z = (d.score - mean) / sd;
      const double p = 1.0 / (1.0 + std::exp(-(a + b * z)));
      const double err = p - (d.exists ? 1.0 : 0.0);
      ga += err;
      gb += err * z;
    }
    a -= learning_rate * ga / n;
    b -= learning_rate * gb / n;
  }
  LogisticModel model;
  model.w1 = b / sd;
  model.w0 = a - b * mean / sd;
  return model;
}

std::vector<LabeledScore> make_calibration_set(const Graph& g, ScoreKind kind,
                                               double negatives_per_positive,
                                               std::uint64_t seed) {
  std::vector<LabeledScore> data;
  data.reserve(g.num_edges() * 2);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    data.push_back({pair_score(g, g.edge_u(e), g.edge_v(e), kind), true});
  }
  const auto want_negatives = static_cast<std::size_t>(
      std::llround(negatives_per_positive * static_cast<double>(g.num_edges())));
  util::Rng rng(seed);
  std::size_t got = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = want_negatives * 50 + 100;
  while (got < want_negatives && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<NodeId>(rng.below(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (u == v || g.has_edge(u, v)) continue;
    data.push_back({pair_score(g, u, v, kind), false});
    ++got;
  }
  return data;
}

double roc_auc(const std::vector<LabeledScore>& data) {
  // Rank-based computation (Mann-Whitney U): sort by score, assign average
  // ranks to ties, AUC = (rank-sum of positives - n1(n1+1)/2) / (n1 * n0).
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return data[a].score < data[b].score;
  });
  std::size_t positives = 0, negatives = 0;
  for (const auto& d : data) (d.exists ? positives : negatives) += 1;
  if (positives == 0 || negatives == 0) {
    throw std::invalid_argument("roc_auc: need both classes");
  }
  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j < order.size() && data[order[j]].score == data[order[i]].score) ++j;
    // Average rank of the tie group [i, j) with 1-based ranks.
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);
    for (std::size_t t = i; t < j; ++t) {
      if (data[order[t]].exists) rank_sum_pos += avg_rank;
    }
    i = j;
  }
  const double n1 = static_cast<double>(positives);
  const double n0 = static_cast<double>(negatives);
  return (rank_sum_pos - n1 * (n1 + 1.0) / 2.0) / (n1 * n0);
}

double holdout_auc(const Graph& g, ScoreKind kind, double holdout_fraction,
                   std::uint64_t seed) {
  if (!(holdout_fraction > 0.0 && holdout_fraction < 1.0)) {
    throw std::invalid_argument("holdout_auc: fraction must be in (0,1)");
  }
  util::Rng rng(seed);
  const auto hidden_count = static_cast<std::uint32_t>(
      std::max(1.0, holdout_fraction * static_cast<double>(g.num_edges())));
  const auto hidden =
      util::sample_without_replacement(g.num_edges(), hidden_count, rng);
  std::vector<std::uint8_t> is_hidden(g.num_edges(), 0);
  for (auto e : hidden) is_hidden[e] = 1;
  // Training graph without the hidden edges.
  GraphBuilder builder(g.num_nodes());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!is_hidden[e]) builder.add_edge(g.edge_u(e), g.edge_v(e), g.edge_prob(e));
  }
  const Graph train = builder.build();
  std::vector<LabeledScore> data;
  data.reserve(2 * hidden.size());
  for (auto e : hidden) {
    data.push_back({pair_score(train, g.edge_u(e), g.edge_v(e), kind), true});
  }
  std::size_t got = 0, attempts = 0;
  while (got < hidden.size() && attempts < hidden.size() * 100 + 1000) {
    ++attempts;
    const auto u = static_cast<NodeId>(rng.below(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (u == v || g.has_edge(u, v)) continue;
    data.push_back({pair_score(train, u, v, kind), false});
    ++got;
  }
  return roc_auc(data);
}

Graph calibrate_edge_probs(const Graph& g, ScoreKind kind, std::uint64_t seed) {
  const auto data = make_calibration_set(g, kind, 1.0, seed);
  const LogisticModel model = fit_logistic(data);
  GraphBuilder builder(g.num_nodes());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const double s = pair_score(g, g.edge_u(e), g.edge_v(e), kind);
    builder.add_edge(g.edge_u(e), g.edge_v(e),
                     std::clamp(model.predict(s), 0.0, 1.0));
  }
  if (g.has_attributes()) {
    builder.set_attributes(
        std::vector<std::uint16_t>(g.attributes().begin(), g.attributes().end()),
        g.attribute_dim());
  }
  return builder.build();
}

}  // namespace recon::linkpred
