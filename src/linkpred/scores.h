// Topological link-prediction scores.
//
// The paper (Sec. II-A) assumes edge existence probabilities p_e are
// estimated with link-prediction methods over publicly observable structure
// [17]-[19]. This module provides the four classical neighborhood scores and
// a 2-hop candidate enumerator; linkpred/calibration.h maps raw scores to
// probabilities.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace recon::linkpred {

enum class ScoreKind {
  kCommonNeighbors,    ///< |N(u) ∩ N(v)|
  kJaccard,            ///< |N(u) ∩ N(v)| / |N(u) ∪ N(v)|
  kAdamicAdar,         ///< Σ_{w ∈ N(u) ∩ N(v)} 1 / log(deg(w))
  kResourceAllocation, ///< Σ_{w ∈ N(u) ∩ N(v)} 1 / deg(w)
};

/// Score for a single node pair (u != v). Degree-1 common neighbors
/// contribute log-degree guards for Adamic-Adar (1/log(2) substituted for
/// deg <= 1 to avoid division by zero, a common convention).
double pair_score(const graph::Graph& g, graph::NodeId u, graph::NodeId v,
                  ScoreKind kind);

struct ScoredPair {
  graph::NodeId u, v;  ///< u < v
  double score;
};

/// Scores every non-adjacent pair at distance exactly 2 from `u`
/// (the candidate set visible through mutual friends).
std::vector<ScoredPair> two_hop_candidates(const graph::Graph& g, graph::NodeId u,
                                           ScoreKind kind);

/// Scores all distance-2 non-adjacent pairs in the graph (each pair once).
/// Intended for small / medium graphs; cost is O(Σ_w deg(w)^2).
std::vector<ScoredPair> all_two_hop_candidates(const graph::Graph& g, ScoreKind kind);

}  // namespace recon::linkpred
