// Logistic calibration of link-prediction scores to probabilities.
//
// Fits p(edge | score) = sigmoid(w0 + w1 * score) by gradient descent on
// labeled (score, exists) pairs. Used to turn raw topological scores into
// the p_e beliefs the attacker plans with.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "linkpred/scores.h"

namespace recon::linkpred {

struct LogisticModel {
  double w0 = 0.0;
  double w1 = 1.0;

  double predict(double score) const noexcept;
};

struct LabeledScore {
  double score;
  bool exists;
};

/// Fits a 1-D logistic regression by full-batch gradient descent.
/// Throws std::invalid_argument on empty input.
LogisticModel fit_logistic(const std::vector<LabeledScore>& data,
                           int iterations = 500, double learning_rate = 0.5);

/// Builds a calibration set from a graph by treating existing edges as
/// positives and `negatives_per_positive` sampled distance-2 non-edges as
/// negatives, scoring both with `kind`. The "observed" structure used for
/// scoring excludes nothing (the attacker calibrates on public data).
std::vector<LabeledScore> make_calibration_set(const graph::Graph& g, ScoreKind kind,
                                               double negatives_per_positive,
                                               std::uint64_t seed);

/// Convenience: calibrates on g itself, then returns a copy of g whose edge
/// probabilities are the model's predictions for each edge's score.
graph::Graph calibrate_edge_probs(const graph::Graph& g, ScoreKind kind,
                                  std::uint64_t seed);

/// ROC-AUC of a labeled score set: the probability a random positive
/// outscores a random negative (ties count 1/2). 0.5 = chance; throws
/// std::invalid_argument when either class is empty.
double roc_auc(const std::vector<LabeledScore>& data);

/// Held-out link-prediction evaluation: hides `holdout_fraction` of g's
/// edges, scores the hidden edges plus an equal number of sampled non-edges
/// on the remaining graph, and returns the AUC — the standard measure of a
/// predictor's quality on a network.
double holdout_auc(const graph::Graph& g, ScoreKind kind, double holdout_fraction,
                   std::uint64_t seed);

}  // namespace recon::linkpred
