// Command implementations behind the `recon` CLI (tools/recon_cli.cc).
//
// Each command takes parsed arguments and an output stream and returns a
// process exit code; the CLI binary is a thin dispatcher so tests can drive
// commands directly.
//
//   recon generate --model ba --nodes 1000 --out g.txt [--probs structural]
//   recon attack   --graph g.txt --strategy pm --k 10 --budget 100 --runs 10
//                  [--targets 50] [--retries] [--traces out.traces]
//   recon metrics  --traces out.traces [--threshold 20] [--delay 300]
//   recon audit    --graph g.txt [--monitors 10] [--budget 100]
//   recon graph    convert|info|export|gen — `#recon-graph v1` binary tooling
//
// `--graph FILE` everywhere accepts either a text edge list or a binary
// `#recon-graph v1` file; the format is sniffed from the leading magic.
#pragma once

#include <iosfwd>
#include <string>

#include "util/env.h"

namespace recon::cli {

int cmd_generate(const util::Args& args, std::ostream& out, std::ostream& err);
int cmd_attack(const util::Args& args, std::ostream& out, std::ostream& err);
int cmd_metrics(const util::Args& args, std::ostream& out, std::ostream& err);
int cmd_audit(const util::Args& args, std::ostream& out, std::ostream& err);
int cmd_graph(const util::Args& args, std::ostream& out, std::ostream& err);
/// Campaign service daemon: loads one problem, then serves the line protocol
/// (service/protocol.h) from `in` — or from a local socket with --socket.
int cmd_serve(const util::Args& args, std::istream& in, std::ostream& out,
              std::ostream& err);

/// Prints usage for all commands.
void print_usage(std::ostream& out);

/// Dispatches on argv[1]; returns the command's exit code (2 on usage error).
int dispatch(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

}  // namespace recon::cli
