#include "cli/commands.h"

#include <csignal>
#include <exception>
#include <iostream>
#include <memory>
#include <ostream>

#include "core/async_attack.h"
#include "core/attack.h"
#include "core/baselines.h"
#include "core/checkpoint.h"
#include "core/checkpoint_chain.h"
#include "core/supervisor.h"
#include "core/m_arest.h"
#include "core/planner.h"
#include "core/pm_arest.h"
#include "core/retry_policy.h"
#include "defense/detector.h"
#include "graph/datasets.h"
#include "graph/format.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "metrics/rrs.h"
#include "service/protocol.h"
#include "service/registry.h"
#include "sim/fault.h"
#include "sim/problem.h"
#include "sim/problem_io.h"
#include "sim/trace_io.h"
#include "solver/fallback.h"
#include "solver/strategy_mip.h"
#include "util/crashpoint.h"
#include "util/fs.h"
#include "util/table.h"

namespace recon::cli {

namespace {

graph::Graph generate_graph(const util::Args& args) {
  const std::string model = args.get("model", "ba");
  const auto n = static_cast<graph::NodeId>(args.get_int("nodes", 1000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  graph::Graph g;
  if (model == "ba") {
    g = graph::barabasi_albert(n, static_cast<graph::NodeId>(args.get_int("m", 5)),
                               seed);
  } else if (model == "ws") {
    g = graph::watts_strogatz(n, static_cast<graph::NodeId>(args.get_int("k", 5)),
                              args.get_double("beta", 0.1), seed);
  } else if (model == "er") {
    g = graph::erdos_renyi_gnm(
        n, static_cast<graph::EdgeId>(args.get_int("edges", 5 * n)), seed);
  } else if (model == "sbm") {
    g = graph::stochastic_block_model(
        n, static_cast<unsigned>(args.get_int("blocks", 3)),
        args.get_double("pin", 0.2), args.get_double("pout", 0.02), seed);
  } else if (model == "powerlaw") {
    g = graph::powerlaw_configuration(
        n, args.get_double("exponent", 2.0),
        static_cast<graph::NodeId>(args.get_int("min-degree", 3)),
        static_cast<graph::NodeId>(args.get_int("max-degree", n / 10 + 10)), seed);
  } else {
    throw std::invalid_argument("unknown --model '" + model +
                                "' (ba|ws|er|sbm|powerlaw)");
  }
  const std::string probs = args.get("probs", "structural");
  if (probs == "structural") {
    g = graph::assign_edge_probs(g, graph::EdgeProbModel::structural(0.4, 0.5),
                                 util::derive_seed(seed, 0xB0));
  } else if (probs == "uniform") {
    g = graph::assign_edge_probs(
        g,
        graph::EdgeProbModel::uniform(args.get_double("plo", 0.2),
                                      args.get_double("phi", 0.9)),
        util::derive_seed(seed, 0xB0));
  } else if (probs == "const") {
    g = graph::assign_edge_probs(g,
                                 graph::EdgeProbModel::constant(args.get_double("p", 1.0)),
                                 util::derive_seed(seed, 0xB0));
  } else {
    throw std::invalid_argument("unknown --probs '" + probs +
                                "' (structural|uniform|const)");
  }
  return g;
}

sim::Problem load_problem(const util::Args& args) {
  // A saved problem file reproduces the full instance (targets + models);
  // otherwise the instance is derived from an edge list plus flags.
  const std::string problem_path = args.get("problem", "");
  if (!problem_path.empty()) return sim::read_problem_file(problem_path);
  const std::string path = args.get("graph", "");
  if (path.empty()) {
    throw std::invalid_argument("--graph FILE or --problem FILE is required");
  }
  // Binary `#recon-graph v1` files are sniffed by magic and mapped zero-copy;
  // anything else parses as a text edge list.
  graph::Graph g = graph::is_graph_binary_file(path)
                       ? graph::map_graph_binary_file(path)
                       : graph::read_edge_list_file(path);
  sim::ProblemOptions opts;
  opts.num_targets = static_cast<std::size_t>(args.get_int("targets", 50));
  const std::string mode = args.get("target-mode", "ball");
  if (mode == "random") opts.target_mode = sim::TargetMode::kRandom;
  else if (mode == "ball") opts.target_mode = sim::TargetMode::kBfsBall;
  else if (mode == "degree") opts.target_mode = sim::TargetMode::kHighDegree;
  else throw std::invalid_argument("unknown --target-mode (random|ball|degree)");
  opts.base_acceptance = args.get_double("q", 0.3);
  opts.mutual_boost = args.get_double("boost", 0.1);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  return sim::make_problem(std::move(g), opts);
}

/// Parses `--planner off|auto|fixed:<strategy>` into planner options. The
/// default (off) keeps every strategy's legacy flag-driven dispatch
/// bit-identical to pre-planner builds.
core::PlannerOptions parse_planner_options(const util::Args& args) {
  core::PlannerOptions po;
  const std::string spec = args.get("planner", "off");
  if (spec == "off") return po;
  if (spec == "auto") {
    po.mode = core::PlannerMode::kAuto;
    return po;
  }
  if (spec.rfind("fixed:", 0) == 0) {
    core::PlanStrategy s = core::PlanStrategy::kCollapsedUncached;
    if (core::parse_plan_strategy(spec.substr(6), &s)) {
      po.mode = core::PlannerMode::kFixed;
      po.fixed_strategy = s;
      return po;
    }
  }
  throw std::invalid_argument(
      "bad --planner '" + spec +
      "' (off|auto|fixed:<cached|uncached|tree|saa|exact|greedy>)");
}

core::StrategyFactory make_factory(const util::Args& args) {
  const std::string name = args.get("strategy", "pm");
  const int k = static_cast<int>(args.get_int("k", 10));
  const bool retries = args.has("retries");
  const auto max_attempts =
      static_cast<std::uint32_t>(args.get_int("max-attempts", 0));
  const core::PlannerOptions planner = parse_planner_options(args);
  if (planner.mode != core::PlannerMode::kOff && name != "pm" &&
      name != "mip" && name != "fallback") {
    throw std::invalid_argument(
        "--planner requires --strategy pm, mip, or fallback");
  }
  if (name == "pm") {
    return [k, retries, max_attempts, planner](int) {
      core::PmArestOptions o;
      o.batch_size = k;
      o.allow_retries = retries;
      o.max_attempts_per_node = max_attempts;
      o.planner = planner;
      return std::make_unique<core::PmArest>(o);
    };
  }
  if (name == "m") {
    return [retries](int) {
      core::MArestOptions o;
      o.allow_retries = retries;
      return std::make_unique<core::MArest>(o);
    };
  }
  if (name == "random") {
    return [k](int r) {
      return std::make_unique<core::RandomStrategy>(
          k, 1000 + static_cast<std::uint64_t>(r));
    };
  }
  if (name == "degree") {
    return [k](int) { return std::make_unique<core::HighDegreeStrategy>(k); };
  }
  if (name == "mip" || name == "lshaped") {
    const auto samples = static_cast<std::size_t>(args.get_int("samples", 300));
    const bool benders = name == "lshaped";
    return [k, retries, samples, benders, planner](int) {
      solver::MipStrategyOptions o;
      o.batch_size = k;
      o.allow_retries = retries;
      o.scenarios_per_batch = samples;
      o.candidate_cap = 30;
      o.use_benders = benders;
      o.planner = planner;
      return std::make_unique<solver::MipBatchStrategy>(o);
    };
  }
  if (name == "fallback") {
    const auto samples = static_cast<std::size_t>(args.get_int("samples", 300));
    const double fob_ms = args.get_double("fob-deadline-ms", 50.0);
    const double saa_ms = args.get_double("saa-deadline-ms", 50.0);
    return [k, retries, samples, fob_ms, saa_ms, planner](int) {
      solver::FallbackOptions o;
      o.batch_size = k;
      o.allow_retries = retries;
      o.scenarios_per_batch = samples;
      o.exact_deadline_seconds = fob_ms / 1000.0;
      o.saa_deadline_seconds = saa_ms / 1000.0;
      o.candidate_cap = 30;
      o.planner = planner;
      return std::make_unique<solver::FallbackStrategy>(o);
    };
  }
  throw std::invalid_argument("unknown --strategy '" + name +
                              "' (pm|m|random|degree|mip|lshaped|fallback)");
}

/// Parses and validates the fault-injection flags. Throws invalid_argument
/// with an actionable message on bad rates.
sim::FaultOptions parse_fault_options(const util::Args& args) {
  sim::FaultOptions fault;
  fault.timeout_rate = args.get_double("fault-timeout", 0.0);
  fault.drop_rate = args.get_double("fault-drop", 0.0);
  fault.throttle_rate = args.get_double("fault-throttle", 0.0);
  fault.suspension.max_requests =
      static_cast<std::size_t>(args.get_int("suspend-after", 0));
  fault.suspension.window_ticks =
      static_cast<std::uint64_t>(args.get_int("suspend-window", 1));
  fault.suspension.lockout_ticks =
      static_cast<std::uint64_t>(args.get_int("suspend-lockout", 5));
  fault.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 0xFA17));
  fault.validate();
  return fault;
}

/// Parses and validates the retry-backoff flags, cross-checking them against
/// the rest of the invocation.
core::RetryPolicy parse_retry_policy(const util::Args& args, double budget) {
  core::RetryPolicy retry;
  retry.backoff = core::parse_retry_backoff(args.get("retry-policy", "none"));
  retry.base_delay = args.get_double("retry-base", 1.0);
  retry.multiplier = args.get_double("retry-mult", 2.0);
  retry.max_delay = args.get_double("retry-max", 64.0);
  retry.jitter = args.get_double("retry-jitter", 0.0);
  retry.validate();
  if (retry.active() && !args.has("retries")) {
    throw std::invalid_argument(
        "--retry-policy without --retries never re-sends a failed request; "
        "add --retries or drop --retry-policy");
  }
  const auto max_attempts = args.get_int("max-attempts", 0);
  if (args.has("retries") && max_attempts > 0 &&
      static_cast<double>(max_attempts) > budget) {
    throw std::invalid_argument(
        "--max-attempts " + std::to_string(max_attempts) + " exceeds --budget " +
        std::to_string(static_cast<long long>(budget)) +
        ": one node could consume the whole budget; lower --max-attempts or "
        "raise --budget");
  }
  return retry;
}

/// --checkpoint (and the supervised chain base) must point into an existing
/// directory; catching that up front beats failing at the first snapshot
/// mid-campaign.
void validate_checkpoint_dir(const std::string& path) {
  if (path.empty()) return;
  const std::string dir = util::parent_dir(path);
  if (!util::directory_exists(dir)) {
    throw std::invalid_argument(
        "--checkpoint '" + path + "': directory '" + dir +
        "' does not exist — create it first (snapshots are published "
        "atomically into that directory from the first checkpoint on)");
  }
}

/// Graceful-stop flag set by SIGINT/SIGTERM in supervised workers and polled
/// through the runners' should_stop hook.
volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop_signal(int) { g_stop_requested = 1; }

void install_stop_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

/// Prints the synchronous-attack summary block and writes --traces.
void print_sync_summary(const util::Args& args, const std::string& strategy_name,
                        int runs, double budget,
                        const std::vector<sim::AttackTrace>& traces,
                        std::ostream& out) {
  out << "strategy " << strategy_name << ", " << runs << " runs, budget "
      << budget << "\n";
  double benefit = 0.0;
  double requests = 0.0;
  sim::BenefitBreakdown total;
  for (const auto& t : traces) {
    benefit += t.total_benefit();
    requests += static_cast<double>(t.total_requests());
    total += t.final_breakdown();
  }
  const double n = static_cast<double>(traces.size());
  out << "mean benefit   : " << util::format_fixed(benefit / n, 3) << "\n";
  out << "mean requests  : " << util::format_fixed(requests / n, 1) << "\n";
  out << "mean breakdown : friends " << util::format_fixed(total.friends / n, 2)
      << ", fofs " << util::format_fixed(total.fofs / n, 2) << ", edges "
      << util::format_fixed(total.edges / n, 2) << "\n";
  const std::string traces_path = args.get("traces", "");
  if (!traces_path.empty()) {
    sim::write_traces_file(traces_path, traces);
    out << "traces written : " << traces_path << "\n";
  }
}

/// The --async flavor of cmd_attack: drives the rolling-window runner. Shares
/// the fault/retry/checkpoint flags with the synchronous path; --stop-after
/// and --checkpoint-every count resolved events instead of batch rounds.
/// Throws on bad flags; the caller's try block turns that into exit code 1.
int run_attack_async(const util::Args& args, const sim::Problem& problem,
                     std::ostream& out) {
  const int runs = static_cast<int>(args.get_int("runs", 10));
  const double budget = args.get_double("budget", 100.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const sim::FaultOptions fault = parse_fault_options(args);
  const core::RetryPolicy retry = parse_retry_policy(args, budget);

  core::AsyncAttackOptions ao;
  ao.window = static_cast<int>(args.get_int("window", 5));
  ao.mean_delay = args.get_double("mean-delay", 300.0);
  const std::string dm = args.get("delay-model", "exp");
  if (dm == "exp") {
    ao.delay_model = core::ResponseDelayModel::kExponential;
  } else if (dm == "fixed") {
    ao.delay_model = core::ResponseDelayModel::kFixed;
  } else {
    throw std::invalid_argument("unknown --delay-model '" + dm + "' (exp|fixed)");
  }
  ao.allow_retries = args.has("retries");
  ao.max_attempts_per_node =
      static_cast<std::uint32_t>(args.get_int("max-attempts", 0));
  ao.timeout_seconds = args.get_double("timeout", 0.0);
  if (retry.active()) ao.retry = &retry;

  const std::string ckpt_path = args.get("checkpoint", "");
  const std::string resume_path = args.get("resume", "");
  const auto stop_after = static_cast<std::uint64_t>(args.get_int("stop-after", 0));
  const auto ckpt_every =
      static_cast<std::uint64_t>(args.get_int("checkpoint-every", 0));
  const bool single_run =
      !ckpt_path.empty() || !resume_path.empty() || stop_after > 0;
  if (ckpt_every > 0 && ckpt_path.empty()) {
    throw std::invalid_argument(
        "--checkpoint-every needs --checkpoint FILE to write to");
  }
  if (single_run && runs != 1) {
    throw std::invalid_argument(
        "--checkpoint/--resume/--stop-after drive a single attack; pass "
        "--runs 1");
  }
  validate_checkpoint_dir(ckpt_path);
  ao.checkpoint_path = ckpt_path;
  ao.checkpoint_every_events = ckpt_every;
  ao.stop_after_events = stop_after;
  core::AttackCheckpoint cp;
  if (!resume_path.empty()) {
    cp = core::read_checkpoint_file(resume_path);
    ao.resume = &cp;
  }

  std::vector<sim::AttackTrace> traces;
  double makespan = 0.0;
  double accepts = 0.0;
  for (int r = 0; r < runs; ++r) {
    // Match Monte-Carlo world seeding so --async --runs 1 reproduces run 0;
    // the delay stream gets its own derived sub-seed per run (on resume the
    // checkpoint's RNG state overrides it).
    const std::uint64_t world_seed =
        ao.resume != nullptr ? cp.world_seed
                             : util::derive_seed(seed, static_cast<std::uint64_t>(r));
    const sim::World world(problem, world_seed);
    core::AsyncAttackOptions o = ao;
    o.seed = util::derive_seed(seed, 0xA57C + static_cast<std::uint64_t>(r));
    std::unique_ptr<sim::FaultModel> fm;
    if (fault.any_faults()) {
      sim::FaultOptions fo = fault;
      fo.seed = util::derive_seed(fault.seed, static_cast<std::uint64_t>(r));
      fm = std::make_unique<sim::FaultModel>(fo);
      o.fault = fm.get();
    }
    auto res = core::run_async_attack(problem, world, o, budget);
    makespan += res.makespan_seconds;
    accepts += static_cast<double>(res.accepts);
    traces.push_back(std::move(res.trace));
    if (fm != nullptr && runs == 1) {
      const auto& c = fm->counters();
      out << "fault outcomes : delivered " << c.delivered << ", timeouts "
          << c.timeouts << ", drops " << c.drops << ", throttles "
          << c.throttles << ", bounced " << c.bounced << ", lockouts "
          << c.lockouts << "\n";
    }
  }
  if (!ckpt_path.empty()) out << "checkpoint     : " << ckpt_path << "\n";

  out << "strategy rolling-window(W=" << ao.window << "), " << runs
      << " runs, budget " << budget << "\n";
  double benefit = 0.0;
  double requests = 0.0;
  sim::BenefitBreakdown total;
  for (const auto& t : traces) {
    benefit += t.total_benefit();
    requests += static_cast<double>(t.total_requests());
    total += t.final_breakdown();
  }
  const double n = static_cast<double>(traces.size());
  out << "mean benefit   : " << util::format_fixed(benefit / n, 3) << "\n";
  out << "mean requests  : " << util::format_fixed(requests / n, 1) << "\n";
  out << "mean accepts   : " << util::format_fixed(accepts / n, 1) << "\n";
  out << "mean makespan  : " << util::format_fixed(makespan / n, 1) << " s\n";
  out << "mean breakdown : friends " << util::format_fixed(total.friends / n, 2)
      << ", fofs " << util::format_fixed(total.fofs / n, 2) << ", edges "
      << util::format_fixed(total.edges / n, 2) << "\n";
  const std::string traces_path = args.get("traces", "");
  if (!traces_path.empty()) {
    sim::write_traces_file(traces_path, traces);
    out << "traces written : " << traces_path << "\n";
  }
  return 0;
}

/// Supervised synchronous worker: one forked attempt of the campaign,
/// checkpointing into the generation chain. Returns the child's exit code.
int supervised_sync_worker(const util::Args& args, const sim::Problem& problem,
                           core::CheckpointChain& chain,
                           const core::AttackCheckpoint* resume,
                           std::ostream& out) {
  const double budget = args.get_double("budget", 100.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const sim::FaultOptions fault = parse_fault_options(args);
  const core::RetryPolicy retry = parse_retry_policy(args, budget);
  const auto factory = make_factory(args);

  core::AttackRunOptions ro;
  ro.checkpoint_chain = &chain;
  ro.checkpoint_every_rounds =
      static_cast<std::uint64_t>(args.get_int("checkpoint-every", 1));
  ro.resume = resume;
  ro.should_stop = [] { return g_stop_requested != 0; };
  std::unique_ptr<sim::FaultModel> fm;
  if (fault.any_faults()) {
    sim::FaultOptions fo = fault;
    fo.seed = util::derive_seed(fault.seed, 0);
    fm = std::make_unique<sim::FaultModel>(fo);
    ro.fault = fm.get();
  }
  if (retry.active()) ro.retry = &retry;

  const std::uint64_t world_seed =
      resume != nullptr ? resume->world_seed : util::derive_seed(seed, 0);
  const sim::World world(problem, world_seed);
  auto strategy = factory(0);
  sim::AttackTrace trace =
      core::run_attack(problem, world, *strategy, budget, ro);
  if (g_stop_requested != 0) {
    out << "supervised attack: stop requested; final snapshot in chain "
        << chain.base_path() << "\n";
    out.flush();
    return core::kWorkerStopExit;
  }
  std::vector<sim::AttackTrace> traces;
  traces.push_back(std::move(trace));
  print_sync_summary(args, strategy->name(), 1, budget, traces, out);
  out.flush();
  return 0;
}

/// Supervised rolling-window worker — the --async counterpart.
int supervised_async_worker(const util::Args& args, const sim::Problem& problem,
                            core::CheckpointChain& chain,
                            const core::AttackCheckpoint* resume,
                            std::ostream& out) {
  const double budget = args.get_double("budget", 100.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const sim::FaultOptions fault = parse_fault_options(args);
  const core::RetryPolicy retry = parse_retry_policy(args, budget);

  core::AsyncAttackOptions ao;
  ao.window = static_cast<int>(args.get_int("window", 5));
  ao.mean_delay = args.get_double("mean-delay", 300.0);
  const std::string dm = args.get("delay-model", "exp");
  if (dm == "exp") {
    ao.delay_model = core::ResponseDelayModel::kExponential;
  } else if (dm == "fixed") {
    ao.delay_model = core::ResponseDelayModel::kFixed;
  } else {
    throw std::invalid_argument("unknown --delay-model '" + dm + "' (exp|fixed)");
  }
  ao.allow_retries = args.has("retries");
  ao.max_attempts_per_node =
      static_cast<std::uint32_t>(args.get_int("max-attempts", 0));
  ao.timeout_seconds = args.get_double("timeout", 0.0);
  if (retry.active()) ao.retry = &retry;
  ao.checkpoint_chain = &chain;
  ao.checkpoint_every_events =
      static_cast<std::uint64_t>(args.get_int("checkpoint-every", 1));
  ao.resume = resume;
  ao.should_stop = [] { return g_stop_requested != 0; };
  ao.seed = util::derive_seed(seed, 0xA57C);
  std::unique_ptr<sim::FaultModel> fm;
  if (fault.any_faults()) {
    sim::FaultOptions fo = fault;
    fo.seed = util::derive_seed(fault.seed, 0);
    fm = std::make_unique<sim::FaultModel>(fo);
    ao.fault = fm.get();
  }

  const std::uint64_t world_seed =
      resume != nullptr ? resume->world_seed : util::derive_seed(seed, 0);
  const sim::World world(problem, world_seed);
  auto res = core::run_async_attack(problem, world, ao, budget);
  if (g_stop_requested != 0) {
    out << "supervised attack: stop requested; final snapshot in chain "
        << chain.base_path() << "\n";
    out.flush();
    return core::kWorkerStopExit;
  }
  out << "strategy rolling-window(W=" << ao.window << "), 1 runs, budget "
      << budget << "\n";
  out << "mean benefit   : "
      << util::format_fixed(res.trace.total_benefit(), 3) << "\n";
  out << "mean requests  : "
      << util::format_fixed(static_cast<double>(res.trace.total_requests()), 1)
      << "\n";
  out << "mean accepts   : "
      << util::format_fixed(static_cast<double>(res.accepts), 1) << "\n";
  out << "mean makespan  : " << util::format_fixed(res.makespan_seconds, 1)
      << " s\n";
  const sim::BenefitBreakdown total = res.trace.final_breakdown();
  out << "mean breakdown : friends " << util::format_fixed(total.friends, 2)
      << ", fofs " << util::format_fixed(total.fofs, 2) << ", edges "
      << util::format_fixed(total.edges, 2) << "\n";
  const std::string traces_path = args.get("traces", "");
  if (!traces_path.empty()) {
    sim::write_traces_file(traces_path, {res.trace});
    out << "traces written : " << traces_path << "\n";
  }
  out.flush();
  return 0;
}

/// `recon attack --supervise`: runs the campaign under core::run_supervised,
/// forking a worker per attempt and resuming from the last good generation
/// after every crash. The worker installs SIGINT/SIGTERM handlers that make
/// the runner write a final forced snapshot and exit kWorkerStopExit.
int run_attack_supervised(const util::Args& args, const sim::Problem& problem,
                          std::ostream& out, std::ostream& err) {
  const std::string ckpt_path = args.get("checkpoint", "");
  if (ckpt_path.empty()) {
    throw std::invalid_argument(
        "--supervise needs --checkpoint FILE (the generation-chain base "
        "path; generations land beside it as FILE.gen-N)");
  }
  validate_checkpoint_dir(ckpt_path);
  if (args.get_int("runs", 1) != 1) {
    throw std::invalid_argument(
        "--supervise drives a single campaign; pass --runs 1");
  }
  if (args.has("resume") || args.has("stop-after")) {
    throw std::invalid_argument(
        "--supervise resumes from its own generation chain; drop "
        "--resume/--stop-after");
  }

  core::CheckpointChainOptions co;
  co.max_generations =
      static_cast<std::size_t>(args.get_int("checkpoint-gens", 3));
  core::CheckpointChain chain(ckpt_path, co);

  core::SuperviseOptions so;
  so.max_restarts = static_cast<int>(args.get_int("max-restarts", 8));
  so.backoff_base_seconds = args.get_double("backoff-base", 0.5);
  so.backoff_multiplier = args.get_double("backoff-mult", 2.0);
  so.backoff_max_seconds = args.get_double("backoff-max", 30.0);
  so.crash_loop_threshold =
      static_cast<int>(args.get_int("crash-loop-threshold", 3));

  const bool async = args.has("async");
  const auto result = core::run_supervised(
      chain, so,
      [&](const core::AttackCheckpoint* resume, int attempt) -> int {
        g_stop_requested = 0;
        install_stop_handlers();
        try {
          return async
                     ? supervised_async_worker(args, problem, chain, resume, out)
                     : supervised_sync_worker(args, problem, chain, resume, out);
        } catch (const std::exception& e) {
          err << "attack (supervised worker, attempt " << attempt
              << "): " << e.what() << "\n";
          return 1;
        }
      });
  if (result.exit_code == 0) {
    out << "supervisor     : completed after " << result.restarts
        << " restart(s)\n";
  } else if (result.exit_code == core::kWorkerStopExit) {
    out << "supervisor     : stopped on request after " << result.restarts
        << " restart(s); rerun --supervise to continue\n";
  } else if (result.crash_loop) {
    err << "supervisor     : crash loop (no checkpoint progress); giving up\n";
  } else if (result.restart_budget_exhausted) {
    err << "supervisor     : restart budget exhausted after " << result.restarts
        << " restart(s)\n";
  }
  return result.exit_code;
}

}  // namespace

int cmd_generate(const util::Args& args, std::ostream& out, std::ostream& err) {
  try {
    const graph::Graph g = generate_graph(args);
    const std::string out_path = args.get("out", "");
    if (out_path.empty()) throw std::invalid_argument("--out FILE is required");
    graph::write_edge_list_file(out_path, g);
    const auto deg = graph::degree_stats(g);
    out << "wrote " << out_path << ": " << g.num_nodes() << " nodes, "
        << g.num_edges() << " edges, mean degree " << util::format_fixed(deg.mean, 1)
        << "\n";
    return 0;
  } catch (const std::exception& e) {
    err << "generate: " << e.what() << "\n";
    return 1;
  }
}

int cmd_attack(const util::Args& args, std::ostream& out, std::ostream& err) {
  try {
    const sim::Problem problem = load_problem(args);
    const std::string save_path = args.get("save-problem", "");
    if (!save_path.empty()) {
      sim::write_problem_file(save_path, problem);
      out << "problem saved    : " << save_path << "\n";
    }
    if (args.has("supervise")) {
      return run_attack_supervised(args, problem, out, err);
    }
    if (args.has("async")) return run_attack_async(args, problem, out);
    const auto factory = make_factory(args);
    const int runs = static_cast<int>(args.get_int("runs", 10));
    const double budget = args.get_double("budget", 100.0);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const sim::FaultOptions fault = parse_fault_options(args);
    const core::RetryPolicy retry = parse_retry_policy(args, budget);

    const std::string ckpt_path = args.get("checkpoint", "");
    const std::string resume_path = args.get("resume", "");
    const auto stop_after = static_cast<std::uint64_t>(args.get_int("stop-after", 0));
    const auto ckpt_every =
        static_cast<std::uint64_t>(args.get_int("checkpoint-every", 0));
    const bool single_run =
        !ckpt_path.empty() || !resume_path.empty() || stop_after > 0;
    if (ckpt_every > 0 && ckpt_path.empty()) {
      throw std::invalid_argument(
          "--checkpoint-every needs --checkpoint FILE to write to");
    }
    if (single_run && runs != 1) {
      throw std::invalid_argument(
          "--checkpoint/--resume/--stop-after drive a single attack; pass "
          "--runs 1");
    }
    validate_checkpoint_dir(ckpt_path);

    std::vector<sim::AttackTrace> traces;
    if (single_run) {
      core::AttackRunOptions ro;
      ro.stop_after_rounds = stop_after;
      ro.checkpoint_every_rounds = ckpt_every;
      ro.checkpoint_path = ckpt_path;
      core::AttackCheckpoint cp;
      if (!resume_path.empty()) {
        cp = core::read_checkpoint_file(resume_path);
        ro.resume = &cp;
      }
      // Match Monte-Carlo run 0 so a single run reproduces `--runs 1`.
      const std::uint64_t world_seed =
          ro.resume != nullptr ? cp.world_seed : util::derive_seed(seed, 0);
      const sim::World world(problem, world_seed);
      auto strategy = factory(0);
      std::unique_ptr<sim::FaultModel> fm;
      if (fault.any_faults()) {
        sim::FaultOptions fo = fault;
        fo.seed = util::derive_seed(fault.seed, 0);
        fm = std::make_unique<sim::FaultModel>(fo);
        ro.fault = fm.get();
      }
      if (retry.active()) ro.retry = &retry;
      traces.push_back(core::run_attack(problem, world, *strategy, budget, ro));
      if (fm != nullptr) {
        const auto& c = fm->counters();
        out << "fault outcomes : delivered " << c.delivered << ", timeouts "
            << c.timeouts << ", drops " << c.drops << ", throttles "
            << c.throttles << ", bounced " << c.bounced << ", lockouts "
            << c.lockouts << "\n";
      }
      if (!ckpt_path.empty()) out << "checkpoint     : " << ckpt_path << "\n";
    } else {
      auto mc = core::run_monte_carlo(
          problem, factory, runs, budget, seed, nullptr,
          fault.any_faults() ? &fault : nullptr, retry.active() ? &retry : nullptr);
      traces = std::move(mc.traces);
    }

    print_sync_summary(args, factory(0)->name(), runs, budget, traces, out);
    return 0;
  } catch (const std::exception& e) {
    err << "attack: " << e.what() << "\n";
    return 1;
  }
}

int cmd_metrics(const util::Args& args, std::ostream& out, std::ostream& err) {
  try {
    const std::string path = args.get("traces", "");
    if (path.empty()) throw std::invalid_argument("--traces FILE is required");
    // --recover tolerates a torn trailing record / missing end marker (the
    // state a crash mid-append leaves) instead of failing the whole read.
    const auto traces = args.has("recover") ? sim::read_traces_file_recover(path)
                                            : sim::read_traces_file(path);
    if (traces.empty()) throw std::invalid_argument("no traces in file");
    const double threshold = args.get_double("threshold", 20.0);
    const double delay = args.get_double("delay", 300.0);
    double benefit = 0.0;
    for (const auto& t : traces) benefit += t.total_benefit();
    out << "traces         : " << traces.size() << "\n";
    out << "mean benefit   : "
        << util::format_fixed(benefit / static_cast<double>(traces.size()), 3) << "\n";
    const auto r = metrics::rrs(traces, threshold);
    out << "RRS(Q=" << threshold << ")     : "
        << util::format_fixed(r.expected_requests, 1) << " requests ("
        << util::format_fixed(100.0 * r.reach_fraction, 0) << "% reached)\n";
    out << "RT-RRS(d=" << delay
        << "s): " << util::format_sci(metrics::rt_rrs(traces, delay))
        << " seconds per unit benefit\n";
    return 0;
  } catch (const std::exception& e) {
    err << "metrics: " << e.what() << "\n";
    return 1;
  }
}

int cmd_audit(const util::Args& args, std::ostream& out, std::ostream& err) {
  try {
    const sim::Problem problem = load_problem(args);
    const int runs = static_cast<int>(args.get_int("runs", 10));
    const double budget = args.get_double("budget", 100.0);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const auto monitors_n = static_cast<std::size_t>(args.get_int("monitors", 10));

    const auto mc = core::run_monte_carlo(
        problem,
        [](int) {
          core::PmArestOptions o;
          o.batch_size = 10;
          o.allow_retries = true;
          return std::make_unique<core::PmArest>(o);
        },
        runs, budget, seed);
    out << "simulated " << runs << " PM-AReST(k=10,retry) attacks, budget " << budget
        << "\n";
    out << "mean benefit harvested: " << util::format_fixed(mc.mean_benefit(), 2)
        << "\n\n";
    out << "recommended monitor placements (most-exploited users):\n";
    util::Table table({"node", "attack freq", "degree", "target?"});
    for (const auto& [node, freq] : metrics::vulnerable_users(mc.traces, monitors_n)) {
      table.add_row({std::to_string(node),
                     util::format_fixed(100.0 * freq, 0) + "%",
                     std::to_string(problem.graph.degree(node)),
                     problem.is_target[node] ? "yes" : "no"});
    }
    out << table.to_text();
    return 0;
  } catch (const std::exception& e) {
    err << "audit: " << e.what() << "\n";
    return 1;
  }
}

namespace {

graph::GraphBinaryWriteOptions parse_layout(const util::Args& args) {
  graph::GraphBinaryWriteOptions wo;
  const std::string layout = args.get("layout", "degree");
  if (layout == "degree") wo.layout = graph::GraphLayout::kDegreeSorted;
  else if (layout == "keep") wo.layout = graph::GraphLayout::kKeep;
  else throw std::invalid_argument("unknown --layout '" + layout + "' (degree|keep)");
  return wo;
}

/// Loads --in as either a binary `#recon-graph v1` file (mmap) or a text
/// edge list, sniffed by magic. --no-verify skips the binary checksum +
/// structure validation (trusted reopens of files this tool just wrote).
graph::Graph load_graph_arg(const util::Args& args) {
  const std::string path = args.get("in", "");
  if (path.empty()) throw std::invalid_argument("--in FILE is required");
  if (graph::is_graph_binary_file(path)) {
    graph::GraphBinaryReadOptions ro;
    if (args.has("no-verify")) {
      ro.verify_checksum = false;
      ro.validate_structure = false;
    }
    return graph::map_graph_binary_file(path, ro);
  }
  return graph::read_edge_list_file(path);
}

graph::EdgeProbModel parse_stream_probs(const util::Args& args) {
  const std::string probs = args.get("probs", "const");
  if (probs == "const") {
    return graph::EdgeProbModel::constant(args.get_double("p", 1.0));
  }
  if (probs == "uniform") {
    return graph::EdgeProbModel::uniform(args.get_double("plo", 0.2),
                                         args.get_double("phi", 0.9));
  }
  if (probs == "beta") {
    return graph::EdgeProbModel::beta(args.get_double("alpha", 2.0),
                                      args.get_double("beta", 5.0));
  }
  throw std::invalid_argument("unknown --probs '" + probs +
                              "' (const|uniform|beta; structural needs the "
                              "non-streaming `generate` command)");
}

void print_binary_info(const graph::GraphBinaryInfo& info, const std::string& path,
                       std::ostream& out) {
  out << path << ": " << info.num_nodes << " nodes, " << info.num_edges
      << " edges, layout " << (info.relabeled ? "degree-sorted" : "as-built")
      << ", attributes " << info.attribute_dim << ", " << info.file_bytes
      << " bytes\n";
}

}  // namespace

int cmd_graph(const util::Args& args, std::ostream& out, std::ostream& err) {
  try {
    // Args strips the leading "graph" token, so the subcommand is the first
    // positional.
    const auto& pos = args.positional();
    const std::string sub = pos.empty() ? "" : pos[0];
    if (sub == "convert") {
      const std::string out_path = args.get("out", "");
      if (out_path.empty()) throw std::invalid_argument("--out FILE is required");
      const graph::Graph g = load_graph_arg(args);
      const auto info = graph::write_graph_binary_file(out_path, g, parse_layout(args));
      print_binary_info(info, out_path, out);
      return 0;
    }
    if (sub == "info") {
      const std::string path = args.get("in", "");
      if (path.empty()) throw std::invalid_argument("--in FILE is required");
      if (graph::is_graph_binary_file(path)) {
        // Header-only probe: does not fault in the payload.
        print_binary_info(graph::probe_graph_binary_file(path), path, out);
      } else {
        const graph::Graph g = graph::read_edge_list_file(path);
        out << path << ": text edge list, " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges\n";
      }
      return 0;
    }
    if (sub == "export") {
      const std::string out_path = args.get("out", "");
      if (out_path.empty()) throw std::invalid_argument("--out FILE is required");
      graph::Graph g = load_graph_arg(args);
      if (g.is_relabeled() && !args.has("keep-labels")) {
        // Undo the on-disk degree-sorted relabeling so the exported edge
        // list matches the graph as originally ingested.
        std::vector<graph::NodeId> to_orig(g.num_nodes());
        for (graph::NodeId u = 0; u < g.num_nodes(); ++u) to_orig[u] = g.orig_id(u);
        g = graph::remap_graph(g, to_orig);
      }
      graph::write_edge_list_file(out_path, g);
      out << "wrote " << out_path << ": " << g.num_nodes() << " nodes, "
          << g.num_edges() << " edges\n";
      return 0;
    }
    if (sub == "gen") {
      const std::string out_path = args.get("out", "");
      if (out_path.empty()) throw std::invalid_argument("--out FILE is required");
      const std::string model = args.get("model", "ba");
      const auto n = static_cast<graph::NodeId>(args.get_int("nodes", 1000000));
      const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      const auto probs = parse_stream_probs(args);
      graph::GraphBinaryInfo info;
      if (model == "ba") {
        info = graph::stream_barabasi_albert_binary(
            out_path, n, static_cast<graph::NodeId>(args.get_int("m", 5)), probs,
            seed, parse_layout(args));
      } else if (model == "er") {
        info = graph::stream_erdos_renyi_binary(
            out_path, n, static_cast<graph::EdgeId>(args.get_int("edges", 5 * n)),
            probs, seed, parse_layout(args));
      } else {
        throw std::invalid_argument("unknown --model '" + model +
                                    "' (ba|er stream straight to binary; other "
                                    "models go through `generate` + convert)");
      }
      print_binary_info(info, out_path, out);
      return 0;
    }
    throw std::invalid_argument("unknown graph subcommand '" + sub +
                                "' (convert|info|export|gen)");
  } catch (const std::exception& e) {
    err << "graph: " << e.what() << "\n";
    return 1;
  }
}

int cmd_serve(const util::Args& args, std::istream& in, std::ostream& out,
              std::ostream& err) {
  try {
    service::CampaignRegistry::Options o;
    o.state_dir = args.get("state-dir", ".");
    o.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    service::CampaignRegistry registry(std::move(o));
    // The daemon's whole point is resident problem state: load the (possibly
    // mmap-backed) instance once, then every campaign shares it immutably.
    const std::string name = args.get("name", "default");
    registry.register_problem(name, load_problem(args));
    out << "serve: problem '" << name << "' resident; state dir "
        << registry.options().state_dir << "; pool threads "
        << registry.pool().size() << "\n";
    const std::string socket = args.get("socket", "");
    if (!socket.empty()) {
      service::serve_unix_socket(socket, registry);
    } else {
      service::run_protocol(in, out, registry);
    }
    return 0;
  } catch (const std::exception& e) {
    err << "serve: " << e.what() << "\n";
    return 1;
  }
}

int cmd_crashpoints(std::ostream& out) {
  // One site per line: tools/chaos_sweep.sh iterates this list, arming each
  // site via RECON_CRASH_AT=<site>:<n>.
  for (const auto& site : util::crashpoint::all_sites()) {
    out << site << "\n";
  }
  return 0;
}

void print_usage(std::ostream& out) {
  out << "recon — adaptive reconnaissance-attack toolkit (ICDCS'17 reproduction)\n"
         "usage: recon <command> [--flags]\n\n"
         "commands:\n"
         "  generate  synthesize a probabilistic social graph -> edge list\n"
         "            --model ba|ws|er|sbm|powerlaw --nodes N --out FILE\n"
         "            [--probs structural|uniform|const] [--seed S] [model params]\n"
         "  attack    run Monte-Carlo attacks against a graph\n"
         "            --graph FILE | --problem FILE\n"
         "            [--strategy pm|m|random|degree|mip|lshaped|fallback] [--k K]\n"
         "            [--budget B] [--runs R] [--retries] [--max-attempts M]\n"
         "            [--targets N] [--target-mode random|ball|degree]\n"
         "            [--traces OUT] [--save-problem OUT]\n"
         "            fault injection:\n"
         "            [--fault-timeout R] [--fault-drop R] [--fault-throttle R]\n"
         "            [--suspend-after N --suspend-window W --suspend-lockout L]\n"
         "            [--fault-seed S]\n"
         "            retry backoff (needs --retries):\n"
         "            [--retry-policy none|fixed|exponential] [--retry-base D]\n"
         "            [--retry-mult M] [--retry-max D] [--retry-jitter J]\n"
         "            checkpoint/resume (needs --runs 1):\n"
         "            [--checkpoint FILE [--checkpoint-every N]] [--resume FILE]\n"
         "            [--stop-after ROUNDS]\n"
         "            supervised self-healing runner (forks a worker per\n"
         "            attempt, resumes from the last good generation):\n"
         "            [--supervise --checkpoint BASE [--checkpoint-gens G]\n"
         "             [--max-restarts N] [--crash-loop-threshold C]\n"
         "             [--backoff-base S --backoff-mult M --backoff-max S]]\n"
         "            rolling-window (event-driven) runner:\n"
         "            [--async [--window W] [--mean-delay S] [--timeout S]\n"
         "             [--delay-model exp|fixed]]  (checkpoint/resume applies;\n"
         "             --stop-after/--checkpoint-every count resolved events)\n"
         "            fallback solver: [--fob-deadline-ms MS] [--saa-deadline-ms MS]\n"
         "            runtime planner (strategy pm|mip|fallback; default off\n"
         "            keeps the flag-driven dispatch bit-identical):\n"
         "            [--planner off|auto|fixed:<cached|uncached|tree|saa|\n"
         "             exact|greedy>]  (auto picks per batch from calibrated\n"
         "             cost models; state rides in checkpoints)\n"
         "  graph     `#recon-graph v1` binary substrate tooling\n"
         "            convert --in GRAPH --out BIN [--layout degree|keep]\n"
         "            info    --in FILE            (header-only probe on binary)\n"
         "            export  --in BIN --out TXT [--keep-labels]\n"
         "            gen     --model ba|er --nodes N --out BIN [--m M|--edges E]\n"
         "                    [--probs const|uniform|beta ...] [--seed S]\n"
         "            (--graph everywhere auto-detects text vs binary;\n"
         "             binary opens add --no-verify to skip checksum+validation)\n"
         "  serve     campaign service daemon: problem + thread pool stay\n"
         "            resident; many concurrent campaigns run over a line\n"
         "            protocol (SUBMIT/STATUS/LIST/PAUSE/RESUME/CANCEL/WAIT/\n"
         "            SHUTDOWN — see docs/API.md)\n"
         "            --graph FILE | --problem FILE [--name NAME]\n"
         "            [--state-dir DIR] [--threads N] [--socket PATH]\n"
         "            (default: stdin/stdout; --socket serves AF_UNIX)\n"
         "  metrics   compute RRS / RT-RRS from a saved trace file\n"
         "            --traces FILE [--threshold Q] [--delay SECONDS]\n"
         "            [--recover]  (truncate a torn trailing record instead\n"
         "             of failing on a crash-interrupted file)\n"
         "  audit     recommend defender monitor placements\n"
         "            --graph FILE [--monitors M] [--budget B] [--runs R]\n"
         "  crashpoints  list the registered crash-injection sites\n"
         "            (arm one with RECON_CRASH_AT=<site>:<n>; the n-th\n"
         "             execution kills the process — see docs/API.md)\n";
}

int dispatch(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    print_usage(err);
    return 2;
  }
  const std::string cmd = argv[1];
  const util::Args args(argc - 1, argv + 1);
  if (cmd == "generate") return cmd_generate(args, out, err);
  if (cmd == "attack") return cmd_attack(args, out, err);
  if (cmd == "metrics") return cmd_metrics(args, out, err);
  if (cmd == "audit") return cmd_audit(args, out, err);
  if (cmd == "graph") return cmd_graph(args, out, err);
  if (cmd == "serve") return cmd_serve(args, std::cin, out, err);
  if (cmd == "crashpoints") return cmd_crashpoints(out);
  if (cmd == "help" || cmd == "--help") {
    print_usage(out);
    return 0;
  }
  err << "unknown command '" << cmd << "'\n";
  print_usage(err);
  return 2;
}

}  // namespace recon::cli
