// Network-vulnerability metrics (paper Sec. V-C).
//
//  * RRS — Reconnaissance Resistance Score: the expected number of friend
//    requests needed to reach a benefit threshold Q (Li et al. [3]).
//  * RT-RRS — Real-Time RRS: the expected *time* per unit benefit when a
//    response delay d elapses between batch steps; computed "by adding the
//    delay d between each logged batch step", so a sequential attacker pays
//    d per request while a batch attacker pays d per batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/trace.h"

namespace recon::metrics {

struct RrsResult {
  double expected_requests = 0.0;  ///< mean over runs that reached the threshold
  double reach_fraction = 0.0;     ///< fraction of runs reaching the threshold
};

/// RRS at threshold Q over a set of Monte-Carlo traces. Runs that never
/// reach Q within their budget are excluded from the mean (reported via
/// reach_fraction).
RrsResult rrs(const std::vector<sim::AttackTrace>& traces, double q_threshold);

/// RT-RRS in seconds-per-benefit: E[Σ_batches (select_seconds + delay)] /
/// E[final benefit]. Traces with zero benefit contribute time but no
/// benefit; returns +inf when no run gains any benefit.
double rt_rrs(const std::vector<sim::AttackTrace>& traces, double delay_seconds);

/// Total attack wall time of one trace under the delay model.
double attack_time_seconds(const sim::AttackTrace& trace, double delay_seconds);

/// Stochastic response-delay models. The fixed model adds `mean_delay` per
/// batch; the stochastic models draw one response delay per *request* and a
/// batch completes when its slowest response arrives (max over the batch) —
/// so batching pays an E[max of k draws] factor (~H_k for exponential),
/// refining Table IV's fixed-delay assumption.
enum class DelayModel {
  kFixed,        ///< every response takes exactly mean_delay
  kExponential,  ///< delays ~ Exp(1 / mean_delay)
  kLogNormal,    ///< delays ~ LogNormal with the given mean and sigma = 1
};

/// Attack wall time with per-request stochastic delays (deterministic in
/// `seed`).
double attack_time_stochastic(const sim::AttackTrace& trace, double mean_delay,
                              DelayModel model, std::uint64_t seed);

/// RT-RRS under stochastic delays: E[time] / E[benefit], with `draws`
/// delay resamplings per trace.
double rt_rrs_stochastic(const std::vector<sim::AttackTrace>& traces,
                         double mean_delay, DelayModel model, std::uint64_t seed,
                         int draws = 8);

/// Identifies the most-requested nodes across traces — the "vulnerable
/// users" whose protection the paper argues for. Returns (node, frequency)
/// sorted by decreasing frequency, at most `top_k` entries.
std::vector<std::pair<graph::NodeId, double>> vulnerable_users(
    const std::vector<sim::AttackTrace>& traces, std::size_t top_k);

}  // namespace recon::metrics
