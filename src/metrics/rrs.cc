#include "metrics/rrs.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.h"

namespace recon::metrics {

RrsResult rrs(const std::vector<sim::AttackTrace>& traces, double q_threshold) {
  RrsResult result;
  if (traces.empty()) return result;
  double total = 0.0;
  std::size_t reached = 0;
  for (const auto& t : traces) {
    const std::size_t r = t.requests_to_reach(q_threshold);
    if (r == std::numeric_limits<std::size_t>::max()) continue;
    total += static_cast<double>(r);
    ++reached;
  }
  result.reach_fraction = static_cast<double>(reached) / static_cast<double>(traces.size());
  result.expected_requests = reached > 0 ? total / static_cast<double>(reached) : 0.0;
  return result;
}

double attack_time_seconds(const sim::AttackTrace& trace, double delay_seconds) {
  double total = 0.0;
  for (const auto& b : trace.batches) total += b.select_seconds + delay_seconds;
  return total;
}

double rt_rrs(const std::vector<sim::AttackTrace>& traces, double delay_seconds) {
  if (traces.empty()) return std::numeric_limits<double>::infinity();
  double time = 0.0;
  double benefit = 0.0;
  for (const auto& t : traces) {
    time += attack_time_seconds(t, delay_seconds);
    benefit += t.total_benefit();
  }
  if (benefit <= 0.0) return std::numeric_limits<double>::infinity();
  return time / benefit;
}

namespace {

double sample_delay(double mean_delay, DelayModel model, util::Rng& rng) {
  switch (model) {
    case DelayModel::kFixed:
      return mean_delay;
    case DelayModel::kExponential:
      return -mean_delay * std::log(std::max(1e-300, 1.0 - rng.uniform()));
    case DelayModel::kLogNormal: {
      // sigma = 1; choose mu so the mean equals mean_delay:
      // E = exp(mu + sigma^2/2) => mu = log(mean_delay) - 0.5.
      const double u1 = std::max(rng.uniform(), 1e-300);
      const double u2 = rng.uniform();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      return std::exp(std::log(mean_delay) - 0.5 + z);
    }
  }
  return mean_delay;
}

}  // namespace

double attack_time_stochastic(const sim::AttackTrace& trace, double mean_delay,
                              DelayModel model, std::uint64_t seed) {
  if (mean_delay < 0.0) {
    throw std::invalid_argument("attack_time_stochastic: negative delay");
  }
  util::Rng rng(seed);
  double total = 0.0;
  for (const auto& b : trace.batches) {
    total += b.select_seconds;
    double slowest = 0.0;
    for (std::size_t i = 0; i < b.requests.size(); ++i) {
      slowest = std::max(slowest, sample_delay(mean_delay, model, rng));
    }
    total += slowest;
  }
  return total;
}

double rt_rrs_stochastic(const std::vector<sim::AttackTrace>& traces,
                         double mean_delay, DelayModel model, std::uint64_t seed,
                         int draws) {
  if (traces.empty() || draws <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  double time = 0.0;
  double benefit = 0.0;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    for (int d = 0; d < draws; ++d) {
      time += attack_time_stochastic(traces[t], mean_delay, model,
                                     util::derive_seed(seed, t, d));
    }
    benefit += traces[t].total_benefit() * draws;
  }
  if (benefit <= 0.0) return std::numeric_limits<double>::infinity();
  return time / benefit;
}

std::vector<std::pair<graph::NodeId, double>> vulnerable_users(
    const std::vector<sim::AttackTrace>& traces, std::size_t top_k) {
  // A node counts once per trace (retries within one attack do not inflate
  // its exposure), so the frequency reads as "fraction of runs targeted".
  std::unordered_map<graph::NodeId, std::size_t> counts;
  std::unordered_map<graph::NodeId, std::size_t> last_trace;
  std::size_t trace_idx = 0;
  for (const auto& t : traces) {
    ++trace_idx;
    for (const auto& b : t.batches) {
      for (graph::NodeId u : b.requests) {
        auto [it, inserted] = last_trace.emplace(u, trace_idx);
        if (!inserted && it->second == trace_idx) continue;
        it->second = trace_idx;
        ++counts[u];
      }
    }
  }
  std::vector<std::pair<graph::NodeId, double>> ranked;
  ranked.reserve(counts.size());
  const double denom = traces.empty() ? 1.0 : static_cast<double>(traces.size());
  // lint:hash-order-ok(ranked is fully re-sorted below with a total-order
  // comparator (frequency desc, node asc), so hash order cannot leak)
  for (const auto& [u, c] : counts) {
    ranked.emplace_back(u, static_cast<double>(c) / denom);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace recon::metrics
