#include "adaptive/adaptive.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "util/rng.h"

namespace recon::adaptive {

std::vector<State> Instance::sample_consistent(const PartialRealization& psi,
                                               std::uint64_t seed) const {
  std::vector<State> realization = sample_realization(seed);
  for (std::size_t i = 0; i < psi.items.size(); ++i) {
    realization[psi.items[i]] = psi.states[i];
  }
  return realization;
}

std::vector<std::pair<State, double>> Instance::state_distribution(Item item) const {
  // Empirical estimate from many realizations (instances with known
  // marginals override this).
  std::vector<std::pair<State, double>> dist;
  const std::size_t samples = 20000;
  std::vector<std::pair<State, std::size_t>> counts;
  for (std::size_t s = 0; s < samples; ++s) {
    const State st = sample_realization(util::derive_seed(0x57A7E, s))[item];
    bool found = false;
    for (auto& [state, count] : counts) {
      if (state == st) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) counts.emplace_back(st, 1);
  }
  dist.reserve(counts.size());
  for (const auto& [state, count] : counts) {
    dist.emplace_back(state,
                      static_cast<double>(count) / static_cast<double>(samples));
  }
  return dist;
}

namespace {

/// Memoizes Instance::state_distribution per item for the exact solver: the
/// default implementation draws 20,000 full realizations per call, and the
/// recursion below would otherwise re-derive the same distribution at every
/// node of the enumeration tree.
class StateDistributionCache {
 public:
  explicit StateDistributionCache(const Instance& instance)
      : instance_(&instance), dists_(instance.num_items()) {}

  const std::vector<std::pair<State, double>>& of(Item item) {
    auto& d = dists_[item];
    if (!d.has_value()) d = instance_->state_distribution(item);
    return *d;
  }

 private:
  const Instance* instance_;
  std::vector<std::optional<std::vector<std::pair<State, double>>>> dists_;
};

double optimal_adaptive_rec(const Instance& instance, StateDistributionCache& dists,
                            PartialRealization& psi, std::size_t remaining) {
  if (remaining == 0) {
    // Terminal: expected value given ψ — value() depends only on selected
    // items' states, so any completion works as the realization argument.
    std::vector<State> phi(instance.num_items(), 0);
    for (std::size_t i = 0; i < psi.items.size(); ++i) {
      phi[psi.items[i]] = psi.states[i];
    }
    return instance.value(psi.items, phi);
  }
  double best = 0.0;
  bool any = false;
  for (Item item = 0; item < instance.num_items(); ++item) {
    if (psi.contains(item)) continue;
    any = true;
    double expect = 0.0;
    for (const auto& [state, prob] : dists.of(item)) {
      if (prob <= 0.0) continue;
      psi.add(item, state);
      expect += prob * optimal_adaptive_rec(instance, dists, psi, remaining - 1);
      psi.pop();
    }
    best = std::max(best, expect);
  }
  if (!any) return optimal_adaptive_rec(instance, dists, psi, 0);
  return best;
}

}  // namespace

double optimal_adaptive_value(const Instance& instance, std::size_t cardinality) {
  if (instance.num_items() > 12) {
    throw std::invalid_argument("optimal_adaptive_value: instance too large");
  }
  StateDistributionCache dists(instance);
  PartialRealization psi;
  return optimal_adaptive_rec(instance, dists, psi,
                              std::min(cardinality, instance.num_items()));
}

double Instance::expected_marginal(Item item, const PartialRealization& psi,
                                   std::uint64_t seed, std::size_t samples) const {
  if (samples == 0) throw std::invalid_argument("expected_marginal: samples == 0");
  double total = 0.0;
  std::vector<Item> with = psi.items;
  with.push_back(item);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto phi = sample_consistent(psi, util::derive_seed(seed, s));
    total += value(with, phi) - value(psi.items, phi);
  }
  return total / static_cast<double>(samples);
}

Policy make_adaptive_greedy(const Instance& instance, std::uint64_t seed,
                            std::size_t samples) {
  return [&instance, seed, samples](const PartialRealization& psi) -> Item {
    Item best = kNoItem;
    double best_gain = 0.0;
    for (Item item = 0; item < instance.num_items(); ++item) {
      if (psi.contains(item)) continue;
      const double gain = instance.expected_marginal(
          item, psi, util::derive_seed(seed, item, psi.size()), samples);
      if (gain > best_gain ||
          (gain == best_gain && best != kNoItem && item < best)) {
        best_gain = gain;
        best = item;
      }
    }
    return best_gain > 0.0 ? best : kNoItem;
  };
}

double run_policy(const Instance& instance, const Policy& policy,
                  std::size_t cardinality, std::uint64_t world_seed) {
  const auto realization = instance.sample_realization(world_seed);
  PartialRealization psi;
  for (std::size_t step = 0; step < cardinality; ++step) {
    const Item item = policy(psi);
    if (item == kNoItem) break;
    if (item >= instance.num_items() || psi.contains(item)) {
      throw std::logic_error("run_policy: policy returned an invalid item");
    }
    psi.add(item, realization[item]);
  }
  return instance.value(psi.items, realization);
}

double evaluate_policy(const Instance& instance, const Policy& policy,
                       std::size_t cardinality, int runs, std::uint64_t seed) {
  if (runs <= 0) throw std::invalid_argument("evaluate_policy: runs must be positive");
  double total = 0.0;
  for (int r = 0; r < runs; ++r) {
    total += run_policy(instance, policy, cardinality, util::derive_seed(seed, r));
  }
  return total / static_cast<double>(runs);
}

double best_nonadaptive_value(const Instance& instance, std::size_t cardinality,
                              int runs, std::uint64_t seed) {
  const std::size_t n = instance.num_items();
  if (n > 24) throw std::invalid_argument("best_nonadaptive_value: too many items");
  cardinality = std::min(cardinality, n);
  // Pre-sample realizations once so subsets are compared on common worlds.
  std::vector<std::vector<State>> worlds;
  worlds.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    worlds.push_back(instance.sample_realization(util::derive_seed(seed, r)));
  }
  double best = 0.0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(mask)) != cardinality) continue;
    std::vector<Item> items;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) items.push_back(static_cast<Item>(i));
    }
    double total = 0.0;
    for (const auto& phi : worlds) total += instance.value(items, phi);
    best = std::max(best, total / static_cast<double>(runs));
  }
  return best;
}

double empirical_submodularity_margin(const Instance& instance, std::size_t trials,
                                      std::uint64_t seed, std::size_t samples) {
  util::Rng rng(seed);
  double worst = 1e300;
  const std::size_t n = instance.num_items();
  for (std::size_t t = 0; t < trials; ++t) {
    // Build nested ψ ⊆ ψ' from a shared sampled realization.
    const auto phi = instance.sample_realization(util::derive_seed(seed, 1000 + t));
    PartialRealization small, big;
    for (Item i = 0; i < n; ++i) {
      const double r = rng.uniform();
      if (r < 0.15) {
        small.add(i, phi[i]);
        big.add(i, phi[i]);
      } else if (r < 0.35) {
        big.add(i, phi[i]);
      }
    }
    Item probe;
    do {
      probe = static_cast<Item>(rng.below(n));
    } while (big.contains(probe));
    const double d_small = instance.expected_marginal(
        probe, small, util::derive_seed(seed, t, 1), samples);
    const double d_big = instance.expected_marginal(
        probe, big, util::derive_seed(seed, t, 2), samples);
    worst = std::min(worst, d_small - d_big);
  }
  return worst;
}

// ---------------------------------------------------------------------------
// StochasticCoverage
// ---------------------------------------------------------------------------

StochasticCoverage::StochasticCoverage(std::size_t num_elements,
                                       std::vector<std::vector<std::uint32_t>> regions,
                                       std::vector<double> work_probs)
    : num_elements_(num_elements),
      regions_(std::move(regions)),
      work_probs_(std::move(work_probs)) {
  if (regions_.size() != work_probs_.size()) {
    throw std::invalid_argument("StochasticCoverage: size mismatch");
  }
  for (auto& region : regions_) {
    for (auto e : region) {
      if (e >= num_elements_) {
        throw std::invalid_argument("StochasticCoverage: element out of range");
      }
    }
    std::sort(region.begin(), region.end());
    region.erase(std::unique(region.begin(), region.end()), region.end());
  }
  for (double p : work_probs_) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument("StochasticCoverage: probability out of range");
    }
  }
}

std::vector<State> StochasticCoverage::sample_realization(std::uint64_t seed) const {
  util::Rng rng(seed);
  std::vector<State> states(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    states[i] = rng.bernoulli(work_probs_[i]) ? 1 : 0;
  }
  return states;
}

double StochasticCoverage::value(const std::vector<Item>& items,
                                 const std::vector<State>& realization) const {
  std::vector<std::uint8_t> covered(num_elements_, 0);
  std::size_t count = 0;
  for (Item i : items) {
    if (realization[i] != 1) continue;
    for (auto e : regions_[i]) {
      if (!covered[e]) {
        covered[e] = 1;
        ++count;
      }
    }
  }
  return static_cast<double>(count);
}

std::vector<std::pair<State, double>> StochasticCoverage::state_distribution(
    Item item) const {
  return {{1, work_probs_[item]}, {0, 1.0 - work_probs_[item]}};
}

double StochasticCoverage::expected_marginal(Item item, const PartialRealization& psi,
                                             std::uint64_t /*seed*/,
                                             std::size_t /*samples*/) const {
  // Closed form: Δ(item | ψ) = p_item * |region(item) \ covered(ψ)|, since
  // unselected items' states do not affect what ψ already covers.
  std::vector<std::uint8_t> covered(num_elements_, 0);
  for (std::size_t i = 0; i < psi.items.size(); ++i) {
    if (psi.states[i] != 1) continue;
    for (auto e : regions_[psi.items[i]]) covered[e] = 1;
  }
  std::size_t fresh = 0;
  for (auto e : regions_[item]) fresh += covered[e] == 0;
  return work_probs_[item] * static_cast<double>(fresh);
}

}  // namespace recon::adaptive
