// Generic adaptive stochastic optimization (Golovin & Krause, JAIR 2011) —
// the framework behind the paper's Theorems 2 and 4.
//
// An adaptive optimization instance has ground items whose random states are
// revealed upon selection; a policy picks items one at a time as a function
// of the partial realization observed so far. When the objective is
// adaptive monotone and adaptive submodular, the adaptive greedy policy
// (pick the item with the largest conditional expected marginal benefit) is
// a (1 − 1/e)-approximation to the optimal policy of the same cardinality —
// the result the paper invokes as "Thm. 5.2 [21]".
//
// This module provides the abstract interface, the adaptive greedy driver,
// policy evaluation utilities, and empirical property checkers used by the
// tests; recon's Max-Crawling is one instantiation (adaptive/crawling.h),
// and adaptive stochastic coverage (a classic textbook instance) is another.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace recon::adaptive {

using Item = std::uint32_t;
/// Opaque per-item state (meaning is instance-defined); kUnknownState marks
/// "not yet selected" inside partial realizations.
using State = std::uint32_t;
inline constexpr State kUnknownState = static_cast<State>(-1);

/// A partial realization ψ: which items were selected and what they revealed.
/// Items must be distinct. Mutate only through add/pop — they keep the O(1)
/// membership mask behind contains() in sync with the selection order.
struct PartialRealization {
  std::vector<Item> items;    ///< selection order
  std::vector<State> states;  ///< aligned revealed states

  std::size_t size() const noexcept { return items.size(); }
  bool contains(Item item) const noexcept {
    return item < in_set_.size() && in_set_[item] != 0;
  }
  void add(Item item, State state) {
    items.push_back(item);
    states.push_back(state);
    if (item >= in_set_.size()) in_set_.resize(item + 1, 0);
    in_set_[item] = 1;
  }
  /// Removes the most recently added item (backtracking search support).
  void pop() noexcept {
    in_set_[items.back()] = 0;
    items.pop_back();
    states.pop_back();
  }

 private:
  std::vector<std::uint8_t> in_set_;  ///< membership mask indexed by item
};

/// An adaptive optimization instance. Implementations must be deterministic
/// given the seeds passed to sample_realization.
class Instance {
 public:
  virtual ~Instance() = default;

  virtual std::size_t num_items() const = 0;

  /// Samples a full realization: the state every item would reveal.
  virtual std::vector<State> sample_realization(std::uint64_t seed) const = 0;

  /// Objective value f(items, φ) for the selected items under a full
  /// realization (items' states are φ[item]).
  virtual double value(const std::vector<Item>& items,
                       const std::vector<State>& realization) const = 0;

  /// Conditional expected marginal benefit Δ(item | ψ) =
  /// E[f(ψ ∪ {item}) − f(ψ) | Φ ~ ψ]. The default estimates it by sampling
  /// realizations consistent with ψ; instances with closed forms override.
  virtual double expected_marginal(Item item, const PartialRealization& psi,
                                   std::uint64_t seed,
                                   std::size_t samples = 256) const;

  /// Samples a full realization *consistent with* ψ (states of selected
  /// items fixed, the rest resampled). Default: rejection-free resampling
  /// assuming item states are independent — instances with correlated
  /// states must override.
  virtual std::vector<State> sample_consistent(const PartialRealization& psi,
                                               std::uint64_t seed) const;

  /// The marginal state distribution of an item (assumed independent across
  /// items, matching sample_consistent's default). Required by the exact
  /// adaptive-optimum solver; the default derives it empirically from
  /// sample_realization, instances with known distributions override.
  virtual std::vector<std::pair<State, double>> state_distribution(Item item) const;
};

/// A policy maps a partial realization to the next item (or kNoItem).
inline constexpr Item kNoItem = static_cast<Item>(-1);
using Policy = std::function<Item(const PartialRealization&)>;

/// The adaptive greedy policy: argmax_item Δ(item | ψ) over unselected
/// items, estimated with `samples` consistent realizations per item.
Policy make_adaptive_greedy(const Instance& instance, std::uint64_t seed,
                            std::size_t samples = 256);

/// Runs a policy for `cardinality` steps against the realization drawn with
/// `world_seed`; returns the achieved objective value.
double run_policy(const Instance& instance, const Policy& policy,
                  std::size_t cardinality, std::uint64_t world_seed);

/// Mean objective of a policy over `runs` sampled realizations.
double evaluate_policy(const Instance& instance, const Policy& policy,
                       std::size_t cardinality, int runs, std::uint64_t seed);

/// Exhaustive optimal *non-adaptive* set of size k (enumerates all subsets;
/// small instances only), evaluated by averaging over `runs` realizations.
double best_nonadaptive_value(const Instance& instance, std::size_t cardinality,
                              int runs, std::uint64_t seed);

/// Exact value of the OPTIMAL adaptive policy of cardinality k, computed by
/// full enumeration over item choices and state outcomes (assumes item
/// states are independent with Instance::state_distribution marginals).
/// Exponential: intended for tiny instances (tests of the Golovin-Krause
/// guarantee against the true adaptive optimum). Terminal values use
/// Instance::value on the selected prefix, which must depend only on
/// selected items' states.
double optimal_adaptive_value(const Instance& instance, std::size_t cardinality);

/// Empirical adaptive-submodularity check: estimates Δ(item | ψ) on random
/// nested pairs ψ ⊆ ψ' and reports the worst violation margin
/// (min over pairs of Δ(item|ψ) − Δ(item|ψ')); values >= -tolerance indicate
/// the property holds within sampling noise.
double empirical_submodularity_margin(const Instance& instance, std::size_t trials,
                                      std::uint64_t seed, std::size_t samples = 512);

// ---------------------------------------------------------------------------
// Adaptive stochastic coverage: the classic instance. Items are sensors;
// each covers its region only if it works (probability p_i); the objective
// is the size of the union of working items' regions.
// ---------------------------------------------------------------------------
class StochasticCoverage : public Instance {
 public:
  /// regions[i] = elements covered by item i when it works.
  StochasticCoverage(std::size_t num_elements,
                     std::vector<std::vector<std::uint32_t>> regions,
                     std::vector<double> work_probs);

  std::size_t num_items() const override { return regions_.size(); }
  std::vector<State> sample_realization(std::uint64_t seed) const override;
  double value(const std::vector<Item>& items,
               const std::vector<State>& realization) const override;
  /// Closed-form conditional marginal (no sampling needed).
  double expected_marginal(Item item, const PartialRealization& psi,
                           std::uint64_t seed, std::size_t samples) const override;
  std::vector<std::pair<State, double>> state_distribution(Item item) const override;

 private:
  std::size_t num_elements_;
  std::vector<std::vector<std::uint32_t>> regions_;
  std::vector<double> work_probs_;
};

}  // namespace recon::adaptive
