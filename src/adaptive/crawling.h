// Max-Crawling as an adaptive-optimization Instance.
//
// This is the *acceptance-marginalized* formulation used in the paper's
// analysis (the mapping to (h, Z) in Lemmas 3–4): the random states are the
// accept/reject outcomes, and the objective is the benefit in expectation
// over the edge realization,
//
//   f(A) = Σ_{u∈A⁺} Bf(u)
//        + Σ_{v∉A⁺} Bfof(v) · (1 − Π_{u∈A⁺∩N(v)} (1 − p_uv))
//        + Σ_{e: e∩A⁺ ≠ ∅} p_e · Bi(e)
//
// where A⁺ is the set of selected nodes that accepted. This function is
// monotone submodular in A⁺, so (f, P) is adaptive monotone submodular and
// the generic adaptive greedy enjoys the (1 − 1/e) guarantee the paper
// builds on. The closed-form conditional marginal avoids sampling entirely.
#pragma once

#include "adaptive/adaptive.h"
#include "sim/problem.h"

namespace recon::adaptive {

class CrawlingInstance : public Instance {
 public:
  /// Binds to a problem (must outlive the instance). Node states: 1 accept,
  /// 0 reject.
  explicit CrawlingInstance(const sim::Problem& problem);

  std::size_t num_items() const override;
  std::vector<State> sample_realization(std::uint64_t seed) const override;
  double value(const std::vector<Item>& items,
               const std::vector<State>& realization) const override;
  double expected_marginal(Item item, const PartialRealization& psi,
                           std::uint64_t seed, std::size_t samples) const override;
  std::vector<std::pair<State, double>> state_distribution(Item item) const override;

 private:
  const sim::Problem* problem_;
};

}  // namespace recon::adaptive
