#include "adaptive/crawling.h"

#include <cmath>

#include "util/rng.h"

namespace recon::adaptive {

using graph::EdgeId;
using graph::NodeId;

CrawlingInstance::CrawlingInstance(const sim::Problem& problem) : problem_(&problem) {}

std::size_t CrawlingInstance::num_items() const {
  return problem_->graph.num_nodes();
}

std::vector<State> CrawlingInstance::sample_realization(std::uint64_t seed) const {
  util::Rng rng(seed);
  const auto& g = problem_->graph;
  std::vector<State> states(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    // Base acceptance rate; the marginalized formulation has no
    // mutual-friend dynamics (acceptance states are independent).
    states[u] = rng.bernoulli(problem_->acceptance.base(u)) ? 1 : 0;
  }
  return states;
}

double CrawlingInstance::value(const std::vector<Item>& items,
                               const std::vector<State>& realization) const {
  const auto& g = problem_->graph;
  const auto& benefit = problem_->benefit;
  std::vector<std::uint8_t> accepted(g.num_nodes(), 0);
  for (Item u : items) {
    if (realization[u] == 1) accepted[u] = 1;
  }
  double total = 0.0;
  // Friend benefit.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (accepted[u]) total += benefit.bf[u];
  }
  // FoF benefit in expectation over edges: v not accepted collects Bfof(v)
  // with probability 1 - Π_{accepted neighbors u} (1 - p_uv).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (accepted[v] || benefit.bfof[v] <= 0.0) continue;
    double none = 1.0;
    const auto nbrs = g.neighbors(v);
    const auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (accepted[nbrs[i]]) none *= 1.0 - g.edge_prob(eids[i]);
    }
    total += benefit.bfof[v] * (1.0 - none);
  }
  // Edge benefit: an edge with at least one accepted endpoint is revealed
  // iff it exists (probability p_e).
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (accepted[g.edge_u(e)] || accepted[g.edge_v(e)]) {
      total += g.edge_prob(e) * benefit.bi[e];
    }
  }
  return total;
}

std::vector<std::pair<State, double>> CrawlingInstance::state_distribution(
    Item item) const {
  const double q = problem_->acceptance.base(static_cast<graph::NodeId>(item));
  return {{1, q}, {0, 1.0 - q}};
}

double CrawlingInstance::expected_marginal(Item item, const PartialRealization& psi,
                                           std::uint64_t /*seed*/,
                                           std::size_t /*samples*/) const {
  // Closed form: the candidate contributes only if it accepts
  // (probability q(item)); conditioned on accepting, its marginal depends
  // only on ψ's accepted set.
  const auto& g = problem_->graph;
  const auto& benefit = problem_->benefit;
  std::vector<std::uint8_t> accepted(g.num_nodes(), 0);
  for (std::size_t i = 0; i < psi.items.size(); ++i) {
    if (psi.states[i] == 1) accepted[psi.items[i]] = 1;
  }
  if (accepted[item]) return 0.0;  // defensive; item should be unselected

  double inner = benefit.bf[item];
  const auto nbrs = g.neighbors(item);
  const auto eids = g.incident_edges(item);
  // Losing item's own FoF benefit (it becomes a friend instead).
  double none_self = 1.0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (accepted[nbrs[i]]) none_self *= 1.0 - g.edge_prob(eids[i]);
  }
  inner -= benefit.bfof[item] * (1.0 - none_self);

  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const NodeId v = nbrs[i];
    const EdgeId e = eids[i];
    const double p = g.edge_prob(e);
    if (!accepted[v]) {
      // New FoF contribution: only the *increase* in v's coverage prob.
      if (benefit.bfof[v] > 0.0) {
        double none = 1.0;
        const auto vn = g.neighbors(v);
        const auto ve = g.incident_edges(v);
        for (std::size_t j = 0; j < vn.size(); ++j) {
          if (accepted[vn[j]]) none *= 1.0 - g.edge_prob(ve[j]);
        }
        inner += benefit.bfof[v] * none * p;
      }
      // Edge revealed only if no accepted endpoint already covered it.
      inner += p * benefit.bi[e];
    }
    // v accepted: edge (item, v) already counted via v.
  }
  return problem_->acceptance.base(item) * inner;
}

}  // namespace recon::adaptive
