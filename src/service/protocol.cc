#include "service/protocol.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "service/registry.h"
#include "util/log.h"

namespace recon::service {

namespace {

/// Single-line-safe copy: protocol responses must never embed newlines.
std::string one_line(std::string s) {
  for (char& ch : s) {
    if (ch == '\n' || ch == '\r') ch = ' ';
  }
  return s;
}

std::string render_status(const std::string& id, const CampaignStatus& st) {
  std::ostringstream os;
  os.precision(17);
  os << id << " state=" << to_string(st.state) << " rounds=" << st.rounds
     << " spent=" << st.spent << " benefit=" << st.benefit
     << " trace=" << st.trace_path;
  if (!st.error.empty()) os << " error=\"" << one_line(st.error) << '"';
  return os.str();
}

std::uint64_t parse_u64(const std::string& v, const std::string& key) {
  try {
    std::size_t used = 0;
    const unsigned long long x = std::stoull(v, &used);
    if (used != v.size()) throw std::invalid_argument("junk");
    return x;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad value for " + key + ": '" + v + "'");
  }
}

double parse_f64(const std::string& v, const std::string& key) {
  try {
    std::size_t used = 0;
    const double x = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument("junk");
    return x;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad value for " + key + ": '" + v + "'");
  }
}

CampaignSpec parse_submit(std::istringstream& ls) {
  CampaignSpec spec;
  std::string tok;
  while (ls >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("SUBMIT arguments are key=value, got '" +
                                  tok + "'");
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "problem") {
      spec.problem = val;
    } else if (key == "strategy") {
      spec.strategy = val;
    } else if (key == "k") {
      spec.batch_size = static_cast<int>(parse_u64(val, key));
    } else if (key == "budget") {
      spec.budget = parse_f64(val, key);
    } else if (key == "seed") {
      spec.seed = parse_u64(val, key);
    } else if (key == "retries") {
      spec.allow_retries = parse_u64(val, key) != 0;
    } else if (key == "scenarios") {
      spec.scenarios = static_cast<std::size_t>(parse_u64(val, key));
    } else if (key == "planner") {
      spec.planner = val;
    } else if (key == "ckpt-every") {
      spec.checkpoint_every_rounds = parse_u64(val, key);
    } else {
      throw std::invalid_argument("unknown SUBMIT key '" + key + "'");
    }
  }
  if (spec.problem.empty()) {
    throw std::invalid_argument("SUBMIT requires problem=<name>");
  }
  return spec;
}

std::string require_id(std::istringstream& ls, const char* cmd) {
  std::string id;
  if (!(ls >> id)) {
    throw std::invalid_argument(std::string(cmd) + " requires a campaign id");
  }
  return id;
}

}  // namespace

std::string handle_protocol_line(const std::string& line,
                                 CampaignRegistry& registry, bool* shutdown) {
  if (line.empty() || line[0] == '#') return "";
  std::istringstream ls(line);
  std::string cmd;
  ls >> cmd;
  if (cmd.empty()) return "";
  try {
    if (cmd == "SUBMIT") {
      const CampaignSpec spec = parse_submit(ls);
      return "OK " + registry.submit(spec);
    }
    if (cmd == "STATUS") {
      const std::string id = require_id(ls, "STATUS");
      return "OK " + render_status(id, registry.status(id));
    }
    if (cmd == "LIST") {
      std::ostringstream os;
      const auto all = registry.list();
      os << "OK " << all.size();
      for (const auto& [id, st] : all) {
        os << ' ' << id << ':' << to_string(st.state);
      }
      return os.str();
    }
    if (cmd == "PROBLEMS") {
      std::ostringstream os;
      const auto names = registry.problem_names();
      os << "OK " << names.size();
      for (const auto& name : names) os << ' ' << name;
      return os.str();
    }
    if (cmd == "PAUSE") {
      const std::string id = require_id(ls, "PAUSE");
      return registry.pause(id) ? "OK paused " + id
                                : "ERR campaign " + id + " is not pausable";
    }
    if (cmd == "RESUME") {
      const std::string id = require_id(ls, "RESUME");
      return registry.resume(id) ? "OK resumed " + id
                                 : "ERR campaign " + id + " is not paused";
    }
    if (cmd == "CANCEL") {
      const std::string id = require_id(ls, "CANCEL");
      return registry.cancel(id)
                 ? "OK cancelled " + id
                 : "ERR campaign " + id + " is already terminal";
    }
    if (cmd == "WAIT") {
      const std::string id = require_id(ls, "WAIT");
      return "OK " + render_status(id, registry.wait(id));
    }
    if (cmd == "SHUTDOWN") {
      if (shutdown != nullptr) *shutdown = true;
      return "OK bye";
    }
    return "ERR unknown command '" + cmd + "'";
  } catch (const std::exception& e) {
    return "ERR " + one_line(e.what());
  }
}

void run_protocol(std::istream& in, std::ostream& out,
                  CampaignRegistry& registry) {
  std::string line;
  bool shutdown = false;
  while (!shutdown && std::getline(in, line)) {
    const std::string response = handle_protocol_line(line, registry, &shutdown);
    if (response.empty()) continue;
    out << response << '\n';
    out.flush();
  }
}

void serve_unix_socket(const std::string& path, CampaignRegistry& registry) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    throw std::runtime_error("serve_unix_socket: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(listener);
    throw std::runtime_error("serve_unix_socket: path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 8) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listener);
    throw std::runtime_error("serve_unix_socket: bind/listen failed on " +
                             path + ": " + why);
  }
  RECON_LOG(kInfo) << "campaign service listening on " << path;

  bool shutdown = false;
  while (!shutdown) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // One session at a time: read newline-delimited commands, answer each
    // with one line. A control socket sees humans and scripts, not load.
    std::string pending;
    char buf[4096];
    for (;;) {
      const ssize_t got = ::read(conn, buf, sizeof buf);
      if (got <= 0) break;
      pending.append(buf, static_cast<std::size_t>(got));
      std::size_t nl = 0;
      while ((nl = pending.find('\n')) != std::string::npos) {
        std::string line = pending.substr(0, nl);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        pending.erase(0, nl + 1);
        const std::string response =
            handle_protocol_line(line, registry, &shutdown);
        if (!response.empty()) {
          const std::string wire = response + "\n";
          std::size_t off = 0;
          while (off < wire.size()) {
            const ssize_t put = ::write(conn, wire.data() + off,
                                        wire.size() - off);
            if (put <= 0) break;
            off += static_cast<std::size_t>(put);
          }
        }
        if (shutdown) break;
      }
      if (shutdown) break;
    }
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path.c_str());
}

}  // namespace recon::service
