// Line-oriented control protocol for the campaign service.
//
// One command per line, one response line per command (responses never
// contain embedded newlines). Grammar:
//
//   SUBMIT problem=<name> [strategy=pm|mip|fallback] [k=<int>]
//          [budget=<double>] [seed=<u64>] [retries=0|1]
//          [scenarios=<n>] [planner=off|auto|fixed:<s>] [ckpt-every=<n>]
//                                  -> OK <campaign-id>
//   STATUS <id>                    -> OK <id> state=... rounds=... spent=...
//                                       benefit=... trace=... [error="..."]
//   LIST                           -> OK <n> [<id>:<state> ...]
//   PROBLEMS                       -> OK <n> [<name> ...]
//   PAUSE <id>                     -> OK paused <id>   | ERR not pausable
//   RESUME <id>                    -> OK resumed <id>  | ERR not paused
//   CANCEL <id>                    -> OK cancelled <id>| ERR already terminal
//   WAIT <id>                      -> OK <id> state=... (blocks the loop
//                                     until the campaign settles)
//   SHUTDOWN                       -> OK bye (ends the session)
//
// Empty lines and lines starting with '#' are ignored. Any registry error
// (unknown id, bad spec) comes back as a single `ERR <reason>` line — the
// session survives bad commands.
#pragma once

#include <iosfwd>
#include <string>

namespace recon::service {

class CampaignRegistry;

/// Handles one protocol line; returns the single response line (without a
/// trailing newline), or an empty string for ignorable input. Sets
/// `*shutdown` when the line was SHUTDOWN.
std::string handle_protocol_line(const std::string& line,
                                 CampaignRegistry& registry, bool* shutdown);

/// Reads commands from `in` until EOF or SHUTDOWN, writing one response
/// line per command to `out` (flushed per line). This is `recon serve`'s
/// stdin mode and the unit-testable core of the socket mode.
void run_protocol(std::istream& in, std::ostream& out,
                  CampaignRegistry& registry);

/// Binds a local (AF_UNIX) stream socket at `path` (unlinking any stale
/// file first) and serves connections one at a time until a session issues
/// SHUTDOWN. The socket file is unlinked on return. Throws
/// std::runtime_error on socket errors.
void serve_unix_socket(const std::string& path, CampaignRegistry& registry);

}  // namespace recon::service
