#include "service/registry.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/attack.h"
#include "core/checkpoint_chain.h"
#include "core/planner.h"
#include "core/pm_arest.h"
#include "sim/trace_io.h"
#include "sim/world.h"
#include "solver/fallback.h"
#include "solver/strategy_mip.h"
#include "util/fs.h"
#include "util/log.h"
#include "util/rng.h"

namespace recon::service {

namespace {

/// Mirrors the CLI's `--planner off|auto|fixed:<strategy>` grammar
/// (cli/commands.cc) so protocol submissions accept the same specs.
core::PlannerOptions parse_planner_spec(const std::string& spec) {
  core::PlannerOptions po;
  if (spec == "off") return po;
  if (spec == "auto") {
    po.mode = core::PlannerMode::kAuto;
    return po;
  }
  if (spec.rfind("fixed:", 0) == 0) {
    core::PlanStrategy s = core::PlanStrategy::kCollapsedUncached;
    if (core::parse_plan_strategy(spec.substr(6), &s)) {
      po.mode = core::PlannerMode::kFixed;
      po.fixed_strategy = s;
      return po;
    }
  }
  throw std::invalid_argument(
      "bad planner spec '" + spec +
      "' (off|auto|fixed:<cached|uncached|tree|saa|exact|greedy>)");
}

/// Builds the campaign's strategy exactly as the CLI factory would
/// (cli/commands.cc make_factory), sharing the registry's resident pool.
/// Batches are bit-identical at every pool size, so sharing one pool across
/// concurrent campaigns cannot perturb any campaign's trace.
std::unique_ptr<core::Strategy> make_strategy(const CampaignSpec& spec,
                                              util::ThreadPool* pool) {
  if (spec.batch_size <= 0) {
    throw std::invalid_argument("campaign batch_size must be positive");
  }
  if (spec.budget <= 0.0) {
    throw std::invalid_argument("campaign budget must be positive");
  }
  const core::PlannerOptions planner = parse_planner_spec(spec.planner);
  if (spec.strategy == "pm") {
    core::PmArestOptions o;
    o.batch_size = spec.batch_size;
    o.allow_retries = spec.allow_retries;
    o.planner = planner;
    o.pool = pool;
    return std::make_unique<core::PmArest>(o);
  }
  if (spec.strategy == "mip") {
    solver::MipStrategyOptions o;
    o.batch_size = spec.batch_size;
    o.allow_retries = spec.allow_retries;
    o.scenarios_per_batch = spec.scenarios;
    o.candidate_cap = 30;
    o.planner = planner;
    o.pool = pool;
    return std::make_unique<solver::MipBatchStrategy>(o);
  }
  if (spec.strategy == "fallback") {
    solver::FallbackOptions o;
    o.batch_size = spec.batch_size;
    o.allow_retries = spec.allow_retries;
    o.scenarios_per_batch = spec.scenarios;
    o.candidate_cap = 30;
    o.planner = planner;
    o.pool = pool;
    return std::make_unique<solver::FallbackStrategy>(o);
  }
  throw std::invalid_argument("unknown campaign strategy '" + spec.strategy +
                              "' (pm|mip|fallback)");
}

constexpr const char* kTraceHeader = "#recon-trace v1";

}  // namespace

std::string CampaignSpec::canonical() const {
  std::ostringstream os;
  os.precision(17);
  os << "problem=" << problem << " strategy=" << strategy
     << " k=" << batch_size << " budget=" << budget << " seed=" << seed
     << " retries=" << (allow_retries ? 1 : 0) << " scenarios=" << scenarios
     << " planner=" << planner << " ckpt-every=" << checkpoint_every_rounds;
  return os.str();
}

const char* to_string(CampaignState state) {
  switch (state) {
    case CampaignState::kPending: return "pending";
    case CampaignState::kRunning: return "running";
    case CampaignState::kPaused: return "paused";
    case CampaignState::kCompleted: return "completed";
    case CampaignState::kCancelled: return "cancelled";
    case CampaignState::kFailed: return "failed";
  }
  return "unknown";
}

bool is_terminal(CampaignState state) {
  return state == CampaignState::kCompleted ||
         state == CampaignState::kCancelled || state == CampaignState::kFailed;
}

CampaignRegistry::CampaignRegistry(Options options)
    : options_(std::move(options)),
      pool_(options_.threads != 0
                ? static_cast<unsigned>(options_.threads)
                : std::max(1u, std::thread::hardware_concurrency())) {
  if (!util::directory_exists(options_.state_dir)) {
    throw std::invalid_argument("CampaignRegistry: state_dir does not exist: " +
                                options_.state_dir);
  }
}

CampaignRegistry::~CampaignRegistry() {
  // Snapshot the campaign set, then stop outside the registry lock (driver
  // threads take it when they finish).
  std::vector<Campaign*> live;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, c] : campaigns_) live.push_back(c.get());
  }
  for (Campaign* c : live) c->stop_requested.store(true);
  for (Campaign* c : live) {
    if (c->driver.joinable()) c->driver.join();
  }
}

void CampaignRegistry::register_problem(const std::string& name,
                                        sim::Problem problem) {
  std::lock_guard<std::mutex> lk(mu_);
  if (problems_.count(name) != 0) {
    for (const auto& [id, c] : campaigns_) {
      std::lock_guard<std::mutex> clk(c->mu);
      if (c->spec.problem == name && !is_terminal(c->status.state)) {
        throw std::invalid_argument("cannot replace problem '" + name +
                                    "': campaign " + id + " is live on it");
      }
    }
  }
  problems_.insert_or_assign(name, std::move(problem));
}

std::vector<std::string> CampaignRegistry::problem_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  names.reserve(problems_.size());
  for (const auto& [name, p] : problems_) names.push_back(name);
  return names;
}

std::string CampaignRegistry::submit(const CampaignSpec& spec) {
  // Surface bad specs synchronously: a throwaway strategy build runs every
  // validation the driver would hit later.
  (void)make_strategy(spec, nullptr);

  std::lock_guard<std::mutex> lk(mu_);
  const auto it = problems_.find(spec.problem);
  if (it == problems_.end()) {
    throw std::invalid_argument("unknown problem '" + spec.problem + "'");
  }
  const std::string canon = spec.canonical();
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(
                    util::fnv1a64(canon.data(), canon.size())));
  const std::string id = "c" + std::to_string(next_seq_++) + "-" + hex;

  auto c = std::make_unique<Campaign>();
  c->spec = spec;
  c->problem = &it->second;
  c->status.trace_path = options_.state_dir + "/" + id + ".trace";
  c->status.checkpoint_base = options_.state_dir + "/" + id + ".ckpt";
  Campaign& ref = *c;
  campaigns_.emplace(id, std::move(c));
  start_driver(id, ref);
  return id;
}

void CampaignRegistry::start_driver(const std::string& id, Campaign& c) {
  c.driver = std::thread([this, id, &c] { drive(id, c); });
}

void CampaignRegistry::drive(const std::string& id, Campaign& c) {
  try {
    bool resuming = false;
    {
      std::lock_guard<std::mutex> lk(c.mu);
      resuming = c.resume_from_checkpoint;
      c.status.state = CampaignState::kRunning;
    }
    c.cv.notify_all();

    auto strategy = make_strategy(c.spec, &pool_);
    core::CheckpointChain chain(c.status.checkpoint_base);
    std::optional<core::LoadedGeneration> loaded;
    if (resuming) {
      loaded = chain.load_last_good();
      if (!loaded) {
        RECON_LOG(kWarn) << "campaign " << id
                         << ": no good checkpoint generation; restarting fresh";
      }
    }
    const std::uint64_t world_seed = loaded
                                         ? loaded->checkpoint.world_seed
                                         : util::derive_seed(c.spec.seed, 0);
    const sim::World world(*c.problem, world_seed);

    // Streaming trace: header + one batch line per completed round, flushed
    // so the file is readable mid-campaign (read_traces_file_recover
    // tolerates the missing `end` marker). On resume the already-completed
    // prefix is rewritten from the checkpoint, keeping the file identical to
    // an uninterrupted run's stream.
    std::ofstream tf(c.status.trace_path, std::ios::binary | std::ios::trunc);
    if (!tf) {
      throw std::runtime_error("cannot open trace file " +
                               c.status.trace_path);
    }
    tf.precision(17);
    tf << kTraceHeader << '\n' << "trace 0" << '\n';
    double prev_cost = 0.0;
    if (loaded) {
      for (const auto& b : loaded->checkpoint.trace.batches) {
        sim::write_batch_line(tf, b, prev_cost);
        prev_cost = b.cumulative_cost;
      }
    }
    tf.flush();

    core::AttackRunOptions ro;
    ro.checkpoint_chain = &chain;
    ro.checkpoint_every_rounds = c.spec.checkpoint_every_rounds;
    ro.should_stop = [&c] {
      return c.stop_requested.load(std::memory_order_relaxed) ||
             c.pause_requested.load(std::memory_order_relaxed);
    };
    if (loaded) ro.resume = &loaded->checkpoint;
    ro.on_round = [&](const sim::AttackTrace& trace, std::uint64_t) {
      const sim::BatchRecord& b = trace.batches.back();
      sim::write_batch_line(tf, b, prev_cost);
      prev_cost = b.cumulative_cost;
      tf.flush();
      std::lock_guard<std::mutex> lk(c.mu);
      c.status.rounds = trace.batches.size();
      c.status.spent = b.cumulative_cost;
      c.status.benefit = b.cumulative.total();
    };

    const sim::AttackTrace trace =
        core::run_attack(*c.problem, world, *strategy, c.spec.budget, ro);
    tf.close();
    // Republish the canonical complete document (with the `end` marker)
    // atomically over the streamed file.
    sim::write_traces_file(c.status.trace_path, {trace});

    std::lock_guard<std::mutex> lk(c.mu);
    c.status.rounds = trace.batches.size();
    c.status.spent = trace.total_cost();
    c.status.benefit = trace.total_benefit();
    c.resume_from_checkpoint = false;
    if (c.stop_requested.load()) {
      c.status.state = CampaignState::kCancelled;
    } else if (c.pause_requested.load()) {
      c.status.state = CampaignState::kPaused;
    } else {
      c.status.state = CampaignState::kCompleted;
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(c.mu);
    c.status.state = CampaignState::kFailed;
    c.status.error = e.what();
    RECON_LOG(kWarn) << "campaign " << id << " failed: " << e.what();
  }
  c.cv.notify_all();
}

CampaignRegistry::Campaign& CampaignRegistry::find(const std::string& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    throw std::invalid_argument("unknown campaign '" + id + "'");
  }
  return *it->second;
}

CampaignStatus CampaignRegistry::status(const std::string& id) const {
  Campaign& c = find(id);
  std::lock_guard<std::mutex> lk(c.mu);
  return c.status;
}

std::vector<std::pair<std::string, CampaignStatus>> CampaignRegistry::list()
    const {
  std::vector<std::pair<std::string, CampaignStatus>> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(campaigns_.size());
  for (const auto& [id, c] : campaigns_) {
    std::lock_guard<std::mutex> clk(c->mu);
    out.emplace_back(id, c->status);
  }
  return out;
}

bool CampaignRegistry::pause(const std::string& id) {
  Campaign& c = find(id);
  std::lock_guard<std::mutex> control(c.control_mu);
  {
    std::lock_guard<std::mutex> lk(c.mu);
    if (c.status.state != CampaignState::kRunning &&
        c.status.state != CampaignState::kPending) {
      return false;
    }
    c.pause_requested.store(true);
  }
  if (c.driver.joinable()) c.driver.join();
  std::lock_guard<std::mutex> lk(c.mu);
  return c.status.state == CampaignState::kPaused;
}

bool CampaignRegistry::resume(const std::string& id) {
  Campaign& c = find(id);
  std::lock_guard<std::mutex> control(c.control_mu);
  {
    std::lock_guard<std::mutex> lk(c.mu);
    if (c.status.state != CampaignState::kPaused) return false;
    c.pause_requested.store(false);
    c.resume_from_checkpoint = true;
    c.status.state = CampaignState::kPending;
  }
  if (c.driver.joinable()) c.driver.join();  // paused drivers have returned
  start_driver(id, c);
  return true;
}

bool CampaignRegistry::cancel(const std::string& id) {
  Campaign& c = find(id);
  std::lock_guard<std::mutex> control(c.control_mu);
  {
    std::lock_guard<std::mutex> lk(c.mu);
    if (is_terminal(c.status.state)) return false;
    if (c.status.state == CampaignState::kPaused) {
      c.status.state = CampaignState::kCancelled;
      c.cv.notify_all();
      return true;
    }
    c.stop_requested.store(true);
  }
  if (c.driver.joinable()) c.driver.join();
  return true;
}

CampaignStatus CampaignRegistry::wait(const std::string& id) {
  Campaign& c = find(id);
  std::unique_lock<std::mutex> lk(c.mu);
  c.cv.wait(lk, [&c] {
    return is_terminal(c.status.state) ||
           c.status.state == CampaignState::kPaused;
  });
  return c.status;
}

}  // namespace recon::service
