// Campaign registry — the heart of the `recon serve` daemon.
//
// A registry keeps the expensive process state resident — loaded problems
// (whose graphs may be mmap-backed), one shared util::ThreadPool, and the
// planner-calibrated strategies — and runs many concurrent campaigns
// against that shared immutable state. Each campaign is one supervised
// attack (core::run_attack) on its own driver thread:
//
//   * batches stream to `<state_dir>/<id>.trace` one line per completed
//     round (readable mid-campaign via sim::read_traces_file_recover; the
//     final document is republished atomically via sim::write_traces_file);
//   * checkpoint-v2 autosnapshots publish through a per-campaign
//     core::CheckpointChain at `<state_dir>/<id>.ckpt.gen-N`;
//   * pause/resume round-trips through the newest good generation, so a
//     resumed campaign is bit-identical to an uninterrupted one (modulo
//     the wall-clock sel= field);
//   * cancel stops cooperatively at the next round boundary.
//
// Campaign ids are deterministic functions of the submission order and the
// canonical spec (`c<seq>-<fnv1a64 hex>`), so a replayed submission script
// produces the same ids and on-disk layout.
//
// Thread safety: every public method may be called from any thread (the
// protocol loop, tests, and driver threads themselves never race). The
// registry mutex guards the campaign map; per-campaign state has its own
// mutex so a long status() never blocks submit().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/problem.h"
#include "util/thread_pool.h"

namespace recon::service {

/// One campaign submission. Everything that shapes the attack is in here
/// (plus the registered problem it names), so the spec alone determines the
/// campaign byte-for-byte — the contract the serve tests pin against
/// sequential `recon attack` runs.
struct CampaignSpec {
  std::string problem;          ///< registered problem name
  std::string strategy = "pm";  ///< pm | mip | fallback
  int batch_size = 10;
  double budget = 50.0;
  std::uint64_t seed = 1;       ///< world seed base (derive_seed(seed, 0))
  bool allow_retries = false;
  std::size_t scenarios = 300;  ///< SAA scenarios (mip/fallback)
  std::string planner = "off";  ///< off | auto | fixed:<strategy>
  std::uint64_t checkpoint_every_rounds = 1;  ///< autosnapshot cadence

  /// Canonical one-line rendering — the id hash input and the protocol echo.
  std::string canonical() const;
};

enum class CampaignState {
  kPending,    ///< submitted, driver thread not yet past startup
  kRunning,
  kPaused,     ///< stopped at a round boundary with a forced snapshot
  kCompleted,
  kCancelled,
  kFailed,
};

const char* to_string(CampaignState state);

/// True for states a campaign can never leave (pause is not terminal).
bool is_terminal(CampaignState state);

struct CampaignStatus {
  CampaignState state = CampaignState::kPending;
  std::uint64_t rounds = 0;   ///< completed batch rounds
  double spent = 0.0;
  double benefit = 0.0;
  std::string error;          ///< non-empty iff state == kFailed
  std::string trace_path;
  std::string checkpoint_base;
};

class CampaignRegistry {
 public:
  struct Options {
    /// Directory for per-campaign traces and checkpoint chains. Must exist.
    std::string state_dir = ".";
    /// Worker threads in the shared pool (0 = hardware concurrency).
    std::size_t threads = 0;
  };

  explicit CampaignRegistry(Options options);
  /// Cancels every live campaign and joins all driver threads.
  ~CampaignRegistry();

  CampaignRegistry(const CampaignRegistry&) = delete;
  CampaignRegistry& operator=(const CampaignRegistry&) = delete;

  /// Registers (or replaces) a named problem. Campaigns hold pointers into
  /// this map, so replacing a problem while campaigns run on it throws.
  void register_problem(const std::string& name, sim::Problem problem);
  std::vector<std::string> problem_names() const;

  /// Starts a campaign; returns its deterministic id. Throws
  /// std::invalid_argument on an unknown problem/strategy/planner spec.
  std::string submit(const CampaignSpec& spec);

  /// Throws std::invalid_argument for unknown ids.
  CampaignStatus status(const std::string& id) const;
  std::vector<std::pair<std::string, CampaignStatus>> list() const;

  /// Requests a cooperative stop + forced snapshot, joins the driver, and
  /// leaves the campaign kPaused. False when the campaign is not running.
  bool pause(const std::string& id);
  /// Restarts a kPaused campaign from its newest good checkpoint
  /// generation. False when the campaign is not paused.
  bool resume(const std::string& id);
  /// Stops a running campaign (or retires a paused one) terminally.
  /// False when the campaign is already terminal.
  bool cancel(const std::string& id);
  /// Blocks until the campaign reaches a terminal state or kPaused.
  CampaignStatus wait(const std::string& id);

  util::ThreadPool& pool() { return pool_; }
  const Options& options() const { return options_; }

 private:
  struct Campaign {
    CampaignSpec spec;
    const sim::Problem* problem = nullptr;  ///< into problems_ (stable)
    // lint:guard-ok(mu pairs with cv — std::condition_variable needs the
    // native std::mutex, which util::Mutex cannot hand to a wait(). It
    // guards `status` and `resume_from_checkpoint`; every access site in
    // registry.cc takes a lock_guard/unique_lock on it)
    mutable std::mutex mu;
    std::condition_variable cv;        ///< signalled on every state change
    CampaignStatus status;             ///< guarded by mu
    std::atomic<bool> stop_requested{false};    ///< cancel
    std::atomic<bool> pause_requested{false};
    bool resume_from_checkpoint = false;  ///< next start loads the chain
    /// Serializes pause/resume/cancel (each joins + may restart `driver`;
    /// std::thread::join from two threads at once is UB).
    // lint:guard-ok(control_mu guards no data member — it is a pure
    // operation lock serializing join/restart of `driver`)
    std::mutex control_mu;
    std::thread driver;                ///< joined before restart/destruction
  };

  void start_driver(const std::string& id, Campaign& c);
  void drive(const std::string& id, Campaign& c);
  Campaign& find(const std::string& id) const;

  Options options_;
  util::ThreadPool pool_;
  // lint:guard-ok(mu_ guards the map *shape* of problems_/campaigns_ only;
  // mapped values are node-stable and carry their own synchronization
  // (Campaign::mu), so driver threads hold references without it. Every
  // map access in registry.cc takes a lock_guard on mu_)
  mutable std::mutex mu_;
  std::map<std::string, sim::Problem> problems_;
  std::map<std::string, std::unique_ptr<Campaign>> campaigns_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace recon::service
