#include "defense/placement.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace recon::defense {

using graph::NodeId;

namespace {

/// Flattened per-trace request schedule: for each trace, the (node, denied
/// benefit if first caught here) sequence in send order. Denied benefit of
/// catching at batch b = total − benefit before b.
struct TraceIndex {
  struct Hit {
    NodeId node;
    double denied;  ///< benefit denied if this is the first monitored request
  };
  std::vector<std::vector<Hit>> traces;
  /// For each node, the traces it appears in (for greedy candidate pruning).
  std::vector<std::vector<std::uint32_t>> node_traces;

  TraceIndex(const std::vector<sim::AttackTrace>& raw, NodeId num_nodes) {
    traces.reserve(raw.size());
    node_traces.resize(num_nodes);
    for (std::uint32_t t = 0; t < raw.size(); ++t) {
      std::vector<Hit> hits;
      const double total = raw[t].total_benefit();
      for (const auto& b : raw[t].batches) {
        const double before = b.cumulative.total() - b.delta.total();
        for (NodeId u : b.requests) {
          if (u >= num_nodes) {
            throw std::invalid_argument("placement: node id exceeds num_nodes");
          }
          hits.push_back({u, total - before});
          if (node_traces[u].empty() || node_traces[u].back() != t) {
            node_traces[u].push_back(t);
          }
        }
      }
      traces.push_back(std::move(hits));
    }
  }

  /// Value of a monitor bitmap: per trace, the denied benefit (or 1) at the
  /// first monitored hit.
  double value(const std::vector<std::uint8_t>& monitored, bool weighted) const {
    double total = 0.0;
    for (const auto& hits : traces) {
      for (const auto& h : hits) {
        if (monitored[h.node]) {
          total += weighted ? h.denied : 1.0;
          break;
        }
      }
    }
    return total;
  }
};

}  // namespace

double placement_value(const std::vector<sim::AttackTrace>& traces,
                       const std::vector<NodeId>& monitors, NodeId num_nodes,
                       bool weight_by_denied_benefit) {
  const TraceIndex index(traces, num_nodes);
  std::vector<std::uint8_t> monitored(num_nodes, 0);
  for (NodeId u : monitors) {
    if (u >= num_nodes) throw std::invalid_argument("placement_value: bad node");
    monitored[u] = 1;
  }
  return index.value(monitored, weight_by_denied_benefit);
}

std::vector<NodeId> greedy_monitor_placement(const std::vector<sim::AttackTrace>& traces,
                                             NodeId num_nodes,
                                             const PlacementOptions& options) {
  const TraceIndex index(traces, num_nodes);
  std::vector<std::uint8_t> excluded(num_nodes, 0);
  for (NodeId u : options.excluded) {
    if (u >= num_nodes) {
      throw std::invalid_argument("greedy_monitor_placement: bad excluded node");
    }
    excluded[u] = 1;
  }

  std::vector<std::uint8_t> monitored(num_nodes, 0);
  std::vector<NodeId> placement;
  double current = 0.0;

  // Lazy greedy over candidate nodes that appear in at least one trace.
  struct Entry {
    double gain;
    NodeId node;
    std::size_t stamp;
    bool operator<(const Entry& o) const noexcept {
      if (gain != o.gain) return gain < o.gain;
      return node > o.node;
    }
  };
  std::priority_queue<Entry> heap;
  auto gain_of = [&](NodeId u) {
    monitored[u] = 1;
    const double v = index.value(monitored, options.weight_by_denied_benefit);
    monitored[u] = 0;
    return v - current;
  };
  for (NodeId u = 0; u < num_nodes; ++u) {
    if (excluded[u] || index.node_traces[u].empty()) continue;
    const double g = gain_of(u);
    if (g > 0.0) heap.push({g, u, 0});
  }
  while (placement.size() < options.budget_monitors && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.stamp != placement.size()) {
      top.gain = gain_of(top.node);
      top.stamp = placement.size();
      if (top.gain <= 0.0) continue;
      if (!heap.empty() && top.gain < heap.top().gain) {
        heap.push(top);
        continue;
      }
    }
    monitored[top.node] = 1;
    current += top.gain;
    placement.push_back(top.node);
  }
  std::sort(placement.begin(), placement.end());
  return placement;
}

}  // namespace recon::defense
