#include "defense/detector.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/attack.h"
#include "core/pm_arest.h"
#include "metrics/rrs.h"

namespace recon::defense {

std::vector<double> request_times(const sim::AttackTrace& trace, double delay_seconds) {
  std::vector<double> times;
  times.reserve(trace.total_requests());
  double t = 0.0;
  for (const auto& b : trace.batches) {
    t += b.select_seconds;
    // All of a batch's requests go out together at the batch send time.
    for (std::size_t i = 0; i < b.requests.size(); ++i) times.push_back(t);
    t += delay_seconds;  // wait for responses before the next batch
  }
  return times;
}

namespace {

/// Benefit accrued strictly before batch `batch_idx` completed... detection
/// interrupts the attack mid-flight, so the attacker keeps the benefit of
/// fully-resolved earlier batches only.
double benefit_before_batch(const sim::AttackTrace& trace, std::size_t batch_idx) {
  if (batch_idx == 0) return 0.0;
  return trace.batches[batch_idx - 1].cumulative.total();
}

std::size_t requests_through_batch(const sim::AttackTrace& trace, std::size_t batch_idx) {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= batch_idx && i < trace.batches.size(); ++i) {
    total += trace.batches[i].requests.size();
  }
  return total;
}

double batch_send_time(const sim::AttackTrace& trace, std::size_t batch_idx,
                       double delay_seconds) {
  double t = 0.0;
  for (std::size_t i = 0; i < batch_idx; ++i) {
    t += trace.batches[i].select_seconds + delay_seconds;
  }
  return t + (batch_idx < trace.batches.size()
                  ? trace.batches[batch_idx].select_seconds
                  : 0.0);
}

}  // namespace

RateLimitDetector::RateLimitDetector(std::size_t max_requests_per_window,
                                     double window_seconds)
    : max_requests_(max_requests_per_window), window_seconds_(window_seconds) {
  if (window_seconds <= 0.0) {
    throw std::invalid_argument("RateLimitDetector: window must be positive");
  }
}

DetectionResult RateLimitDetector::evaluate(const sim::AttackTrace& trace,
                                            double delay_seconds) const {
  const auto times = request_times(trace, delay_seconds);
  DetectionResult result;
  // Two-pointer sliding window over the (sorted) request times.
  std::size_t lo = 0;
  for (std::size_t hi = 0; hi < times.size(); ++hi) {
    while (times[hi] - times[lo] > window_seconds_) ++lo;
    if (hi - lo + 1 > max_requests_) {
      result.detected = true;
      result.time_seconds = times[hi];
      // Locate the batch containing request hi.
      std::size_t seen = 0;
      for (std::size_t b = 0; b < trace.batches.size(); ++b) {
        seen += trace.batches[b].requests.size();
        if (hi < seen) {
          result.requests_sent = requests_through_batch(trace, b);
          result.benefit_before = benefit_before_batch(trace, b);
          break;
        }
      }
      return result;
    }
  }
  return result;
}

sim::SuspensionRule suspension_rule_from(const RateLimitDetector& detector,
                                         double round_seconds,
                                         std::uint64_t lockout_ticks) {
  if (round_seconds <= 0.0) {
    throw std::invalid_argument("suspension_rule_from: round_seconds must be positive");
  }
  if (lockout_ticks == 0) {
    throw std::invalid_argument("suspension_rule_from: lockout_ticks must be positive");
  }
  sim::SuspensionRule rule;
  rule.max_requests = detector.max_requests();
  // Round the window up so the enforcement rule is at least as strict as the
  // detector it mirrors.
  rule.window_ticks = static_cast<std::uint64_t>(
      std::ceil(detector.window_seconds() / round_seconds));
  if (rule.window_ticks == 0) rule.window_ticks = 1;
  rule.lockout_ticks = lockout_ticks;
  return rule;
}

PatternDetector::PatternDetector(std::size_t suspicious_run_length,
                                 std::size_t min_batch_size)
    : run_length_(suspicious_run_length), min_batch_size_(min_batch_size) {
  if (suspicious_run_length == 0) {
    throw std::invalid_argument("PatternDetector: run length must be positive");
  }
}

DetectionResult PatternDetector::evaluate(const sim::AttackTrace& trace,
                                          double delay_seconds) const {
  DetectionResult result;
  std::size_t run = 0;
  std::size_t last_size = 0;
  for (std::size_t b = 0; b < trace.batches.size(); ++b) {
    const std::size_t size = trace.batches[b].requests.size();
    if (size >= min_batch_size_ && size == last_size) {
      ++run;
    } else {
      run = size >= min_batch_size_ ? 1 : 0;
    }
    last_size = size;
    if (run >= run_length_) {
      result.detected = true;
      result.time_seconds = batch_send_time(trace, b, delay_seconds);
      result.requests_sent = requests_through_batch(trace, b);
      result.benefit_before = benefit_before_batch(trace, b);
      return result;
    }
  }
  return result;
}

HoneypotMonitor::HoneypotMonitor(std::vector<graph::NodeId> monitored,
                                 graph::NodeId num_nodes)
    : is_monitored_(num_nodes, 0), count_(0) {
  for (graph::NodeId u : monitored) {
    if (u >= num_nodes) {
      throw std::invalid_argument("HoneypotMonitor: node id out of range");
    }
    if (!is_monitored_[u]) {
      is_monitored_[u] = 1;
      ++count_;
    }
  }
}

DetectionResult HoneypotMonitor::evaluate(const sim::AttackTrace& trace,
                                          double delay_seconds) const {
  DetectionResult result;
  for (std::size_t b = 0; b < trace.batches.size(); ++b) {
    for (graph::NodeId u : trace.batches[b].requests) {
      if (u < is_monitored_.size() && is_monitored_[u]) {
        result.detected = true;
        result.time_seconds = batch_send_time(trace, b, delay_seconds);
        result.requests_sent = requests_through_batch(trace, b);
        result.benefit_before = benefit_before_batch(trace, b);
        return result;
      }
    }
  }
  return result;
}

std::vector<graph::NodeId> choose_monitors_by_simulation(
    const sim::Problem& problem, std::size_t budget_monitors, int runs, double budget,
    int batch_size, std::uint64_t seed) {
  const auto mc = core::run_monte_carlo(
      problem,
      [batch_size](int) {
        core::PmArestOptions o;
        o.batch_size = batch_size;
        return std::make_unique<core::PmArest>(o);
      },
      runs, budget, seed);
  std::vector<graph::NodeId> monitors;
  for (const auto& [node, freq] : metrics::vulnerable_users(mc.traces, budget_monitors)) {
    monitors.push_back(node);
  }
  return monitors;
}

}  // namespace recon::defense
