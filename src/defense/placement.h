// Monitor-placement optimization.
//
// choose_monitors_by_simulation (detector.h) ranks users by raw attack
// frequency; that over-invests in redundant monitors that all catch the same
// runs. This module treats placement as the submodular optimization it is:
//
//  * coverage objective — a monitor set's value is the number of simulated
//    attack traces it detects (optionally weighted by the benefit it denies
//    by catching the trace early);
//  * greedy_monitor_placement — the classic (1 − 1/e) greedy over that
//    objective, with lazy evaluation;
//  * placement_value — evaluates any placement on held-out traces.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/problem.h"
#include "sim/trace.h"

namespace recon::defense {

struct PlacementOptions {
  std::size_t budget_monitors = 10;
  /// If true, maximize expected benefit *denied* (benefit the attacker would
  /// have collected after the first monitored request); if false, maximize
  /// the number of traces detected at all.
  bool weight_by_denied_benefit = true;
  /// Nodes that may not be instrumented (e.g. the targets themselves).
  std::vector<graph::NodeId> excluded;
};

/// Value of a placement on a trace set: detected-trace count or total denied
/// benefit, per options.
double placement_value(const std::vector<sim::AttackTrace>& traces,
                       const std::vector<graph::NodeId>& monitors,
                       graph::NodeId num_nodes, bool weight_by_denied_benefit);

/// Greedy submodular monitor placement over simulated traces. Returns up to
/// budget_monitors nodes (fewer if additional monitors add nothing).
std::vector<graph::NodeId> greedy_monitor_placement(
    const std::vector<sim::AttackTrace>& traces, graph::NodeId num_nodes,
    const PlacementOptions& options);

}  // namespace recon::defense
