// Defender-side detection models.
//
// The paper motivates batch-size limits and varying batch sizes by OSN
// defenses: Boshmaf et al. kept under 25 requests/day, Yang et al. found
// "accounts sending more than 20 invites per hour are Sybils" while the 95th
// percentile normal user sends fewer than 5 (Sec. V). This module implements
// those defenses so attacks can be scored on detectability:
//
//  * RateLimitDetector — sliding-window request-rate threshold;
//  * PatternDetector  — flags robotic uniformity (many equal-size batches);
//  * HoneypotMonitor  — Paradise-et-al.-style monitoring of a chosen user
//    subset; detection fires when the attacker requests a monitored user.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/fault.h"
#include "sim/problem.h"
#include "sim/trace.h"

namespace recon::defense {

/// Reconstructs the attack's request timeline: request r of batch i happens
/// at the batch's send time t_i = Σ_{b<i} (select_seconds(b) + delay).
std::vector<double> request_times(const sim::AttackTrace& trace, double delay_seconds);

struct DetectionResult {
  bool detected = false;
  double time_seconds = 0.0;       ///< when detection fired (if detected)
  std::size_t requests_sent = 0;   ///< requests issued before detection
  double benefit_before = 0.0;     ///< benefit harvested before detection
};

/// Sliding-window rate limiter: detects as soon as more than
/// `max_requests_per_window` requests fall inside any window of
/// `window_seconds`. Yang et al.'s rule is (20, 3600).
class RateLimitDetector {
 public:
  RateLimitDetector(std::size_t max_requests_per_window, double window_seconds);

  DetectionResult evaluate(const sim::AttackTrace& trace, double delay_seconds) const;

  std::size_t max_requests() const noexcept { return max_requests_; }
  double window_seconds() const noexcept { return window_seconds_; }

 private:
  std::size_t max_requests_;
  double window_seconds_;
};

/// Uniformity detector: flags an account once it has sent
/// `suspicious_run_length` consecutive batches of identical size >=
/// `min_batch_size` — the robotic pattern varying-k is designed to break.
class PatternDetector {
 public:
  PatternDetector(std::size_t suspicious_run_length, std::size_t min_batch_size);

  DetectionResult evaluate(const sim::AttackTrace& trace, double delay_seconds) const;

 private:
  std::size_t run_length_;
  std::size_t min_batch_size_;
};

/// Honeypot monitoring: the defender instruments `monitored` accounts; the
/// attack is detected the first time any of them receives a request.
class HoneypotMonitor {
 public:
  explicit HoneypotMonitor(std::vector<graph::NodeId> monitored,
                           graph::NodeId num_nodes);

  DetectionResult evaluate(const sim::AttackTrace& trace, double delay_seconds) const;

  std::size_t num_monitored() const noexcept { return count_; }

 private:
  std::vector<std::uint8_t> is_monitored_;
  std::size_t count_;
};

/// Converts a rate-limit detector into the fault model's enforcement-side
/// suspension rule: the window is rescaled from seconds to runner ticks
/// (one tick = `round_seconds` of wall clock, rounded up so the rule is
/// never laxer than the detector), and a trip locks the account out for
/// `lockout_ticks`. Requires round_seconds > 0 and lockout_ticks > 0.
sim::SuspensionRule suspension_rule_from(const RateLimitDetector& detector,
                                         double round_seconds,
                                         std::uint64_t lockout_ticks);

/// Chooses monitor placements by simulating attacks (the Paradise et al.
/// approach): runs `runs` Monte-Carlo PM-AReST attacks with batch size k and
/// budget K against the problem and returns the `budget_monitors` most
/// frequently requested nodes.
std::vector<graph::NodeId> choose_monitors_by_simulation(
    const sim::Problem& problem, std::size_t budget_monitors, int runs, double budget,
    int batch_size, std::uint64_t seed);

/// Fraction of traces detected plus mean benefit-before-detection, under a
/// given detector (any of the above via std::function-free overloads).
template <typename Detector>
struct DetectionSummary {
  double detect_fraction = 0.0;
  double mean_benefit_before = 0.0;
  double mean_requests_before = 0.0;
};

template <typename Detector>
DetectionSummary<Detector> summarize_detection(
    const Detector& detector, const std::vector<sim::AttackTrace>& traces,
    double delay_seconds) {
  DetectionSummary<Detector> s;
  if (traces.empty()) return s;
  for (const auto& t : traces) {
    const DetectionResult r = detector.evaluate(t, delay_seconds);
    s.detect_fraction += r.detected ? 1.0 : 0.0;
    s.mean_benefit_before += r.detected ? r.benefit_before : t.total_benefit();
    s.mean_requests_before +=
        r.detected ? static_cast<double>(r.requests_sent)
                   : static_cast<double>(t.total_requests());
  }
  const double n = static_cast<double>(traces.size());
  s.detect_fraction /= n;
  s.mean_benefit_before /= n;
  s.mean_requests_before /= n;
  return s;
}

}  // namespace recon::defense
