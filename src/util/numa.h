// NUMA topology detection for shard pinning.
//
// The parallel selector partitions the candidate pool into shards and wants
// each shard's frontier memory resident on the socket that scores it. This
// header exposes just enough topology for that: how many NUMA nodes exist
// and which node a given worker should call home.
//
// Three detection tiers, in order:
//   1. RECON_NUMA_NODES=<k> environment override — forces a k-node topology.
//      This is how the pinning code paths are exercised deterministically on
//      single-socket CI hosts (the mapping logic is identical; only the OS
//      binding becomes a no-op).
//   2. When built with -DRECON_NUMA=ON (CMake option `numa`): sysfs probing
//      of /sys/devices/system/node/node*/cpulist, plus best-effort worker
//      binding via pthread_setaffinity_np.
//   3. Portable fallback: a single node, every bind a no-op. Behavior is
//      identical to the pre-NUMA code path.
//
// Shard placement stays deterministic regardless of tier: shard -> node is a
// pure function of (shard index, node count), never of runtime migration.
#pragma once

#include <cstddef>
#include <vector>

namespace recon::util {

struct NumaTopology {
  /// Detected node count; always >= 1.
  unsigned num_nodes = 1;
  /// cpu -> node map from sysfs; empty when unknown (fallback/env tiers).
  std::vector<unsigned> cpu_of_node;
  /// True when binding threads to nodes can actually take effect.
  bool can_bind = false;
};

/// Cached topology, detected once per process (thread-safe).
const NumaTopology& numa_topology();

/// Home node for worker `worker` of `num_workers`: contiguous blocks of
/// workers map to consecutive nodes, so workers sharing a node are adjacent
/// (matches how plan_score_shards hands out contiguous candidate ranges).
unsigned numa_node_of_worker(std::size_t worker, std::size_t num_workers);

/// Best-effort: bind the calling thread to the CPUs of `node`. Returns true
/// when a real binding was installed (tier 2 only); no-op otherwise.
bool bind_current_thread_to_node(unsigned node);

}  // namespace recon::util
