// Streaming statistics and Monte-Carlo aggregation helpers.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace recon::util {

/// Welford's online algorithm for mean / variance plus min / max tracking.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  /// Standard error of the mean; 0 when fewer than two samples.
  double stderr_mean() const noexcept {
    return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
  }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Aggregates equal-length series (e.g. benefit-vs-budget curves) across
/// Monte-Carlo repetitions: one RunningStat per index. Series may have
/// different lengths; shorter series simply do not contribute to later
/// indices (the curve is extended with its last value first — callers that
/// need strict alignment should pad).
class SeriesStat {
 public:
  /// Adds one run's curve. If `extend_last` is true (default) the curve is
  /// carried forward at its final value up to the longest series seen so far,
  /// which is the right behaviour for cumulative-benefit curves of attacks
  /// that exhaust their candidates early.
  void add(const std::vector<double>& series, bool extend_last = true);

  std::size_t length() const noexcept { return stats_.size(); }
  const RunningStat& at(std::size_t i) const { return stats_.at(i); }

  std::vector<double> means() const;
  std::vector<double> stderrs() const;

 private:
  std::vector<RunningStat> stats_;
  std::vector<double> last_values_;  // per-run bookkeeping for extension
  std::size_t runs_ = 0;
};

/// Exact quantile of a sample (copies and sorts; linear interpolation).
/// q in [0,1]. Returns NaN on empty input.
double quantile(std::vector<double> values, double q);

}  // namespace recon::util
