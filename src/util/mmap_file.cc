#include "util/mmap_file.h"

#include <cstdio>
#include <stdexcept>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define RECON_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace recon::util {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("MappedFile: " + what + ": " + path);
}

/// Buffered fallback (and non-POSIX path): the whole file in a heap buffer.
/// The buffer is leaked into the MappedFile's data pointer and reclaimed in
/// the destructor via delete[].
const std::byte* read_whole_file(const std::string& path, std::size_t& size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail(path, "cannot open");
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    fail(path, "cannot stat");
  }
  size = static_cast<std::size_t>(end);
  std::fseek(f, 0, SEEK_SET);
  auto* buf = new std::byte[size == 0 ? 1 : size];
  const std::size_t got = std::fread(buf, 1, size, f);
  std::fclose(f);
  if (got != size) {
    delete[] buf;
    fail(path, "short read");
  }
  return buf;
}

}  // namespace

std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path) {
#if RECON_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "cannot stat");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  const std::byte* data = nullptr;
  if (size > 0) {
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      fail(path, "mmap failed");
    }
    data = static_cast<const std::byte*>(p);
  }
  ::close(fd);  // the mapping keeps its own reference to the pages
  return std::shared_ptr<const MappedFile>(
      new MappedFile(path, data, size, /*mapped=*/true));
#else
  std::size_t size = 0;
  const std::byte* data = read_whole_file(path, size);
  return std::shared_ptr<const MappedFile>(
      new MappedFile(path, data, size, /*mapped=*/false));
#endif
}

MappedFile::~MappedFile() {
  if (data_ == nullptr) return;
#if RECON_HAVE_MMAP
  if (mapped_) {
    ::munmap(const_cast<std::byte*>(data_), size_);
    return;
  }
#endif
  delete[] data_;
}

void MappedFile::check_range(std::size_t offset, std::size_t count,
                             std::size_t elem_size, std::size_t align) const {
  // Overflow-safe: check count against the remaining bytes via division.
  if (offset > size_ || (align != 0 && offset % align != 0) ||
      (elem_size != 0 && count > (size_ - offset) / elem_size)) {
    throw std::out_of_range(
        "MappedFile: section [" + std::to_string(offset) + " + " +
        std::to_string(count) + " x " + std::to_string(elem_size) +
        "] escapes or misaligns the " + std::to_string(size_) + "-byte file " +
        path_);
  }
}

}  // namespace recon::util
