// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05; memory-order
// treatment after Lê, Pop, Cohen & Zappa Nardelli, PPoPP'13), holding items
// by pointer.
//
// Single owner pushes and pops at the *bottom* (LIFO — the owner re-runs its
// most recent work while it is still cache-hot); any number of thieves steal
// from the *top* (FIFO — a thief takes the oldest, likely-largest task).
// Every operation is lock-free: the only contended instruction is a
// compare-exchange on `top_`, and only when the deque is nearly empty. This
// replaces the mutex-per-push/pop worker queues the thread pool used before,
// which serialized fine-grained submissions behind a lock even when owner
// and thieves touched disjoint ends.
//
// Items are word-sized pointers on purpose. The element race inherent to
// Chase-Lev — owner and thief may both read a slot before the CAS on `top_`
// decides who owns it — is benign for a pointer (the loser discards the
// value) but would be undefined for a move-only object; callers transfer
// ownership of the pointee with the pointer.
//
// Memory-order protocol (no standalone fences — every ordering obligation
// sits on an atomic operation, which both the C++ memory model and TSan
// reason about precisely):
//
//  * push_bottom stores the slot relaxed, then bottom_ with release. A
//    thief's seq_cst load of bottom_ that observes the new value therefore
//    also sees the slot pointer and the fully-constructed pointee.
//  * pop_bottom reserves with a seq_cst store of the decremented bottom_
//    and then a seq_cst load of top_: the seq_cst total order forbids the
//    store-load reordering that would let the owner and a thief both take
//    the last item.
//  * steal re-validates the slot it read with a seq_cst CAS on top_; if the
//    CAS loses, the (possibly stale) pointer is discarded unread. Only a
//    bottom_ value written by push (release) or by the pop reservation
//    (seq_cst) can lead to a winning CAS, so a winning thief always has a
//    happens-before edge covering the slot it took.
//
// The ring grows geometrically; retired rings are kept until destruction
// (a thief may still be reading one), which bounds wasted memory at 2x the
// high-water ring size.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace recon::util {

template <typename T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64) {
    std::size_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    rings_.push_back(new Ring(cap));
    ring_.store(rings_.back(), std::memory_order_relaxed);
  }

  ~ChaseLevDeque() {
    for (Ring* r : rings_) delete r;
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Takes ownership of `item` until a pop/steal returns it.
  void push_bottom(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(ring->capacity)) {
      ring = grow(ring, t, b);
    }
    ring->slot(b).store(item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. LIFO: returns the most recently pushed item, or nullptr.
  T* pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = ring->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last item: race thieves for it through the top_ CAS.
      // lint:lockfree-ok(owner/thief tie-break on the final element; the
      // seq_cst store-then-load above already ordered this pop against
      // concurrent steals — see the file-top memory-order protocol, which
      // util_test exercises under the TSan CI job)
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief got there first
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread. FIFO: returns the oldest item, or nullptr when the deque
  /// is empty or the steal lost a race (callers treat both as "try
  /// elsewhere").
  T* steal_top() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Ring* ring = ring_.load(std::memory_order_acquire);
    T* item = ring->slot(t).load(std::memory_order_relaxed);
    // lint:lockfree-ok(thieves serialize on top_: a winning CAS proves the
    // slot read above was covered by the owner's release store of bottom_,
    // a losing CAS discards the possibly-stale pointer unread — see the
    // file-top memory-order protocol, exercised by util_test under TSan CI)
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race; `item` may be stale — discard it
    }
    return item;
  }

  /// Approximate (racy) emptiness check; exact when called by the owner
  /// with no concurrent thieves.
  bool empty() const {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T*>[cap]) {}
    ~Ring() { delete[] slots; }
    std::atomic<T*>& slot(std::int64_t index) {
      return slots[static_cast<std::size_t>(index) & mask];
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::atomic<T*>* const slots;
  };

  /// Owner only: doubles the ring, copying the live range [t, b). The old
  /// ring stays allocated (a thief may be mid-read); indices it serves
  /// correctly are exactly those a thief can still win a CAS for.
  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    Ring* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    rings_.push_back(bigger);
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_{nullptr};
  std::vector<Ring*> rings_;  ///< owner-only; freed at destruction
};

}  // namespace recon::util
