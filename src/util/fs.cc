#include "util/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/crashpoint.h"

namespace recon::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

/// fsync by freshly-opened descriptor (works for both files and
/// directories; Linux accepts fsync on O_RDONLY descriptors).
void fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) fail("fsync: cannot open", path);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("fsync failed for", path);
  }
  if (::close(fd) != 0) fail("fsync: close failed for", path);
}

}  // namespace

void fsync_file(const std::string& path) { fsync_path(path, O_RDONLY); }

void fsync_parent_dir(const std::string& path) {
  fsync_path(parent_dir(path), O_RDONLY | O_DIRECTORY);
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool directory_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool path_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

void durable_rename(const std::string& from, const std::string& to) {
  fsync_file(from);
  RECON_CRASH_POINT("durable.fsynced");
  // The one sanctioned raw rename: every durable publish funnels here.
  // lint:durable-write-ok(this IS durable_rename; file fsync'd above, parent
  // directory fsync'd below, so the publish survives a crash at any point)
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    fail("durable_rename: rename to", to);
  }
  RECON_CRASH_POINT("durable.renamed");
  fsync_parent_dir(to);
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("read_file_bytes: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  if (f.bad()) throw std::runtime_error("read_file_bytes: read failed '" + path + "'");
  return buf.str();
}

std::uint64_t fnv1a64(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace recon::util
