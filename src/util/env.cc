#include "util/env.h"

#include <cstdlib>
#include <stdexcept>

namespace recon::util {

std::optional<std::string> env_string(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

double env_double(const std::string& name, double fallback) {
  const auto s = env_string(name);
  if (!s) return fallback;
  try {
    return std::stod(*s);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const auto s = env_string(name);
  if (!s) return fallback;
  try {
    return std::stoll(*s);
  } catch (const std::exception&) {
    return fallback;
  }
}

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) == 0) {
      std::string name = tok.substr(2);
      const auto eq = name.find('=');
      if (eq != std::string::npos) {
        flags_[name.substr(0, eq)] = name.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[name] = argv[++i];
      } else {
        flags_[name] = "";
      }
    } else {
      positional_.push_back(std::move(tok));
    }
  }
}

bool Args::has(const std::string& flag) const { return flags_.count(flag) > 0; }

std::string Args::get(const std::string& flag, const std::string& fallback) const {
  const auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& flag, double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::int64_t Args::get_int(const std::string& flag, std::int64_t fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

double bench_scale() { return env_double("RECON_SCALE", 1.0); }

int bench_runs() {
  return static_cast<int>(env_int("RECON_RUNS", 10));
}

std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_int("RECON_SEED", 20170605));
}

}  // namespace recon::util
