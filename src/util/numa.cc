#include "util/numa.h"

#include <algorithm>

#include "util/env.h"

#if defined(RECON_NUMA) && defined(__linux__)
#define RECON_NUMA_SYSFS 1
#include <pthread.h>
#include <sched.h>

#include <cstdio>
#include <string>
#endif

namespace recon::util {

namespace {

#if RECON_NUMA_SYSFS
/// Parses a sysfs cpulist ("0-3,8,10-11") into cpu indices.
std::vector<unsigned> parse_cpulist(const std::string& text) {
  std::vector<unsigned> cpus;
  std::size_t i = 0;
  while (i < text.size()) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    unsigned lo = 0;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      lo = lo * 10 + static_cast<unsigned>(text[i++] - '0');
    }
    unsigned hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      hi = 0;
      while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
        hi = hi * 10 + static_cast<unsigned>(text[i++] - '0');
      }
    }
    for (unsigned c = lo; c <= hi && c - lo < 4096; ++c) cpus.push_back(c);
  }
  return cpus;
}

bool read_small_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  const std::size_t got = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  out.assign(buf, got);
  return true;
}
#endif  // RECON_NUMA_SYSFS

NumaTopology detect() {
  NumaTopology topo;
  // Tier 1: explicit override for deterministic testing of the pinning
  // logic on hosts with no (or unknown) NUMA hardware.
  const std::int64_t forced = env_int("RECON_NUMA_NODES", 0);
  if (forced > 0) {
    topo.num_nodes = static_cast<unsigned>(std::min<std::int64_t>(forced, 64));
    return topo;
  }
#if RECON_NUMA_SYSFS
  // Tier 2: sysfs probing. node directories are dense from node0.
  std::vector<std::vector<unsigned>> node_cpus;
  for (unsigned node = 0; node < 64; ++node) {
    std::string text;
    if (!read_small_file("/sys/devices/system/node/node" +
                             std::to_string(node) + "/cpulist",
                         text)) {
      break;
    }
    node_cpus.push_back(parse_cpulist(text));
  }
  if (node_cpus.size() > 1) {
    topo.num_nodes = static_cast<unsigned>(node_cpus.size());
    unsigned max_cpu = 0;
    for (const auto& cpus : node_cpus) {
      for (unsigned c : cpus) max_cpu = std::max(max_cpu, c);
    }
    topo.cpu_of_node.assign(max_cpu + 1, 0);
    for (unsigned node = 0; node < node_cpus.size(); ++node) {
      for (unsigned c : node_cpus[node]) topo.cpu_of_node[c] = node;
    }
    topo.can_bind = true;
  }
#endif
  return topo;
}

}  // namespace

const NumaTopology& numa_topology() {
  static const NumaTopology topo = detect();
  return topo;
}

unsigned numa_node_of_worker(std::size_t worker, std::size_t num_workers) {
  const unsigned nodes = numa_topology().num_nodes;
  if (nodes <= 1 || num_workers == 0) return 0;
  // Contiguous blocks: workers [0, ceil(w/n)) on node 0, the next block on
  // node 1, ... — adjacent workers share a node, matching the contiguous
  // candidate ranges plan_score_shards hands out.
  const std::size_t per_node = (num_workers + nodes - 1) / nodes;
  return static_cast<unsigned>(std::min<std::size_t>(worker / per_node, nodes - 1));
}

bool bind_current_thread_to_node(unsigned node) {
#if RECON_NUMA_SYSFS
  const NumaTopology& topo = numa_topology();
  if (!topo.can_bind || node >= topo.num_nodes) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (unsigned c = 0; c < topo.cpu_of_node.size(); ++c) {
    if (topo.cpu_of_node[c] == node) {
      CPU_SET(c, &set);
      any = true;
    }
  }
  if (!any) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)node;
  return false;
#endif
}

}  // namespace recon::util
