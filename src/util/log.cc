#include "util/log.h"

#include <atomic>
#include <cstdio>

#include "util/env.h"
#include "util/thread_annotations.h"

namespace recon::util {

namespace {

LogLevel initial_level() {
  const auto s = env_string("RECON_LOG");
  if (!s) return LogLevel::kWarn;
  if (*s == "debug") return LogLevel::kDebug;
  if (*s == "info") return LogLevel::kInfo;
  if (*s == "warn") return LogLevel::kWarn;
  if (*s == "error") return LogLevel::kError;
  if (*s == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  static Mutex mu;  // serializes whole lines onto stderr
  MutexLock lock(mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace recon::util
