// Bounded lock-free MPMC ring buffer (Vyukov's bounded MPMC queue design),
// holding items by value.
//
// Any number of producers push and any number of consumers pop; the only
// contended instructions are compare-exchanges on the two position counters,
// and each operation touches exactly one cell. This replaces the
// mutex-guarded injection std::deque the thread pool used for external
// submitters: under the campaign-service workload many frontend threads
// submit concurrently, and a mutex on that path serializes them all.
//
// Memory-order protocol (every ordering obligation sits on an atomic
// operation — no standalone fences — so both the C++ memory model and TSan
// reason about it precisely):
//
//  * Each cell carries a sequence number. seq == index means "free for the
//    producer claiming `index`"; seq == index + 1 means "filled, free for
//    the consumer claiming `index`". After a full lap the producer of
//    index + capacity sees seq == index + capacity again.
//  * A producer acquires-loads the cell's seq to decide the cell is free,
//    claims the index with a relaxed CAS on enqueue_pos_ (position counters
//    carry no data — the cell seq does all the publication), writes the
//    value, then release-stores seq = index + 1. A consumer's acquire load
//    of that seq therefore sees the fully-constructed value.
//  * A consumer acquires-loads seq to decide the cell is filled, claims the
//    index with a relaxed CAS on dequeue_pos_, moves the value out, then
//    release-stores seq = index + capacity, which is exactly the value the
//    producer one lap later acquires before overwriting the slot.
//
// try_push/try_pop fail (return false) when the ring is full/empty rather
// than blocking; callers decide whether to spin, yield, or fall back.
// Capacity is rounded up to a power of two. The ring never allocates after
// construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace recon::util {

template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t capacity = 1024) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = static_cast<Cell*>(::operator new[](
        cap * sizeof(Cell), std::align_val_t(alignof(Cell))));
    for (std::size_t i = 0; i < cap; ++i) {
      ::new (&cells_[i]) Cell();
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  ~MpmcRing() {
    // Destroy any still-enqueued values, then the cells themselves. By the
    // time the ring dies no producer/consumer may be active (same contract
    // as destroying a mutex-guarded queue).
    T item;
    while (try_pop(item)) {
    }
    for (std::size_t i = 0; i <= mask_; ++i) cells_[i].~Cell();
    ::operator delete[](cells_, std::align_val_t(alignof(Cell)));
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Any thread. Returns false when the ring is full (or a full/empty
  /// boundary race makes it look full — callers retry or fall back).
  bool try_push(T item) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        // Cell free for this index: claim it. The CAS is relaxed on purpose —
        // position counters carry no payload; the release store of seq below
        // is the publication edge consumers synchronize with.
        // lint:lockfree-ok(producers serialize on enqueue_pos_: a winning CAS
        // grants exclusive write access to the cell whose seq was acquired
        // above, a loser reloads and retries a later index — see the file-top
        // memory-order protocol, exercised by mpmc_ring_test under TSan CI)
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.value = std::move(item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full: the consumer one lap behind has not freed it
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Any thread. Returns false when the ring is empty.
  bool try_pop(T& item) {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        // Cell filled for this index: claim it. Relaxed for the same reason
        // as try_push — the seq stores carry every happens-before edge.
        // lint:lockfree-ok(consumers serialize on dequeue_pos_: a winning CAS
        // grants exclusive read access to the cell whose filled seq was
        // acquired above, a loser reloads and retries — see the file-top
        // memory-order protocol, exercised by mpmc_ring_test under TSan CI)
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          item = std::move(cell.value);
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty: no producer has filled this index yet
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Approximate (racy) emptiness check; exact only when no producers are
  /// active.
  bool empty() const {
    return dequeue_pos_.load(std::memory_order_acquire) >=
           enqueue_pos_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  Cell* cells_ = nullptr;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace recon::util
