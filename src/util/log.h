// Minimal leveled logging to stderr.
//
// The library itself logs nothing at default level; benches and examples use
// INFO-level progress lines. Set RECON_LOG=debug|info|warn|error|off.
#pragma once

#include <sstream>
#include <string>

namespace recon::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current threshold (initialized from RECON_LOG, default warn).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG(kInfo) << "hello " << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::log_write(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace recon::util

#define RECON_LOG(level) ::recon::util::LogLine(::recon::util::LogLevel::level)
