#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace recon::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      if (c == 0) {
        os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        os << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Table::write_csv: cannot open " + path);
  f << to_csv();
  if (!f) throw std::runtime_error("Table::write_csv: write failed: " + path);
}

std::string format_sci(double v, int digits) {
  if (!std::isfinite(v)) return "inf";
  if (v == 0.0) return "0";
  const double av = std::fabs(v);
  if (av >= 0.01 && av < 1000.0) return format_fixed(v, digits);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", std::max(0, digits - 1), v);
  // Compact exponent: "1.2e+01" -> "1.2e1", "3.4e-02" -> "3.4e-2".
  std::string s(buf);
  const auto epos = s.find('e');
  if (epos == std::string::npos) return s;
  std::string mant = s.substr(0, epos);
  std::string exp = s.substr(epos + 1);
  bool neg = false;
  std::size_t i = 0;
  if (!exp.empty() && (exp[0] == '+' || exp[0] == '-')) {
    neg = exp[0] == '-';
    i = 1;
  }
  while (i + 1 < exp.size() && exp[i] == '0') ++i;
  return mant + "e" + (neg ? "-" : "") + exp.substr(i);
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return std::string(buf);
}

}  // namespace recon::util
