// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace recon::util {

/// Simple wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed nanoseconds since construction or last reset().
  std::uint64_t nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Adds the elapsed wall time to `*sink` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) noexcept : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.seconds(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace recon::util
