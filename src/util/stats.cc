#include "util/stats.h"

#include <algorithm>
#include <limits>

namespace recon::util {

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SeriesStat::add(const std::vector<double>& series, bool extend_last) {
  if (series.empty()) return;
  // Grow to accommodate a longer series: previously-seen runs contribute
  // their final value to the newly-created indices.
  if (series.size() > stats_.size()) {
    const std::size_t old = stats_.size();
    stats_.resize(series.size());
    if (extend_last) {
      for (std::size_t i = old; i < stats_.size(); ++i) {
        for (double lv : last_values_) stats_[i].add(lv);
      }
    }
  }
  for (std::size_t i = 0; i < series.size(); ++i) stats_[i].add(series[i]);
  if (extend_last) {
    for (std::size_t i = series.size(); i < stats_.size(); ++i) {
      stats_[i].add(series.back());
    }
  }
  last_values_.push_back(series.back());
  ++runs_;
}

std::vector<double> SeriesStat::means() const {
  std::vector<double> out(stats_.size());
  for (std::size_t i = 0; i < stats_.size(); ++i) out[i] = stats_[i].mean();
  return out;
}

std::vector<double> SeriesStat::stderrs() const {
  std::vector<double> out(stats_.size());
  for (std::size_t i = 0; i < stats_.size(); ++i) out[i] = stats_[i].stderr_mean();
  return out;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace recon::util
