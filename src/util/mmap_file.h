// Read-only memory-mapped file with RAII unmap and bounds-checked access.
//
// The binary graph substrate (graph/format.h) maps multi-hundred-MB CSR
// arenas and hands raw typed pointers into them to hot scoring loops, so the
// wrapper's job is to make every pointer derivation *checked*: a section
// view is only produced after validating that the requested
// [offset, offset + count * sizeof(T)) range lies inside the mapping and is
// aligned for T. A truncated or corrupt file therefore fails loudly at load
// time instead of faulting mid-campaign.
//
// Lifetime: consumers share the mapping via shared_ptr; the pages stay
// mapped until the last Graph (or other view) holding the arena is
// destroyed. Thread-compatibility: the mapping is immutable after open(), so
// any number of threads may read through it concurrently without locking.
//
// Portability: POSIX mmap when available; otherwise open() falls back to
// reading the whole file into an owned heap buffer (same interface, no
// laziness). Either way the bytes are read-only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace recon::util {

class MappedFile {
 public:
  /// Maps `path` read-only. Throws std::runtime_error when the file cannot
  /// be opened, stat-ed, or mapped. An empty file maps to size() == 0.
  static std::shared_ptr<const MappedFile> open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::byte* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }
  /// True when backed by a real mmap (false on the buffered fallback).
  bool is_mmap() const noexcept { return mapped_; }

  /// Typed view of `count` elements of T starting at byte `offset`.
  /// Throws std::out_of_range when the range escapes the file or the offset
  /// is misaligned for T (the file format aligns all sections to 8 bytes).
  template <typename T>
  const T* range(std::size_t offset, std::size_t count) const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "mapped sections must be trivially copyable");
    check_range(offset, count, sizeof(T), alignof(T));
    return reinterpret_cast<const T*>(data_ + offset);
  }

 private:
  MappedFile(std::string path, const std::byte* data, std::size_t size,
             bool mapped) noexcept
      : path_(std::move(path)), data_(data), size_(size), mapped_(mapped) {}

  void check_range(std::size_t offset, std::size_t count, std::size_t elem_size,
                   std::size_t align) const;

  std::string path_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace recon::util
