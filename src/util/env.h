// Environment / command-line configuration helpers for the bench harness.
//
// Benches honor two sources of configuration:
//   * environment variables (RECON_SCALE, RECON_RUNS, RECON_SEED, ...)
//   * a tiny `--flag value` / `--flag=value` / `--switch` argv parser.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace recon::util {

/// Reads an environment variable; empty optional when unset.
std::optional<std::string> env_string(const std::string& name);

/// Reads an environment variable as double/int with a default.
double env_double(const std::string& name, double fallback);
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Minimal argv parser. Flags begin with "--". A flag followed by a token
/// that does not begin with "--" consumes it as the value; otherwise it is a
/// boolean switch. Positional arguments are collected in order.
class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& flag) const;
  std::string get(const std::string& flag, const std::string& fallback) const;
  double get_double(const std::string& flag, double fallback) const;
  std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Linear scale factor for bench workloads (env RECON_SCALE, default 1).
/// Scale 1 runs ~1/10-linear-size stand-ins of the paper's networks so the
/// full harness completes quickly; scale 10 reproduces paper-scale node
/// counts. See DESIGN.md §2.5.
double bench_scale();

/// Number of Monte-Carlo repetitions for benches (env RECON_RUNS, default 10;
/// the paper uses 100).
int bench_runs();

/// Master seed for benches (env RECON_SEED, default 20170605 — the first day
/// of ICDCS 2017).
std::uint64_t bench_seed();

}  // namespace recon::util
