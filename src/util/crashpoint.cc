#include "util/crashpoint.h"

#include <unistd.h>

#include <array>
#include <cstdlib>
#include <stdexcept>

#include "util/thread_annotations.h"

namespace recon::util::crashpoint {

namespace {

/// The central site table. One entry per RECON_CRASH_POINT in the tree;
/// the chaos sweep's coverage check (crash_recovery_test.cc) fails when an
/// instrumented site is missing here or a listed site never fires.
constexpr std::array kSites = {
    // core/checkpoint.cc — single-file atomic checkpoint publish.
    "ckpt.tmp-open",          // tmp file created, nothing written
    "ckpt.tmp-torn",          // header flushed, body missing (torn tmp)
    "ckpt.tmp-written",       // tmp complete, not yet fsync'd/renamed
    // core/checkpoint_chain.cc — generation-chain publish.
    "chain.tmp-open",         // generation tmp created, nothing written
    "chain.tmp-torn",         // header flushed, body+footer missing
    "chain.tmp-written",      // generation tmp complete incl. footer
    "chain.gen-published",    // generation renamed in, manifest stale
    "chain.manifest-written", // manifest renamed in, pruning pending
    "chain.pruned",           // old generations pruned, write complete
    // util/fs.cc — inside every durable_rename.
    "durable.fsynced",        // source fsync'd, rename pending
    "durable.renamed",        // renamed in, parent dir fsync pending
    // sim/trace_io.cc — trace-file publish.
    "trace.tmp-torn",         // header flushed, records+footer missing
    "trace.tmp-written",      // tmp complete incl. end footer
    // graph/format.cc — binary graph publish.
    "graph.tmp-torn",         // magic+header flushed, sections missing
    "graph.tmp-written",      // tmp complete, rename pending
};

struct Registry {
  Mutex mutex;
  std::array<std::uint64_t, kSites.size()> counts RECON_GUARDED_BY(mutex) = {};
  bool armed RECON_GUARDED_BY(mutex) = false;
  std::size_t armed_site RECON_GUARDED_BY(mutex) = 0;
  std::uint64_t armed_remaining RECON_GUARDED_BY(mutex) = 0;
  bool env_checked RECON_GUARDED_BY(mutex) = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::size_t site_index(const std::string& site) {
  for (std::size_t i = 0; i < kSites.size(); ++i) {
    if (site == kSites[i]) return i;
  }
  throw std::invalid_argument("crashpoint: unknown site '" + site +
                              "' (see util/crashpoint.cc's site table)");
}

/// Parses `<site>:<n>` from RECON_CRASH_AT; throws on malformed input so a
/// typo'd sweep cannot silently run without injection.
void consume_env(Registry& r) RECON_REQUIRES(r.mutex) {
  r.env_checked = true;
  const char* v = std::getenv(kEnvVar);
  if (v == nullptr || *v == '\0') return;
  const std::string spec(v);
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    throw std::runtime_error(std::string(kEnvVar) + "='" + spec +
                             "': expected <site>:<n>");
  }
  std::uint64_t nth = 0;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9') {
      throw std::runtime_error(std::string(kEnvVar) + "='" + spec +
                               "': hit count must be a positive integer");
    }
    nth = nth * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (nth == 0) {
    throw std::runtime_error(std::string(kEnvVar) + "='" + spec +
                             "': hit count must be >= 1");
  }
  r.armed = true;
  r.armed_site = site_index(spec.substr(0, colon));
  r.armed_remaining = nth;
}

[[noreturn]] void die(const char* site) {
  // Bypass stdio buffering: the message must land even though we _exit.
  std::string msg = "crashpoint: killing process at '";
  msg += site;
  msg += "'\n";
  [[maybe_unused]] const auto n = ::write(STDERR_FILENO, msg.data(), msg.size());
  // _exit skips destructors, stream flushes, and atexit handlers — the
  // closest in-process stand-in for SIGKILL / power loss.
  ::_exit(kExitCode);
}

}  // namespace

const std::vector<std::string>& all_sites() {
  static const std::vector<std::string> sites(kSites.begin(), kSites.end());
  return sites;
}

void hit(const char* site) {
  Registry& r = registry();
  bool fire = false;
  {
    MutexLock lock(r.mutex);
    if (!r.env_checked) consume_env(r);
    const std::size_t idx = site_index(site);
    ++r.counts[idx];
    if (r.armed && r.armed_site == idx && --r.armed_remaining == 0) {
      r.armed = false;
      fire = true;
    }
  }
  if (fire) die(site);
}

void arm(const std::string& site, std::uint64_t nth) {
  if (nth == 0) throw std::invalid_argument("crashpoint::arm: nth must be >= 1");
  const std::size_t idx = site_index(site);
  Registry& r = registry();
  MutexLock lock(r.mutex);
  r.env_checked = true;  // programmatic arming overrides the environment
  r.armed = true;
  r.armed_site = idx;
  r.armed_remaining = nth;
}

void disarm() {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  r.env_checked = true;
  r.armed = false;
}

std::uint64_t hit_count(const std::string& site) {
  const std::size_t idx = site_index(site);
  Registry& r = registry();
  MutexLock lock(r.mutex);
  return r.counts[idx];
}

void reset_counts() {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  r.counts.fill(0);
}

}  // namespace recon::util::crashpoint
