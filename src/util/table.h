// Plain-text table formatting and CSV emission for the benchmark harness.
//
// Every paper table/figure bench prints an aligned text table mirroring the
// paper's layout and can additionally write the same data as CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace recon::util {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders the aligned text table (first column left-aligned, the rest
  /// right-aligned, mirroring the paper's numeric tables).
  std::string to_text() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string to_csv() const;

  /// Writes CSV to `path`; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like the paper's tables: scientific "a.b x 10^e" style
/// collapsed to compact text, e.g. 1.2e+01 -> "1.2e1". Plain fixed for small
/// magnitudes.
std::string format_sci(double v, int digits = 2);

/// Fixed-point formatting with the given number of decimals.
std::string format_fixed(double v, int decimals = 2);

}  // namespace recon::util
