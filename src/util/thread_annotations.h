// Clang Thread Safety Analysis annotations, plus an annotated mutex wrapper.
//
// The repo's headline guarantees — bit-identical parallel vs. sequential
// batch_select and bit-identical checkpoint-resume — depend on strict lock
// discipline in the handful of places that share mutable state across
// threads. Clang's -Wthread-safety analysis proves that discipline at
// compile time, but only for mutex types it can see through. libstdc++'s
// std::mutex / std::lock_guard carry no capability attributes, so this
// header provides:
//
//  * RECON_* annotation macros (CAPABILITY, GUARDED_BY, REQUIRES, ACQUIRE,
//    RELEASE, ...) that expand to clang attributes under clang and to
//    nothing under every other compiler (gcc builds are unaffected);
//  * util::Mutex — a std::mutex wrapper annotated as a capability, so
//    GUARDED_BY(mutex_member) is enforced at every access site;
//  * util::MutexLock — an annotated RAII guard (scoped capability).
//
// Use util::Mutex + RECON_GUARDED_BY for any member guarded by a mutex; the
// invariant linter (tools/lint_invariants.py, rule `guard`) rejects classes
// that declare a mutex member without either a GUARDED_BY annotation in the
// same class or an explicit `// lint:guard-ok(reason)` waiver. CI compiles
// with `clang++ -Wthread-safety` and RECON_WERROR=ON, so a missing or wrong
// annotation fails the build. See docs/STATIC_ANALYSIS.md.
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define RECON_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define RECON_THREAD_ANNOTATION_IMPL(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define RECON_CAPABILITY(x) RECON_THREAD_ANNOTATION_IMPL(capability(x))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define RECON_SCOPED_CAPABILITY RECON_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// Data member requires the given capability to be held for access.
#define RECON_GUARDED_BY(x) RECON_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// Pointer member: the pointed-to data requires the capability.
#define RECON_PT_GUARDED_BY(x) RECON_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// Documents (and checks) lock acquisition order between two capabilities.
#define RECON_ACQUIRED_BEFORE(...) \
  RECON_THREAD_ANNOTATION_IMPL(acquired_before(__VA_ARGS__))
#define RECON_ACQUIRED_AFTER(...) \
  RECON_THREAD_ANNOTATION_IMPL(acquired_after(__VA_ARGS__))

/// Function requires the capability to be held on entry (and stay held).
#define RECON_REQUIRES(...) \
  RECON_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))
#define RECON_REQUIRES_SHARED(...) \
  RECON_THREAD_ANNOTATION_IMPL(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on exit.
#define RECON_ACQUIRE(...) \
  RECON_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
#define RECON_ACQUIRE_SHARED(...) \
  RECON_THREAD_ANNOTATION_IMPL(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability held on entry.
#define RECON_RELEASE(...) \
  RECON_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))
#define RECON_RELEASE_SHARED(...) \
  RECON_THREAD_ANNOTATION_IMPL(release_shared_capability(__VA_ARGS__))

/// Function attempts acquisition; first argument is the success value.
#define RECON_TRY_ACQUIRE(...) \
  RECON_THREAD_ANNOTATION_IMPL(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define RECON_EXCLUDES(...) RECON_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// Asserts (runtime-checked by the caller) that the capability is held.
#define RECON_ASSERT_CAPABILITY(x) \
  RECON_THREAD_ANNOTATION_IMPL(assert_capability(x))

/// Function returns a reference to the given capability.
#define RECON_RETURN_CAPABILITY(x) RECON_THREAD_ANNOTATION_IMPL(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// explain why in an adjacent comment.
#define RECON_NO_THREAD_SAFETY_ANALYSIS \
  RECON_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

namespace recon::util {

/// std::mutex with capability annotations, so clang's thread-safety
/// analysis can verify GUARDED_BY contracts at every access site. Drop-in
/// for std::mutex wherever the mutex guards annotated state; plain
/// std::mutex remains fine for locks that guard no members (e.g. a
/// condition-variable handshake over atomics).
class RECON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RECON_ACQUIRE() { m_.lock(); }
  void unlock() RECON_RELEASE() { m_.unlock(); }
  bool try_lock() RECON_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped mutex, for APIs that need the native type (condition
  /// variables). Callers using this bypass the static analysis.
  std::mutex& native() RECON_RETURN_CAPABILITY(this) { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock for util::Mutex, annotated as a scoped capability (the
/// annotated analogue of std::lock_guard<std::mutex>).
class RECON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) RECON_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RECON_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace recon::util
