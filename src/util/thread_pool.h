// Work-stealing worker thread pool with per-worker busy-time accounting.
//
// The pool backs the "massively parallel" batch-selection step of PM-AReST
// (paper Sec. III-B) and the Table II utilization experiment: each worker
// records the wall time it spends executing tasks, so callers can compute
// utilization = busy_time / (threads * elapsed).
//
// Structure: every worker owns a lock-free Chase-Lev deque
// (util/chase_lev_deque.h). Workers pop their own deque LIFO and steal FIFO
// from siblings when empty, so bursts of submissions spread across the pool
// without funnelling through a lock; submissions from threads that are not
// pool workers (Chase-Lev's bottom end is single-owner) land in a bounded
// lock-free MPMC injection ring (util/mpmc_ring.h), so many frontend threads
// — the campaign-service daemon's submitters — never contend on a mutex
// either. Blocking joins (parallel_for / parallel_reduce) never sleep: the
// calling thread executes chunks itself and steals unrelated pool tasks
// while waiting, which makes nested parallel sections deadlock-free.
//
// Shutdown contract: a task accepted by submit()/submit_pinned() before the
// destructor begins either runs to completion or is destroyed unrun, in
// which case its future reports std::future_error{broken_promise}. Callers
// never see a silently-dropped future (util_test pins this).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/chase_lev_deque.h"
#include "util/mpmc_ring.h"
#include "util/thread_annotations.h"

namespace recon::util {

/// Move-only type-erased `void()` callable with small-buffer storage.
/// Unlike std::function it can hold move-only callables (packaged_task), so
/// ThreadPool::submit moves tasks straight into the queue with no shared_ptr
/// indirection and no extra allocation for small lambdas.
class TaskFunction {
 public:
  TaskFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TaskFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  TaskFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (storage()) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>;
    } else {
      ::new (storage()) D*(new D(std::forward<F>(fn)));
      ops_ = &heap_ops<D>;
    }
  }

  TaskFunction(TaskFunction&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->move(o.storage(), storage());
    o.ops_ = nullptr;
  }

  TaskFunction& operator=(TaskFunction&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->move(o.storage(), storage());
      o.ops_ = nullptr;
    }
    return *this;
  }

  TaskFunction(const TaskFunction&) = delete;
  TaskFunction& operator=(const TaskFunction&) = delete;

  ~TaskFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage()); }

 private:
  static constexpr std::size_t kInlineSize = 48;

  struct Ops {
    void (*invoke)(void*);
    void (*move)(void* from, void* to);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* from, void* to) {
        ::new (to) D(std::move(*static_cast<D*>(from)));
        static_cast<D*>(from)->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); }};

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* from, void* to) {
        ::new (to) D*(*static_cast<D**>(from));
      },
      [](void* p) { delete *static_cast<D**>(p); }};

  void* storage() noexcept { return &buf_; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task; returns a future for its completion. The task is moved
  /// into the worker deque directly (no shared_ptr per task).
  template <typename F>
  std::future<void> submit(F&& fn) {
    std::packaged_task<void()> task(std::forward<F>(fn));
    std::future<void> fut = task.get_future();
    push_task(TaskFunction(std::move(task)));
    return fut;
  }

  /// Enqueues a task that only worker `worker % size()` may execute — it is
  /// never stolen and never runs on the caller. This is the NUMA first-touch
  /// primitive: a shard-scoring task pinned to a worker allocates its
  /// frontier memory on that worker's node, and later passes pinned the same
  /// way reuse it locally. With NUMA off (or a single node) pinning only
  /// fixes *which* worker runs the task; results are identical either way.
  template <typename F>
  std::future<void> submit_pinned(unsigned worker, F&& fn) {
    std::packaged_task<void()> task(std::forward<F>(fn));
    std::future<void> fut = task.get_future();
    push_pinned_task(worker % size(), TaskFunction(std::move(task)));
    return fut;
  }

  /// Best-effort: pins each worker thread to its NUMA node's CPU set
  /// (util/numa.h mapping). Returns how many workers installed a real
  /// binding — 0 unless built with RECON_NUMA on a multi-node host. Safe to
  /// call repeatedly or concurrently with running work.
  unsigned pin_workers_to_numa_nodes();

  /// Runs `body` over [begin, end), distributing contiguous chunks across
  /// workers; the calling thread participates and steals pool work while
  /// waiting, so a pool of size T delivers up to T+1-way parallelism.
  ///
  /// `body` is invoked directly (no std::function indirection) and may take
  /// either a half-open range — void(std::size_t lo, std::size_t hi) — or a
  /// single index — void(std::size_t i). Prefer the range form in hot code:
  /// it is one type-erased call per chunk instead of per index.
  ///
  /// If `body` throws, unclaimed chunks are abandoned and the first exception
  /// is rethrown from this call on the joining thread (parallel_reduce
  /// behaves the same); the pool stays usable afterwards.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                    std::size_t grain = 0) {
    run_chunked(begin, end, grain,
                [&body](std::size_t lo, std::size_t hi, unsigned /*slot*/) {
                  invoke_on_range(body, lo, hi);
                });
  }

  /// Parallel reduction: runs `body(acc, lo, hi)` over chunks of [begin, end)
  /// and returns the per-participant partial accumulators (the last slot is
  /// the calling thread's). Chunks are handed out dynamically, so which
  /// partial absorbed which chunk is not deterministic: merging the partials
  /// must be order-insensitive for run-to-run determinism (exact for integer
  /// sums, counts, max with total-order tie-breaks; floating-point sums may
  /// differ in the last ulp between runs).
  template <typename T, typename Body>
  std::vector<T> parallel_reduce(std::size_t begin, std::size_t end, T identity,
                                 Body&& body, std::size_t grain = 0) {
    const unsigned parties = size() + 1;
    std::vector<T> partials(parties, identity);
    run_chunked(begin, end, grain,
                [&body, &partials](std::size_t lo, std::size_t hi, unsigned slot) {
                  body(partials[slot], lo, hi);
                });
    return partials;
  }

  /// Total time workers have spent executing tasks, in nanoseconds, summed
  /// across workers since construction (or the last reset).
  std::uint64_t busy_nanos() const noexcept {
    return busy_nanos_.load(std::memory_order_relaxed);
  }
  void reset_busy_nanos() noexcept {
    busy_nanos_.store(0, std::memory_order_relaxed);
  }

 private:
  /// One per worker thread. The deque holds heap-allocated TaskFunctions:
  /// Chase-Lev transfers word-sized pointers, so the pool allocates on push
  /// and deletes after execution (the deque itself never touches pointees).
  /// The pinned inbox holds tasks only this worker may run (submit_pinned);
  /// its counter is read lock-free on the hot path, the deque itself only
  /// under the mutex (drained in FIFO order by the owner).
  struct Worker {
    ChaseLevDeque<TaskFunction> deque;
    Mutex pin_mutex;
    std::deque<TaskFunction> pinned RECON_GUARDED_BY(pin_mutex);
    std::atomic<std::size_t> pinned_count{0};
  };

  template <typename Body>
  static void invoke_on_range(Body& body, std::size_t lo, std::size_t hi) {
    if constexpr (std::is_invocable_v<Body&, std::size_t, std::size_t>) {
      body(lo, hi);
    } else {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
  }

  /// Shared chunked-execution driver behind parallel_for / parallel_reduce.
  /// `chunk` receives (lo, hi, slot) where slot < size() + 1 identifies the
  /// participant (stable per helper task; size() is the calling thread).
  template <typename Chunk>
  void run_chunked(std::size_t begin, std::size_t end, std::size_t grain,
                   Chunk&& chunk) {
    if (begin >= end) return;
    const std::size_t total = end - begin;
    const std::size_t parties = static_cast<std::size_t>(size()) + 1;
    if (grain == 0) grain = std::max<std::size_t>(1, total / (parties * 4));
    const std::size_t num_chunks = (total + grain - 1) / grain;
    const unsigned caller_slot = size();

    if (num_chunks <= 1) {
      chunk(begin, end, caller_slot);
      return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> chunks_done{0};
    std::atomic<std::size_t> helpers_done{0};
    // First exception thrown by any chunk; remaining chunks are skipped (the
    // claim loop still drains them so the join accounting stays exact) and
    // the exception rethrows on the joining caller after every helper exits.
    // The slot is a local with annotated members, so the thread-safety
    // analysis checks the capture and rethrow sites like any guarded state.
    struct ErrorSlot {
      Mutex mutex;
      std::exception_ptr first RECON_GUARDED_BY(mutex);
    };
    std::atomic<bool> failed{false};
    ErrorSlot error;
    auto run_slot = [&](unsigned slot) {
      for (;;) {
        const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) return;
        const std::size_t lo = begin + c * grain;
        const std::size_t hi = std::min(end, lo + grain);
        if (!failed.load(std::memory_order_acquire)) {
          try {
            chunk(lo, hi, slot);
          } catch (...) {
            MutexLock lock(error.mutex);
            if (error.first == nullptr) error.first = std::current_exception();
            failed.store(true, std::memory_order_release);
          }
        }
        chunks_done.fetch_add(1, std::memory_order_release);
      }
    };

    const std::size_t helpers = std::min<std::size_t>(size(), num_chunks - 1);
    for (std::size_t t = 0; t < helpers; ++t) {
      push_task(TaskFunction([&run_slot, &helpers_done, t] {
        run_slot(static_cast<unsigned>(t));
        helpers_done.fetch_add(1, std::memory_order_release);
      }));
    }
    run_slot(caller_slot);
    // Helper tasks reference this stack frame, so wait until every one has
    // finished (not merely until all chunks are claimed). While waiting,
    // execute other pool tasks — this keeps nested parallel sections from
    // deadlocking and turns idle waits into useful work.
    while (chunks_done.load(std::memory_order_acquire) < num_chunks ||
           helpers_done.load(std::memory_order_acquire) < helpers) {
      if (!try_run_one_task(/*account_busy=*/false)) std::this_thread::yield();
    }
    if (failed.load(std::memory_order_acquire)) {
      // Every helper has exited, but read the slot under its mutex anyway:
      // the lock discipline is what the static analysis certifies.
      std::exception_ptr err;
      {
        MutexLock lock(error.mutex);
        err = error.first;
      }
      std::rethrow_exception(err);
    }
  }

  void push_task(TaskFunction task);
  void push_pinned_task(unsigned worker, TaskFunction task);
  /// Pops or steals one task and runs it. Returns false if the pool is idle.
  bool try_run_one_task(bool account_busy);
  void worker_loop(unsigned index);

  std::vector<Worker> queues_;  // one per worker; fixed after construction
  std::vector<std::thread> workers_;
  // External submissions land here (only a pool worker may push the bottom
  // of its own Chase-Lev deque); workers drain it after their own deque and
  // before stealing. Lock-free so concurrent frontend submitters never
  // serialize on a mutex; tasks spawned *by* pool work (nested joins,
  // worker-side submits) go through the per-worker deques instead. Holds
  // heap-allocated TaskFunctions (word-sized elements keep the ring cells
  // trivially movable); push allocates, the executing side deletes.
  MpmcRing<TaskFunction*> inject_ring_{1024};
  std::atomic<std::size_t> pending_{0};
  // lint:guard-ok(sleep_mutex_ guards no members: it only orders the sleep
  // condition variable against the pending_/stop_ atomics so notifies are
  // never lost; all shared pool state is atomic or per-Worker guarded)
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> busy_nanos_{0};
};

/// Process-wide default pool sized to the hardware concurrency. Constructed
/// lazily on first use.
ThreadPool& default_pool();

}  // namespace recon::util
