// Fixed-size worker thread pool with per-worker busy-time accounting.
//
// The pool backs the "massively parallel" batch-selection step of PM-AReST
// (paper Sec. III-B) and the Table II utilization experiment: each worker
// records the wall time it spends executing tasks, so callers can compute
// utilization = busy_time / (threads * elapsed).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace recon::util {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task; returns a future for its completion.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [begin, end), distributing contiguous chunks across
  /// workers. Blocks until all iterations complete. The calling thread also
  /// participates, so a pool of size T delivers up to T+1-way parallelism for
  /// this call (matching the common "caller helps" pattern).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Total time workers have spent executing tasks, in nanoseconds, summed
  /// across workers since construction (or the last reset).
  std::uint64_t busy_nanos() const noexcept {
    return busy_nanos_.load(std::memory_order_relaxed);
  }
  void reset_busy_nanos() noexcept {
    busy_nanos_.store(0, std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> busy_nanos_{0};
};

/// Process-wide default pool sized to the hardware concurrency. Constructed
/// lazily on first use.
ThreadPool& default_pool();

}  // namespace recon::util
