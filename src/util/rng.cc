#include "util/rng.h"

#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace recon::util {

std::string Xoshiro256StarStar::save_state() const {
  std::ostringstream out;
  out << state_[0] << ' ' << state_[1] << ' ' << state_[2] << ' ' << state_[3];
  return out.str();
}

void Xoshiro256StarStar::restore_state(const std::string& blob) {
  std::istringstream in(blob);
  std::array<std::uint64_t, 4> words{};
  for (auto& w : words) {
    std::string token;
    if (!(in >> token)) {
      throw std::invalid_argument("Rng::restore_state: bad state blob");
    }
    try {
      std::size_t used = 0;
      w = std::stoull(token, &used);
      if (used != token.size() || token[0] == '-' || token[0] == '+') {
        throw std::invalid_argument("bad word");
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("Rng::restore_state: bad state blob");
    }
  }
  std::string extra;
  if (in >> extra) {
    throw std::invalid_argument("Rng::restore_state: trailing junk in blob");
  }
  set_state_words(words);
}

std::uint64_t Xoshiro256StarStar::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                      std::uint32_t count,
                                                      Rng& rng) {
  if (count > n) throw std::invalid_argument("sample_without_replacement: count > n");
  std::vector<std::uint32_t> result;
  result.reserve(count);
  if (count == 0) return result;
  // Dense path: partial Fisher–Yates over an index vector.
  if (count * 3 >= n) {
    std::vector<std::uint32_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t j =
          i + static_cast<std::uint32_t>(rng.below(n - i));
      std::swap(idx[i], idx[j]);
      result.push_back(idx[i]);
    }
    return result;
  }
  // Sparse path: rejection sampling with a hash set.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(count * 2);
  while (result.size() < count) {
    const auto v = static_cast<std::uint32_t>(rng.below(n));
    if (chosen.insert(v).second) result.push_back(v);
  }
  return result;
}

}  // namespace recon::util
