// Deterministic, seedable random number generation.
//
// All stochastic components in this library draw randomness through this
// header so that every experiment is exactly reproducible from a single
// 64-bit seed. Two generators are provided:
//
//  * SplitMix64 — a tiny stateless-style mixer, used for seed derivation and
//    counter-based ("hash a coordinate") draws.
//  * Xoshiro256StarStar — the workhorse generator, satisfying
//    std::uniform_random_bit_generator, suitable for <random> distributions.
//
// Seed-derivation convention: independent sub-streams are derived as
// `derive_seed(master, tag)` where `tag` identifies the consumer. This keeps
// parallel Monte-Carlo runs order-independent.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace recon::util {

/// SplitMix64 step: advances the state and returns a well-mixed 64-bit value.
/// (Public domain algorithm by Sebastiano Vigna.)
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a single value (useful for hashing coordinates).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Derives an independent sub-stream seed from a master seed and a tag.
constexpr std::uint64_t derive_seed(std::uint64_t master, std::uint64_t tag) noexcept {
  std::uint64_t s = master ^ (0x9e3779b97f4a7c15ULL + mix64(tag));
  return splitmix64(s);
}

/// Derives a seed from a master seed and two coordinates (e.g. node, attempt).
constexpr std::uint64_t derive_seed(std::uint64_t master, std::uint64_t a,
                                    std::uint64_t b) noexcept {
  return derive_seed(derive_seed(master, a), b);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 (never all-zero).
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Raw generator state, for checkpoint serialization. Restoring the words
  /// resumes the stream exactly where it left off.
  std::array<std::uint64_t, 4> state_words() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state_words(const std::array<std::uint64_t, 4>& words) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = words[i];
  }

  /// One-line textual snapshot of the four state words ("w0 w1 w2 w3"), the
  /// form checkpoint records embed. restore_state resumes the stream exactly
  /// where save_state left it; it throws std::invalid_argument on anything
  /// but four full decimal words.
  std::string save_state() const;
  void restore_state(const std::string& blob);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Default RNG alias used throughout the library.
using Rng = Xoshiro256StarStar;

/// Fisher–Yates shuffle of a vector.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

/// Samples `count` distinct values from [0, n) without replacement,
/// returned in unspecified order. Requires count <= n.
std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                      std::uint32_t count,
                                                      Rng& rng);

/// Counter-based uniform double in [0,1): a pure function of (seed, a, b).
/// Used for per-(node, attempt) acceptance draws so that world randomness is
/// independent of the query order.
inline double counter_uniform(std::uint64_t seed, std::uint64_t a,
                              std::uint64_t b) noexcept {
  return static_cast<double>(derive_seed(seed, a, b) >> 11) * 0x1.0p-53;
}

}  // namespace recon::util
