#include "util/thread_pool.h"

#include <algorithm>

namespace recon::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = std::max(1u, num_threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    const auto end = std::chrono::steady_clock::now();
    busy_nanos_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count()),
        std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t parties = static_cast<std::size_t>(size()) + 1;  // workers + caller
  if (grain == 0) grain = std::max<std::size_t>(1, total / (parties * 4));
  const std::size_t num_chunks = (total + grain - 1) / grain;

  if (num_chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  auto run_chunks = [&] {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }
  };

  std::vector<std::future<void>> futs;
  const std::size_t helpers = std::min<std::size_t>(size(), num_chunks - 1);
  futs.reserve(helpers);
  for (std::size_t t = 0; t < helpers; ++t) futs.push_back(submit(run_chunks));
  run_chunks();  // caller participates
  for (auto& f : futs) f.get();
}

ThreadPool& default_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace recon::util
