#include "util/thread_pool.h"

#include <algorithm>

#include "util/numa.h"

namespace recon::util {

namespace {

// Which pool (if any) the current thread is a worker of, and its index.
// Lets push_task enqueue into the submitting worker's own deque (LIFO reuse,
// no cross-thread contention) and lets try_run_one_task pop locally first.
thread_local ThreadPool* tls_pool = nullptr;
thread_local unsigned tls_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads)
    : queues_(std::max(1u, num_threads)) {
  const unsigned n = static_cast<unsigned>(queues_.size());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Workers only exit once pending_ hit zero, so the deques are empty; drain
  // defensively anyway so a future early-exit path cannot leak tasks.
  for (auto& q : queues_) {
    while (TaskFunction* leftover = q.deque.pop_bottom()) delete leftover;
  }
  // An external submit can slip a task into the injection ring between the
  // last worker's exit check and its bump of pending_. Destroy such tasks
  // unrun: their packaged_task promises break, so waiting futures observe
  // std::future_error{broken_promise} instead of hanging (the shutdown
  // contract in thread_pool.h, pinned by util_test).
  TaskFunction* injected = nullptr;
  while (inject_ring_.try_pop(injected)) delete injected;
}

void ThreadPool::push_pinned_task(unsigned worker, TaskFunction task) {
  Worker& w = queues_[worker];
  {
    MutexLock lock(w.pin_mutex);
    w.pinned.push_back(std::move(task));
  }
  w.pinned_count.fetch_add(1, std::memory_order_release);
  // Pinned work is not in pending_, so only the owner's sleep predicate sees
  // it; notify_all because notify_one may wake a different worker.
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
}

unsigned ThreadPool::pin_workers_to_numa_nodes() {
  const std::size_t n = queues_.size();
  std::vector<std::future<void>> done;
  done.reserve(n);
  auto bound = std::make_shared<std::atomic<unsigned>>(0);
  for (unsigned i = 0; i < n; ++i) {
    done.push_back(submit_pinned(i, [i, n, bound] {
      if (bind_current_thread_to_node(numa_node_of_worker(i, n))) {
        bound->fetch_add(1, std::memory_order_relaxed);
      }
    }));
  }
  for (auto& f : done) f.wait();
  return bound->load(std::memory_order_relaxed);
}

void ThreadPool::push_task(TaskFunction task) {
  if (tls_pool == this) {
    // Worker submit: lock-free push onto the bottom of its own deque. The
    // LIFO end keeps nested-join chunks cache-hot for this worker while
    // thieves peel the oldest tasks off the top.
    queues_[tls_worker_index].deque.push_bottom(
        new TaskFunction(std::move(task)));
  } else {
    // External submit: lock-free push into the bounded injection ring. A
    // full ring means workers are saturated; yielding until a slot frees is
    // backpressure, not contention. If the pool is being torn down the task
    // is destroyed unrun and its future reports broken_promise (shutdown
    // contract in thread_pool.h).
    auto* heap = new TaskFunction(std::move(task));
    while (!inject_ring_.try_push(heap)) {
      if (stop_.load(std::memory_order_acquire)) {
        delete heap;
        return;
      }
      std::this_thread::yield();
    }
  }
  pending_.fetch_add(1, std::memory_order_release);
  // The empty critical section orders the increment against a worker that is
  // mid-way through its sleep predicate, so the notify cannot be lost.
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_run_one_task(bool account_busy) {
  const std::size_t n = queues_.size();
  const bool is_worker = tls_pool == this;
  const std::size_t home = is_worker ? tls_worker_index : 0;
  const bool own_pinned =
      is_worker &&
      queues_[home].pinned_count.load(std::memory_order_acquire) > 0;
  if (pending_.load(std::memory_order_acquire) == 0 && !own_pinned) {
    return false;
  }
  TaskFunction task;
  bool from_pinned = false;
  TaskFunction* owned = nullptr;
  // Own deque bottom first (LIFO keeps caches warm), then the pinned inbox
  // (only the owner ever looks at it), then the injection queue, then steal
  // siblings' tops (FIFO takes the oldest, likely-largest unit of work).
  // Non-workers have no own deque or inbox; they drain the injection queue
  // and steal.
  if (is_worker) owned = queues_[home].deque.pop_bottom();
  if (owned == nullptr && own_pinned) {
    Worker& w = queues_[home];
    MutexLock lock(w.pin_mutex);
    if (!w.pinned.empty()) {
      task = std::move(w.pinned.front());
      w.pinned.pop_front();
      w.pinned_count.fetch_sub(1, std::memory_order_release);
      from_pinned = true;
    }
  }
  if (owned == nullptr && !task) {
    TaskFunction* injected = nullptr;
    if (inject_ring_.try_pop(injected)) {
      task = std::move(*injected);
      delete injected;
    }
  }
  for (std::size_t probe = is_worker ? 1 : 0; probe < n && owned == nullptr && !task;
       ++probe) {
    owned = queues_[(home + probe) % n].deque.steal_top();
  }
  if (owned != nullptr) {
    task = std::move(*owned);
    delete owned;
  }
  if (!task) return false;
  // Pinned tasks are tracked by their inbox counter, not pending_.
  if (!from_pinned) pending_.fetch_sub(1, std::memory_order_release);
  if (account_busy) {
    // lint:clock-ok(busy-time accounting for Table II utilization; the
    // measured wall time is reporting-only and never feeds selection)
    const auto start = std::chrono::steady_clock::now();
    task();
    // lint:clock-ok(see above; end of the same busy-time measurement)
    const auto end = std::chrono::steady_clock::now();
    busy_nanos_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count()),
        std::memory_order_relaxed);
  } else {
    task();
  }
  return true;
}

void ThreadPool::worker_loop(unsigned index) {
  tls_pool = this;
  tls_worker_index = index;
  for (;;) {
    if (try_run_one_task(/*account_busy=*/true)) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this, index] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0 ||
             queues_[index].pinned_count.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0 &&
        queues_[index].pinned_count.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace recon::util
