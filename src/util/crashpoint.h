// Deterministic crash-point injection for durability testing.
//
// Every durable-state boundary in the repo (checkpoint tmp-write/rename,
// generation-chain publish, trace write, graph binary write) is
// instrumented with a named crash point:
//
//     RECON_CRASH_POINT("ckpt.tmp-written");
//
// In normal operation a crash point only bumps a per-site hit counter.
// When *armed* — via the environment (`RECON_CRASH_AT=<site>:<n>`) or
// programmatically (`crashpoint::arm(site, n)`) — the n-th execution of
// that site kills the process with `_exit(crashpoint::kExitCode)`,
// bypassing destructors, stream flushes, and atexit handlers: exactly the
// torn state a power cut or SIGKILL would leave. The chaos sweep
// (tests/crash_recovery_test.cc, tools/chaos_sweep.sh) enumerates every
// registered site, kills there, and asserts recovery is bit-identical.
//
// Site names live in the central registry below (`all_sites()`), so tests
// can enumerate sites without first executing them; the chaos test's
// coverage check asserts every registered site actually fires, keeping the
// list honest. Sites are cheap (one mutex-guarded counter bump) and only
// sit on cold I/O paths — never in selection or scoring loops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace recon::util::crashpoint {

/// Exit status used by an armed crash point (and by nothing else in the
/// toolkit), so supervisors and tests can recognize an injected kill.
inline constexpr int kExitCode = 42;

/// Environment variable consulted on the first hit: `<site>:<n>` arms the
/// n-th execution of `site` (n >= 1). A malformed value throws
/// std::runtime_error at first use — a silently ignored typo would make a
/// chaos sweep vacuously pass.
inline constexpr const char kEnvVar[] = "RECON_CRASH_AT";

/// Every site compiled into the binary, in a fixed order. The chaos sweep
/// iterates this list; adding an instrumentation site means adding it here
/// (the coverage test fails otherwise).
const std::vector<std::string>& all_sites();

/// Records one execution of `site`; kills the process iff armed for it.
/// Called via RECON_CRASH_POINT.
void hit(const char* site);

/// Arms `site` to kill the process on its `nth` execution (counted from 1,
/// from this call). Overrides any environment arming. Throws
/// std::invalid_argument for unknown sites or nth == 0.
void arm(const std::string& site, std::uint64_t nth);

/// Disarms any armed site (environment arming stays consumed).
void disarm();

/// Executions of `site` since process start (or the last reset).
std::uint64_t hit_count(const std::string& site);

/// Zeroes all hit counters (does not disarm).
void reset_counts();

}  // namespace recon::util::crashpoint

/// Marks a durable-state boundary. `site` must be a literal registered in
/// crashpoint.cc's site table.
#define RECON_CRASH_POINT(site) ::recon::util::crashpoint::hit(site)
