// Durable filesystem primitives for the crash-resilience layer.
//
// Every durable-state writer in the repo (checkpoints, checkpoint
// generations, traces, graph binaries) publishes through the same
// tmp-write + durable_rename sequence: the tmp file is fsync'd, renamed
// into place, and the parent directory is fsync'd so the rename itself
// survives a power cut. A crash at any point leaves either the old
// complete file or the new complete file — never a torn one.
//
// The invariant linter (tools/lint_invariants.py, rule `durable-write`)
// rejects raw std::rename calls outside this file so no writer can
// regress to a non-durable publish.
#pragma once

#include <cstdint>
#include <string>

namespace recon::util {

/// fsyncs `from`, renames it onto `to`, then fsyncs `to`'s parent
/// directory. Throws std::runtime_error on any failure (the tmp file is
/// left in place for inspection). Both paths must be on one filesystem.
void durable_rename(const std::string& from, const std::string& to);

/// fsyncs an existing file by path. Throws std::runtime_error on failure.
void fsync_file(const std::string& path);

/// fsyncs the directory containing `path` so a just-renamed entry is
/// durable. Throws std::runtime_error on failure.
void fsync_parent_dir(const std::string& path);

/// The directory component of `path` ("." when there is no slash).
std::string parent_dir(const std::string& path);

/// True iff `path` exists and is a directory.
bool directory_exists(const std::string& path);

/// True iff `path` exists (any file type).
bool path_exists(const std::string& path);

/// Whole file as bytes. Throws std::runtime_error when unreadable.
std::string read_file_bytes(const std::string& path);

/// Byte-wise FNV-1a over `bytes` bytes — the footer-checksum scheme shared
/// with graph/format.cc's word-wise variant (same prime/offset basis,
/// byte-granular so it covers text files of any length).
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace recon::util
