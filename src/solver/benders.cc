#include "solver/benders.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "solver/simplex.h"

namespace recon::solver {

using graph::EdgeId;
using graph::NodeId;

namespace {

/// One concave recourse term: weight * min(1, Σ_{i∈vars} x_i [, 1 − x_cap]).
/// `cap_var` (or -1) encodes MIP constraint (14): an accepting candidate v
/// cannot be counted as a FoF of itself once selected.
struct Term {
  double weight;
  std::vector<std::size_t> vars;  ///< candidate indices
  int cap_var = -1;
};

struct TermSet {
  std::vector<Term> terms;
  std::vector<double> first_stage;  ///< per-candidate direct coefficient
  double recourse_upper = 0.0;      ///< Σ weights (θ's initial bound)
};

TermSet build_terms(const sim::Observation& obs, const std::vector<Scenario>& scenarios,
                    const std::vector<NodeId>& candidates) {
  const auto& problem = obs.problem();
  const auto& g = problem.graph;
  const auto& benefit = problem.benefit;
  const double t_inv = 1.0 / static_cast<double>(scenarios.size());

  std::unordered_map<NodeId, std::size_t> x_index;
  for (std::size_t i = 0; i < candidates.size(); ++i) x_index[candidates[i]] = i;

  TermSet ts;
  ts.first_stage.assign(candidates.size(), 0.0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const NodeId u = candidates[i];
    const double direct = benefit.bf[u] - (obs.is_fof(u) ? benefit.bfof[u] : 0.0);
    for (const auto& sc : scenarios) {
      if (sc.accept[u]) ts.first_stage[i] += direct * t_inv;
    }
  }

  for (const auto& sc : scenarios) {
    std::vector<std::uint8_t> y_seen(g.num_nodes(), 0);
    for (NodeId u : candidates) {
      if (!sc.accept[u]) continue;
      const auto nbrs = g.neighbors(u);
      const auto eids = g.incident_edges(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId v = nbrs[i];
        const EdgeId e = eids[i];
        if (!sc.edge_exists[e]) continue;
        // FoF term for v (once per scenario).
        if (!obs.is_friend(v) && !obs.is_fof(v) && !y_seen[v] &&
            benefit.bfof[v] > 0.0) {
          y_seen[v] = 1;
          Term term;
          term.weight = benefit.bfof[v] * t_inv;
          const auto vn = g.neighbors(v);
          const auto ve = g.incident_edges(v);
          for (std::size_t j = 0; j < vn.size(); ++j) {
            if (!sc.edge_exists[ve[j]]) continue;
            const auto it = x_index.find(vn[j]);
            if (it != x_index.end() && sc.accept[vn[j]]) {
              term.vars.push_back(it->second);
            }
          }
          const auto self = x_index.find(v);
          if (self != x_index.end() && sc.accept[v]) {
            term.cap_var = static_cast<int>(self->second);
          }
          ts.recourse_upper += term.weight;
          ts.terms.push_back(std::move(term));
        }
        // Edge term (dedup: visit once from the smaller accepting endpoint).
        if (obs.edge_state(e) == sim::EdgeState::kUnknown && benefit.bi[e] > 0.0) {
          const NodeId other = g.other_endpoint(e, u);
          const auto oit = x_index.find(other);
          const bool other_accepting = oit != x_index.end() && sc.accept[other];
          if (other_accepting && other < u) continue;
          Term term;
          term.weight = benefit.bi[e] * t_inv;
          term.vars.push_back(x_index.at(u));
          if (other_accepting) term.vars.push_back(oit->second);
          ts.recourse_upper += term.weight;
          ts.terms.push_back(std::move(term));
        }
      }
    }
  }
  return ts;
}

RecourseEvaluation evaluate_terms(const TermSet& ts, const std::vector<double>& x) {
  RecourseEvaluation out;
  out.supergradient.assign(x.size(), 0.0);
  for (const auto& term : ts.terms) {
    double s = 0.0;
    for (std::size_t i : term.vars) s += x[i];
    double cap = 1.0;
    if (term.cap_var >= 0) cap = 1.0 - x[static_cast<std::size_t>(term.cap_var)];
    if (s < std::min(1.0, cap)) {
      out.value += term.weight * s;
      for (std::size_t i : term.vars) out.supergradient[i] += term.weight;
    } else if (cap < 1.0 && cap <= s) {
      out.value += term.weight * cap;
      out.supergradient[static_cast<std::size_t>(term.cap_var)] -= term.weight;
    } else {
      out.value += term.weight;  // saturated at 1; zero gradient
    }
  }
  return out;
}

}  // namespace

RecourseEvaluation evaluate_recourse(const sim::Observation& obs,
                                     const std::vector<Scenario>& scenarios,
                                     const std::vector<NodeId>& candidates,
                                     const std::vector<double>& x) {
  if (x.size() != candidates.size()) {
    throw std::invalid_argument("evaluate_recourse: x size mismatch");
  }
  return evaluate_terms(build_terms(obs, scenarios, candidates), x);
}

double first_stage_value(const sim::Observation& obs,
                         const std::vector<Scenario>& scenarios,
                         const std::vector<NodeId>& candidates,
                         const std::vector<double>& x) {
  const TermSet ts = build_terms(obs, scenarios, candidates);
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) total += ts.first_stage[i] * x[i];
  return total;
}

BendersResult solve_fob_benders(const sim::Observation& obs,
                                const std::vector<Scenario>& scenarios, std::size_t k,
                                const std::vector<NodeId>& candidates,
                                const BendersOptions& options) {
  if (scenarios.empty()) throw std::invalid_argument("benders: no scenarios");
  if (candidates.size() < k) throw std::invalid_argument("benders: k > candidates");
  const TermSet ts = build_terms(obs, scenarios, candidates);
  const std::size_t n = candidates.size();
  const std::size_t theta = n;  // θ's column

  // Global cut pool: θ − gᵀx ≤ Q(x̂) − gᵀx̂ (valid in every node).
  struct Cut {
    std::vector<double> g;
    double rhs;
  };
  std::vector<Cut> cuts;
  BendersResult result;

  // Solves the L-shaped relaxation under the given 0/1 fixings; returns the
  // relaxation value and the final master x (empty on infeasible).
  auto solve_node = [&](const std::vector<int>& fixed, std::vector<double>* x_out) {
    for (std::size_t iter = 0; iter < options.max_cuts; ++iter) {
      LpProblem lp;
      lp.objective.assign(n + 1, 0.0);
      for (std::size_t i = 0; i < n; ++i) lp.objective[i] = ts.first_stage[i];
      lp.objective[theta] = 1.0;
      {
        std::vector<double> row(n + 1, 0.0);
        for (std::size_t i = 0; i < n; ++i) row[i] = 1.0;
        lp.add_row(std::move(row), RowType::kEq, static_cast<double>(k));
      }
      for (std::size_t i = 0; i < n; ++i) lp.add_upper_bound(i, 1.0);
      lp.add_upper_bound(theta, ts.recourse_upper);
      for (std::size_t i = 0; i < n; ++i) {
        if (fixed[i] == 0) {
          lp.add_upper_bound(i, 0.0);
        } else if (fixed[i] == 1) {
          std::vector<double> row(n + 1, 0.0);
          row[i] = 1.0;
          lp.add_row(std::move(row), RowType::kGe, 1.0);
        }
      }
      for (const Cut& cut : cuts) {
        std::vector<double> row(n + 1, 0.0);
        row[theta] = 1.0;
        for (std::size_t i = 0; i < n; ++i) row[i] = -cut.g[i];
        lp.add_row(std::move(row), RowType::kLe, cut.rhs);
      }
      const LpResult master = solve_lp(lp);
      if (master.status != LpStatus::kOptimal) return -1e300;
      std::vector<double> x(master.x.begin(), master.x.begin() + static_cast<long>(n));
      const double theta_hat = master.x[theta];
      const RecourseEvaluation rec = evaluate_terms(ts, x);
      if (theta_hat <= rec.value + options.tolerance) {
        if (x_out != nullptr) *x_out = x;
        double first = 0.0;
        for (std::size_t i = 0; i < n; ++i) first += ts.first_stage[i] * x[i];
        return first + rec.value;
      }
      // New optimality cut at x̂.
      Cut cut;
      cut.g = rec.supergradient;
      double gx = 0.0;
      for (std::size_t i = 0; i < n; ++i) gx += cut.g[i] * x[i];
      cut.rhs = rec.value - gx;
      cuts.push_back(std::move(cut));
      ++result.cuts_generated;
    }
    return -1e300;  // did not converge within the cut budget
  };

  // Depth-first branch and bound on x.
  double incumbent = -1.0;
  std::vector<NodeId> incumbent_batch;
  std::vector<std::vector<int>> stack{std::vector<int>(n, -1)};
  constexpr double kIntTol = 1e-6;
  while (!stack.empty()) {
    if (++result.nodes_explored > options.max_bnb_nodes) break;
    const std::vector<int> fixed = std::move(stack.back());
    stack.pop_back();
    std::size_t ones = 0;
    for (int f : fixed) ones += f == 1;
    if (ones > k) continue;
    std::vector<double> x;
    const double bound = solve_node(fixed, &x);
    if (bound <= incumbent + 1e-9 || x.empty()) continue;
    std::size_t branch = n;
    double best_frac = kIntTol;
    for (std::size_t i = 0; i < n; ++i) {
      const double f = std::fabs(x[i] - std::round(x[i]));
      if (f > best_frac) {
        best_frac = f;
        branch = i;
      }
    }
    if (branch == n) {
      std::vector<NodeId> batch;
      for (std::size_t i = 0; i < n; ++i) {
        if (x[i] > 0.5) batch.push_back(candidates[i]);
      }
      const double value = saa_objective(obs, scenarios, batch,
                                         {options.pool, options.antithetic});
      if (value > incumbent) {
        incumbent = value;
        incumbent_batch = std::move(batch);
      }
      continue;
    }
    auto down = fixed, up = fixed;
    down[branch] = 0;
    up[branch] = 1;
    stack.push_back(std::move(down));
    stack.push_back(std::move(up));
  }

  result.batch = std::move(incumbent_batch);
  std::sort(result.batch.begin(), result.batch.end());
  result.objective = incumbent < 0.0 ? 0.0 : incumbent;
  result.optimal =
      result.nodes_explored <= options.max_bnb_nodes && incumbent >= 0.0;
  return result;
}

}  // namespace recon::solver
