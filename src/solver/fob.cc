#include "solver/fob.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "solver/bnb.h"
#include "util/timer.h"

namespace recon::solver {

using graph::NodeId;

std::vector<NodeId> fob_candidates(const sim::Observation& obs, bool allow_retries) {
  const auto& g = obs.problem().graph;
  std::vector<NodeId> out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (obs.requestable(u, allow_retries)) out.push_back(u);
  }
  return out;
}

FobResult fob_greedy(const sim::Observation& obs, const std::vector<Scenario>& scenarios,
                     std::size_t k, const std::vector<NodeId>& candidates,
                     double deadline_seconds, util::ThreadPool* pool,
                     bool antithetic) {
  FobResult result;
  if (k == 0 || candidates.empty()) return result;
  const SaaEvalOptions eval{pool, antithetic};
  const auto objective = [&](const std::vector<NodeId>& batch) {
    ++result.saa_evals;
    return saa_objective(obs, scenarios, batch, eval);
  };
  util::WallTimer timer;
  const auto past_deadline = [&] {
    return deadline_seconds > 0.0 && timer.seconds() > deadline_seconds;
  };

  struct Entry {
    double gain;
    std::size_t index;  ///< into candidates
    std::size_t stamp;
    bool operator<(const Entry& o) const noexcept {
      if (gain != o.gain) return gain < o.gain;
      return index > o.index;
    }
  };

  std::vector<NodeId> batch;
  double current = 0.0;
  std::priority_queue<Entry> heap;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if ((i & 63) == 0 && past_deadline()) {
      // Deadline hit during singleton scoring: return what is scored so far
      // greedily (possibly nothing — the caller falls back another tier).
      result.timed_out = true;
      break;
    }
    const double v = objective({candidates[i]});
    if (v > 0.0) heap.push({v, i, 0});
  }
  while (batch.size() < k && !heap.empty()) {
    if (past_deadline()) {
      result.timed_out = true;
      break;
    }
    Entry top = heap.top();
    heap.pop();
    if (top.stamp != batch.size()) {
      std::vector<NodeId> with = batch;
      with.push_back(candidates[top.index]);
      top.gain = objective(with) - current;
      top.stamp = batch.size();
      if (top.gain <= 0.0) continue;
      if (!heap.empty() && top.gain < heap.top().gain) {
        heap.push(top);
        continue;
      }
    }
    batch.push_back(candidates[top.index]);
    current += top.gain;
  }
  result.batch = std::move(batch);
  result.objective = result.batch.empty() ? 0.0 : objective(result.batch);
  return result;
}

FobResult fob_exact(const sim::Observation& obs, const std::vector<Scenario>& scenarios,
                    std::size_t k, const std::vector<NodeId>& candidates,
                    const FobExactOptions& options) {
  util::WallTimer timer;
  const SaaEvalOptions eval{options.pool, options.antithetic};
  std::uint64_t evals = 0;
  FobResult greedy = fob_greedy(obs, scenarios, k, candidates,
                                options.deadline_seconds, options.pool,
                                options.antithetic);
  evals += greedy.saa_evals;
  if (greedy.timed_out) {
    greedy.exact = false;
    return greedy;  // no time left for the search; partial greedy incumbent
  }
  if (k == 0 || candidates.empty()) return greedy;
  greedy.saa_evals = 0;  // folded into the running `evals` total instead

  // Order candidates by decreasing singleton gain for pruning power, and
  // optionally cap the candidate pool.
  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(candidates.size());
  for (NodeId u : candidates) {
    if (options.deadline_seconds > 0.0 && (ranked.size() & 63) == 0 &&
        timer.seconds() > options.deadline_seconds) {
      greedy.timed_out = true;
      greedy.saa_evals = evals;
      return greedy;
    }
    ++evals;
    ranked.emplace_back(saa_objective(obs, scenarios, {u}, eval), u);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::size_t pool = ranked.size();
  if (options.candidate_cap != 0) {
    pool = std::min(pool, std::max(options.candidate_cap, k));
  }
  std::vector<NodeId> items(pool);
  std::vector<double> singleton(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    singleton[i] = ranked[i].first;
    items[i] = ranked[i].second;
  }
  if (pool < k) {
    greedy.saa_evals = evals;
    return greedy;
  }

  // Suffix top-sums of singleton gains: bound_extra[i][r] = sum of the r
  // largest singleton gains among items i..end. Because items are sorted by
  // singleton gain, that is simply the next r entries. Submodularity makes
  // singleton gains upper-bound marginals, so value(S) + Σ next r singleton
  // gains is admissible.
  std::vector<double> prefix(pool + 1, 0.0);
  for (std::size_t i = 0; i < pool; ++i) prefix[i + 1] = prefix[i] + singleton[i];

  auto to_nodes = [&](const std::vector<std::size_t>& idx) {
    std::vector<NodeId> nodes;
    nodes.reserve(idx.size());
    for (std::size_t i : idx) nodes.push_back(items[i]);
    return nodes;
  };

  BnbOracle oracle;
  oracle.num_items = pool;
  oracle.cardinality = k;
  oracle.evaluate = [&](const std::vector<std::size_t>& chosen) {
    ++evals;
    return saa_objective(obs, scenarios, to_nodes(chosen), eval);
  };
  oracle.bound = [&](const std::vector<std::size_t>& chosen, std::size_t next) {
    if (!chosen.empty()) ++evals;
    const double base =
        chosen.empty() ? 0.0 : saa_objective(obs, scenarios, to_nodes(chosen), eval);
    const std::size_t need = k - chosen.size();
    const std::size_t take = std::min(need, pool - next);
    return base + (prefix[next + take] - prefix[next]);
  };

  BnbLimits limits;
  limits.max_nodes = options.max_nodes;
  if (options.deadline_seconds > 0.0) {
    // The search gets whatever wall-clock budget the greedy incumbent and
    // candidate ranking left over.
    limits.deadline_seconds =
        std::max(1e-6, options.deadline_seconds - timer.seconds());
  }
  BnbResult bnb = branch_and_bound(oracle, limits);

  FobResult result;
  result.nodes_explored = bnb.nodes_explored;
  result.saa_evals = evals;
  result.exact = bnb.completed;
  result.timed_out = bnb.timed_out;
  if (bnb.best_value >= greedy.objective && !bnb.best_set.empty()) {
    result.batch = to_nodes(bnb.best_set);
    std::sort(result.batch.begin(), result.batch.end());
    result.objective = bnb.best_value;
  } else {
    result.batch = greedy.batch;
    result.objective = greedy.objective;
  }
  return result;
}

}  // namespace recon::solver
