// Generic best-first branch-and-bound for 0/1 selection problems.
//
// The caller supplies an oracle with an exact evaluator and an admissible
// upper bound; the engine explores fix-to-1 / fix-to-0 subtrees, pruning
// against the incumbent. Used to solve the Finding-Optimal-Batch (FOB)
// problem exactly (paper Sec. IV-B) without a commercial MIP solver.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace recon::solver {

/// Problem oracle for maximize f(S) s.t. |S| = k, S ⊆ items.
struct BnbOracle {
  /// Number of selectable items.
  std::size_t num_items = 0;
  /// Cardinality k.
  std::size_t cardinality = 0;
  /// Exact objective of a chosen set (indices into items).
  std::function<double(const std::vector<std::size_t>&)> evaluate;
  /// Admissible upper bound for any completion of `chosen` using only items
  /// with index >= next_index (items before next_index not in `chosen` are
  /// excluded). Must over-estimate every feasible completion.
  std::function<double(const std::vector<std::size_t>& chosen,
                       std::size_t next_index)>
      bound;
};

struct BnbResult {
  std::vector<std::size_t> best_set;
  double best_value = 0.0;
  std::uint64_t nodes_explored = 0;
  bool completed = true;  ///< false if a limit stopped the search
  bool timed_out = false; ///< true when the deadline (not the node cap) hit
};

struct BnbLimits {
  std::uint64_t max_nodes = 50'000'000;
  /// Wall-clock budget in seconds; 0 = unlimited. Checked every few hundred
  /// nodes, so the search may overshoot by one check interval.
  double deadline_seconds = 0.0;
};

/// Depth-first branch and bound with inclusion-first ordering (items should
/// be pre-sorted by decreasing promise for best pruning).
BnbResult branch_and_bound(const BnbOracle& oracle, const BnbLimits& limits = {});

}  // namespace recon::solver
