// Deadline-aware solver degradation: exact FOB -> SAA greedy -> lazy greedy.
//
// Per-batch selection under a wall-clock deadline. Each round the strategy
// tries the tiers in order of solution quality:
//
//   1. exact   — SAA-discretized FOB solved by branch & bound (Thm. 3
//                quality, (1 − 1/e) adaptivity factor) within
//                exact_deadline_seconds;
//   2. saa     — lazy-greedy over the same SAA objective (Lemma 2's
//                (1 − 1/e) per-batch factor) within saa_deadline_seconds;
//   3. greedy  — the plain BATCHSELECT lazy greedy over the collapsed
//                expectation tree: no scenario sampling, effectively
//                instant, and still carrying PM-AReST's
//                (1 − e^{−(1−1/e)}) guarantee (Thm. 2).
//
// A tier is accepted only if it finished inside its deadline and produced a
// non-empty batch; otherwise the next tier runs. The floor tier always
// succeeds, so a run under any deadline completes — it just degrades
// gracefully instead of stalling. The chosen tier is logged per batch
// (RECON_LOG=info) and tallied in FallbackTierCounts for ablations.
#pragma once

#include <cstdint>
#include <string>

#include "core/batch_select.h"
#include "core/planner.h"
#include "core/strategy.h"
#include "solver/fob.h"

namespace recon::solver {

struct FallbackOptions {
  int batch_size = 3;
  std::size_t scenarios_per_batch = 500;
  bool allow_retries = false;
  /// Tier-1 (exact B&B) wall-clock budget per batch, seconds. 0 skips the
  /// exact tier entirely.
  double exact_deadline_seconds = 0.05;
  /// Tier-2 (SAA greedy) budget, seconds. 0 skips straight to the floor.
  double saa_deadline_seconds = 0.05;
  std::uint64_t max_bnb_nodes = 2'000'000;
  std::size_t candidate_cap = 0;
  core::MarginalPolicy floor_policy = core::MarginalPolicy::kWeighted;
  std::uint64_t seed = 0x5AA;
  /// Shared pool for every tier: SAA scenario fan-out in the exact and
  /// greedy tiers, parallel lazy greedy in the floor tier (nullptr =
  /// sequential everywhere). Batches are bit-identical with and without a
  /// pool; only which tier wins a wall-clock deadline can differ.
  util::ThreadPool* pool = nullptr;
  /// Runtime planner (core/planner.h). Off (default): the classic
  /// try-run-degrade ladder, bit-identical to pre-planner builds. Auto:
  /// the planner *predicts* which tier fits the per-batch deadline from its
  /// calibrated cost models and dispatches it directly — a mispredicted
  /// tier still degrades through the ladder as a safety net, and the
  /// overrun demotes the planner's tier position. Fixed: pinned to one tier
  /// (exact | saa | greedy) for parity runs. Admissible strategies here:
  /// uncached floor + both SAA tiers.
  core::PlannerOptions planner = {};
};

/// How many batches each tier ended up solving.
struct FallbackTierCounts {
  std::uint64_t exact = 0;
  std::uint64_t saa_greedy = 0;
  std::uint64_t lazy_greedy = 0;
};

class FallbackStrategy : public core::Strategy {
 public:
  explicit FallbackStrategy(FallbackOptions options);

  std::string name() const override;
  void begin(const sim::Problem& problem, double budget) override;
  std::vector<graph::NodeId> next_batch(const sim::Observation& obs,
                                        double remaining_budget) override;
  std::string save_state() const override;
  void restore_state(const std::string& blob) override;

  const FallbackTierCounts& tier_counts() const noexcept { return counts_; }
  const FallbackOptions& options() const noexcept { return options_; }
  const core::ExecutionPlanner& planner() const noexcept { return planner_; }

 private:
  std::vector<graph::NodeId> planned_batch(const sim::Observation& obs,
                                           double remaining_budget,
                                           std::size_t k);
  std::vector<graph::NodeId> floor_batch(const sim::Observation& obs,
                                         double remaining_budget, std::size_t k);

  // lint:ckpt-coverage-ok(construction-time config; the harness rebuilds the
  // strategy with identical options before calling restore_state)
  FallbackOptions options_;
  int round_ = 0;
  FallbackTierCounts counts_;
  // lint:ckpt-coverage-ok(planner serializes itself; its blob is appended to
  // this strategy's state line when the planner is enabled)
  core::ExecutionPlanner planner_;
};

}  // namespace recon::solver
