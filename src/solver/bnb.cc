#include "solver/bnb.h"

#include <stdexcept>

#include "util/timer.h"

namespace recon::solver {

namespace {

constexpr double kEps = 1e-9;

/// Deadline poll interval in explored nodes — cheap enough that even a 1 ms
/// budget is respected to within a few hundred bound evaluations.
constexpr std::uint64_t kDeadlineCheckMask = 255;

struct Searcher {
  const BnbOracle& oracle;
  const BnbLimits& limits;
  BnbResult result;
  std::vector<std::size_t> chosen;
  util::WallTimer timer;

  void dfs(std::size_t next_index) {
    if (++result.nodes_explored > limits.max_nodes) {
      result.completed = false;
      return;
    }
    if (limits.deadline_seconds > 0.0 &&
        (result.nodes_explored & kDeadlineCheckMask) == 0 &&
        timer.seconds() > limits.deadline_seconds) {
      result.completed = false;
      result.timed_out = true;
      return;
    }
    if (chosen.size() == oracle.cardinality) {
      const double value = oracle.evaluate(chosen);
      if (value > result.best_value + kEps) {
        result.best_value = value;
        result.best_set = chosen;
      }
      return;
    }
    const std::size_t need = oracle.cardinality - chosen.size();
    if (next_index >= oracle.num_items ||
        oracle.num_items - next_index < need) {
      return;  // cannot complete
    }
    if (oracle.bound(chosen, next_index) <= result.best_value + kEps) {
      return;  // pruned
    }
    // Include next_index first (items pre-sorted by promise).
    chosen.push_back(next_index);
    dfs(next_index + 1);
    chosen.pop_back();
    if (!result.completed) return;
    // Exclude next_index.
    dfs(next_index + 1);
  }
};

}  // namespace

BnbResult branch_and_bound(const BnbOracle& oracle, const BnbLimits& limits) {
  if (oracle.num_items < oracle.cardinality) {
    throw std::invalid_argument("branch_and_bound: k > number of items");
  }
  if (!oracle.evaluate || !oracle.bound) {
    throw std::invalid_argument("branch_and_bound: oracle callbacks unset");
  }
  Searcher s{oracle, limits, {}, {}, {}};
  s.result.best_value = -1e300;
  s.chosen.reserve(oracle.cardinality);
  if (oracle.cardinality == 0) {
    s.result.best_value = oracle.evaluate({});
    return s.result;
  }
  s.dfs(0);
  return s.result;
}

}  // namespace recon::solver
