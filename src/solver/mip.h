// Discretized two-stage stochastic MIP for FOB (paper Sec. IV-B, (10)–(15)).
//
// Builds the scenario-expanded mixed-integer program over first-stage batch
// variables x_u and second-stage per-scenario variables, and solves it by
// LP-relaxation branch and bound on the x variables (dense simplex under the
// hood — the CPLEX substitution, DESIGN.md §2.4).
//
// One deliberate correction to the paper's formulation: the paper's
// objective Σ_u x_u (Bf(u) + Σ_v Bi(u,v)) counts an edge twice when both
// endpoints are selected and accept. We introduce per-scenario edge
// variables z_e ≤ 1 so each revealed edge is counted once, matching the
// benefit definition Eq. (1) and the SAA evaluator exactly (tests
// cross-validate the two solvers).
//
// Intended for small instances (tests, Fig. 6's US-Pol.-Books setting); the
// scenario-expanded LP grows as O(T · (n + m)).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/observation.h"
#include "solver/saa.h"
#include "solver/simplex.h"

namespace recon::solver {

struct MipResult {
  std::vector<graph::NodeId> batch;
  double objective = 0.0;   ///< SAA objective of `batch`
  double lp_bound = 0.0;    ///< root LP relaxation value
  std::uint64_t nodes_explored = 0;
  bool optimal = false;
};

struct MipOptions {
  std::uint64_t max_nodes = 100'000;
  /// Parallelize incumbent SAA evaluations across scenarios (nullptr =
  /// sequential); values are bit-identical at any thread count.
  util::ThreadPool* pool = nullptr;
};

/// Builds the scenario-expanded LP relaxation (x continuous in [0,1]).
/// Exposed for tests. Variable order: x (|candidates|), then per scenario
/// the y and z blocks (layout is an implementation detail; use the result's
/// x prefix only).
LpProblem build_fob_lp(const sim::Observation& obs,
                       const std::vector<Scenario>& scenarios, std::size_t k,
                       const std::vector<graph::NodeId>& candidates);

/// Solves the MIP by branch and bound on x.
MipResult solve_fob_mip(const sim::Observation& obs,
                        const std::vector<Scenario>& scenarios, std::size_t k,
                        const std::vector<graph::NodeId>& candidates,
                        const MipOptions& options = {});

}  // namespace recon::solver
