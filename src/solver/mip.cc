#include "solver/mip.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace recon::solver {

using graph::EdgeId;
using graph::NodeId;

namespace {

struct MipLayout {
  std::vector<NodeId> candidates;
  std::unordered_map<NodeId, std::size_t> x_index;  ///< node -> variable
  std::size_t num_vars = 0;
};

bool is_candidate(const MipLayout& layout, NodeId u) {
  return layout.x_index.count(u) > 0;
}

}  // namespace

LpProblem build_fob_lp(const sim::Observation& obs,
                       const std::vector<Scenario>& scenarios, std::size_t k,
                       const std::vector<NodeId>& candidates) {
  if (scenarios.empty()) throw std::invalid_argument("build_fob_lp: no scenarios");
  const auto& problem = obs.problem();
  const auto& g = problem.graph;
  const auto& benefit = problem.benefit;
  const double t_inv = 1.0 / static_cast<double>(scenarios.size());

  MipLayout layout;
  layout.candidates = candidates;
  for (std::size_t i = 0; i < candidates.size(); ++i) layout.x_index[candidates[i]] = i;

  // Pass 1: enumerate second-stage variables per scenario.
  //  y_{v,φ}: v not friend / not FoF, adjacent in φ to >= 1 accepting candidate.
  //  z_{e,φ}: e unknown, existing in φ, incident to >= 1 accepting candidate.
  struct SecondStage {
    std::vector<std::pair<NodeId, std::size_t>> y;  ///< (node, var index)
    std::vector<std::pair<EdgeId, std::size_t>> z;  ///< (edge, var index)
  };
  std::vector<SecondStage> stage(scenarios.size());
  std::size_t next_var = candidates.size();
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const auto& sc = scenarios[s];
    std::vector<std::uint8_t> y_seen(g.num_nodes(), 0);
    for (NodeId u : candidates) {
      if (!sc.accept[u]) continue;
      const auto nbrs = g.neighbors(u);
      const auto eids = g.incident_edges(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId v = nbrs[i];
        const EdgeId e = eids[i];
        if (!sc.edge_exists[e]) continue;
        if (!obs.is_friend(v) && !obs.is_fof(v) && !y_seen[v] && benefit.bfof[v] > 0.0) {
          y_seen[v] = 1;
          stage[s].y.emplace_back(v, next_var++);
        }
        if (obs.edge_state(e) == sim::EdgeState::kUnknown && benefit.bi[e] > 0.0) {
          // Dedup: an edge between two accepting candidates appears twice in
          // this loop; record once (keyed by smaller endpoint visit).
          const NodeId other = g.other_endpoint(e, u);
          const bool other_accepting = is_candidate(layout, other) && sc.accept[other];
          if (other_accepting && other < u) continue;
          stage[s].z.emplace_back(e, next_var++);
        }
      }
    }
  }
  layout.num_vars = next_var;

  LpProblem lp;
  lp.objective.assign(layout.num_vars, 0.0);

  // First-stage objective: direct friend benefit per accepting scenario.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const NodeId u = candidates[i];
    double coeff = 0.0;
    const double direct =
        benefit.bf[u] - (obs.is_fof(u) ? benefit.bfof[u] : 0.0);
    for (const auto& sc : scenarios) {
      if (sc.accept[u]) coeff += direct;
    }
    lp.objective[i] = coeff * t_inv;
  }

  // Cardinality: Σ x_u = k.
  {
    std::vector<double> row(layout.num_vars, 0.0);
    for (std::size_t i = 0; i < candidates.size(); ++i) row[i] = 1.0;
    lp.add_row(std::move(row), RowType::kEq, static_cast<double>(k));
  }
  // x_u <= 1.
  for (std::size_t i = 0; i < candidates.size(); ++i) lp.add_upper_bound(i, 1.0);

  // Second stage.
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const auto& sc = scenarios[s];
    for (const auto& [v, var] : stage[s].y) {
      lp.objective[var] = benefit.bfof[v] * t_inv;
      // y_v <= Σ_{accepting candidates u ~ v via existing edge} x_u
      std::vector<double> row(layout.num_vars, 0.0);
      row[var] = 1.0;
      const auto nbrs = g.neighbors(v);
      const auto eids = g.incident_edges(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId u = nbrs[i];
        if (!sc.edge_exists[eids[i]]) continue;
        if (!is_candidate(layout, u) || !sc.accept[u]) continue;
        row[layout.x_index.at(u)] = -1.0;
      }
      lp.add_row(std::move(row), RowType::kLe, 0.0);
      // y_v <= 1.
      lp.add_upper_bound(var, 1.0);
      // y_v + x_v <= 1 when v itself is an accepting candidate (14).
      if (is_candidate(layout, v) && sc.accept[v]) {
        std::vector<double> row2(layout.num_vars, 0.0);
        row2[var] = 1.0;
        row2[layout.x_index.at(v)] = 1.0;
        lp.add_row(std::move(row2), RowType::kLe, 1.0);
      }
    }
    for (const auto& [e, var] : stage[s].z) {
      lp.objective[var] = benefit.bi[e] * t_inv;
      // z_e <= Σ_{accepting candidate endpoints w} x_w ; z_e <= 1.
      std::vector<double> row(layout.num_vars, 0.0);
      row[var] = 1.0;
      for (NodeId w : {g.edge_u(e), g.edge_v(e)}) {
        if (is_candidate(layout, w) && sc.accept[w]) {
          row[layout.x_index.at(w)] = -1.0;
        }
      }
      lp.add_row(std::move(row), RowType::kLe, 0.0);
      lp.add_upper_bound(var, 1.0);
    }
  }
  return lp;
}

MipResult solve_fob_mip(const sim::Observation& obs,
                        const std::vector<Scenario>& scenarios, std::size_t k,
                        const std::vector<NodeId>& candidates,
                        const MipOptions& options) {
  if (candidates.size() < k) {
    throw std::invalid_argument("solve_fob_mip: fewer candidates than k");
  }
  const LpProblem base = build_fob_lp(obs, scenarios, k, candidates);
  MipResult result;

  struct Node {
    std::vector<int> fixed;  ///< -1 free, 0/1 fixed, indexed by candidate
  };
  Node root;
  root.fixed.assign(candidates.size(), -1);

  constexpr double kIntTol = 1e-6;
  double incumbent = -1.0;
  std::vector<NodeId> incumbent_batch;

  std::vector<Node> stack{root};
  bool first = true;
  while (!stack.empty()) {
    if (++result.nodes_explored > options.max_nodes) break;
    Node node = std::move(stack.back());
    stack.pop_back();

    LpProblem lp = base;
    std::size_t fixed_ones = 0;
    for (std::size_t i = 0; i < node.fixed.size(); ++i) {
      if (node.fixed[i] == 0) {
        lp.add_upper_bound(i, 0.0);
      } else if (node.fixed[i] == 1) {
        std::vector<double> row(lp.num_vars(), 0.0);
        row[i] = 1.0;
        lp.add_row(std::move(row), RowType::kGe, 1.0);
        ++fixed_ones;
      }
    }
    if (fixed_ones > k) continue;

    const LpResult relax = solve_lp(lp);
    if (relax.status != LpStatus::kOptimal) continue;
    if (first) {
      result.lp_bound = relax.objective;
      first = false;
    }
    if (relax.objective <= incumbent + 1e-9) continue;

    // Find the most fractional x.
    std::size_t branch_var = candidates.size();
    double best_frac = kIntTol;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double f = std::fabs(relax.x[i] - std::round(relax.x[i]));
      if (f > best_frac) {
        best_frac = f;
        branch_var = i;
      }
    }
    if (branch_var == candidates.size()) {
      // Integral: candidate incumbent. Evaluate via the SAA oracle for an
      // exact, solver-independent objective.
      std::vector<NodeId> batch;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (relax.x[i] > 0.5) batch.push_back(candidates[i]);
      }
      const double value = saa_objective(obs, scenarios, batch,
                                         {options.pool, /*antithetic_pairs=*/false});
      if (value > incumbent) {
        incumbent = value;
        incumbent_batch = std::move(batch);
      }
      continue;
    }
    Node up = node, down = node;
    up.fixed[branch_var] = 1;
    down.fixed[branch_var] = 0;
    stack.push_back(std::move(down));
    stack.push_back(std::move(up));  // explore the include-branch first
  }

  result.batch = std::move(incumbent_batch);
  std::sort(result.batch.begin(), result.batch.end());
  result.objective = incumbent < 0.0 ? 0.0 : incumbent;
  result.optimal = result.nodes_explored <= options.max_nodes && incumbent >= 0.0;
  return result;
}

}  // namespace recon::solver
