// Attack strategy that solves FOB exactly each round (paper Thm. 3):
// replacing BATCHSELECT with the (SAA-discretized) optimal batch tightens
// PM-AReST's guarantee to (1 − 1/e). This is the "Exact MIP" strategy of
// Fig. 6: fresh scenarios are sampled before every batch so that only
// realizations consistent with the current partial realization are used.
#pragma once

#include <cstdint>
#include <string>

#include "core/planner.h"
#include "core/strategy.h"
#include "solver/fob.h"

namespace recon::solver {

struct MipStrategyOptions {
  int batch_size = 3;
  std::size_t scenarios_per_batch = 1000;
  bool allow_retries = false;
  /// Exact search controls (see FobExactOptions).
  std::uint64_t max_bnb_nodes = 2'000'000;
  std::size_t candidate_cap = 0;
  /// Use greedy SAA instead of exact B&B (ablation).
  bool greedy_only = false;
  /// Solve each batch with the L-shaped (Benders) decomposition instead of
  /// the submodular B&B (same optimum, different machinery — Sec. IV-B's
  /// two-stage program solved the textbook way).
  bool use_benders = false;
  std::uint64_t seed = 0x5AA;
  /// Parallelize the per-batch SAA solves across scenarios (nullptr =
  /// sequential). Selected batches are bit-identical at any thread count.
  util::ThreadPool* pool = nullptr;
  /// Runtime planner (core/planner.h): gates exact B&B vs SAA greedy per
  /// batch from the calibrated cost models (admissible strategies: the two
  /// SAA tiers). Ignored when `use_benders` is set; with no per-batch
  /// deadline configured, auto mode always takes the exact tier (quality
  /// first), matching the legacy flag-driven behavior.
  core::PlannerOptions planner = {};
};

class MipBatchStrategy : public core::Strategy {
 public:
  explicit MipBatchStrategy(MipStrategyOptions options);

  const MipStrategyOptions& options() const noexcept { return options_; }

  std::string name() const override;
  void begin(const sim::Problem& problem, double budget) override;
  std::vector<graph::NodeId> next_batch(const sim::Observation& obs,
                                        double remaining_budget) override;
  std::string save_state() const override;
  void restore_state(const std::string& blob) override;

  /// Whether every batch so far was solved to proven optimality.
  bool all_exact() const noexcept { return all_exact_; }

  const core::ExecutionPlanner& planner() const noexcept { return planner_; }

 private:
  // lint:ckpt-coverage-ok(construction-time config; the harness rebuilds the
  // strategy with identical options before calling restore_state)
  MipStrategyOptions options_;
  int round_ = 0;
  bool all_exact_ = true;
  // lint:ckpt-coverage-ok(planner serializes itself; its blob is appended to
  // this strategy's state line when the planner is enabled)
  core::ExecutionPlanner planner_;
};

}  // namespace recon::solver
