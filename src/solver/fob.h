// Finding-Optimal-Batch (FOB) solvers over the SAA objective.
//
// FOB (paper Sec. IV-A): given a fixed partial realization ω, find the batch
// F' of size k maximizing g(F', ω). We solve the SAA form
// max_x (1/T) Σ_φ B(x, y, φ):
//
//  * fob_greedy — lazy greedy, the same (1 − 1/e) guarantee as Lemma 2;
//  * fob_exact  — branch and bound with a submodularity-derived bound
//    (value(S) + sum of the top k−|S| remaining marginals w.r.t. S), exact;
//    this is the "Exact MIP" series of Fig. 6, CPLEX replaced per
//    DESIGN.md §2.4.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/observation.h"
#include "solver/saa.h"

namespace recon::solver {

struct FobResult {
  std::vector<graph::NodeId> batch;
  double objective = 0.0;           ///< SAA objective of `batch`
  std::uint64_t nodes_explored = 0; ///< B&B nodes (0 for greedy)
  /// SAA objective evaluations performed (singleton scoring, lazy-greedy
  /// rescores, B&B oracle calls). Deterministic at every thread count for a
  /// deadline-free solve — the planner's observed-work signal.
  std::uint64_t saa_evals = 0;
  bool exact = false;               ///< true when B&B completed
  bool timed_out = false;           ///< a wall-clock deadline cut the solve short
};

/// Candidate set for FOB: requestable nodes (optionally with retries).
std::vector<graph::NodeId> fob_candidates(const sim::Observation& obs,
                                          bool allow_retries);

/// Lazy-greedy FOB over the SAA objective. With `deadline_seconds` > 0 the
/// solve stops at the deadline and returns the partial batch built so far
/// (timed_out reports whether that happened). A pool parallelizes every
/// SAA evaluation across scenarios (bit-identical objective values, so the
/// selected batch is identical too). Set `antithetic` when `scenarios` came
/// from sample_scenarios_antithetic so every (U, 1-U) pair is reduced as one
/// unit (see SaaEvalOptions::antithetic_pairs).
FobResult fob_greedy(const sim::Observation& obs, const std::vector<Scenario>& scenarios,
                     std::size_t k, const std::vector<graph::NodeId>& candidates,
                     double deadline_seconds = 0.0, util::ThreadPool* pool = nullptr,
                     bool antithetic = false);

struct FobExactOptions {
  std::uint64_t max_nodes = 2'000'000;  ///< B&B node cap
  /// Keep only the `candidate_cap` candidates with the best singleton gains
  /// (0 = no cap). A cap makes the search tractable on larger graphs but
  /// may exclude the true optimum; FobResult::exact still reports whether
  /// the search over the (possibly capped) candidate set completed.
  std::size_t candidate_cap = 0;
  /// Wall-clock budget for the B&B phase, seconds (0 = unlimited). On
  /// timeout the greedy incumbent is returned with exact=false,
  /// timed_out=true.
  double deadline_seconds = 0.0;
  /// Parallelize the SAA objective across scenarios (nullptr = sequential).
  /// Objective values — and therefore the search tree and the returned
  /// batch — are bit-identical at any thread count.
  util::ThreadPool* pool = nullptr;
  /// The scenarios are antithetic (U, 1-U) pairs; evaluate each pair as one
  /// reduction unit (SaaEvalOptions::antithetic_pairs).
  bool antithetic = false;
};

/// Exact FOB via branch and bound (falls back to the greedy incumbent if the
/// node cap is hit; `exact` reports completion).
FobResult fob_exact(const sim::Observation& obs, const std::vector<Scenario>& scenarios,
                    std::size_t k, const std::vector<graph::NodeId>& candidates,
                    const FobExactOptions& options = {});

}  // namespace recon::solver
