#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace recon::solver {

void LpProblem::add_row(std::vector<double> coeffs, RowType type, double b) {
  if (coeffs.size() != objective.size()) {
    throw std::invalid_argument("LpProblem::add_row: size mismatch");
  }
  rows.push_back(std::move(coeffs));
  row_types.push_back(type);
  rhs.push_back(b);
}

void LpProblem::add_upper_bound(std::size_t var, double b) {
  if (var >= objective.size()) {
    throw std::invalid_argument("LpProblem::add_upper_bound: bad variable");
  }
  std::vector<double> row(objective.size(), 0.0);
  row[var] = 1.0;
  add_row(std::move(row), RowType::kLe, b);
}

namespace {

/// Dense tableau: `mat` is m rows of (ncols + 1) entries, last entry = rhs.
/// `obj` is the reduced-cost row (ncols + 1 entries; last = negative of the
/// current objective value). Pivots until no entering column remains.
/// Returns false on unboundedness.
bool pivot_to_optimum(std::vector<std::vector<double>>& mat, std::vector<double>& obj,
                      std::vector<std::size_t>& basis, std::size_t ncols, double eps) {
  const std::size_t m = mat.size();
  for (;;) {
    // Bland's rule: entering column = smallest index with positive reduced
    // cost.
    std::size_t enter = ncols;
    for (std::size_t j = 0; j < ncols; ++j) {
      if (obj[j] > eps) {
        enter = j;
        break;
      }
    }
    if (enter == ncols) return true;  // optimal
    // Ratio test; ties broken by smallest basis variable (Bland).
    std::size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      const double a = mat[i][enter];
      if (a <= eps) continue;
      const double ratio = mat[i][ncols] / a;
      if (ratio < best_ratio - eps ||
          (ratio < best_ratio + eps && (leave == m || basis[i] < basis[leave]))) {
        best_ratio = ratio;
        leave = i;
      }
    }
    if (leave == m) return false;  // unbounded
    // Pivot on (leave, enter).
    const double piv = mat[leave][enter];
    for (auto& v : mat[leave]) v /= piv;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == leave) continue;
      const double f = mat[i][enter];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j <= ncols; ++j) mat[i][j] -= f * mat[leave][j];
    }
    const double fo = obj[enter];
    if (fo != 0.0) {
      for (std::size_t j = 0; j <= ncols; ++j) obj[j] -= fo * mat[leave][j];
    }
    basis[leave] = enter;
  }
}

}  // namespace

LpResult solve_lp(const LpProblem& lp, double eps) {
  const std::size_t n = lp.num_vars();
  const std::size_t m = lp.num_rows();
  if (lp.rows.size() != m || lp.row_types.size() != m || lp.rhs.size() != m) {
    throw std::invalid_argument("solve_lp: inconsistent problem");
  }

  // Column layout: [original n] [slack/surplus per inequality] [artificials].
  std::size_t num_slack = 0;
  for (RowType t : lp.row_types) {
    if (t != RowType::kEq) ++num_slack;
  }
  // Artificial needed for: kGe, kEq, and kLe rows with negative rhs (after
  // normalization all rhs are >= 0; a kLe row with rhs >= 0 starts with its
  // slack basic).
  std::vector<double> sign(m, 1.0);
  std::vector<RowType> types = lp.row_types;
  std::vector<double> b = lp.rhs;
  for (std::size_t i = 0; i < m; ++i) {
    if (b[i] < 0.0) {
      sign[i] = -1.0;
      b[i] = -b[i];
      if (types[i] == RowType::kLe) types[i] = RowType::kGe;
      else if (types[i] == RowType::kGe) types[i] = RowType::kLe;
    }
  }
  std::size_t num_art = 0;
  for (RowType t : types) {
    if (t != RowType::kLe) ++num_art;
  }
  const std::size_t ncols = n + num_slack + num_art;

  std::vector<std::vector<double>> mat(m, std::vector<double>(ncols + 1, 0.0));
  std::vector<std::size_t> basis(m, 0);
  std::size_t slack_at = n;
  std::size_t art_at = n + num_slack;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) mat[i][j] = sign[i] * lp.rows[i][j];
    mat[i][ncols] = b[i];
    switch (types[i]) {
      case RowType::kLe:
        mat[i][slack_at] = 1.0;
        basis[i] = slack_at++;
        break;
      case RowType::kGe:
        mat[i][slack_at] = -1.0;
        ++slack_at;
        mat[i][art_at] = 1.0;
        basis[i] = art_at++;
        break;
      case RowType::kEq:
        mat[i][art_at] = 1.0;
        basis[i] = art_at++;
        break;
    }
  }

  LpResult result;

  if (num_art > 0) {
    // Phase 1: maximize -(sum of artificials).
    std::vector<double> obj(ncols + 1, 0.0);
    for (std::size_t j = n + num_slack; j < ncols; ++j) obj[j] = -1.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (basis[i] >= n + num_slack) {
        // obj -= (-1) * row  => obj += row
        for (std::size_t j = 0; j <= ncols; ++j) obj[j] += mat[i][j];
      }
    }
    if (!pivot_to_optimum(mat, obj, basis, ncols, eps)) {
      // Phase 1 is bounded by construction; treat as infeasible defensively.
      result.status = LpStatus::kInfeasible;
      return result;
    }
    const double phase1 = -obj[ncols];
    if (phase1 < -eps * 10) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Drive any degenerate basic artificials out of the basis.
    for (std::size_t i = 0; i < m; ++i) {
      if (basis[i] < n + num_slack) continue;
      std::size_t enter = ncols;
      for (std::size_t j = 0; j < n + num_slack; ++j) {
        if (std::fabs(mat[i][j]) > eps) {
          enter = j;
          break;
        }
      }
      if (enter == ncols) continue;  // redundant row; harmless to keep
      const double piv = mat[i][enter];
      for (auto& v : mat[i]) v /= piv;
      for (std::size_t r = 0; r < m; ++r) {
        if (r == i) continue;
        const double f = mat[r][enter];
        if (f == 0.0) continue;
        for (std::size_t j = 0; j <= ncols; ++j) mat[r][j] -= f * mat[i][j];
      }
      basis[i] = enter;
    }
    // Forbid artificials from re-entering: zero their columns.
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = n + num_slack; j < ncols; ++j) mat[i][j] = 0.0;
    }
  }

  // Phase 2: original objective.
  std::vector<double> obj(ncols + 1, 0.0);
  for (std::size_t j = 0; j < n; ++j) obj[j] = lp.objective[j];
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t bj = basis[i];
    if (bj < n && lp.objective[bj] != 0.0) {
      const double c = lp.objective[bj];
      for (std::size_t j = 0; j <= ncols; ++j) obj[j] -= c * mat[i][j];
    }
  }
  // Artificials must stay out.
  for (std::size_t j = n + num_slack; j < ncols; ++j) obj[j] = 0.0;

  if (!pivot_to_optimum(mat, obj, basis, ncols, eps)) {
    result.status = LpStatus::kUnbounded;
    return result;
  }

  result.status = LpStatus::kOptimal;
  result.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) result.x[basis[i]] = mat[i][ncols];
  }
  double value = 0.0;
  for (std::size_t j = 0; j < n; ++j) value += lp.objective[j] * result.x[j];
  result.objective = value;
  return result;
}

}  // namespace recon::solver
