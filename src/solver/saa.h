// Sample Average Approximation for the Finding-Optimal-Batch problem
// (paper Sec. IV-B-2).
//
// A scenario φ ~ ω fixes (a) an acceptance outcome for every requestable
// node at its *current* q(u | ω), and (b) an existence outcome for every
// unobserved edge at its belief p_e. The SAA objective is the scenario
// average of the exact batch benefit B(x, y, φ), which per scenario is a
// coverage-type monotone submodular function of the selected set.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/observation.h"
#include "util/thread_pool.h"

namespace recon::sim {
class Observation;
}

namespace recon::solver {

struct Scenario {
  std::vector<std::uint8_t> accept;       ///< size n (only meaningful for candidates)
  std::vector<std::uint8_t> edge_exists;  ///< size m; observed edges use their known state
};

/// Samples `count` scenarios consistent with the observation.
std::vector<Scenario> sample_scenarios(const sim::Observation& obs, std::size_t count,
                                       std::uint64_t seed);

/// Antithetic scenario sampling: scenarios come in pairs drawn from
/// complementary uniforms (U, 1-U), so their benefit estimates are
/// negatively correlated and the SAA mean has lower variance at equal
/// sample count (classic Monte-Carlo variance reduction for two-stage
/// stochastic programs). `count` is rounded up to even.
std::vector<Scenario> sample_scenarios_antithetic(const sim::Observation& obs,
                                                  std::size_t count,
                                                  std::uint64_t seed);

/// Exact benefit of requesting `batch` under one scenario: friend benefit
/// for accepted members (with FoF-upgrade correction), Bi for each newly
/// revealed existing edge (counted once), and Bfof for each new
/// friend-of-friend (batch members that rejected remain FoF-eligible,
/// matching MIP constraint (14) which binds only accepted nodes).
double scenario_benefit(const sim::Observation& obs, const Scenario& scenario,
                        const std::vector<graph::NodeId>& batch);

/// How saa_objective / scenario_benefits evaluate the scenario set.
struct SaaEvalOptions {
  /// Fan scenario_benefit across the pool (nullptr = sequential). The mean
  /// is bit-identical at every thread count AND under any permutation of
  /// the scenario order (of whole pairs, in antithetic mode): per-unit
  /// benefits are merged order-insensitively by summing them in ascending
  /// value order — see docs/API.md, "Solver parallelism".
  util::ThreadPool* pool = nullptr;
  /// The scenarios came from sample_scenarios_antithetic: (2i, 2i+1) is a
  /// complementary (U, 1-U) pair. Each pair is reduced as ONE unit —
  /// benefit(2i) + benefit(2i+1), evaluated inside a single chunk — so no
  /// chunk boundary can ever separate a pair and the variance reduction
  /// survives parallel evaluation. Requires an even scenario count
  /// (std::invalid_argument otherwise — the guard that keeps an odd split
  /// from silently de-pairing the sample).
  bool antithetic_pairs = false;
};

/// Per-scenario benefits, out[s] = scenario_benefit(obs, scenarios[s],
/// batch); evaluated across `pool` when given. Each entry is bit-identical
/// to the sequential call (scenarios are evaluated independently).
std::vector<double> scenario_benefits(const sim::Observation& obs,
                                      const std::vector<Scenario>& scenarios,
                                      const std::vector<graph::NodeId>& batch,
                                      util::ThreadPool* pool = nullptr);

/// SAA objective: mean scenario_benefit over `scenarios`.
double saa_objective(const sim::Observation& obs, const std::vector<Scenario>& scenarios,
                     const std::vector<graph::NodeId>& batch);

/// SAA objective with explicit evaluation options (parallel scenario
/// fan-out, antithetic pair-aware reduction). The 3-argument overload is
/// equivalent to passing default options.
double saa_objective(const sim::Observation& obs, const std::vector<Scenario>& scenarios,
                     const std::vector<graph::NodeId>& batch,
                     const SaaEvalOptions& options);

/// Kleywegt et al. sample-size bound (paper Eq. 16): the number of samples T
/// guaranteeing the SAA optimum is ε-optimal with probability ≥ 1 − α,
/// T >= (δ²_max / ε²)(k ln n − ln α).
double kleywegt_sample_bound(std::size_t n, std::size_t k, double epsilon, double alpha,
                             double delta_max);

}  // namespace recon::solver
