// Dense two-phase primal simplex LP solver.
//
// Solves  maximize c^T x  subject to row constraints (<=, >=, =) and x >= 0.
// Implements the classical tableau method with Bland's anti-cycling rule.
// Built for the LP relaxations of the discretized two-stage stochastic MIP
// (paper Sec. IV-B); instances there are small and dense, so a dense tableau
// is the right tool. Replaces the paper's CPLEX dependency (DESIGN.md §2.4).
#pragma once

#include <cstdint>
#include <vector>

namespace recon::solver {

enum class RowType { kLe, kGe, kEq };

struct LpProblem {
  /// Objective coefficients (maximization), one per variable.
  std::vector<double> objective;
  /// Constraint matrix rows (each sized like objective).
  std::vector<std::vector<double>> rows;
  std::vector<RowType> row_types;
  std::vector<double> rhs;

  std::size_t num_vars() const noexcept { return objective.size(); }
  std::size_t num_rows() const noexcept { return rows.size(); }

  /// Appends a constraint. Throws std::invalid_argument on size mismatch.
  void add_row(std::vector<double> coeffs, RowType type, double b);

  /// Adds an upper bound x_i <= b as a dedicated row.
  void add_upper_bound(std::size_t var, double b);
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Solves the LP. `eps` is the feasibility/pivot tolerance.
LpResult solve_lp(const LpProblem& lp, double eps = 1e-9);

}  // namespace recon::solver
