#include "solver/strategy_mip.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "solver/benders.h"
#include "util/rng.h"

namespace recon::solver {

using graph::NodeId;

MipBatchStrategy::MipBatchStrategy(MipStrategyOptions options) : options_(options) {
  if (options_.batch_size <= 0) {
    throw std::invalid_argument("MipBatchStrategy: batch_size must be positive");
  }
  if (options_.scenarios_per_batch == 0) {
    throw std::invalid_argument("MipBatchStrategy: need at least one scenario");
  }
}

std::string MipBatchStrategy::name() const {
  if (options_.greedy_only) return "SAA-Greedy";
  return options_.use_benders ? "Exact-LShaped" : "Exact-MIP";
}

void MipBatchStrategy::begin(const sim::Problem& problem, double budget) {
  (void)problem;
  (void)budget;
  round_ = 0;
  all_exact_ = true;
}

std::string MipBatchStrategy::save_state() const {
  std::ostringstream ss;
  ss << "mip " << round_ << ' ' << (all_exact_ ? 1 : 0);
  return ss.str();
}

void MipBatchStrategy::restore_state(const std::string& blob) {
  std::istringstream ss(blob);
  std::string tag;
  int round = 0, exact = 0;
  if (!(ss >> tag >> round >> exact) || tag != "mip" || round < 0) {
    throw std::invalid_argument("MipBatchStrategy::restore_state: bad state blob");
  }
  round_ = round;
  all_exact_ = exact != 0;
}

std::vector<NodeId> MipBatchStrategy::next_batch(const sim::Observation& obs,
                                                 double remaining_budget) {
  ++round_;
  const auto k = static_cast<std::size_t>(
      std::min<double>(options_.batch_size, remaining_budget));
  if (k == 0) return {};
  std::vector<NodeId> candidates = fob_candidates(obs, options_.allow_retries);
  if (candidates.empty()) return {};
  const std::size_t batch_k = std::min(k, candidates.size());

  // Fresh scenarios consistent with the *current* partial realization
  // ("sampling must be repeated before each batch", paper Sec. V-A).
  const auto scenarios = sample_scenarios(
      obs, options_.scenarios_per_batch,
      util::derive_seed(options_.seed, static_cast<std::uint64_t>(round_)));

  FobResult fob;
  if (options_.greedy_only) {
    fob = fob_greedy(obs, scenarios, batch_k, candidates,
                     /*deadline_seconds=*/0.0, options_.pool);
  } else if (options_.use_benders) {
    // Cap the candidate pool the same way fob_exact does.
    std::vector<NodeId> pool = candidates;
    if (options_.candidate_cap != 0 && pool.size() > options_.candidate_cap) {
      std::vector<std::pair<double, NodeId>> ranked;
      ranked.reserve(pool.size());
      for (NodeId u : pool) {
        ranked.emplace_back(
            saa_objective(obs, scenarios, {u},
                          {options_.pool, /*antithetic_pairs=*/false}),
            u);
      }
      std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      pool.clear();
      const std::size_t cap = std::max(options_.candidate_cap, batch_k);
      for (std::size_t i = 0; i < cap && i < ranked.size(); ++i) {
        pool.push_back(ranked[i].second);
      }
    }
    BendersOptions bopts;
    bopts.pool = options_.pool;
    const BendersResult b = solve_fob_benders(obs, scenarios, batch_k, pool, bopts);
    fob.batch = b.batch;
    fob.objective = b.objective;
    fob.exact = b.optimal;
    all_exact_ = all_exact_ && fob.exact;
  } else {
    FobExactOptions exact;
    exact.max_nodes = options_.max_bnb_nodes;
    exact.candidate_cap = options_.candidate_cap;
    exact.pool = options_.pool;
    fob = fob_exact(obs, scenarios, batch_k, candidates, exact);
    all_exact_ = all_exact_ && fob.exact;
  }
  return fob.batch;
}

}  // namespace recon::solver
