#include "solver/strategy_mip.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "solver/benders.h"
#include "util/rng.h"
#include "util/timer.h"

namespace recon::solver {

using core::PlanDecision;
using core::PlanFeatures;
using core::PlannerMode;
using core::PlanStrategy;
using graph::NodeId;

namespace {

/// This host only runs the SAA tiers: no greedy floor, no branch tree.
core::PlannerOptions host_planner_options(const MipStrategyOptions& o) {
  core::PlannerOptions po = o.planner;
  if (o.use_benders) po.mode = PlannerMode::kOff;  // Benders is unplanned
  po.admissible[static_cast<int>(PlanStrategy::kCollapsedCached)] = false;
  po.admissible[static_cast<int>(PlanStrategy::kCollapsedUncached)] = false;
  po.admissible[static_cast<int>(PlanStrategy::kBranchTree)] = false;
  return po;
}

}  // namespace

MipBatchStrategy::MipBatchStrategy(MipStrategyOptions options)
    : options_(options), planner_(host_planner_options(options)) {
  if (options_.batch_size <= 0) {
    throw std::invalid_argument("MipBatchStrategy: batch_size must be positive");
  }
  if (options_.scenarios_per_batch == 0) {
    throw std::invalid_argument("MipBatchStrategy: need at least one scenario");
  }
  if (planner_.options().mode == PlannerMode::kFixed &&
      !planner_.options()
           .admissible[static_cast<int>(planner_.options().fixed_strategy)]) {
    throw std::invalid_argument(
        "MipBatchStrategy: fixed planner strategy must be exact or saa");
  }
}

std::string MipBatchStrategy::name() const {
  if (options_.greedy_only) return "SAA-Greedy";
  return options_.use_benders ? "Exact-LShaped" : "Exact-MIP";
}

void MipBatchStrategy::begin(const sim::Problem& problem, double budget) {
  (void)problem;
  (void)budget;
  round_ = 0;
  all_exact_ = true;
  planner_.reset();
}

std::string MipBatchStrategy::save_state() const {
  std::ostringstream ss;
  ss << "mip " << round_ << ' ' << (all_exact_ ? 1 : 0);
  if (planner_.enabled()) ss << ' ' << planner_.save_state();
  return ss.str();
}

void MipBatchStrategy::restore_state(const std::string& blob) {
  std::istringstream ss(blob);
  std::string tag;
  int round = 0, exact = 0;
  if (!(ss >> tag >> round >> exact) || tag != "mip" || round < 0) {
    throw std::invalid_argument("MipBatchStrategy::restore_state: bad state blob");
  }
  if (planner_.enabled()) {
    std::string rest;
    std::getline(ss, rest);
    const std::size_t start = rest.find_first_not_of(' ');
    if (start == std::string::npos) {
      throw std::invalid_argument(
          "MipBatchStrategy::restore_state: planner enabled but state blob "
          "carries no planner line");
    }
    planner_.restore_state(rest.substr(start));
  }
  round_ = round;
  all_exact_ = exact != 0;
}

std::vector<NodeId> MipBatchStrategy::next_batch(const sim::Observation& obs,
                                                 double remaining_budget) {
  ++round_;
  const auto k = static_cast<std::size_t>(
      std::min<double>(options_.batch_size, remaining_budget));
  if (k == 0) return {};
  std::vector<NodeId> candidates = fob_candidates(obs, options_.allow_retries);
  if (candidates.empty()) return {};
  const std::size_t batch_k = std::min(k, candidates.size());

  // Fresh scenarios consistent with the *current* partial realization
  // ("sampling must be repeated before each batch", paper Sec. V-A);
  // antithetic pairs halve the estimator variance at equal sample count.
  const auto scenarios = sample_scenarios_antithetic(
      obs, options_.scenarios_per_batch,
      util::derive_seed(options_.seed, static_cast<std::uint64_t>(round_)));

  // The planner, when enabled, gates exact-vs-greedy per batch; the legacy
  // greedy_only flag keeps pinning the tier when the planner is off.
  bool run_greedy = options_.greedy_only;
  PlanDecision decision;
  PlanFeatures features;
  if (planner_.enabled() && !options_.use_benders) {
    const auto& g = obs.problem().graph;
    features.batch_size = static_cast<int>(batch_k);
    features.frontier_size = candidates.size();
    for (const NodeId u : candidates) {
      const auto deg = static_cast<double>(g.degree(u));
      features.mean_degree += deg;
      features.max_degree = std::max(features.max_degree, deg);
    }
    features.mean_degree /= static_cast<double>(candidates.size());
    features.scenario_count = options_.scenarios_per_batch;
    features.remaining_budget = remaining_budget;
    decision = planner_.plan(features);
    run_greedy = decision.strategy == PlanStrategy::kSaaGreedy;
  }

  const util::WallTimer timer;
  FobResult fob;
  if (planner_.enabled() ? run_greedy : options_.greedy_only) {
    fob = fob_greedy(obs, scenarios, batch_k, candidates,
                     /*deadline_seconds=*/0.0, options_.pool,
                     /*antithetic=*/true);
  } else if (options_.use_benders) {
    // Cap the candidate pool the same way fob_exact does.
    std::vector<NodeId> pool = candidates;
    if (options_.candidate_cap != 0 && pool.size() > options_.candidate_cap) {
      std::vector<std::pair<double, NodeId>> ranked;
      ranked.reserve(pool.size());
      for (NodeId u : pool) {
        ranked.emplace_back(
            saa_objective(obs, scenarios, {u},
                          {options_.pool, /*antithetic_pairs=*/true}),
            u);
      }
      std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      pool.clear();
      const std::size_t cap = std::max(options_.candidate_cap, batch_k);
      for (std::size_t i = 0; i < cap && i < ranked.size(); ++i) {
        pool.push_back(ranked[i].second);
      }
    }
    BendersOptions bopts;
    bopts.pool = options_.pool;
    bopts.antithetic = true;
    const BendersResult b = solve_fob_benders(obs, scenarios, batch_k, pool, bopts);
    fob.batch = b.batch;
    fob.objective = b.objective;
    fob.exact = b.optimal;
    all_exact_ = all_exact_ && fob.exact;
  } else {
    FobExactOptions exact;
    exact.max_nodes = options_.max_bnb_nodes;
    exact.candidate_cap = options_.candidate_cap;
    exact.pool = options_.pool;
    exact.antithetic = true;
    fob = fob_exact(obs, scenarios, batch_k, candidates, exact);
    all_exact_ = all_exact_ && fob.exact;
  }
  if (planner_.enabled() && !options_.use_benders) {
    const double work = static_cast<double>(fob.saa_evals) *
                        static_cast<double>(scenarios.size()) *
                        (1.0 + features.mean_degree);
    planner_.observe(decision, work, timer.nanos(), /*overran_deadline=*/false);
  }
  return fob.batch;
}

}  // namespace recon::solver
