#include "solver/fallback.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/log.h"
#include "util/rng.h"
#include "util/timer.h"

namespace recon::solver {

using core::ExecutionPlanner;
using core::PlanDecision;
using core::PlanFeatures;
using core::PlannerMode;
using core::PlanStrategy;
using graph::NodeId;

namespace {

/// The tiers this host can execute: the uncached greedy floor plus both SAA
/// solver tiers (no persistent cache, no branch tree).
core::PlannerOptions host_planner_options(core::PlannerOptions po) {
  po.admissible[static_cast<int>(PlanStrategy::kCollapsedCached)] = false;
  po.admissible[static_cast<int>(PlanStrategy::kBranchTree)] = false;
  return po;
}

}  // namespace

FallbackStrategy::FallbackStrategy(FallbackOptions options)
    : options_(options), planner_(host_planner_options(options.planner)) {
  if (options_.batch_size <= 0) {
    throw std::invalid_argument("FallbackStrategy: batch_size must be positive");
  }
  if (options_.scenarios_per_batch == 0) {
    throw std::invalid_argument("FallbackStrategy: need at least one scenario");
  }
  if (options_.exact_deadline_seconds < 0.0 || options_.saa_deadline_seconds < 0.0) {
    throw std::invalid_argument("FallbackStrategy: deadlines must be non-negative");
  }
  if (planner_.options().mode == PlannerMode::kFixed &&
      !planner_.options()
           .admissible[static_cast<int>(planner_.options().fixed_strategy)]) {
    throw std::invalid_argument(
        "FallbackStrategy: fixed planner strategy must be exact, saa, or greedy");
  }
}

std::string FallbackStrategy::name() const {
  return "Fallback(k=" + std::to_string(options_.batch_size) + ")";
}

void FallbackStrategy::begin(const sim::Problem& problem, double budget) {
  (void)problem;
  (void)budget;
  round_ = 0;
  counts_ = {};
  planner_.reset();
}

std::string FallbackStrategy::save_state() const {
  std::ostringstream ss;
  ss << "fallback " << round_ << ' ' << counts_.exact << ' ' << counts_.saa_greedy
     << ' ' << counts_.lazy_greedy;
  if (planner_.enabled()) ss << ' ' << planner_.save_state();
  return ss.str();
}

void FallbackStrategy::restore_state(const std::string& blob) {
  std::istringstream ss(blob);
  std::string tag;
  int round = 0;
  FallbackTierCounts c;
  if (!(ss >> tag >> round >> c.exact >> c.saa_greedy >> c.lazy_greedy) ||
      tag != "fallback" || round < 0) {
    throw std::invalid_argument("FallbackStrategy::restore_state: bad state blob");
  }
  if (planner_.enabled()) {
    std::string rest;
    std::getline(ss, rest);
    const std::size_t start = rest.find_first_not_of(' ');
    if (start == std::string::npos) {
      throw std::invalid_argument(
          "FallbackStrategy::restore_state: planner enabled but state blob "
          "carries no planner line");
    }
    planner_.restore_state(rest.substr(start));
  }
  round_ = round;
  counts_ = c;
}

std::vector<NodeId> FallbackStrategy::floor_batch(const sim::Observation& obs,
                                                  double remaining_budget,
                                                  std::size_t k) {
  // Floor tier: scenario-free lazy greedy over the collapsed expectation
  // tree — effectively instant and always available.
  core::BatchSelectOptions bs;
  bs.batch_size = static_cast<int>(k);
  bs.policy = options_.floor_policy;
  bs.allow_retries = options_.allow_retries;
  bs.max_attempts_per_node = 0;  // match fob_candidates (no cap)
  bs.remaining_budget = remaining_budget;
  bs.pool = options_.pool;
  if (planner_.enabled()) bs.calibration = &planner_.shard_calibration();
  std::vector<NodeId> batch = core::batch_select(obs, bs);
  if (!batch.empty()) {
    ++counts_.lazy_greedy;
    RECON_LOG(kInfo) << "fallback: batch " << round_ << " tier=lazy-greedy";
  }
  return batch;
}

std::vector<NodeId> FallbackStrategy::planned_batch(const sim::Observation& obs,
                                                    double remaining_budget,
                                                    std::size_t k) {
  const auto& g = obs.problem().graph;
  const std::vector<NodeId> candidates =
      fob_candidates(obs, options_.allow_retries);

  PlanFeatures f;
  f.batch_size = static_cast<int>(std::min(k, candidates.size()));
  f.frontier_size = candidates.size();
  for (const NodeId u : candidates) {
    const auto deg = static_cast<double>(g.degree(u));
    f.mean_degree += deg;
    f.max_degree = std::max(f.max_degree, deg);
  }
  if (!candidates.empty()) {
    f.mean_degree /= static_cast<double>(candidates.size());
    f.scenario_count = options_.scenarios_per_batch;
  }
  f.deadline_seconds =
      options_.exact_deadline_seconds + options_.saa_deadline_seconds;
  f.remaining_budget = remaining_budget;

  const PlanDecision decision = planner_.plan(f);
  RECON_LOG(kInfo) << "fallback: batch " << round_ << " plan="
                   << core::plan_strategy_name(decision.strategy)
                   << " predicted_work=" << decision.predicted_work;

  const double row = 1.0 + f.mean_degree;
  const double scenario_weight = static_cast<double>(f.scenario_count);
  const auto observe_tier = [&](PlanStrategy s, double actual_work,
                                std::uint64_t nanos, bool overran) {
    PlanDecision d = decision;
    if (s != decision.strategy) {
      // Safety-net degradation ran a tier the planner did not pick: observe
      // it against its own cost model so the misprediction still teaches.
      d.strategy = s;
      d.estimated_work = planner_.estimate_work(s, f);
    }
    planner_.observe(d, actual_work, nanos, overran);
  };

  PlanStrategy tier = decision.strategy;
  std::vector<Scenario> scenarios;
  if (tier != PlanStrategy::kCollapsedUncached && !candidates.empty()) {
    scenarios = sample_scenarios_antithetic(
        obs, options_.scenarios_per_batch,
        util::derive_seed(options_.seed, static_cast<std::uint64_t>(round_)));
  }
  const std::size_t batch_k = std::min(k, candidates.size());

  if (tier == PlanStrategy::kSaaExact && !candidates.empty()) {
    FobExactOptions exact;
    exact.max_nodes = options_.max_bnb_nodes;
    exact.candidate_cap = options_.candidate_cap;
    exact.deadline_seconds = options_.exact_deadline_seconds;
    exact.pool = options_.pool;
    exact.antithetic = true;
    const util::WallTimer timer;
    const FobResult r = fob_exact(obs, scenarios, batch_k, candidates, exact);
    const double work =
        static_cast<double>(r.saa_evals) * scenario_weight * row;
    const bool ok = r.exact && !r.batch.empty();
    observe_tier(PlanStrategy::kSaaExact, work, timer.nanos(), !ok);
    if (ok) {
      ++counts_.exact;
      RECON_LOG(kInfo) << "fallback: batch " << round_ << " tier=exact ("
                       << r.nodes_explored << " bnb nodes)";
      return r.batch;
    }
    RECON_LOG(kInfo) << "fallback: batch " << round_
                     << " planned exact tier missed its deadline; degrading";
    tier = PlanStrategy::kSaaGreedy;
  }
  if (tier == PlanStrategy::kSaaGreedy && !candidates.empty()) {
    const util::WallTimer timer;
    const FobResult r =
        fob_greedy(obs, scenarios, batch_k, candidates,
                   options_.saa_deadline_seconds, options_.pool,
                   /*antithetic=*/true);
    const double work =
        static_cast<double>(r.saa_evals) * scenario_weight * row;
    const bool ok = !r.timed_out && !r.batch.empty();
    observe_tier(PlanStrategy::kSaaGreedy, work, timer.nanos(), !ok);
    if (ok) {
      ++counts_.saa_greedy;
      RECON_LOG(kInfo) << "fallback: batch " << round_ << " tier=saa-greedy";
      return r.batch;
    }
    RECON_LOG(kInfo) << "fallback: batch " << round_
                     << " planned saa tier missed its deadline; degrading";
  }

  const util::WallTimer timer;
  std::vector<NodeId> batch = floor_batch(obs, remaining_budget, k);
  observe_tier(PlanStrategy::kCollapsedUncached,
               static_cast<double>(f.frontier_size) * row, timer.nanos(),
               /*overran=*/false);
  return batch;
}

std::vector<NodeId> FallbackStrategy::next_batch(const sim::Observation& obs,
                                                 double remaining_budget) {
  ++round_;
  const auto k = static_cast<std::size_t>(
      std::min<double>(options_.batch_size, remaining_budget));
  if (k == 0) return {};

  if (planner_.enabled()) return planned_batch(obs, remaining_budget, k);

  const bool saa_tiers =
      options_.exact_deadline_seconds > 0.0 || options_.saa_deadline_seconds > 0.0;
  if (saa_tiers) {
    const std::vector<NodeId> candidates =
        fob_candidates(obs, options_.allow_retries);
    if (!candidates.empty()) {
      const std::size_t batch_k = std::min(k, candidates.size());
      const auto scenarios = sample_scenarios_antithetic(
          obs, options_.scenarios_per_batch,
          util::derive_seed(options_.seed, static_cast<std::uint64_t>(round_)));

      if (options_.exact_deadline_seconds > 0.0) {
        FobExactOptions exact;
        exact.max_nodes = options_.max_bnb_nodes;
        exact.candidate_cap = options_.candidate_cap;
        exact.deadline_seconds = options_.exact_deadline_seconds;
        exact.pool = options_.pool;
        exact.antithetic = true;
        const FobResult r = fob_exact(obs, scenarios, batch_k, candidates, exact);
        if (r.exact && !r.batch.empty()) {
          ++counts_.exact;
          RECON_LOG(kInfo) << "fallback: batch " << round_ << " tier=exact ("
                           << r.nodes_explored << " bnb nodes)";
          return r.batch;
        }
        RECON_LOG(kInfo) << "fallback: batch " << round_
                         << " exact tier missed its deadline; degrading";
      }
      if (options_.saa_deadline_seconds > 0.0) {
        const FobResult r = fob_greedy(obs, scenarios, batch_k, candidates,
                                       options_.saa_deadline_seconds,
                                       options_.pool, /*antithetic=*/true);
        if (!r.timed_out && !r.batch.empty()) {
          ++counts_.saa_greedy;
          RECON_LOG(kInfo) << "fallback: batch " << round_ << " tier=saa-greedy";
          return r.batch;
        }
        RECON_LOG(kInfo) << "fallback: batch " << round_
                         << " saa tier missed its deadline; degrading";
      }
    }
  }

  return floor_batch(obs, remaining_budget, k);
}

}  // namespace recon::solver
