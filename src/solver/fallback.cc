#include "solver/fallback.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/log.h"
#include "util/rng.h"

namespace recon::solver {

using graph::NodeId;

FallbackStrategy::FallbackStrategy(FallbackOptions options) : options_(options) {
  if (options_.batch_size <= 0) {
    throw std::invalid_argument("FallbackStrategy: batch_size must be positive");
  }
  if (options_.scenarios_per_batch == 0) {
    throw std::invalid_argument("FallbackStrategy: need at least one scenario");
  }
  if (options_.exact_deadline_seconds < 0.0 || options_.saa_deadline_seconds < 0.0) {
    throw std::invalid_argument("FallbackStrategy: deadlines must be non-negative");
  }
}

std::string FallbackStrategy::name() const {
  return "Fallback(k=" + std::to_string(options_.batch_size) + ")";
}

void FallbackStrategy::begin(const sim::Problem& problem, double budget) {
  (void)problem;
  (void)budget;
  round_ = 0;
  counts_ = {};
}

std::string FallbackStrategy::save_state() const {
  std::ostringstream ss;
  ss << "fallback " << round_ << ' ' << counts_.exact << ' ' << counts_.saa_greedy
     << ' ' << counts_.lazy_greedy;
  return ss.str();
}

void FallbackStrategy::restore_state(const std::string& blob) {
  std::istringstream ss(blob);
  std::string tag;
  int round = 0;
  FallbackTierCounts c;
  if (!(ss >> tag >> round >> c.exact >> c.saa_greedy >> c.lazy_greedy) ||
      tag != "fallback" || round < 0) {
    throw std::invalid_argument("FallbackStrategy::restore_state: bad state blob");
  }
  round_ = round;
  counts_ = c;
}

std::vector<NodeId> FallbackStrategy::next_batch(const sim::Observation& obs,
                                                 double remaining_budget) {
  ++round_;
  const auto k = static_cast<std::size_t>(
      std::min<double>(options_.batch_size, remaining_budget));
  if (k == 0) return {};

  const bool saa_tiers =
      options_.exact_deadline_seconds > 0.0 || options_.saa_deadline_seconds > 0.0;
  if (saa_tiers) {
    const std::vector<NodeId> candidates =
        fob_candidates(obs, options_.allow_retries);
    if (!candidates.empty()) {
      const std::size_t batch_k = std::min(k, candidates.size());
      const auto scenarios = sample_scenarios(
          obs, options_.scenarios_per_batch,
          util::derive_seed(options_.seed, static_cast<std::uint64_t>(round_)));

      if (options_.exact_deadline_seconds > 0.0) {
        FobExactOptions exact;
        exact.max_nodes = options_.max_bnb_nodes;
        exact.candidate_cap = options_.candidate_cap;
        exact.deadline_seconds = options_.exact_deadline_seconds;
        exact.pool = options_.pool;
        const FobResult r = fob_exact(obs, scenarios, batch_k, candidates, exact);
        if (r.exact && !r.batch.empty()) {
          ++counts_.exact;
          RECON_LOG(kInfo) << "fallback: batch " << round_ << " tier=exact ("
                           << r.nodes_explored << " bnb nodes)";
          return r.batch;
        }
        RECON_LOG(kInfo) << "fallback: batch " << round_
                         << " exact tier missed its deadline; degrading";
      }
      if (options_.saa_deadline_seconds > 0.0) {
        const FobResult r = fob_greedy(obs, scenarios, batch_k, candidates,
                                       options_.saa_deadline_seconds, options_.pool);
        if (!r.timed_out && !r.batch.empty()) {
          ++counts_.saa_greedy;
          RECON_LOG(kInfo) << "fallback: batch " << round_ << " tier=saa-greedy";
          return r.batch;
        }
        RECON_LOG(kInfo) << "fallback: batch " << round_
                         << " saa tier missed its deadline; degrading";
      }
    }
  }

  // Floor tier: scenario-free lazy greedy over the collapsed expectation
  // tree — effectively instant and always available.
  core::BatchSelectOptions bs;
  bs.batch_size = static_cast<int>(k);
  bs.policy = options_.floor_policy;
  bs.allow_retries = options_.allow_retries;
  bs.max_attempts_per_node = 0;  // match fob_candidates (no cap)
  bs.remaining_budget = remaining_budget;
  bs.pool = options_.pool;
  std::vector<NodeId> batch = core::batch_select(obs, bs);
  if (!batch.empty()) {
    ++counts_.lazy_greedy;
    RECON_LOG(kInfo) << "fallback: batch " << round_ << " tier=lazy-greedy";
  }
  return batch;
}

}  // namespace recon::solver
