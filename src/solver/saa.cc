#include "solver/saa.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.h"

namespace recon::solver {

using graph::EdgeId;
using graph::NodeId;

std::vector<Scenario> sample_scenarios(const sim::Observation& obs, std::size_t count,
                                       std::uint64_t seed) {
  const auto& problem = obs.problem();
  const auto& g = problem.graph;
  std::vector<Scenario> out(count);
  for (std::size_t s = 0; s < count; ++s) {
    util::Rng rng(util::derive_seed(seed, s));
    auto& sc = out[s];
    sc.accept.resize(g.num_nodes());
    sc.edge_exists.resize(g.num_edges());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      sc.accept[u] = !obs.is_friend(u) && rng.bernoulli(obs.acceptance_prob(u)) ? 1 : 0;
    }
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      switch (obs.edge_state(e)) {
        case sim::EdgeState::kPresent:
          sc.edge_exists[e] = 1;
          break;
        case sim::EdgeState::kAbsent:
          sc.edge_exists[e] = 0;
          break;
        case sim::EdgeState::kUnknown:
          sc.edge_exists[e] = rng.bernoulli(g.edge_prob(e)) ? 1 : 0;
          break;
      }
    }
  }
  return out;
}

std::vector<Scenario> sample_scenarios_antithetic(const sim::Observation& obs,
                                                  std::size_t count,
                                                  std::uint64_t seed) {
  const auto& problem = obs.problem();
  const auto& g = problem.graph;
  if (count % 2 == 1) ++count;
  std::vector<Scenario> out(count);
  for (std::size_t pair = 0; pair < count / 2; ++pair) {
    util::Rng rng(util::derive_seed(seed, pair));
    auto& a = out[2 * pair];
    auto& b = out[2 * pair + 1];
    a.accept.resize(g.num_nodes());
    b.accept.resize(g.num_nodes());
    a.edge_exists.resize(g.num_edges());
    b.edge_exists.resize(g.num_edges());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (obs.is_friend(u)) {
        a.accept[u] = b.accept[u] = 0;
        continue;
      }
      const double q = obs.acceptance_prob(u);
      const double r = rng.uniform();
      a.accept[u] = r < q ? 1 : 0;
      b.accept[u] = (1.0 - r) < q ? 1 : 0;
    }
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      switch (obs.edge_state(e)) {
        case sim::EdgeState::kPresent:
          a.edge_exists[e] = b.edge_exists[e] = 1;
          break;
        case sim::EdgeState::kAbsent:
          a.edge_exists[e] = b.edge_exists[e] = 0;
          break;
        case sim::EdgeState::kUnknown: {
          const double p = g.edge_prob(e);
          const double r = rng.uniform();
          a.edge_exists[e] = r < p ? 1 : 0;
          b.edge_exists[e] = (1.0 - r) < p ? 1 : 0;
          break;
        }
      }
    }
  }
  return out;
}

double scenario_benefit(const sim::Observation& obs, const Scenario& scenario,
                        const std::vector<NodeId>& batch) {
  const auto& problem = obs.problem();
  const auto& g = problem.graph;
  const auto& benefit = problem.benefit;

  double total = 0.0;
  // Track within-evaluation state to count each edge / FoF once.
  std::unordered_set<EdgeId> counted_edges;
  std::unordered_set<NodeId> counted_fofs;
  std::unordered_set<NodeId> accepted;
  std::vector<NodeId> accepted_order;
  for (NodeId u : batch) {
    if (obs.is_friend(u)) {
      throw std::invalid_argument("scenario_benefit: batch contains a friend");
    }
    if (scenario.accept[u] && accepted.insert(u).second) {
      accepted_order.push_back(u);
    }
  }
  // Accumulate in sorted node order, never hash order: the float sum below
  // is order-sensitive in the last ulp, and iterating the unordered_set
  // would leak the hash seed / insertion history into the objective.
  std::sort(accepted_order.begin(), accepted_order.end());

  for (NodeId u : accepted_order) {
    total += benefit.bf[u];
    if (obs.is_fof(u)) total -= benefit.bfof[u];  // upgrade
    const auto nbrs = g.neighbors(u);
    const auto eids = g.incident_edges(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      const EdgeId e = eids[i];
      if (!scenario.edge_exists[e]) continue;
      // Edge benefit: only for edges not already revealed-present, once.
      if (obs.edge_state(e) == sim::EdgeState::kUnknown &&
          counted_edges.insert(e).second) {
        total += benefit.bi[e];
      }
      // FoF benefit: v newly adjacent to a friend; accepted batch members
      // become friends instead (a rejected batch member stays eligible).
      if (!obs.is_friend(v) && !obs.is_fof(v) && !accepted.count(v) &&
          counted_fofs.insert(v).second) {
        total += benefit.bfof[v];
      }
    }
  }
  // An accepted batch member that was counted as a FoF inside this very
  // evaluation cannot happen: accepted nodes are excluded above. But an
  // accepted node u adjacent to another accepted node u' should not also
  // collect Bfof — handled the same way.
  return total;
}

namespace {

/// Canonical order-insensitive reduction: sum in ascending value order.
/// Every evaluation of the same scenario set produces the same multiset of
/// unit benefits (each unit is computed independently, bit-identically), so
/// sorting before summing makes the total exactly invariant to how the
/// units were produced — thread count, chunk-to-worker assignment, or a
/// permutation of the scenario order. Ascending order is also the
/// numerically kind one (small magnitudes first).
double sorted_sum(std::vector<double>& units) {
  std::sort(units.begin(), units.end());
  double total = 0.0;
  for (const double v : units) total += v;
  return total;
}

}  // namespace

std::vector<double> scenario_benefits(const sim::Observation& obs,
                                      const std::vector<Scenario>& scenarios,
                                      const std::vector<NodeId>& batch,
                                      util::ThreadPool* pool) {
  std::vector<double> out(scenarios.size());
  auto eval = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      out[s] = scenario_benefit(obs, scenarios[s], batch);
    }
  };
  if (pool != nullptr && scenarios.size() > 1) {
    pool->parallel_for(0, scenarios.size(), eval);
  } else {
    eval(0, scenarios.size());
  }
  return out;
}

double saa_objective(const sim::Observation& obs, const std::vector<Scenario>& scenarios,
                     const std::vector<NodeId>& batch) {
  return saa_objective(obs, scenarios, batch, SaaEvalOptions{});
}

double saa_objective(const sim::Observation& obs, const std::vector<Scenario>& scenarios,
                     const std::vector<NodeId>& batch, const SaaEvalOptions& options) {
  if (scenarios.empty()) throw std::invalid_argument("saa_objective: no scenarios");
  if (options.antithetic_pairs && scenarios.size() % 2 != 0) {
    // Guard for the antithetic-pair chunking hazard: an odd count means the
    // trailing scenario has no (U, 1-U) complement, so "pairs as units"
    // would silently mis-pair every unit after a split. Refuse loudly.
    throw std::invalid_argument(
        "saa_objective: antithetic evaluation needs an even scenario count "
        "(a (U,1-U) pair must never be split)");
  }
  // The reduction unit is one scenario, or one whole antithetic pair: the
  // pair's two members are evaluated back-to-back inside the same chunk
  // body, so no chunk boundary — whatever the grain — can separate them.
  const std::size_t stride = options.antithetic_pairs ? 2 : 1;
  const std::size_t num_units = scenarios.size() / stride;
  auto unit_value = [&](std::size_t i) {
    double v = scenario_benefit(obs, scenarios[i * stride], batch);
    if (stride == 2) v += scenario_benefit(obs, scenarios[i * stride + 1], batch);
    return v;
  };

  std::vector<double> units;
  if (options.pool != nullptr && num_units > 1) {
    // parallel_reduce hands chunks to participants dynamically, so which
    // partial absorbed which unit is nondeterministic; each partial
    // therefore collects raw unit values, and the merge (concatenate, then
    // sorted_sum) is insensitive to that assignment.
    auto partials = options.pool->parallel_reduce<std::vector<double>>(
        0, num_units, {}, [&](std::vector<double>& acc, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) acc.push_back(unit_value(i));
        });
    units.reserve(num_units);
    for (auto& part : partials) {
      units.insert(units.end(), part.begin(), part.end());
    }
  } else {
    units.reserve(num_units);
    for (std::size_t i = 0; i < num_units; ++i) units.push_back(unit_value(i));
  }
  return sorted_sum(units) / static_cast<double>(scenarios.size());
}

double kleywegt_sample_bound(std::size_t n, std::size_t k, double epsilon, double alpha,
                             double delta_max) {
  if (epsilon <= 0.0 || alpha <= 0.0 || alpha >= 1.0) {
    throw std::invalid_argument("kleywegt_sample_bound: bad epsilon/alpha");
  }
  const double d2 = delta_max * delta_max;
  return d2 / (epsilon * epsilon) *
         (static_cast<double>(k) * std::log(static_cast<double>(n)) - std::log(alpha));
}

}  // namespace recon::solver
