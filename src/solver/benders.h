// L-shaped (Benders) decomposition for the two-stage stochastic FOB problem.
//
// The paper discretizes the two-stage program into "a single (very large)
// linear programming problem" (Sec. IV-B-1) — the scenario-expanded MIP in
// solver/mip.h, whose LP grows as O(T · (n + m)). The classical scalable
// alternative is the L-shaped method: keep only the first-stage variables
// x plus a recourse variable θ in the master, and iteratively add
// optimality cuts derived from the second stage.
//
// Our second stage is particularly friendly: given x, the scenario recourse
//
//   Q_φ(x) = Σ_v Bfof(v) · min(1, Σ_{u ∈ N_φ(v) accepting} x_u)
//          + Σ_e Bi(e)  · min(1, Σ_{endpoints w of e accepting} x_w)
//
// is concave piecewise-linear in x, so at any master solution x̂ a
// supergradient yields the exact optimality cut
//
//   θ ≤ Q(x̂) + g(x̂)ᵀ (x − x̂),   g = Σ (saturated ? 0 : coefficient row).
//
// The master is a small LP (n + 1 variables) solved with the dense simplex;
// integrality of x is restored by branch-and-bound around the L-shaped loop.
// Results match solve_fob_mip / fob_exact on common instances (tested), but
// the iteration count — not the LP size — carries the scenario load.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/observation.h"
#include "solver/saa.h"

namespace recon::solver {

struct BendersOptions {
  std::size_t max_cuts = 200;        ///< per B&B node
  double tolerance = 1e-6;           ///< master-vs-recourse convergence gap
  std::uint64_t max_bnb_nodes = 20'000;
  /// Parallelize incumbent SAA evaluations across scenarios (nullptr =
  /// sequential); values are bit-identical at any thread count.
  util::ThreadPool* pool = nullptr;
  /// The scenarios are antithetic (U, 1-U) pairs; evaluate each incumbent
  /// with pair-aware reduction (SaaEvalOptions::antithetic_pairs).
  bool antithetic = false;
};

struct BendersResult {
  std::vector<graph::NodeId> batch;
  double objective = 0.0;        ///< SAA objective of `batch`
  std::size_t cuts_generated = 0;
  std::uint64_t nodes_explored = 0;
  bool optimal = false;
};

/// Exact expected recourse Q(x) for fractional x plus a supergradient,
/// averaged over the scenarios. Exposed for tests.
struct RecourseEvaluation {
  double value = 0.0;
  std::vector<double> supergradient;  ///< one entry per candidate
};
RecourseEvaluation evaluate_recourse(const sim::Observation& obs,
                                     const std::vector<Scenario>& scenarios,
                                     const std::vector<graph::NodeId>& candidates,
                                     const std::vector<double>& x);

/// First-stage (deterministic) part of the objective for fractional x:
/// Σ_u x_u · q̂_u · BfEff(u), with q̂_u the scenario acceptance frequency.
double first_stage_value(const sim::Observation& obs,
                         const std::vector<Scenario>& scenarios,
                         const std::vector<graph::NodeId>& candidates,
                         const std::vector<double>& x);

/// Solves max_x { first_stage(x) + Q(x) : Σ x = k, x ∈ {0,1} } by
/// branch-and-bound whose node relaxations are solved with the L-shaped
/// method. Equivalent to solve_fob_mip (tested) with a master LP of n + 1
/// columns instead of O(T·(n+m)).
BendersResult solve_fob_benders(const sim::Observation& obs,
                                const std::vector<Scenario>& scenarios, std::size_t k,
                                const std::vector<graph::NodeId>& candidates,
                                const BendersOptions& options = {});

}  // namespace recon::solver
