// Tests for util: RNG determinism and distributions, stats, table, env args.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/chase_lev_deque.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace recon::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b();
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BelowIsUniform) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 350);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, SaveRestoreStateResumesStreamExactly) {
  Rng rng(0xABCD);
  for (int i = 0; i < 257; ++i) (void)rng();  // mid-stream, off any boundary
  const std::string blob = rng.save_state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 100; ++i) expected.push_back(rng());
  Rng other(1);  // different seed: state comes entirely from the blob
  other.restore_state(blob);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(other(), expected[i]);
  // save -> restore -> save is a fixed point.
  Rng third(2);
  third.restore_state(blob);
  EXPECT_EQ(third.save_state(), blob);
}

TEST(Rng, RestoreStateRejectsMalformedBlobs) {
  Rng rng(1);
  EXPECT_THROW(rng.restore_state(""), std::invalid_argument);
  EXPECT_THROW(rng.restore_state("1 2 3"), std::invalid_argument);
  EXPECT_THROW(rng.restore_state("1 2 3 4 5"), std::invalid_argument);
  EXPECT_THROW(rng.restore_state("1 2 3 x"), std::invalid_argument);
  EXPECT_THROW(rng.restore_state("1 2 3 -4"), std::invalid_argument);
  EXPECT_THROW(rng.restore_state("1 2 3 4junk"), std::invalid_argument);
  // The stream is untouched by a failed restore.
  Rng a(9), b(9);
  try {
    a.restore_state("bogus");
  } catch (const std::invalid_argument&) {
  }
  EXPECT_EQ(a(), b());
}

TEST(Rng, DeriveSeedIndependence) {
  // Derived streams should not collide for nearby tags.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t t = 0; t < 1000; ++t) seeds.insert(derive_seed(123, t));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Rng, CounterUniformPure) {
  EXPECT_EQ(counter_uniform(1, 2, 3), counter_uniform(1, 2, 3));
  EXPECT_NE(counter_uniform(1, 2, 3), counter_uniform(1, 2, 4));
  double sum = 0.0;
  for (std::uint64_t i = 0; i < 10000; ++i) sum += counter_uniform(99, i, 0);
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(13);
  const auto s = sample_without_replacement(100, 30, rng);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::uint32_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (auto v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(13);
  const auto s = sample_without_replacement(10, 10, rng);
  std::set<std::uint32_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
  Rng rng(1);
  EXPECT_THROW(sample_without_replacement(5, 6, rng), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  shuffle(w, rng);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(RunningStat, MeanVarMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat a, b, all;
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5, 5);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(SeriesStat, AlignsAndExtends) {
  SeriesStat s;
  s.add({1.0, 2.0, 3.0});
  s.add({2.0});  // extends to {2, 2, 2}
  const auto m = s.means();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[0], 1.5);
  EXPECT_DOUBLE_EQ(m[1], 2.0);
  EXPECT_DOUBLE_EQ(m[2], 2.5);
}

TEST(SeriesStat, LongerSeriesBackfillsEarlierRuns) {
  SeriesStat s;
  s.add({1.0});
  s.add({3.0, 5.0});
  const auto m = s.means();
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 3.0);  // (1 extended, 5)
}

TEST(Quantile, InterpolatesAndClamps) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
}

TEST(Table, TextAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscaping) {
  Table t({"a"});
  t.add_row({"with,comma"});
  EXPECT_NE(t.to_csv().find("\"with,comma\""), std::string::npos);
}

TEST(Format, SciAndFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_sci(0.0), "0");
  EXPECT_EQ(format_sci(12000.0, 2), "1.2e4");
  EXPECT_EQ(format_sci(0.0012, 2), "1.2e-3");
  // Mid-range values stay fixed.
  EXPECT_EQ(format_sci(2.2, 2), "2.20");
}

TEST(Args, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--runs", "5", "pos1", "--csv=out.csv", "--verbose"};
  Args args(6, argv);
  EXPECT_EQ(args.get_int("runs", 0), 5);
  EXPECT_EQ(args.get("csv", ""), "out.csv");
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("absent"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<int> acount{0};
  pool.parallel_for(0, 1, [&](std::size_t) { acount.fetch_add(1); });
  EXPECT_EQ(acount.load(), 1);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> v{0};
  auto f = pool.submit([&] { v.store(42); });
  f.get();
  EXPECT_EQ(v.load(), 42);
}

TEST(ThreadPool, ParallelForRangeFormCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  std::atomic<int> chunks{0};
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    chunks.fetch_add(1);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Range form hands out chunks, not indices.
  EXPECT_LT(chunks.load(), 1000);
  EXPECT_GE(chunks.load(), 1);
}

TEST(ThreadPool, ParallelReducePartialsSumExactly) {
  ThreadPool pool(4);
  const auto partials = pool.parallel_reduce(
      1, 100001, std::uint64_t{0},
      [](std::uint64_t& acc, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) acc += i;
      });
  EXPECT_EQ(partials.size(), 5u);  // 4 workers + caller
  std::uint64_t total = 0;
  for (auto p : partials) total += p;
  EXPECT_EQ(total, 100000ull * 100001ull / 2ull);
}

TEST(ThreadPool, ParallelReduceEmptyRange) {
  ThreadPool pool(2);
  const auto partials = pool.parallel_reduce(
      7, 7, 0, [](int& acc, std::size_t, std::size_t) { ++acc; });
  for (int p : partials) EXPECT_EQ(p, 0);
}

TEST(ThreadPool, SubmitMoveOnlyTask) {
  ThreadPool pool(2);
  auto payload = std::make_unique<int>(41);
  std::atomic<int> got{0};
  auto f = pool.submit([p = std::move(payload)] () mutable { ++*p; });
  f.get();
  auto payload2 = std::make_unique<int>(7);
  pool.submit([p = std::move(payload2), &got] { got.store(*p); }).get();
  EXPECT_EQ(got.load(), 7);
}

TEST(ThreadPool, TasksSubmittedFromWorkersComplete) {
  // Work stealing: tasks enqueued from inside a worker land on that worker's
  // deque and must still be picked up (by it or by a stealing sibling).
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::vector<std::future<void>> inner;
  std::mutex inner_mutex;
  std::vector<std::future<void>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.push_back(pool.submit([&] {
      std::lock_guard<std::mutex> lock(inner_mutex);
      for (int j = 0; j < 4; ++j) {
        inner.push_back(pool.submit([&done] { done.fetch_add(1); }));
      }
    }));
  }
  for (auto& f : outer) f.get();
  {
    std::lock_guard<std::mutex> lock(inner_mutex);
    for (auto& f : inner) f.get();
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Blocking joins steal work instead of sleeping, so a parallel_for issued
  // from inside a pool task (sharing the same pool) must complete.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));
    }, /*grain=*/10);
  }, /*grain=*/1);
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPool, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futs(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        futs[t].push_back(pool.submit([&count] { count.fetch_add(1); }));
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (auto& fs : futs) {
    for (auto& f : fs) f.get();
  }
  EXPECT_EQ(count.load(), 800);
}

TEST(ThreadPool, BusyNanosAccumulates) {
  ThreadPool pool(2);
  pool.reset_busy_nanos();
  auto f = pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  f.get();
  // The worker records busy time just after completing the task (which is
  // what unblocks f.get()), so allow a short grace period for the counter.
  for (int i = 0; i < 200 && pool.busy_nanos() <= 1'000'000u; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(pool.busy_nanos(), 1'000'000u);  // > 1ms recorded
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 1000,
                                 [&](std::size_t i) {
                                   if (i == 137) throw std::runtime_error("boom");
                                 },
                                 /*grain=*/8),
               std::runtime_error);
}

TEST(ThreadPool, ParallelReducePropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_reduce(0, 1000, 0,
                                    [](int& acc, std::size_t lo, std::size_t hi) {
                                      if (lo <= 500 && 500 < hi) {
                                        throw std::logic_error("bad chunk");
                                      }
                                      acc += static_cast<int>(hi - lo);
                                    },
                                    /*grain=*/8),
               std::logic_error);
}

TEST(ThreadPool, PoolUsableAfterException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(0, 100, [](std::size_t) { throw std::runtime_error("x"); });
    FAIL() << "expected the worker exception to rethrow on the caller";
  } catch (const std::runtime_error&) {
  }
  // The pool must survive a failed job: all workers keep draining tasks.
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(0, 500, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  const auto partials =
      pool.parallel_reduce(0, 1000, std::uint64_t{0},
                           [](std::uint64_t& acc, std::size_t lo, std::size_t hi) {
                             acc += hi - lo;
                           });
  std::uint64_t total = 0;
  for (auto p : partials) total += p;
  EXPECT_EQ(total, 1000u);
}

TEST(ChaseLevDeque, OwnerPopIsLifo) {
  ChaseLevDeque<int> dq;
  int vals[5] = {0, 1, 2, 3, 4};
  for (int& v : vals) dq.push_bottom(&v);
  for (int expect = 4; expect >= 0; --expect) {
    int* got = dq.pop_bottom();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, expect);
  }
  EXPECT_EQ(dq.pop_bottom(), nullptr);
  EXPECT_TRUE(dq.empty());
}

TEST(ChaseLevDeque, StealIsFifo) {
  ChaseLevDeque<int> dq;
  int vals[5] = {0, 1, 2, 3, 4};
  for (int& v : vals) dq.push_bottom(&v);
  for (int expect = 0; expect < 5; ++expect) {
    int* got = dq.steal_top();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, expect);
  }
  EXPECT_EQ(dq.steal_top(), nullptr);
}

TEST(ChaseLevDeque, GrowthPreservesEveryItem) {
  // Start at the minimum ring and push far past it: every item must come
  // back exactly once, in LIFO order, across multiple doublings.
  ChaseLevDeque<int> dq(/*initial_capacity=*/2);
  std::vector<int> vals(1000);
  for (int i = 0; i < 1000; ++i) {
    vals[static_cast<std::size_t>(i)] = i;
    dq.push_bottom(&vals[static_cast<std::size_t>(i)]);
  }
  for (int expect = 999; expect >= 0; --expect) {
    int* got = dq.pop_bottom();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, expect);
  }
  EXPECT_EQ(dq.pop_bottom(), nullptr);
}

TEST(ChaseLevDeque, InterleavedPushPopSteal) {
  ChaseLevDeque<int> dq;
  int vals[6] = {0, 1, 2, 3, 4, 5};
  dq.push_bottom(&vals[0]);
  dq.push_bottom(&vals[1]);
  EXPECT_EQ(*dq.steal_top(), 0);   // oldest
  EXPECT_EQ(*dq.pop_bottom(), 1);  // newest
  EXPECT_EQ(dq.pop_bottom(), nullptr);
  dq.push_bottom(&vals[2]);
  dq.push_bottom(&vals[3]);
  dq.push_bottom(&vals[4]);
  EXPECT_EQ(*dq.pop_bottom(), 4);
  EXPECT_EQ(*dq.steal_top(), 2);
  EXPECT_EQ(*dq.pop_bottom(), 3);
  dq.push_bottom(&vals[5]);
  EXPECT_EQ(*dq.steal_top(), 5);  // single element reachable from either end
  EXPECT_TRUE(dq.empty());
}

TEST(ChaseLevDeque, ConcurrentStealStressRecoversEachItemOnce) {
  // One owner pushes and pops at the bottom while thieves hammer the top:
  // every item must be taken exactly once, by exactly one thread. This is
  // the test the TSan CI job leans on to validate the memory-order protocol.
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> dq(/*initial_capacity=*/4);
  std::vector<int> vals(kItems);
  std::vector<std::atomic<int>> taken(kItems);
  std::atomic<int> remaining{kItems};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (remaining.load(std::memory_order_acquire) > 0) {
        if (int* got = dq.steal_top()) {
          taken[static_cast<std::size_t>(*got)].fetch_add(1);
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
      }
    });
  }

  // Owner: push in bursts, popping some back — exercises the last-element
  // CAS race and ring growth under live thieves.
  for (int i = 0; i < kItems; ++i) {
    vals[static_cast<std::size_t>(i)] = i;
    dq.push_bottom(&vals[static_cast<std::size_t>(i)]);
    if (i % 3 == 2) {
      if (int* got = dq.pop_bottom()) {
        taken[static_cast<std::size_t>(*got)].fetch_add(1);
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
  }
  while (remaining.load(std::memory_order_acquire) > 0) {
    if (int* got = dq.pop_bottom()) {
      taken[static_cast<std::size_t>(*got)].fetch_add(1);
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  for (auto& th : thieves) th.join();

  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(taken[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
  EXPECT_TRUE(dq.empty());
}

TEST(Env, DefaultsWhenUnset) {
  EXPECT_EQ(env_int("RECON_DEFINITELY_UNSET_VAR", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("RECON_DEFINITELY_UNSET_VAR", 1.5), 1.5);
  EXPECT_FALSE(env_string("RECON_DEFINITELY_UNSET_VAR").has_value());
}

}  // namespace
}  // namespace recon::util
