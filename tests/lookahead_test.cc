// Tests for the two-step lookahead strategy.
#include <gtest/gtest.h>

#include <memory>

#include "core/attack.h"
#include "core/lookahead.h"
#include "core/m_arest.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "sim/problem.h"

namespace recon::core {
namespace {

using graph::NodeId;
using sim::Problem;

TEST(Lookahead, ScoreIsImmediatePlusFollowup) {
  // Two disconnected target leaves with deterministic acceptance: the
  // lookahead score of either is its own benefit (1) plus the other's (1).
  graph::GraphBuilder b(2);
  Problem p;
  p.graph = b.build();
  p.targets = {0, 1};
  p.is_target = {1, 1};
  p.benefit = sim::make_paper_benefit(p.graph, p.is_target);
  p.acceptance = sim::make_constant_acceptance(1.0);
  p.validate();
  sim::Observation obs(p);
  LookaheadOptions opts;
  opts.samples = 4;  // deterministic world: any count works
  EXPECT_NEAR(lookahead_score(obs, 0, opts, 1), 2.0, 1e-9);
}

TEST(Lookahead, AccountsForInformativeFailure) {
  // One big-value target with q = 0.5 and two small sure ones. The myopic
  // score of the big target ignores that after a *rejection* the best
  // follow-up is a sure small target — lookahead's follow-up term averages
  // the accept and reject futures. Verify the score decomposes correctly.
  graph::GraphBuilder b(3);
  Problem p;
  p.graph = b.build();
  p.targets = {0, 1, 2};
  p.is_target = {1, 1, 1};
  p.benefit = sim::make_paper_benefit(p.graph, p.is_target);
  p.benefit.bf[0] = 3.0;  // the big one
  p.acceptance.q0 = {0.5, 1.0, 1.0};
  p.validate();
  sim::Observation obs(p);
  LookaheadOptions opts;
  opts.samples = 2000;
  // V(0) = 0.5*3 + E[best followup] = 1.5 + 1.0 (a sure target either way).
  EXPECT_NEAR(lookahead_score(obs, 0, opts, 7), 2.5, 0.05);
  // V(1) = 1 + E[best followup] = 1 + 1.5 (the big target remains).
  EXPECT_NEAR(lookahead_score(obs, 1, opts, 7), 2.5, 0.05);
}

Problem lookahead_problem(int seed) {
  sim::ProblemOptions opts;
  opts.num_targets = 15;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(60, 3, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.9), seed + 1),
      opts);
}

TEST(Lookahead, RunsFullAttackDeterministically) {
  const Problem p = lookahead_problem(1);
  const sim::World w(p, 5);
  LookaheadStrategy s1, s2;
  const auto t1 = run_attack(p, w, s1, 12.0);
  const auto t2 = run_attack(p, w, s2, 12.0);
  ASSERT_EQ(t1.batches.size(), t2.batches.size());
  for (std::size_t i = 0; i < t1.batches.size(); ++i) {
    EXPECT_EQ(t1.batches[i].requests, t2.batches[i].requests);
  }
  EXPECT_EQ(t1.total_requests(), 12u);
  for (const auto& b : t1.batches) EXPECT_EQ(b.requests.size(), 1u);
}

TEST(Lookahead, AtLeastCompetitiveWithMyopicGreedy) {
  // Lookahead should never be meaningfully worse than M-AReST in expectation
  // (it degenerates to myopic when futures are flat).
  const Problem p = lookahead_problem(2);
  const int runs = 8;
  const double budget = 15.0;
  const auto myopic = run_monte_carlo(
      p, [](int) { return std::make_unique<MArest>(); }, runs, budget, 77);
  const auto looking = run_monte_carlo(
      p,
      [](int r) {
        LookaheadOptions o;
        o.seed = 500 + static_cast<std::uint64_t>(r);
        return std::make_unique<LookaheadStrategy>(o);
      },
      runs, budget, 77);
  EXPECT_GE(looking.mean_benefit(), myopic.mean_benefit() * 0.93);
}

TEST(Lookahead, Validation) {
  LookaheadOptions bad;
  bad.pool = 0;
  EXPECT_THROW(LookaheadStrategy{bad}, std::invalid_argument);
  bad.pool = 4;
  bad.samples = 0;
  EXPECT_THROW(LookaheadStrategy{bad}, std::invalid_argument);
  const Problem p = lookahead_problem(3);
  sim::Observation obs(p);
  EXPECT_THROW(lookahead_score(obs, 0, bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace recon::core
