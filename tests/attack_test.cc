// End-to-end tests of strategies and the attack runner.
#include <gtest/gtest.h>

#include <memory>

#include "core/attack.h"
#include "core/baselines.h"
#include "core/m_arest.h"
#include "core/pm_arest.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "sim/problem.h"

namespace recon::core {
namespace {

using graph::NodeId;
using sim::Problem;

Problem test_problem(int seed, graph::NodeId n = 120) {
  sim::ProblemOptions opts;
  opts.num_targets = 25;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(n, 4, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.95), seed + 1),
      opts);
}

TEST(RunAttack, RespectsBudgetExactly) {
  const Problem p = test_problem(1);
  const sim::World w(p, 11);
  PmArest strategy(PmArestOptions{.batch_size = 7});
  const auto trace = run_attack(p, w, strategy, 35.0);
  EXPECT_LE(trace.total_cost(), 35.0 + 1e-9);
  EXPECT_EQ(trace.total_requests(), 35u);  // uniform costs, enough candidates
  for (const auto& b : trace.batches) EXPECT_LE(b.requests.size(), 7u);
}

TEST(RunAttack, NonDivisibleBudgetTruncatesLastBatch) {
  const Problem p = test_problem(1);
  const sim::World w(p, 11);
  PmArest strategy(PmArestOptions{.batch_size = 10});
  const auto trace = run_attack(p, w, strategy, 25.0);
  EXPECT_EQ(trace.total_requests(), 25u);
  EXPECT_EQ(trace.batches.back().requests.size(), 5u);
}

TEST(RunAttack, DeterministicGivenSeeds) {
  const Problem p = test_problem(2);
  const sim::World w(p, 42);
  PmArest s1(PmArestOptions{.batch_size = 5});
  PmArest s2(PmArestOptions{.batch_size = 5});
  const auto t1 = run_attack(p, w, s1, 30.0);
  const auto t2 = run_attack(p, w, s2, 30.0);
  ASSERT_EQ(t1.batches.size(), t2.batches.size());
  for (std::size_t i = 0; i < t1.batches.size(); ++i) {
    EXPECT_EQ(t1.batches[i].requests, t2.batches[i].requests);
    EXPECT_EQ(t1.batches[i].accepted, t2.batches[i].accepted);
  }
  EXPECT_DOUBLE_EQ(t1.total_benefit(), t2.total_benefit());
}

TEST(RunAttack, CumulativeBookkeepingConsistent) {
  const Problem p = test_problem(3);
  const sim::World w(p, 5);
  PmArest strategy(PmArestOptions{.batch_size = 6});
  const auto trace = run_attack(p, w, strategy, 42.0);
  sim::BenefitBreakdown sum;
  double cost = 0.0;
  for (const auto& b : trace.batches) {
    sum += b.delta;
    cost += b.cost;
    EXPECT_NEAR(sum.total(), b.cumulative.total(), 1e-9);
    EXPECT_NEAR(cost, b.cumulative_cost, 1e-9);
    ASSERT_EQ(b.requests.size(), b.accepted.size());
  }
  EXPECT_GT(trace.total_benefit(), 0.0);
}

TEST(RunAttack, BenefitByRequestIsMonotone) {
  const Problem p = test_problem(4);
  const sim::World w(p, 5);
  MArest strategy;
  const auto trace = run_attack(p, w, strategy, 30.0);
  const auto curve = trace.benefit_by_request();
  EXPECT_EQ(curve.size(), trace.total_requests());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1] - 1e-12);
  }
  EXPECT_NEAR(curve.back(), trace.total_benefit(), 1e-12);
}

TEST(RunAttack, MArestSendsSingleRequests) {
  const Problem p = test_problem(5);
  const sim::World w(p, 9);
  MArest strategy;
  const auto trace = run_attack(p, w, strategy, 20.0);
  EXPECT_EQ(trace.batches.size(), 20u);
  for (const auto& b : trace.batches) EXPECT_EQ(b.requests.size(), 1u);
}

TEST(RunAttack, RejectsBadBudget) {
  const Problem p = test_problem(1);
  const sim::World w(p, 1);
  MArest strategy;
  EXPECT_THROW(run_attack(p, w, strategy, 0.0), std::invalid_argument);
}

TEST(RunAttack, RetriesReattemptRejectedNodes) {
  const Problem p = test_problem(6);
  const sim::World w(p, 3);
  PmArest strategy(PmArestOptions{.batch_size = 5, .allow_retries = true});
  const auto trace = run_attack(p, w, strategy, 200.0);
  // With only 120 nodes and budget 200, retries must occur.
  std::map<NodeId, int> attempts;
  for (const auto& b : trace.batches) {
    for (NodeId u : b.requests) ++attempts[u];
  }
  int retried = 0;
  for (const auto& [u, a] : attempts) retried += a > 1;
  EXPECT_GT(retried, 0);
  // More requests than nodes proves reattempts happened; the attack may end
  // before the full budget once no candidate has positive marginal gain.
  EXPECT_GT(trace.total_requests(), 120u);
  EXPECT_LE(trace.total_requests(), 200u);
}

TEST(RunAttack, NoRetryNeverReattempts) {
  const Problem p = test_problem(6);
  const sim::World w(p, 3);
  PmArest strategy(PmArestOptions{.batch_size = 5, .allow_retries = false});
  const auto trace = run_attack(p, w, strategy, 200.0);
  std::map<NodeId, int> attempts;
  for (const auto& b : trace.batches) {
    for (NodeId u : b.requests) ++attempts[u];
  }
  for (const auto& [u, a] : attempts) EXPECT_EQ(a, 1) << "node " << u;
  // Attack ends when all 120 candidates are exhausted.
  EXPECT_LE(trace.total_requests(), 120u);
}

TEST(RunAttack, VaryingBatchSizesInRange) {
  const Problem p = test_problem(7);
  const sim::World w(p, 13);
  PmArest strategy(PmArestOptions{
      .batch_size = 5, .vary_k_min = 3, .vary_k_max = 9, .seed = 77});
  const auto trace = run_attack(p, w, strategy, 60.0);
  std::set<std::size_t> sizes;
  for (std::size_t i = 0; i + 1 < trace.batches.size(); ++i) {
    const auto sz = trace.batches[i].requests.size();
    EXPECT_GE(sz, 3u);
    EXPECT_LE(sz, 9u);
    sizes.insert(sz);
  }
  EXPECT_GT(sizes.size(), 1u);  // actually varies
}

TEST(Strategies, OptionValidation) {
  EXPECT_THROW(PmArest(PmArestOptions{.batch_size = 0}), std::invalid_argument);
  EXPECT_THROW(PmArest(PmArestOptions{.vary_k_min = 5, .vary_k_max = 3}),
               std::invalid_argument);
  EXPECT_THROW(RandomStrategy(0, 1), std::invalid_argument);
  EXPECT_THROW(HighDegreeStrategy(-1), std::invalid_argument);
}

TEST(Strategies, NamesAreDescriptive) {
  EXPECT_EQ(PmArest(PmArestOptions{.batch_size = 5}).name(), "PM-AReST(k=5)");
  EXPECT_EQ(PmArest(PmArestOptions{.batch_size = 5, .allow_retries = true}).name(),
            "PM-AReST(k=5,retry)");
  EXPECT_EQ(MArest().name(), "M-AReST");
  EXPECT_EQ(PmArest(PmArestOptions{.vary_k_min = 5, .vary_k_max = 15}).name(),
            "PM-AReST(k=5..15)");
}

TEST(MonteCarlo, MeansAndParallelEquivalence) {
  const Problem p = test_problem(8);
  const StrategyFactory factory = [](int) {
    return std::make_unique<PmArest>(PmArestOptions{.batch_size = 5});
  };
  const auto seq = run_monte_carlo(p, factory, 6, 30.0, 123, nullptr);
  util::ThreadPool pool(3);
  const auto par = run_monte_carlo(p, factory, 6, 30.0, 123, &pool);
  ASSERT_EQ(seq.traces.size(), 6u);
  EXPECT_DOUBLE_EQ(seq.mean_benefit(), par.mean_benefit());
  EXPECT_DOUBLE_EQ(seq.mean_requests(), par.mean_requests());
  EXPECT_GT(seq.mean_benefit(), 0.0);
}

TEST(Comparison, PmArestBeatsRandomAndTargetFirst) {
  const Problem p = test_problem(9, 150);
  auto mean_for = [&](const StrategyFactory& f) {
    return run_monte_carlo(p, f, 8, 45.0, 31).mean_benefit();
  };
  const double pm = mean_for(
      [](int) { return std::make_unique<PmArest>(PmArestOptions{.batch_size = 5}); });
  const double rnd = mean_for(
      [](int r) { return std::make_unique<RandomStrategy>(5, 1000 + r); });
  const double tf = mean_for(
      [](int) { return std::make_unique<TargetFirstStrategy>(5); });
  EXPECT_GT(pm, rnd * 1.3);
  EXPECT_GT(pm, tf);
}

TEST(Comparison, SequentialBeatsOrMatchesBatch) {
  // The paper's central gap (Fig. 4): M-AReST >= PM-AReST in benefit, and the
  // gap narrows for smaller k.
  const Problem p = test_problem(10, 150);
  auto mean_for = [&](const StrategyFactory& f) {
    return run_monte_carlo(p, f, 10, 45.0, 77).mean_benefit();
  };
  const double m = mean_for([](int) { return std::make_unique<MArest>(); });
  const double pm5 = mean_for(
      [](int) { return std::make_unique<PmArest>(PmArestOptions{.batch_size = 5}); });
  const double pm15 = mean_for(
      [](int) { return std::make_unique<PmArest>(PmArestOptions{.batch_size = 15}); });
  EXPECT_GE(m, pm5 * 0.98);   // allow MC noise
  EXPECT_GE(pm5, pm15 * 0.95);
  EXPECT_GT(pm15, 0.0);
}

TEST(Comparison, RetriesHelpWhenBudgetExceedsCandidates) {
  const Problem p = test_problem(11, 100);
  auto mean_for = [&](bool retries) {
    return run_monte_carlo(
               p,
               [retries](int) {
                 return std::make_unique<PmArest>(
                     PmArestOptions{.batch_size = 5, .allow_retries = retries});
               },
               10, 150.0, 55)
        .mean_benefit();
  };
  EXPECT_GT(mean_for(true), mean_for(false) * 1.02);
}

TEST(Comparison, BranchTreeStrategyMatchesCollapsed) {
  const Problem p = test_problem(12, 60);
  const sim::World w(p, 21);
  PmArest fast(PmArestOptions{.batch_size = 5});
  PmArest slow(PmArestOptions{.batch_size = 5, .use_branch_tree = true});
  const auto tf = run_attack(p, w, fast, 20.0);
  const auto ts = run_attack(p, w, slow, 20.0);
  ASSERT_EQ(tf.batches.size(), ts.batches.size());
  for (std::size_t i = 0; i < tf.batches.size(); ++i) {
    EXPECT_EQ(tf.batches[i].requests, ts.batches[i].requests);
  }
}

}  // namespace
}  // namespace recon::core
