// Robustness fuzzing of the text parsers: random byte-level mutations of
// valid inputs must either parse to a valid object or throw a typed
// exception — never crash, hang, or produce an object that fails
// validate().
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"
#include "sim/problem.h"
#include "sim/problem_io.h"
#include "sim/trace_io.h"
#include "util/rng.h"

namespace recon {
namespace {

std::string mutate(const std::string& input, util::Rng& rng, int edits) {
  std::string s = input;
  for (int e = 0; e < edits && !s.empty(); ++e) {
    const std::size_t pos = static_cast<std::size_t>(rng.below(s.size()));
    switch (rng.below(4)) {
      case 0:  // flip to random printable
        s[pos] = static_cast<char>(' ' + rng.below(95));
        break;
      case 1:  // delete
        s.erase(pos, 1);
        break;
      case 2:  // duplicate
        s.insert(pos, 1, s[pos]);
        break;
      case 3:  // truncate
        s.resize(pos);
        break;
    }
  }
  return s;
}

TEST(FuzzIo, EdgeListParserNeverCrashes) {
  std::stringstream base;
  graph::write_edge_list(base, graph::erdos_renyi_gnm(30, 60, 3));
  const std::string valid = base.str();
  util::Rng rng(17);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::stringstream in(mutate(valid, rng, 1 + static_cast<int>(rng.below(8))));
    try {
      const auto g = graph::read_edge_list(in);
      // Whatever parsed must be internally consistent.
      for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
        ASSERT_LT(g.edge_u(e), g.num_nodes());
        ASSERT_LT(g.edge_v(e), g.num_nodes());
      }
      ++parsed;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  // Both outcomes should occur across 400 mutations.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzIo, TraceParserNeverCrashes) {
  const std::string valid =
      "#recon-trace v1\n"
      "trace 0\n"
      "batch sel=0.01 cost=3 reqs=1:1,2:0,3:1 df=1.5 dx=0.5 de=0.25\n"
      "batch sel=0.02 cost=2 reqs=4:1,5:0:2 df=1 dx=0 de=0\n"
      "trace 1\n"
      "batch sel=0.01 cost=1 reqs=7:1 df=1 dx=0 de=0\n"
      "end 2\n";
  util::Rng rng(23);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::stringstream in(mutate(valid, rng, 1 + static_cast<int>(rng.below(6))));
    try {
      const auto traces = sim::read_traces(in);
      for (const auto& t : traces) {
        for (const auto& b : t.batches) {
          ASSERT_EQ(b.requests.size(), b.accepted.size());
        }
      }
      ++parsed;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzIo, ProblemParserNeverCrashes) {
  sim::ProblemOptions opts;
  opts.num_targets = 8;
  opts.seed = 3;
  const sim::Problem p = sim::make_problem(graph::erdos_renyi_gnm(25, 50, 1), opts);
  std::stringstream base;
  sim::write_problem(base, p);
  const std::string valid = base.str();
  util::Rng rng(31);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::stringstream in(mutate(valid, rng, 1 + static_cast<int>(rng.below(6))));
    try {
      const sim::Problem loaded = sim::read_problem(in);
      loaded.validate();  // read_problem validates, but double-check
      ++parsed;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed + rejected, 0);
  EXPECT_GT(rejected, 0);  // most mutations must be caught
}

// Truncation at any line boundary must be rejected, not silently parsed as
// a shorter-but-valid object. The `end` footer makes this detectable.
TEST(FuzzIo, TruncatedProblemRejected) {
  sim::ProblemOptions opts;
  opts.num_targets = 6;
  opts.seed = 5;
  const sim::Problem p = sim::make_problem(graph::erdos_renyi_gnm(20, 40, 2), opts);
  std::stringstream base;
  sim::write_problem(base, p);
  const std::string valid = base.str();

  // Sanity: the complete file parses.
  {
    std::stringstream in(valid);
    EXPECT_NO_THROW(sim::read_problem(in));
  }
  // Drop trailing lines one at a time; every prefix must throw.
  std::string s = valid;
  for (int cut = 0; cut < 5; ++cut) {
    const std::size_t last_nl = s.find_last_of('\n', s.size() - 2);
    if (last_nl == std::string::npos) break;
    s.resize(last_nl + 1);
    std::stringstream in(s);
    EXPECT_THROW(sim::read_problem(in), std::runtime_error)
        << "accepted a file truncated to " << s.size() << " bytes";
  }
  // Mid-line truncation of the targets section must also throw.
  const std::size_t tpos = valid.find("targets");
  ASSERT_NE(tpos, std::string::npos);
  const std::size_t tend = valid.find('\n', tpos);
  std::string midline = valid.substr(0, tend - 2);
  std::stringstream in(midline);
  EXPECT_THROW(sim::read_problem(in), std::runtime_error);
}

TEST(FuzzIo, TruncatedTraceRejected) {
  const std::string valid =
      "#recon-trace v1\n"
      "trace 0\n"
      "batch sel=0.01 cost=3 reqs=1:1,2:0 df=1.5 dx=0.5 de=0.25\n"
      "batch sel=0.02 cost=2 reqs=4:1 df=1 dx=0 de=0\n"
      "end 1\n";
  {
    std::stringstream in(valid);
    EXPECT_NO_THROW(sim::read_traces(in));
  }
  // Missing footer (cut at a line boundary).
  {
    std::stringstream in(valid.substr(0, valid.find("end 1")));
    EXPECT_THROW(sim::read_traces(in), std::runtime_error);
  }
  // Footer trace count disagrees with body.
  {
    std::stringstream in(
        "#recon-trace v1\ntrace 0\n"
        "batch sel=0 cost=1 reqs=1:1 df=1 dx=0 de=0\nend 2\n");
    EXPECT_THROW(sim::read_traces(in), std::runtime_error);
  }
  // Content after the footer.
  {
    std::stringstream in(valid + "trace 1\n");
    EXPECT_THROW(sim::read_traces(in), std::runtime_error);
  }
}

TEST(FuzzIo, BadHeadersRejected) {
  for (const char* header :
       {"", "#recon-trace v0\n", "#recon-trace v2\n", "recon-trace v1\n",
        "#recon-problem v1\n"}) {
    std::stringstream in(std::string(header) + "trace 0\nend 1\n");
    EXPECT_THROW(sim::read_traces(in), std::runtime_error) << header;
  }
  for (const char* header :
       {"", "#recon-problem v0\n", "#recon-problem v2\n", "#recon-trace v1\n"}) {
    std::stringstream in(std::string(header) + "graph 1 0\nend\n");
    EXPECT_THROW(sim::read_problem(in), std::runtime_error) << header;
  }
}

TEST(FuzzIo, TraceRejectsMalformedFields) {
  const char* cases[] = {
      // accept flag not 0/1
      "#recon-trace v1\ntrace 0\nbatch sel=0 cost=1 reqs=1:2 df=1 dx=0 de=0\nend 1\n",
      // outcome out of range
      "#recon-trace v1\ntrace 0\nbatch sel=0 cost=1 reqs=1:1:9 df=1 dx=0 de=0\nend 1\n",
      // negative node id
      "#recon-trace v1\ntrace 0\nbatch sel=0 cost=1 reqs=-1:1 df=1 dx=0 de=0\nend 1\n",
      // junk in a numeric field
      "#recon-trace v1\ntrace 0\nbatch sel=0x cost=1 reqs=1:1 df=1 dx=0 de=0\nend 1\n",
      // batch before any trace
      "#recon-trace v1\nbatch sel=0 cost=1 reqs=1:1 df=1 dx=0 de=0\nend 0\n",
      // unknown record kind
      "#recon-trace v1\ntrace 0\nbogus\nend 1\n",
  };
  for (const char* text : cases) {
    std::stringstream in(text);
    EXPECT_THROW(sim::read_traces(in), std::runtime_error) << text;
  }
}

TEST(FuzzIo, ProblemRejectsOversizedCounts) {
  // Targets count larger than n must fail before allocating.
  std::stringstream in(
      "#recon-problem v1\ngraph 3 1\ne 0 1 0.5\n"
      "targets 99 0 1 2\nacceptance uniform 0.5\nbenefit paper\nend\n");
  EXPECT_THROW(sim::read_problem(in), std::runtime_error);
  // attrs with the wrong number of values must fail.
  std::stringstream in2(
      "#recon-problem v1\ngraph 3 1\ne 0 1 0.5\n"
      "targets 1 0\nacceptance uniform 0.5\nbenefit paper\n"
      "attrs 2 7 7 7\nend\n");
  EXPECT_THROW(sim::read_problem(in2), std::runtime_error);
}

// Fault-outcome round trip: the optional third field survives write→read and
// fault-free batches keep the compact two-field form.
TEST(FuzzIo, TraceOutcomeRoundTrip) {
  sim::AttackTrace t;
  sim::BatchRecord b1;
  b1.requests = {3, 5};
  b1.accepted = {1, 0};
  b1.delta.friends = 1.0;
  b1.cost = 2.0;
  sim::BatchRecord b2;
  b2.requests = {7, 9, 11};
  b2.accepted = {0, 0, 1};
  b2.outcome = {0, 1, 0};  // node 9 timed out
  b2.delta.friends = 1.0;
  b2.cost = 3.0;
  t.batches = {b1, b2};
  // Fix cumulative fields the way run_attack would.
  t.batches[0].cumulative = t.batches[0].delta;
  t.batches[0].cumulative_cost = t.batches[0].cost;
  t.batches[1].cumulative = t.batches[0].cumulative;
  t.batches[1].cumulative += t.batches[1].delta;
  t.batches[1].cumulative_cost = t.batches[0].cost + t.batches[1].cost;

  std::stringstream ss;
  sim::write_traces(ss, {t});
  const std::string text = ss.str();
  EXPECT_NE(text.find("9:0:1"), std::string::npos);
  EXPECT_NE(text.find("3:1,5:0 "), std::string::npos);  // two-field fast path
  const auto loaded = sim::read_traces(ss);
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_EQ(loaded[0].batches.size(), 2u);
  EXPECT_TRUE(loaded[0].batches[0].outcome.empty());
  EXPECT_EQ(loaded[0].batches[1].outcome, b2.outcome);
  EXPECT_EQ(loaded[0].batches[1].requests, b2.requests);
}

}  // namespace
}  // namespace recon
