// Robustness fuzzing of the text parsers: random byte-level mutations of
// valid inputs must either parse to a valid object or throw a typed
// exception — never crash, hang, or produce an object that fails
// validate().
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"
#include "sim/problem.h"
#include "sim/problem_io.h"
#include "sim/trace_io.h"
#include "util/rng.h"

namespace recon {
namespace {

std::string mutate(const std::string& input, util::Rng& rng, int edits) {
  std::string s = input;
  for (int e = 0; e < edits && !s.empty(); ++e) {
    const std::size_t pos = static_cast<std::size_t>(rng.below(s.size()));
    switch (rng.below(4)) {
      case 0:  // flip to random printable
        s[pos] = static_cast<char>(' ' + rng.below(95));
        break;
      case 1:  // delete
        s.erase(pos, 1);
        break;
      case 2:  // duplicate
        s.insert(pos, 1, s[pos]);
        break;
      case 3:  // truncate
        s.resize(pos);
        break;
    }
  }
  return s;
}

TEST(FuzzIo, EdgeListParserNeverCrashes) {
  std::stringstream base;
  graph::write_edge_list(base, graph::erdos_renyi_gnm(30, 60, 3));
  const std::string valid = base.str();
  util::Rng rng(17);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::stringstream in(mutate(valid, rng, 1 + static_cast<int>(rng.below(8))));
    try {
      const auto g = graph::read_edge_list(in);
      // Whatever parsed must be internally consistent.
      for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
        ASSERT_LT(g.edge_u(e), g.num_nodes());
        ASSERT_LT(g.edge_v(e), g.num_nodes());
      }
      ++parsed;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  // Both outcomes should occur across 400 mutations.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzIo, TraceParserNeverCrashes) {
  const std::string valid =
      "#recon-trace v1\n"
      "trace 0\n"
      "batch sel=0.01 cost=3 reqs=1:1,2:0,3:1 df=1.5 dx=0.5 de=0.25\n"
      "batch sel=0.02 cost=2 reqs=4:1,5:0 df=1 dx=0 de=0\n"
      "trace 1\n"
      "batch sel=0.01 cost=1 reqs=7:1 df=1 dx=0 de=0\n";
  util::Rng rng(23);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::stringstream in(mutate(valid, rng, 1 + static_cast<int>(rng.below(6))));
    try {
      const auto traces = sim::read_traces(in);
      for (const auto& t : traces) {
        for (const auto& b : t.batches) {
          ASSERT_EQ(b.requests.size(), b.accepted.size());
        }
      }
      ++parsed;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzIo, ProblemParserNeverCrashes) {
  sim::ProblemOptions opts;
  opts.num_targets = 8;
  opts.seed = 3;
  const sim::Problem p = sim::make_problem(graph::erdos_renyi_gnm(25, 50, 1), opts);
  std::stringstream base;
  sim::write_problem(base, p);
  const std::string valid = base.str();
  util::Rng rng(31);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::stringstream in(mutate(valid, rng, 1 + static_cast<int>(rng.below(6))));
    try {
      const sim::Problem loaded = sim::read_problem(in);
      loaded.validate();  // read_problem validates, but double-check
      ++parsed;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed + rejected, 0);
  EXPECT_GT(rejected, 0);  // most mutations must be caught
}

}  // namespace
}  // namespace recon
