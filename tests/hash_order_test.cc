// Regression tests for hash-order determinism (tools/lint_invariants.py rule
// `hash-order`): paths that consume unordered containers must produce
// bit-identical output regardless of the containers' iteration order.
//
// libstdc++ fixes its hash seed per process, so the practical way hash order
// varies is through insertion history — the same elements inserted in a
// different order land in different bucket-chain positions. Every test here
// therefore drives the audited path with permuted insertion orders and
// asserts exact (bitwise, via EXPECT_EQ on doubles) equality. Before
// scenario_benefit switched to sorted extraction, the permuted runs disagreed
// in the last ulp of the float accumulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "graph/generators.h"
#include "metrics/rrs.h"
#include "sim/observation.h"
#include "sim/problem.h"
#include "solver/saa.h"
#include "util/rng.h"

namespace recon {
namespace {

using graph::NodeId;
using sim::Observation;
using sim::Problem;

Problem small_problem(int seed, graph::NodeId n = 24, graph::EdgeId m = 60) {
  sim::ProblemOptions opts;
  opts.num_targets = 8;
  opts.base_acceptance = 0.6;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(n, m, seed),
                               graph::EdgeProbModel::uniform(0.2, 0.9), seed + 1),
      opts);
}

TEST(HashOrder, ScenarioBenefitInvariantToBatchOrder) {
  const Problem p = small_problem(11);
  Observation obs(p);
  const auto scenarios = solver::sample_scenarios(obs, 40, 7);

  std::vector<NodeId> batch{0, 3, 5, 8, 12, 17, 21};
  std::vector<double> reference;
  reference.reserve(scenarios.size());
  for (const auto& sc : scenarios) {
    reference.push_back(solver::scenario_benefit(obs, sc, batch));
  }

  // Each permutation of the batch feeds the accepted-set hash table a
  // different insertion history; the benefit must not move a single bit.
  std::mt19937 perm_rng(123);  // shuffling test inputs only, not simulation
  for (int trial = 0; trial < 8; ++trial) {
    std::shuffle(batch.begin(), batch.end(), perm_rng);
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      EXPECT_EQ(solver::scenario_benefit(obs, scenarios[s], batch), reference[s])
          << "scenario " << s << " trial " << trial;
    }
  }
}

TEST(HashOrder, SaaObjectiveInvariantToBatchOrder) {
  const Problem p = small_problem(12);
  Observation obs(p);
  const auto scenarios = solver::sample_scenarios(obs, 60, 9);
  std::vector<NodeId> batch{1, 2, 6, 9, 13, 18};
  const double reference = solver::saa_objective(obs, scenarios, batch);
  std::vector<NodeId> reversed(batch.rbegin(), batch.rend());
  EXPECT_EQ(solver::saa_objective(obs, scenarios, reversed), reference);
  std::vector<NodeId> rotated(batch.begin() + 3, batch.end());
  rotated.insert(rotated.end(), batch.begin(), batch.begin() + 3);
  EXPECT_EQ(solver::saa_objective(obs, scenarios, rotated), reference);
}

sim::AttackTrace trace_over(const std::vector<NodeId>& nodes) {
  sim::AttackTrace t;
  sim::BatchRecord b;
  for (NodeId u : nodes) {
    b.requests.push_back(u);
    b.accepted.push_back(1);
  }
  b.cost = static_cast<double>(nodes.size());
  b.cumulative_cost = b.cost;
  t.batches.push_back(std::move(b));
  return t;
}

TEST(HashOrder, VulnerableUsersInvariantToTraceOrder) {
  // The counts/last_trace hash maps see a different insertion order when the
  // traces are permuted, but the ranking (frequency desc, node asc — a total
  // order) must be identical, including for tied frequencies.
  std::vector<sim::AttackTrace> traces{
      trace_over({4, 2, 9}),
      trace_over({2, 7, 9, 4}),
      trace_over({9, 1}),
      trace_over({7, 4}),
  };
  const auto reference = metrics::vulnerable_users(traces, 16);
  ASSERT_FALSE(reference.empty());

  std::vector<sim::AttackTrace> permuted{traces[2], traces[0], traces[3], traces[1]};
  const auto again = metrics::vulnerable_users(permuted, 16);
  ASSERT_EQ(again.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(again[i].first, reference[i].first) << "rank " << i;
    EXPECT_EQ(again[i].second, reference[i].second) << "rank " << i;
  }
}

}  // namespace
}  // namespace recon
