// Deadline-aware solver degradation: fob deadline handling and the
// exact -> SAA-greedy -> lazy-greedy FallbackStrategy.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/attack.h"
#include "graph/generators.h"
#include "sim/observation.h"
#include "sim/problem.h"
#include "sim/world.h"
#include "solver/fallback.h"
#include "solver/fob.h"
#include "solver/saa.h"

namespace recon::solver {
namespace {

using graph::NodeId;
using sim::Observation;
using sim::Problem;

Problem small_problem(int seed, graph::NodeId n = 40, graph::EdgeId m = 120) {
  sim::ProblemOptions opts;
  opts.num_targets = 10;
  opts.base_acceptance = 0.5;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(n, m, seed),
                               graph::EdgeProbModel::uniform(0.2, 0.9), seed + 1),
      opts);
}

TEST(FobDeadline, GreedyStopsAtTinyDeadline) {
  const Problem p = small_problem(1);
  const Observation obs(p);
  const auto candidates = fob_candidates(obs, false);
  const auto scenarios = sample_scenarios(obs, 400, 7);
  // A deadline so tight it cannot even finish singleton scoring.
  const FobResult r = fob_greedy(obs, scenarios, 3, candidates, 1e-9);
  EXPECT_TRUE(r.timed_out);
  // No deadline: a full batch comes back.
  const FobResult full = fob_greedy(obs, scenarios, 3, candidates);
  EXPECT_FALSE(full.timed_out);
  EXPECT_EQ(full.batch.size(), 3u);
  EXPECT_GT(full.objective, 0.0);
}

TEST(FobDeadline, ExactFallsBackToGreedyIncumbentOnTimeout) {
  const Problem p = small_problem(2);
  const Observation obs(p);
  const auto candidates = fob_candidates(obs, false);
  const auto scenarios = sample_scenarios(obs, 300, 8);

  FobExactOptions generous;
  const FobResult exact = fob_exact(obs, scenarios, 2, candidates, generous);
  EXPECT_TRUE(exact.exact);
  EXPECT_FALSE(exact.timed_out);
  EXPECT_EQ(exact.batch.size(), 2u);

  FobExactOptions tight;
  tight.deadline_seconds = 1e-9;
  const FobResult cut = fob_exact(obs, scenarios, 2, candidates, tight);
  EXPECT_TRUE(cut.timed_out);
  EXPECT_FALSE(cut.exact);
  // The exact answer is at least as good as whatever the cut solve returned.
  EXPECT_GE(exact.objective, cut.objective - 1e-9);
}

TEST(Fallback, ValidatesOptions) {
  FallbackOptions bad;
  bad.batch_size = 0;
  EXPECT_THROW(FallbackStrategy{bad}, std::invalid_argument);
  bad = {};
  bad.scenarios_per_batch = 0;
  EXPECT_THROW(FallbackStrategy{bad}, std::invalid_argument);
  bad = {};
  bad.exact_deadline_seconds = -1.0;
  EXPECT_THROW(FallbackStrategy{bad}, std::invalid_argument);
}

TEST(Fallback, GenerousDeadlineUsesExactTier) {
  const Problem p = small_problem(3);
  const sim::World w(p, 5);
  FallbackOptions o;
  o.batch_size = 2;
  o.scenarios_per_batch = 200;
  o.exact_deadline_seconds = 30.0;
  o.saa_deadline_seconds = 30.0;
  o.candidate_cap = 12;
  FallbackStrategy strategy(o);
  const auto trace = core::run_attack(p, w, strategy, 10.0);
  EXPECT_GT(trace.batches.size(), 0u);
  EXPECT_GT(strategy.tier_counts().exact, 0u);
  EXPECT_EQ(strategy.tier_counts().exact + strategy.tier_counts().saa_greedy +
                strategy.tier_counts().lazy_greedy,
            trace.batches.size());
}

TEST(Fallback, MillisecondDeadlineCompletesViaCheaperTiers) {
  const Problem p = small_problem(4, 120, 500);
  const sim::World w(p, 6);
  FallbackOptions o;
  o.batch_size = 4;
  o.scenarios_per_batch = 2000;  // makes one SAA evaluation expensive
  o.exact_deadline_seconds = 0.001;  // the acceptance criterion's 1 ms budget
  o.saa_deadline_seconds = 0.001;
  FallbackStrategy strategy(o);
  const auto trace = core::run_attack(p, w, strategy, 40.0);
  // The attack must complete and spend its budget despite the 1 ms ceiling.
  EXPECT_GT(trace.batches.size(), 0u);
  EXPECT_GT(trace.total_benefit(), 0.0);
  const auto& counts = strategy.tier_counts();
  EXPECT_EQ(counts.exact + counts.saa_greedy + counts.lazy_greedy,
            trace.batches.size());
  // At least one batch had to degrade below the exact tier.
  EXPECT_GT(counts.saa_greedy + counts.lazy_greedy, 0u);
}

TEST(Fallback, ZeroDeadlinesSkipStraightToFloor) {
  const Problem p = small_problem(5);
  const sim::World w(p, 7);
  FallbackOptions o;
  o.batch_size = 3;
  o.exact_deadline_seconds = 0.0;
  o.saa_deadline_seconds = 0.0;
  FallbackStrategy strategy(o);
  const auto trace = core::run_attack(p, w, strategy, 15.0);
  EXPECT_GT(trace.batches.size(), 0u);
  EXPECT_EQ(strategy.tier_counts().exact, 0u);
  EXPECT_EQ(strategy.tier_counts().saa_greedy, 0u);
  EXPECT_EQ(strategy.tier_counts().lazy_greedy, trace.batches.size());
}

TEST(Fallback, StateRoundTripsThroughSaveRestore) {
  FallbackOptions o;
  FallbackStrategy a(o);
  const Problem p = small_problem(6);
  const sim::World w(p, 8);
  core::run_attack(p, w, a, 9.0);
  const std::string blob = a.save_state();
  FallbackStrategy b(o);
  b.restore_state(blob);
  EXPECT_EQ(b.save_state(), blob);
  EXPECT_EQ(b.tier_counts().exact, a.tier_counts().exact);
  EXPECT_EQ(b.tier_counts().lazy_greedy, a.tier_counts().lazy_greedy);
  FallbackStrategy c(o);
  EXPECT_THROW(c.restore_state("not a fallback blob"), std::invalid_argument);
}

}  // namespace
}  // namespace recon::solver
