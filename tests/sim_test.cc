// Tests for the simulation substrate: benefit models, acceptance models,
// problem construction and target selection.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "sim/problem.h"

namespace recon::sim {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;

Graph path4() {
  GraphBuilder b(4);
  b.add_edge(0, 1, 0.5);
  b.add_edge(1, 2, 0.5);
  b.add_edge(2, 3, 0.5);
  return b.build();
}

TEST(BenefitModel, PaperModelValues) {
  const Graph g = path4();
  std::vector<std::uint8_t> is_target{0, 1, 1, 0};
  const BenefitModel m = make_paper_benefit(g, is_target);
  EXPECT_DOUBLE_EQ(m.bf[0], 0.0);
  EXPECT_DOUBLE_EQ(m.bf[1], 1.0);
  EXPECT_DOUBLE_EQ(m.bfof[1], 0.5);
  EXPECT_DOUBLE_EQ(m.bfof[3], 0.0);
  // M = max expected degree = node 1 or 2: 0.5 + 0.5 = 1.0.
  // Edge (0,1): one endpoint in T -> 2/1; edge (1,2): both -> 4; (2,3): one -> 2.
  EXPECT_DOUBLE_EQ(m.bi[g.find_edge(0, 1)], 2.0);
  EXPECT_DOUBLE_EQ(m.bi[g.find_edge(1, 2)], 4.0);
  EXPECT_DOUBLE_EQ(m.bi[g.find_edge(2, 3)], 2.0);
  m.validate(g);
}

TEST(BenefitModel, UniformModel) {
  const Graph g = path4();
  const BenefitModel m = make_uniform_benefit(g, 0.25, 0.125);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_DOUBLE_EQ(m.bf[u], 1.0);
    EXPECT_DOUBLE_EQ(m.bfof[u], 0.25);
  }
  EXPECT_DOUBLE_EQ(m.bi[0], 0.125);
}

TEST(BenefitModel, ValidationCatchesViolations) {
  const Graph g = path4();
  BenefitModel m = make_uniform_benefit(g);
  m.bfof[1] = 2.0;  // Bfof > Bf
  EXPECT_THROW(m.validate(g), std::invalid_argument);
  m = make_uniform_benefit(g);
  m.bf.pop_back();
  EXPECT_THROW(m.validate(g), std::invalid_argument);
  m = make_uniform_benefit(g);
  m.bi[0] = -1.0;
  EXPECT_THROW(m.validate(g), std::invalid_argument);
}

TEST(BenefitBreakdown, Arithmetic) {
  BenefitBreakdown a{1.0, 2.0, 3.0};
  BenefitBreakdown b{0.5, 0.5, 0.5};
  a += b;
  EXPECT_DOUBLE_EQ(a.total(), 7.5);
  const BenefitBreakdown d = a - b;
  EXPECT_DOUBLE_EQ(d.total(), 6.0);
}

TEST(AcceptanceModel, ConstantBase) {
  const Graph g = path4();
  const AcceptanceModel m = make_constant_acceptance(0.3);
  m.validate(g);
  EXPECT_DOUBLE_EQ(m.probability(g, 0, 0), 0.3);
  EXPECT_DOUBLE_EQ(m.probability(g, 3, 0), 0.3);
}

TEST(AcceptanceModel, MutualBoostSaturating) {
  const Graph g = path4();
  AcceptanceModel m = make_constant_acceptance(0.3);
  m.mutual_boost = 0.5;
  const double q0 = m.probability(g, 0, 0);
  const double q1 = m.probability(g, 0, 1);
  const double q2 = m.probability(g, 0, 2);
  EXPECT_DOUBLE_EQ(q0, 0.3);
  EXPECT_DOUBLE_EQ(q1, 1.0 - 0.7 * 0.5);
  EXPECT_DOUBLE_EQ(q2, 1.0 - 0.7 * 0.25);
  EXPECT_LT(q1, q2);
  EXPECT_LE(q2, 1.0);
}

TEST(AcceptanceModel, PerNodeBaseRates) {
  const Graph g = path4();
  const AcceptanceModel m = make_uniform_acceptance(g, 0.1, 0.5, 0.0, 7);
  m.validate(g);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_GE(m.probability(g, u, 0), 0.1);
    EXPECT_LE(m.probability(g, u, 0), 0.5);
  }
}

TEST(AcceptanceModel, AttributeSimilarityBoost) {
  Graph g = path4();
  g = graph::assign_attributes(g, 4, 3, 0.0, 11);
  AcceptanceModel m = make_attribute_acceptance(g, 0.2, 0.4, 0.0, 13);
  m.validate(g);
  // Probability must stay within [0.2, 0.6] and match the formula.
  for (NodeId u = 0; u < 4; ++u) {
    const double q = m.probability(g, u, 0);
    EXPECT_GE(q, 0.2 - 1e-12);
    EXPECT_LE(q, 0.6 + 1e-12);
  }
  // The node whose attributes the attacker cloned gets the full boost.
  bool some_full = false;
  for (NodeId u = 0; u < 4; ++u) {
    some_full |= std::abs(m.probability(g, u, 0) - 0.6) < 1e-12;
  }
  EXPECT_TRUE(some_full);
}

TEST(AcceptanceModel, Validation) {
  const Graph g = path4();
  AcceptanceModel m;
  EXPECT_THROW(m.validate(g), std::invalid_argument);  // empty q0
  m.q0 = {1.5};
  EXPECT_THROW(m.validate(g), std::invalid_argument);
  m.q0 = {0.5};
  m.mutual_boost = 1.0;
  EXPECT_THROW(m.validate(g), std::invalid_argument);
  m.mutual_boost = 0.0;
  m.attr_weight = 0.3;  // no attributes on graph
  EXPECT_THROW(m.validate(g), std::invalid_argument);
}

TEST(Problem, MakeProblemBasics) {
  ProblemOptions opts;
  opts.num_targets = 20;
  opts.seed = 3;
  const Problem p = make_problem(graph::barabasi_albert(100, 3, 5), opts);
  EXPECT_EQ(p.targets.size(), 20u);
  EXPECT_EQ(p.graph.num_nodes(), 100u);
  std::size_t bitmap_count = 0;
  for (auto b : p.is_target) bitmap_count += b;
  EXPECT_EQ(bitmap_count, 20u);
  EXPECT_DOUBLE_EQ(p.cost_of(0), 1.0);
  EXPECT_GT(p.benefit_upper_bound(), 0.0);
}

TEST(Problem, TargetModes) {
  const Graph g = graph::barabasi_albert(200, 3, 5);
  const auto random_t = select_targets(g, 30, TargetMode::kRandom, 1);
  const auto ball_t = select_targets(g, 30, TargetMode::kBfsBall, 1);
  const auto degree_t = select_targets(g, 30, TargetMode::kHighDegree, 1);
  EXPECT_EQ(random_t.size(), 30u);
  EXPECT_EQ(ball_t.size(), 30u);
  EXPECT_EQ(degree_t.size(), 30u);
  EXPECT_TRUE(std::is_sorted(ball_t.begin(), ball_t.end()));
  // High-degree targets should have larger mean degree than random ones.
  auto mean_deg = [&](const std::vector<NodeId>& nodes) {
    double s = 0;
    for (NodeId u : nodes) s += g.degree(u);
    return s / static_cast<double>(nodes.size());
  };
  EXPECT_GT(mean_deg(degree_t), mean_deg(random_t));
}

TEST(Problem, BfsBallIsConnectedish) {
  const Graph g = graph::watts_strogatz(200, 3, 0.0, 1);  // ring lattice
  const auto ball = select_targets(g, 25, TargetMode::kBfsBall, 9);
  // On a ring, a BFS ball is an interval: max - min spans < 2 * count
  // (allowing wraparound to fail this occasionally, use a permissive check:
  // the targets must be far denser than uniform).
  std::vector<NodeId> sorted = ball;
  std::sort(sorted.begin(), sorted.end());
  NodeId best_gap = 0;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    best_gap = std::max(best_gap, sorted[i] - sorted[i - 1]);
  }
  // Uniform sampling would have typical max gaps of ~n/count * log(count);
  // a contiguous ball (possibly wrapping) has one large gap at most.
  std::size_t big_gaps = 0;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    big_gaps += (sorted[i] - sorted[i - 1]) > 10;
  }
  EXPECT_LE(big_gaps, 1u);
}

TEST(Problem, ValidateCatchesBadCost) {
  ProblemOptions opts;
  opts.num_targets = 5;
  Problem p = make_problem(graph::erdos_renyi_gnm(20, 40, 1), opts);
  p.cost.assign(20, 1.0);
  p.cost[3] = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.cost.assign(3, 1.0);
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, TargetCountClamped) {
  ProblemOptions opts;
  opts.num_targets = 1000;  // more than nodes
  const Problem p = make_problem(graph::erdos_renyi_gnm(20, 40, 1), opts);
  EXPECT_EQ(p.targets.size(), 20u);
}

}  // namespace
}  // namespace recon::sim
