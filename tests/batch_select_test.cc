// Tests for BATCHSELECT: the collapsed expectation tree must agree exactly
// with the literal branch-tree enumeration (the core algorithmic claim of
// DESIGN.md §2.3), lazy greedy must match eager greedy, and batch scores
// must telescope to the true expected batch benefit.
#include <gtest/gtest.h>

#include "core/batch_select.h"

#include <set>

#include "graph/builder.h"
#include "core/batch_state.h"
#include "core/branch_tree.h"
#include "core/marginal.h"
#include "graph/generators.h"
#include "sim/observation.h"
#include "sim/problem.h"
#include "sim/world.h"
#include "solver/saa.h"
#include "util/rng.h"

namespace recon::core {
namespace {

using graph::NodeId;
using sim::Observation;
using sim::Problem;

Problem random_problem(int seed, graph::NodeId n = 30, graph::EdgeId m = 70,
                       double q = 0.4) {
  sim::ProblemOptions opts;
  opts.num_targets = 10;
  opts.base_acceptance = q;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(n, m, seed),
                               graph::EdgeProbModel::uniform(0.15, 0.95), seed + 1),
      opts);
}

void advance_observation(const Problem& p, Observation& obs, int steps, int seed) {
  const sim::World w(p, static_cast<std::uint64_t>(seed) + 500);
  util::Rng rng(static_cast<std::uint64_t>(seed));
  for (int step = 0; step < steps; ++step) {
    const auto u = static_cast<NodeId>(rng.below(p.graph.num_nodes()));
    if (obs.is_friend(u)) continue;
    if (w.attempt_accept(u, obs.attempts(u), obs.acceptance_prob(u))) {
      obs.record_accept(u, w.true_neighbors(u));
    } else {
      obs.record_reject(u);
    }
  }
}

TEST(BatchState, EmptyBatchGammaEqualsMarginal) {
  const Problem p = random_problem(3);
  Observation obs(p);
  advance_observation(p, obs, 5, 3);
  BatchState state(p.graph.num_nodes());
  for (NodeId u = 0; u < p.graph.num_nodes(); ++u) {
    if (obs.is_friend(u)) continue;
    for (auto policy : {MarginalPolicy::kWeighted, MarginalPolicy::kPaperLiteral}) {
      EXPECT_NEAR(state.gamma(obs, u, policy), marginal_gain(obs, u, policy), 1e-12);
    }
  }
}

TEST(BatchState, ResetClearsSelection) {
  const Problem p = random_problem(4);
  Observation obs(p);
  BatchState state(p.graph.num_nodes());
  state.select(obs, 0, 0.5);
  EXPECT_TRUE(state.is_selected(0));
  EXPECT_EQ(state.size(), 1u);
  state.reset();
  EXPECT_FALSE(state.is_selected(0));
  EXPECT_TRUE(state.empty());
  for (NodeId v : p.graph.neighbors(0)) {
    EXPECT_DOUBLE_EQ(state.fof_factor(v), 1.0);
  }
}

TEST(BatchState, SelectingTwiceThrows) {
  const Problem p = random_problem(4);
  Observation obs(p);
  BatchState state(p.graph.num_nodes());
  state.select(obs, 1, 0.4);
  EXPECT_THROW(state.select(obs, 1, 0.4), std::logic_error);
}

TEST(BatchState, FofFactorFormula) {
  const Problem p = random_problem(5);
  Observation obs(p);
  BatchState state(p.graph.num_nodes());
  const NodeId u = 0;
  const double q = obs.acceptance_prob(u);
  state.select(obs, u, q);
  const auto nbrs = p.graph.neighbors(u);
  const auto eids = p.graph.incident_edges(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    EXPECT_NEAR(state.fof_factor(nbrs[i]),
                1.0 - q * p.graph.edge_prob(eids[i]), 1e-12);
  }
}

// THE key equivalence: collapsed Γ == branch-tree Γ for every candidate,
// under both policies, at several batch sizes and observation depths.
class CollapsedVsBranchTree
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CollapsedVsBranchTree, GammaAgreesExactly) {
  const int seed = std::get<0>(GetParam());
  const int obs_steps = std::get<1>(GetParam());
  const Problem p = random_problem(seed);
  Observation obs(p);
  advance_observation(p, obs, obs_steps, seed);

  for (auto policy : {MarginalPolicy::kWeighted, MarginalPolicy::kPaperLiteral}) {
    BatchState state(p.graph.num_nodes());
    std::vector<NodeId> batch;
    // Greedily grow a batch of 5 using the collapsed Γ, cross-checking every
    // candidate against the exponential enumeration at every step.
    for (int round = 0; round < 5; ++round) {
      NodeId best = graph::kInvalidNode;
      double best_score = -1.0;
      for (NodeId u = 0; u < p.graph.num_nodes(); ++u) {
        if (obs.is_friend(u) || state.is_selected(u)) continue;
        const double collapsed = state.gamma(obs, u, policy);
        const double tree = branch_tree_gamma(obs, batch, u, policy);
        ASSERT_NEAR(collapsed, tree, 1e-9)
            << "seed=" << seed << " round=" << round << " node=" << u
            << " policy=" << static_cast<int>(policy);
        if (collapsed > best_score) {
          best_score = collapsed;
          best = u;
        }
      }
      if (best == graph::kInvalidNode) break;
      state.select(obs, best, obs.acceptance_prob(best));
      batch.push_back(best);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CollapsedVsBranchTree,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(0, 6)));

TEST(BatchSelect, MatchesBranchTreeSelection) {
  // With identical scores the two selectors should pick identical batches
  // (ties broken by node id in both).
  for (int seed = 1; seed <= 4; ++seed) {
    const Problem p = random_problem(seed);
    Observation obs(p);
    advance_observation(p, obs, 4, seed);
    BatchSelectOptions opts;
    opts.batch_size = 6;
    const auto fast = batch_select(obs, opts);
    BranchTreeOptions bt;
    bt.batch_size = 6;
    const auto slow = branch_tree_select(obs, bt);
    EXPECT_EQ(fast, slow) << "seed " << seed;
  }
}

TEST(BatchSelect, LazyMatchesEagerParallel) {
  util::ThreadPool pool(3);
  for (int seed = 1; seed <= 4; ++seed) {
    const Problem p = random_problem(seed, 60, 160);
    Observation obs(p);
    advance_observation(p, obs, 6, seed);
    BatchSelectOptions lazy;
    lazy.batch_size = 8;
    BatchSelectOptions eager = lazy;
    eager.pool = &pool;
    eager.parallel_eager = true;
    EXPECT_EQ(batch_select(obs, lazy), batch_select(obs, eager)) << "seed " << seed;
  }
}

TEST(BatchSelect, ParallelLazyBitIdenticalAcrossThreadCounts) {
  // The tentpole determinism guarantee: the parallel lazy greedy returns
  // byte-identical batches to the sequential path at every pool size, on
  // both a heavy-tailed (BA) and a homogeneous (ER) graph.
  for (const bool ba : {true, false}) {
    for (int seed = 1; seed <= 3; ++seed) {
      sim::ProblemOptions popts;
      popts.num_targets = 40;
      popts.base_acceptance = 0.35;
      popts.seed = static_cast<std::uint64_t>(seed);
      const Problem p = sim::make_problem(
          graph::assign_edge_probs(
              ba ? graph::barabasi_albert(220, 5, seed)
                 : graph::erdos_renyi_gnm(220, 900, seed),
              graph::EdgeProbModel::uniform(0.2, 0.95), seed + 1),
          popts);
      Observation obs(p);
      advance_observation(p, obs, 12, seed);
      BatchSelectOptions seq;
      seq.batch_size = 10;
      const auto reference = batch_select(obs, seq);
      ASSERT_FALSE(reference.empty());
      for (const unsigned threads : {1u, 2u, 8u}) {
        util::ThreadPool pool(threads);
        BatchSelectOptions par = seq;
        par.pool = &pool;
        EXPECT_EQ(batch_select(obs, par), reference)
            << (ba ? "BA" : "ER") << " seed=" << seed << " threads=" << threads;
      }
    }
  }
}

TEST(BatchSelect, ParallelLazyMatchesSequentialWithCostsAndRetries) {
  // Determinism must survive the trickier option combinations: cost-ratio
  // scores, retry candidates, attempt caps, and tight budgets (which force
  // permanent drops and deep frontier digs past the shard top-k heads).
  util::ThreadPool pool(4);
  for (int seed = 1; seed <= 3; ++seed) {
    Problem p = random_problem(seed, 120, 420);
    p.cost.resize(p.graph.num_nodes());
    for (NodeId u = 0; u < p.graph.num_nodes(); ++u) {
      p.cost[u] = 1.0 + 0.25 * static_cast<double>(u % 4);
    }
    Observation obs(p);
    advance_observation(p, obs, 25, seed);
    BatchSelectOptions seq;
    seq.batch_size = 12;
    seq.cost_sensitive = true;
    seq.allow_retries = true;
    seq.max_attempts_per_node = 3;
    seq.remaining_budget = 14.0;
    BatchSelectOptions par = seq;
    par.pool = &pool;
    EXPECT_EQ(batch_select(obs, par), batch_select(obs, seq)) << "seed " << seed;
  }
}

TEST(BatchSelect, ParallelLazyBitIdenticalThroughFullAttack) {
  // Drive both selectors in lockstep on a shared observation for a whole
  // attack, so divergence at any batch (not just the first) is caught.
  util::ThreadPool pool(3);
  const Problem p = random_problem(9, 100, 300);
  const sim::World w(p, 41);
  Observation obs(p);
  double budget = 60.0;
  while (budget > 0) {
    BatchSelectOptions seq;
    seq.batch_size = 7;
    seq.remaining_budget = budget;
    BatchSelectOptions par = seq;
    par.pool = &pool;
    const auto reference = batch_select(obs, seq);
    ASSERT_EQ(batch_select(obs, par), reference) << "budget=" << budget;
    if (reference.empty()) break;
    for (NodeId u : reference) {
      if (w.attempt_accept(u, obs.attempts(u), obs.acceptance_prob(u))) {
        obs.record_accept(u, w.true_neighbors(u));
      } else {
        obs.record_reject(u);
      }
      budget -= 1.0;
    }
  }
}

TEST(BatchState, GammaKernelMatchesGammaMidBatch) {
  // The flat kernel must agree with gamma at every batch size, including
  // after selections touched the fof factors.
  const Problem p = random_problem(6, 80, 240);
  Observation obs(p);
  advance_observation(p, obs, 8, 6);
  for (auto policy : {MarginalPolicy::kWeighted, MarginalPolicy::kPaperLiteral}) {
    BatchState state(p.graph.num_nodes());
    for (int round = 0; round < 4; ++round) {
      const GammaKernel kernel(obs, state, policy);
      NodeId pick = graph::kInvalidNode;
      for (NodeId u = 0; u < p.graph.num_nodes(); ++u) {
        if (obs.is_friend(u) || state.is_selected(u)) continue;
        const double q = obs.acceptance_prob(u);
        ASSERT_EQ(kernel.score(u, q), state.gamma(obs, u, policy, q))
            << "node " << u << " round " << round;
        if (pick == graph::kInvalidNode) pick = u;
      }
      if (pick == graph::kInvalidNode) break;
      state.select(obs, pick, obs.acceptance_prob(pick));
    }
  }
}

TEST(BatchSelect, RespectsBatchSizeAndCandidates) {
  const Problem p = random_problem(2);
  Observation obs(p);
  BatchSelectOptions opts;
  opts.batch_size = 4;
  const auto batch = batch_select(obs, opts);
  EXPECT_EQ(batch.size(), 4u);
  // Distinct nodes, all requestable.
  std::set<NodeId> uniq(batch.begin(), batch.end());
  EXPECT_EQ(uniq.size(), batch.size());
  for (NodeId u : batch) EXPECT_TRUE(obs.requestable(u, false));
}

TEST(BatchSelect, ExcludesRejectedUnlessRetrying) {
  const Problem p = random_problem(2);
  Observation obs(p);
  // Reject everything except nodes 0 and 1.
  for (NodeId u = 2; u < p.graph.num_nodes(); ++u) obs.record_reject(u);
  BatchSelectOptions opts;
  opts.batch_size = 5;
  const auto no_retry = batch_select(obs, opts);
  EXPECT_LE(no_retry.size(), 2u);
  opts.allow_retries = true;
  opts.max_attempts_per_node = 2;
  const auto with_retry = batch_select(obs, opts);
  EXPECT_EQ(with_retry.size(), 5u);
}

TEST(BatchSelect, AttemptCapLimitsRetries) {
  const Problem p = random_problem(2);
  Observation obs(p);
  obs.record_reject(0);
  obs.record_reject(0);
  BatchSelectOptions opts;
  opts.batch_size = static_cast<int>(p.graph.num_nodes());
  opts.allow_retries = true;
  opts.max_attempts_per_node = 2;
  const auto batch = batch_select(obs, opts);
  EXPECT_EQ(std::find(batch.begin(), batch.end(), 0), batch.end());
}

TEST(BatchSelect, BudgetLimitsBatch) {
  Problem p = random_problem(2);
  p.cost.assign(p.graph.num_nodes(), 2.0);
  Observation obs(p);
  BatchSelectOptions opts;
  opts.batch_size = 10;
  opts.remaining_budget = 5.0;  // affords only 2 nodes at cost 2
  const auto batch = batch_select(obs, opts);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BatchSelect, CostSensitivePrefersCheapNodes) {
  // Two identical stars; one center is expensive.
  graph::GraphBuilder b(8);
  for (NodeId v = 1; v <= 3; ++v) b.add_edge(0, v, 1.0);
  for (NodeId v = 5; v <= 7; ++v) b.add_edge(4, v, 1.0);
  Problem p;
  p.graph = b.build();
  p.targets = {0, 1, 2, 3, 4, 5, 6, 7};
  p.is_target.assign(8, 1);
  p.benefit = sim::make_paper_benefit(p.graph, p.is_target);
  p.acceptance = sim::make_constant_acceptance(0.5);
  p.cost.assign(8, 1.0);
  p.cost[0] = 10.0;
  Observation obs(p);
  BatchSelectOptions opts;
  opts.batch_size = 1;
  opts.cost_sensitive = true;
  const auto batch = batch_select(obs, opts);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 4u);  // the cheap twin wins under Δ/c
}

TEST(BatchSelect, GreedyScoresAreNonincreasing) {
  // Submodularity within the batch: the sequence of accepted Γ values must
  // be nonincreasing under the weighted policy.
  for (int seed = 1; seed <= 5; ++seed) {
    const Problem p = random_problem(seed, 50, 120);
    Observation obs(p);
    advance_observation(p, obs, 5, seed);
    BatchState state(p.graph.num_nodes());
    double last = 1e300;
    for (int round = 0; round < 8; ++round) {
      NodeId best = graph::kInvalidNode;
      double best_score = -1.0;
      for (NodeId u = 0; u < p.graph.num_nodes(); ++u) {
        if (obs.is_friend(u) || state.is_selected(u)) continue;
        const double s = state.gamma(obs, u, MarginalPolicy::kWeighted);
        if (s > best_score) {
          best_score = s;
          best = u;
        }
      }
      if (best == graph::kInvalidNode) break;
      ASSERT_LE(best_score, last + 1e-9);
      last = best_score;
      state.select(obs, best, obs.acceptance_prob(best));
    }
  }
}

TEST(BatchSelect, GammaTelescopesToExpectedBatchBenefit) {
  // Σ_i Γ(u_i | u_1..u_{i-1}) must equal E[benefit of the whole batch],
  // estimated by the independent SAA evaluator.
  const Problem p = random_problem(7);
  Observation obs(p);
  advance_observation(p, obs, 5, 7);
  BatchState state(p.graph.num_nodes());
  BatchSelectOptions opts;
  opts.batch_size = 6;
  const auto batch = batch_select(obs, opts);
  ASSERT_EQ(batch.size(), 6u);
  double gamma_sum = 0.0;
  for (NodeId u : batch) {
    gamma_sum += state.gamma(obs, u, MarginalPolicy::kWeighted);
    state.select(obs, u, obs.acceptance_prob(u));
  }
  const auto scenarios = solver::sample_scenarios(obs, 60000, 99);
  const double sampled = solver::saa_objective(obs, scenarios, batch);
  EXPECT_NEAR(sampled, gamma_sum, std::max(0.1, gamma_sum * 0.03));
}

TEST(BranchTree, PoolAndSequentialAgree) {
  util::ThreadPool pool(3);
  const Problem p = random_problem(3);
  Observation obs(p);
  advance_observation(p, obs, 4, 3);
  BranchTreeOptions seq;
  seq.batch_size = 5;
  BranchTreeOptions par = seq;
  par.pool = &pool;
  EXPECT_EQ(branch_tree_select(obs, seq), branch_tree_select(obs, par));
}

TEST(BranchTree, RejectsHugeBatch) {
  const Problem p = random_problem(1);
  Observation obs(p);
  std::vector<NodeId> big(25, 0);
  EXPECT_THROW(branch_tree_gamma(obs, big, 1, MarginalPolicy::kWeighted),
               std::invalid_argument);
  BranchTreeOptions bt;
  bt.batch_size = 21;
  EXPECT_THROW(branch_tree_select(obs, bt), std::invalid_argument);
}

}  // namespace
}  // namespace recon::core
