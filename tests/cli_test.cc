// Tests for the CLI command layer (driven directly, no subprocesses).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "cli/commands.h"
#include "graph/io.h"
#include "sim/trace_io.h"

namespace recon::cli {
namespace {

int run(std::initializer_list<const char*> argv, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::vector<const char*> full{"recon"};
  full.insert(full.end(), argv.begin(), argv.end());
  std::ostringstream out, err;
  const int rc =
      dispatch(static_cast<int>(full.size()), full.data(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

TEST(Cli, HelpAndUnknownCommand) {
  std::string out;
  EXPECT_EQ(run({"help"}, &out), 0);
  EXPECT_NE(out.find("generate"), std::string::npos);
  std::string err;
  EXPECT_EQ(run({"frobnicate"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
  EXPECT_EQ(run({}, nullptr, &err), 2);
}

TEST(Cli, GenerateWritesGraph) {
  const std::string path = "/tmp/recon_cli_test_g.txt";
  std::string out;
  ASSERT_EQ(run({"generate", "--model", "ws", "--nodes", "100", "--k", "4",
                 "--out", path.c_str(), "--seed", "5"},
                &out),
            0);
  EXPECT_NE(out.find("100 nodes"), std::string::npos);
  const auto g = graph::read_edge_list_file(path);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 400u);
}

TEST(Cli, GenerateEveryModel) {
  for (const char* model : {"ba", "ws", "er", "sbm", "powerlaw"}) {
    const std::string path = std::string("/tmp/recon_cli_") + model + ".txt";
    EXPECT_EQ(run({"generate", "--model", model, "--nodes", "80", "--out",
                   path.c_str()}),
              0)
        << model;
  }
}

TEST(Cli, GenerateRejectsBadInput) {
  std::string err;
  EXPECT_EQ(run({"generate", "--model", "nope", "--out", "/tmp/x.txt"}, nullptr, &err),
            1);
  EXPECT_NE(err.find("unknown --model"), std::string::npos);
  EXPECT_EQ(run({"generate", "--model", "ba"}, nullptr, &err), 1);  // no --out
  EXPECT_EQ(run({"generate", "--model", "ba", "--probs", "nah", "--out", "/tmp/x.txt"},
                nullptr, &err),
            1);
}

TEST(Cli, AttackMetricsPipeline) {
  const std::string graph_path = "/tmp/recon_cli_pipe_g.txt";
  const std::string trace_path = "/tmp/recon_cli_pipe_t.traces";
  ASSERT_EQ(run({"generate", "--model", "ba", "--nodes", "200", "--m", "4", "--out",
                 graph_path.c_str()}),
            0);
  std::string out;
  ASSERT_EQ(run({"attack", "--graph", graph_path.c_str(), "--strategy", "pm", "--k",
                 "8", "--budget", "40", "--runs", "4", "--retries", "--traces",
                 trace_path.c_str()},
                &out),
            0);
  EXPECT_NE(out.find("PM-AReST(k=8,retry)"), std::string::npos);
  const auto traces = sim::read_traces_file(trace_path);
  EXPECT_EQ(traces.size(), 4u);

  ASSERT_EQ(run({"metrics", "--traces", trace_path.c_str(), "--threshold", "5"},
                &out),
            0);
  EXPECT_NE(out.find("RRS"), std::string::npos);
  EXPECT_NE(out.find("RT-RRS"), std::string::npos);
}

TEST(Cli, AttackEveryStrategy) {
  const std::string graph_path = "/tmp/recon_cli_strat_g.txt";
  ASSERT_EQ(run({"generate", "--model", "er", "--nodes", "60", "--edges", "150",
                 "--out", graph_path.c_str()}),
            0);
  for (const char* strategy : {"pm", "m", "random", "degree", "mip", "lshaped"}) {
    std::string out, err;
    EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--strategy", strategy,
                   "--k", "3", "--budget", "9", "--runs", "2", "--targets", "15",
                   "--samples", "40"},
                  &out, &err),
              0)
        << strategy << ": " << err;
    EXPECT_NE(out.find("mean benefit"), std::string::npos);
  }
}

TEST(Cli, AttackRejectsBadInput) {
  std::string err;
  EXPECT_EQ(run({"attack"}, nullptr, &err), 1);  // no graph
  EXPECT_EQ(run({"attack", "--graph", "/nonexistent.txt"}, nullptr, &err), 1);
  const std::string graph_path = "/tmp/recon_cli_bad_g.txt";
  ASSERT_EQ(run({"generate", "--model", "ba", "--nodes", "60", "--out",
                 graph_path.c_str()}),
            0);
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--strategy", "nope"},
                nullptr, &err),
            1);
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--target-mode", "nope"},
                nullptr, &err),
            1);
}

TEST(Cli, AttackRejectsInvalidRobustnessCombos) {
  const std::string graph_path = "/tmp/recon_cli_combo_g.txt";
  ASSERT_EQ(run({"generate", "--model", "ba", "--nodes", "60", "--out",
                 graph_path.c_str()}),
            0);
  std::string err;
  // Backoff policy without --retries is a no-op — refuse with guidance.
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--retry-policy",
                 "exponential"},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("--retries"), std::string::npos);
  // A per-node attempt cap above the budget lets one node eat everything.
  err.clear();
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--retries",
                 "--max-attempts", "50", "--budget", "20"},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("exceeds --budget"), std::string::npos);
  // Fault rates must be probabilities that sum to at most one.
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--fault-timeout",
                 "0.7", "--fault-drop", "0.7"},
                nullptr, &err),
            1);
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--fault-timeout",
                 "-0.1"},
                nullptr, &err),
            1);
  // Unknown backoff name.
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--retries",
                 "--retry-policy", "quadratic"},
                nullptr, &err),
            1);
  // Checkpoint flags drive a single run.
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--checkpoint",
                 "/tmp/recon_cli_combo.ckpt", "--stop-after", "2", "--runs", "3"},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("--runs 1"), std::string::npos);
  // --checkpoint-every without a file to write to.
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--checkpoint-every",
                 "2", "--runs", "1"},
                nullptr, &err),
            1);
  // Resuming from a missing checkpoint is an error, not a fresh start.
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--resume",
                 "/tmp/recon_cli_no_such.ckpt", "--runs", "1"},
                nullptr, &err),
            1);
}

TEST(Cli, AttackWithFaultsReportsOutcomes) {
  const std::string problem_path = "/tmp/recon_cli_fault.problem";
  const std::string graph_path = "/tmp/recon_cli_fault_g.txt";
  ASSERT_EQ(run({"generate", "--model", "ba", "--nodes", "100", "--out",
                 graph_path.c_str()}),
            0);
  ASSERT_EQ(run({"attack", "--graph", graph_path.c_str(), "--budget", "20",
                 "--runs", "1", "--save-problem", problem_path.c_str()}),
            0);
  std::string out, err;
  // Single-run path (--stop-after high enough not to bite) prints counters.
  ASSERT_EQ(run({"attack", "--problem", problem_path.c_str(), "--budget", "20",
                 "--runs", "1", "--stop-after", "999", "--retries",
                 "--retry-policy", "fixed", "--fault-timeout", "0.3",
                 "--fault-throttle", "0.2"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("fault outcomes"), std::string::npos);
  EXPECT_NE(out.find("timeouts"), std::string::npos);
  // Monte-Carlo path accepts the same fault flags.
  ASSERT_EQ(run({"attack", "--problem", problem_path.c_str(), "--budget", "20",
                 "--runs", "2", "--fault-timeout", "0.3"},
                &out, &err),
            0)
      << err;
}

TEST(Cli, CheckpointResumeRoundTrip) {
  const std::string graph_path = "/tmp/recon_cli_ckpt_g.txt";
  const std::string problem_path = "/tmp/recon_cli_ckpt.problem";
  const std::string ckpt_path = "/tmp/recon_cli_ckpt.ckpt";
  ASSERT_EQ(run({"generate", "--model", "ba", "--nodes", "100", "--out",
                 graph_path.c_str()}),
            0);
  std::string full_out;
  ASSERT_EQ(run({"attack", "--graph", graph_path.c_str(), "--budget", "30",
                 "--runs", "1", "--save-problem", problem_path.c_str()},
                &full_out),
            0);
  // Interrupt after 2 rounds, then resume; the final numbers must match the
  // uninterrupted run exactly.
  ASSERT_EQ(run({"attack", "--problem", problem_path.c_str(), "--budget", "30",
                 "--runs", "1", "--stop-after", "2", "--checkpoint",
                 ckpt_path.c_str()}),
            0);
  std::string resumed_out, err;
  ASSERT_EQ(run({"attack", "--problem", problem_path.c_str(), "--budget", "30",
                 "--runs", "1", "--resume", ckpt_path.c_str()},
                &resumed_out, &err),
            0)
      << err;
  const auto benefit_line = [](const std::string& s) {
    const auto pos = s.find("mean benefit");
    return s.substr(pos, s.find('\n', pos) - pos);
  };
  EXPECT_EQ(benefit_line(full_out), benefit_line(resumed_out));
}

TEST(Cli, AsyncAttackReportsMakespan) {
  const std::string graph_path = "/tmp/recon_cli_async_g.txt";
  ASSERT_EQ(run({"generate", "--model", "ba", "--nodes", "100", "--out",
                 graph_path.c_str()}),
            0);
  std::string out, err;
  ASSERT_EQ(run({"attack", "--graph", graph_path.c_str(), "--async", "--window",
                 "8", "--budget", "25", "--runs", "2", "--mean-delay", "100"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("strategy rolling-window(W=8)"), std::string::npos);
  EXPECT_NE(out.find("mean makespan"), std::string::npos);
  EXPECT_NE(out.find("mean accepts"), std::string::npos);
  // Bad delay model is rejected with the flag's vocabulary in the message.
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--async",
                 "--delay-model", "bogus"},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("--delay-model"), std::string::npos);
  // Checkpoint flags demand a single run, like the synchronous path.
  EXPECT_EQ(run({"attack", "--graph", graph_path.c_str(), "--async",
                 "--checkpoint", "/tmp/recon_cli_async_bad.ckpt"},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("--runs 1"), std::string::npos);
}

TEST(Cli, AsyncCheckpointResumeRoundTrip) {
  const std::string graph_path = "/tmp/recon_cli_async_ckpt_g.txt";
  const std::string problem_path = "/tmp/recon_cli_async_ckpt.problem";
  const std::string ckpt_path = "/tmp/recon_cli_async_ckpt.ckpt";
  ASSERT_EQ(run({"generate", "--model", "ba", "--nodes", "100", "--out",
                 graph_path.c_str()}),
            0);
  std::string full_out;
  ASSERT_EQ(run({"attack", "--graph", graph_path.c_str(), "--async", "--window",
                 "5", "--budget", "30", "--runs", "1", "--fault-timeout", "0.2",
                 "--save-problem", problem_path.c_str()},
                &full_out),
            0);
  // Interrupt after 7 resolved events (mid-window), then resume; the final
  // numbers must match the uninterrupted run exactly.
  ASSERT_EQ(run({"attack", "--problem", problem_path.c_str(), "--async",
                 "--window", "5", "--budget", "30", "--runs", "1",
                 "--fault-timeout", "0.2", "--stop-after", "7", "--checkpoint",
                 ckpt_path.c_str()}),
            0);
  std::string resumed_out, err;
  ASSERT_EQ(run({"attack", "--problem", problem_path.c_str(), "--async",
                 "--window", "5", "--budget", "30", "--runs", "1",
                 "--fault-timeout", "0.2", "--resume", ckpt_path.c_str()},
                &resumed_out, &err),
            0)
      << err;
  const auto line = [](const std::string& s, const char* key) {
    const auto pos = s.find(key);
    EXPECT_NE(pos, std::string::npos) << key;
    return s.substr(pos, s.find('\n', pos) - pos);
  };
  EXPECT_EQ(line(full_out, "mean benefit"), line(resumed_out, "mean benefit"));
  EXPECT_EQ(line(full_out, "mean makespan"), line(resumed_out, "mean makespan"));
  EXPECT_EQ(line(full_out, "mean requests"), line(resumed_out, "mean requests"));
  EXPECT_EQ(line(full_out, "mean accepts"), line(resumed_out, "mean accepts"));
}

TEST(Cli, AttackFallbackStrategyRuns) {
  const std::string graph_path = "/tmp/recon_cli_fb_g.txt";
  ASSERT_EQ(run({"generate", "--model", "er", "--nodes", "50", "--edges", "120",
                 "--out", graph_path.c_str()}),
            0);
  std::string out, err;
  ASSERT_EQ(run({"attack", "--graph", graph_path.c_str(), "--strategy",
                 "fallback", "--k", "3", "--budget", "9", "--runs", "2",
                 "--targets", "12", "--samples", "50", "--fob-deadline-ms", "1",
                 "--saa-deadline-ms", "1"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("Fallback(k=3)"), std::string::npos);
  EXPECT_NE(out.find("mean benefit"), std::string::npos);
}

TEST(Cli, SaveAndReuseProblem) {
  const std::string graph_path = "/tmp/recon_cli_prob_g.txt";
  const std::string problem_path = "/tmp/recon_cli_prob.problem";
  ASSERT_EQ(run({"generate", "--model", "ba", "--nodes", "120", "--out",
                 graph_path.c_str()}),
            0);
  std::string out1;
  ASSERT_EQ(run({"attack", "--graph", graph_path.c_str(), "--k", "5", "--budget",
                 "25", "--runs", "3", "--save-problem", problem_path.c_str()},
                &out1),
            0);
  // Re-running from the saved problem reproduces the exact results (the
  // instance, including targets, is identical).
  std::string out2;
  ASSERT_EQ(run({"attack", "--problem", problem_path.c_str(), "--k", "5",
                 "--budget", "25", "--runs", "3"},
                &out2),
            0);
  const auto benefit_line = [](const std::string& s) {
    const auto pos = s.find("mean benefit");
    return s.substr(pos, s.find('\n', pos) - pos);
  };
  EXPECT_EQ(benefit_line(out1), benefit_line(out2));
  std::string err;
  EXPECT_EQ(run({"attack", "--problem", "/nonexistent.problem"}, nullptr, &err), 1);
}

TEST(Cli, MetricsRejectsBadInput) {
  std::string err;
  EXPECT_EQ(run({"metrics"}, nullptr, &err), 1);
  EXPECT_EQ(run({"metrics", "--traces", "/nonexistent.traces"}, nullptr, &err), 1);
}

TEST(Cli, AuditListsMonitors) {
  const std::string graph_path = "/tmp/recon_cli_audit_g.txt";
  ASSERT_EQ(run({"generate", "--model", "ba", "--nodes", "150", "--out",
                 graph_path.c_str()}),
            0);
  std::string out;
  ASSERT_EQ(run({"audit", "--graph", graph_path.c_str(), "--monitors", "5",
                 "--budget", "30", "--runs", "3"},
                &out),
            0);
  EXPECT_NE(out.find("monitor placements"), std::string::npos);
  // Table has 5 monitor rows (header + separator + 5).
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_GE(lines, 8u);
}

}  // namespace
}  // namespace recon::cli
