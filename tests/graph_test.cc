// Tests for the CSR graph, builder, and edge-list I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/metrics.h"

namespace recon::graph {
namespace {

Graph triangle_plus_leaf() {
  // 0-1, 1-2, 0-2 (triangle), 2-3 (leaf).
  GraphBuilder b(4);
  b.add_edge(0, 1, 0.5);
  b.add_edge(1, 2, 0.6);
  b.add_edge(0, 2, 0.7);
  b.add_edge(2, 3, 0.8);
  return b.build();
}

TEST(GraphBuilder, BasicCounts) {
  const Graph g = triangle_plus_leaf();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(GraphBuilder, AdjacencySortedAndSymmetric) {
  const Graph g = triangle_plus_leaf();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (NodeId v : nbrs) {
      const auto back = g.neighbors(v);
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end());
    }
  }
}

TEST(GraphBuilder, EdgeIdsConsistent) {
  const Graph g = triangle_plus_leaf();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto eids = g.incident_edges(u);
    ASSERT_EQ(nbrs.size(), eids.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const EdgeId e = eids[i];
      EXPECT_TRUE((g.edge_u(e) == u && g.edge_v(e) == nbrs[i]) ||
                  (g.edge_v(e) == u && g.edge_u(e) == nbrs[i]));
      EXPECT_EQ(g.other_endpoint(e, u), nbrs[i]);
    }
  }
}

TEST(GraphBuilder, FindEdge) {
  const Graph g = triangle_plus_leaf();
  EXPECT_NE(g.find_edge(0, 1), kInvalidEdge);
  EXPECT_EQ(g.find_edge(1, 0), g.find_edge(0, 1));
  EXPECT_EQ(g.find_edge(0, 3), kInvalidEdge);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(1, 3));
  const EdgeId e01 = g.find_edge(0, 1);
  EXPECT_DOUBLE_EQ(g.edge_prob(e01), 0.5);
}

TEST(GraphBuilder, DuplicateEdgesMergeWithMaxProb) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 0.2);
  b.add_edge(1, 0, 0.9);  // reversed orientation, higher p
  b.add_edge(0, 1, 0.4);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge_prob(0), 0.9);
}

TEST(GraphBuilder, ReuseAfterBuildRetainsPendingEdges) {
  // The documented contract: build() is const, the builder may be reused,
  // and its pending edges carry over into the next build().
  GraphBuilder b(4);
  b.add_edge(0, 1, 0.5);
  b.add_edge(1, 2, 0.6);
  const Graph first = b.build();
  EXPECT_EQ(first.num_edges(), 2u);
  EXPECT_EQ(b.num_pending_edges(), 2u);
  EXPECT_TRUE(b.has_pending_edge(1, 0));  // either orientation

  b.add_edge(2, 3, 0.7);
  const Graph second = b.build();
  EXPECT_EQ(second.num_edges(), 3u);
  EXPECT_TRUE(second.has_edge(0, 1));
  EXPECT_TRUE(second.has_edge(2, 3));
  // The first build is an immutable snapshot, unaffected by later edges.
  EXPECT_EQ(first.num_edges(), 2u);
  EXPECT_FALSE(first.has_edge(2, 3));

  // Rebuilding with no interleaved mutation reproduces the same graph.
  const Graph third = b.build();
  ASSERT_EQ(third.num_edges(), second.num_edges());
  for (EdgeId e = 0; e < second.num_edges(); ++e) {
    EXPECT_EQ(third.edge_u(e), second.edge_u(e));
    EXPECT_EQ(third.edge_v(e), second.edge_v(e));
    EXPECT_DOUBLE_EQ(third.edge_prob(e), second.edge_prob(e));
  }
}

TEST(GraphBuilder, FromUniqueEdgesMatchesBuild) {
  GraphBuilder b(6);
  b.add_edge(0, 3, 0.5);
  b.add_edge(5, 1, 0.25);
  b.add_edge(2, 4, 1.0);
  b.add_edge(0, 1, 0.75);
  const Graph via_build = b.build();
  // Same edges, uncanonicalized orientation and arbitrary order.
  const Graph via_arrays = GraphBuilder::from_unique_edges(
      6, {3, 1, 2, 1}, {0, 5, 4, 0}, {0.5, 0.25, 1.0, 0.75});
  ASSERT_EQ(via_arrays.num_edges(), via_build.num_edges());
  for (EdgeId e = 0; e < via_build.num_edges(); ++e) {
    EXPECT_EQ(via_arrays.edge_u(e), via_build.edge_u(e));
    EXPECT_EQ(via_arrays.edge_v(e), via_build.edge_v(e));
    EXPECT_DOUBLE_EQ(via_arrays.edge_prob(e), via_build.edge_prob(e));
  }
  for (NodeId u = 0; u < 6; ++u) {
    const auto na = via_arrays.neighbors(u);
    const auto nb = via_build.neighbors(u);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
  }
}

TEST(GraphBuilder, FromUniqueEdgesRejectsBadInput) {
  // Duplicates (same or reversed orientation) are an error here, unlike
  // build()'s max-probability merge: streaming callers dedup at the source.
  EXPECT_THROW(GraphBuilder::from_unique_edges(3, {0, 1}, {1, 0}, {0.5, 0.6}),
               std::invalid_argument);
  EXPECT_THROW(GraphBuilder::from_unique_edges(3, {0}, {0}, {0.5}),
               std::invalid_argument);
  EXPECT_THROW(GraphBuilder::from_unique_edges(2, {0}, {5}, {0.5}),
               std::invalid_argument);
  EXPECT_THROW(GraphBuilder::from_unique_edges(2, {0}, {1}, {1.5}),
               std::invalid_argument);
  EXPECT_THROW(GraphBuilder::from_unique_edges(2, {0}, {1}, {0.5, 0.5}),
               std::invalid_argument);
}

TEST(GraphBuilder, RejectsBadInput) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, 1.5), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, -0.1), std::invalid_argument);
}

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b(0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.max_expected_degree(), 0.0);
}

TEST(GraphBuilder, IsolatedNodes) {
  GraphBuilder b(5);
  b.add_edge(1, 3, 1.0);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, ExpectedDegree) {
  const Graph g = triangle_plus_leaf();
  EXPECT_DOUBLE_EQ(g.expected_degree(0), 0.5 + 0.7);
  EXPECT_DOUBLE_EQ(g.expected_degree(2), 0.6 + 0.7 + 0.8);
  EXPECT_DOUBLE_EQ(g.max_expected_degree(), 2.1);
}

TEST(Graph, Attributes) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.set_attributes({1, 2, 3, 4}, 2);
  const Graph g = b.build();
  ASSERT_TRUE(g.has_attributes());
  EXPECT_EQ(g.attribute_dim(), 2u);
  const auto a0 = g.node_attributes(0);
  EXPECT_EQ(a0[0], 1);
  EXPECT_EQ(a0[1], 2);
  const auto a1 = g.node_attributes(1);
  EXPECT_EQ(a1[0], 3);
  EXPECT_EQ(a1[1], 4);
}

TEST(Graph, AttributeSizeValidation) {
  GraphBuilder b(2);
  EXPECT_THROW(b.set_attributes({1, 2, 3}, 2), std::invalid_argument);
  EXPECT_THROW(b.set_attributes({1, 2}, 0), std::invalid_argument);
}

TEST(GraphIo, RoundTrip) {
  const Graph g = triangle_plus_leaf();
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge_u(e), g.edge_u(e));
    EXPECT_EQ(h.edge_v(e), g.edge_v(e));
    EXPECT_DOUBLE_EQ(h.edge_prob(e), g.edge_prob(e));
  }
}

TEST(GraphIo, ParsesCommentsAndDefaults) {
  std::stringstream ss("# header\n0 1\n2 3 0.25\n\n# trailing\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.edge_prob(g.find_edge(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(g.edge_prob(g.find_edge(2, 3)), 0.25);
}

TEST(GraphIo, ExplicitNodeCount) {
  std::stringstream ss("0 1\n");
  const Graph g = read_edge_list(ss, 10);
  EXPECT_EQ(g.num_nodes(), 10u);
}

TEST(GraphIo, DropsSelfLoops) {
  std::stringstream ss("0 0\n0 1\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphIo, MalformedLineThrows) {
  std::stringstream ss("0\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/to/file.txt"),
               std::runtime_error);
}

TEST(GraphMetrics, DegreeStats) {
  const Graph g = triangle_plus_leaf();
  const auto s = degree_stats(g);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 3u);
}

TEST(GraphMetrics, ClusteringTriangleIsOne) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(clustering_coefficient(g, 500, 1), 1.0);
}

TEST(GraphMetrics, ClusteringStarIsZero) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(clustering_coefficient(g, 500, 1), 0.0);
}

TEST(GraphMetrics, ConnectedComponents) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(connected_components(g), 3u);
  EXPECT_EQ(largest_component_size(g), 3u);
}

}  // namespace
}  // namespace recon::graph
