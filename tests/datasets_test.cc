// Tests for the dataset stand-ins (Table I surrogates).
#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/metrics.h"

namespace recon::graph {
namespace {

TEST(Datasets, AllIdsEnumerable) {
  const auto ids = all_dataset_ids();
  EXPECT_EQ(ids.size(), 5u);
  for (DatasetId id : ids) EXPECT_FALSE(dataset_name(id).empty());
  EXPECT_EQ(snap_dataset_ids().size(), 4u);
}

TEST(Datasets, UsPolBooksMatchesPaperSize) {
  const Dataset ds = make_dataset(DatasetId::kUsPolBooks, 1.0, 42);
  EXPECT_EQ(ds.graph.num_nodes(), 105u);
  EXPECT_EQ(ds.paper_nodes, 105u);
  EXPECT_EQ(ds.paper_edges, 441u);
  EXPECT_NEAR(static_cast<double>(ds.graph.num_edges()), 441.0, 100.0);
  // Scale must not affect US Pol. Books (Fig. 6 depends on its exact size).
  const Dataset big = make_dataset(DatasetId::kUsPolBooks, 10.0, 42);
  EXPECT_EQ(big.graph.num_nodes(), 105u);
}

TEST(Datasets, ScaleIsLinear) {
  const Dataset s1 = make_dataset(DatasetId::kFacebook, 1.0, 1);
  const Dataset s2 = make_dataset(DatasetId::kFacebook, 2.0, 1);
  EXPECT_NEAR(static_cast<double>(s2.graph.num_nodes()),
              2.0 * static_cast<double>(s1.graph.num_nodes()),
              static_cast<double>(s1.graph.num_nodes()) * 0.1);
}

TEST(Datasets, PaperScaleMatchesTableOne) {
  // At scale 10 the node counts should equal the paper's (within rounding).
  const Dataset fb = make_dataset(DatasetId::kFacebook, 10.0, 1);
  EXPECT_EQ(fb.graph.num_nodes(), 4000u);
}

struct DensityCase {
  DatasetId id;
  double paper_mean_degree;
  const char* name;
};

class DatasetDensity : public ::testing::TestWithParam<DensityCase> {};

TEST_P(DatasetDensity, MeanDegreeMatchesPaper) {
  const Dataset ds = make_dataset(GetParam().id, 1.0, 7);
  const auto s = degree_stats(ds.graph);
  // Mean degree should be in the right ballpark regardless of scale.
  EXPECT_GT(s.mean, GetParam().paper_mean_degree * 0.6) << ds.name;
  EXPECT_LT(s.mean, GetParam().paper_mean_degree * 1.5) << ds.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, DatasetDensity,
    ::testing::Values(DensityCase{DatasetId::kFacebook, 44.0, "facebook"},
                      DensityCase{DatasetId::kEnronEmail, 10.0, "enron"},
                      DensityCase{DatasetId::kSlashdot, 23.5, "slashdot"},
                      DensityCase{DatasetId::kTwitter, 43.7, "twitter"}),
    [](const auto& pinfo) { return pinfo.param.name; });

TEST(Datasets, EdgeProbsInRange) {
  const Dataset ds = make_dataset(DatasetId::kEnronEmail, 1.0, 3);
  for (EdgeId e = 0; e < ds.graph.num_edges(); ++e) {
    EXPECT_GE(ds.graph.edge_prob(e), 0.4 - 1e-12);
    EXPECT_LE(ds.graph.edge_prob(e), 0.9 + 1e-12);
  }
}

TEST(Datasets, UniformProbsOption) {
  const Dataset ds = make_dataset(DatasetId::kUsPolBooks, 1.0, 3, /*uniform_probs=*/true);
  for (EdgeId e = 0; e < ds.graph.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(ds.graph.edge_prob(e), 1.0);
  }
}

TEST(Datasets, DeterministicInSeed) {
  const Dataset a = make_dataset(DatasetId::kSlashdot, 0.5, 9);
  const Dataset b = make_dataset(DatasetId::kSlashdot, 0.5, 9);
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (EdgeId e = 0; e < a.graph.num_edges(); e += 97) {
    EXPECT_DOUBLE_EQ(a.graph.edge_prob(e), b.graph.edge_prob(e));
  }
}

TEST(Datasets, RejectsNonpositiveScale) {
  EXPECT_THROW(make_dataset(DatasetId::kTwitter, 0.0, 1), std::invalid_argument);
}

TEST(Datasets, FacebookHasHighClustering) {
  const Dataset fb = make_dataset(DatasetId::kFacebook, 1.0, 5);
  const Dataset tw = make_dataset(DatasetId::kTwitter, 0.1, 5);
  const double cf = clustering_coefficient(fb.graph, 3000, 1);
  const double ct = clustering_coefficient(tw.graph, 3000, 1);
  EXPECT_GT(cf, ct);  // WS ego-net surrogate vs BA surrogate
}

}  // namespace
}  // namespace recon::graph
