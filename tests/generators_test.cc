// Tests for the random-graph generators: size/degree contracts, determinism,
// distribution sanity, and parameterized sweeps over generator settings.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "util/rng.h"

namespace recon::graph {
namespace {

TEST(ErdosRenyiGnm, ExactEdgeCount) {
  const Graph g = erdos_renyi_gnm(50, 200, 7);
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_EQ(g.num_edges(), 200u);
}

TEST(ErdosRenyiGnm, Deterministic) {
  const Graph a = erdos_renyi_gnm(30, 60, 5);
  const Graph b = erdos_renyi_gnm(30, 60, 5);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e));
    EXPECT_EQ(a.edge_v(e), b.edge_v(e));
  }
}

TEST(ErdosRenyiGnm, RejectsOverfullAndTiny) {
  EXPECT_THROW(erdos_renyi_gnm(3, 4, 1), std::invalid_argument);
  EXPECT_THROW(erdos_renyi_gnm(1, 1, 1), std::invalid_argument);
  const Graph g = erdos_renyi_gnm(4, 6, 1);  // complete K4
  EXPECT_EQ(g.num_edges(), 6u);
}

TEST(ErdosRenyiGnp, EdgeCountNearExpectation) {
  const NodeId n = 200;
  const double p = 0.05;
  const Graph g = erdos_renyi_gnp(n, p, 11);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 4.0 * std::sqrt(expected));
}

TEST(ErdosRenyiGnp, ExtremeProbabilities) {
  EXPECT_EQ(erdos_renyi_gnp(10, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi_gnp(10, 1.0, 1).num_edges(), 45u);
  EXPECT_THROW(erdos_renyi_gnp(10, 1.5, 1), std::invalid_argument);
}

TEST(BarabasiAlbert, SizeAndMeanDegree) {
  const Graph g = barabasi_albert(500, 5, 3);
  EXPECT_EQ(g.num_nodes(), 500u);
  // Edges ~ m*(n - m - 1) + clique: mean degree ~ 2m.
  const auto s = degree_stats(g);
  EXPECT_NEAR(s.mean, 10.0, 1.0);
  EXPECT_GE(s.min, 5u);  // every late node attaches to m distinct nodes
}

TEST(BarabasiAlbert, HeavyTail) {
  const Graph g = barabasi_albert(2000, 3, 9);
  const auto s = degree_stats(g);
  // Preferential attachment should produce hubs far above the mean.
  EXPECT_GT(static_cast<double>(s.max), 6.0 * s.mean);
}

TEST(BarabasiAlbert, Validation) {
  EXPECT_THROW(barabasi_albert(5, 0, 1), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(3, 3, 1), std::invalid_argument);
}

TEST(WattsStrogatz, LatticeAtBetaZero) {
  const Graph g = watts_strogatz(50, 3, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 150u);
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(g.degree(u), 6u);
}

TEST(WattsStrogatz, HighClusteringLowBeta) {
  const Graph g = watts_strogatz(400, 5, 0.05, 2);
  EXPECT_GT(clustering_coefficient(g, 2000, 3), 0.4);
}

TEST(WattsStrogatz, RewiringReducesClustering) {
  const double low = clustering_coefficient(watts_strogatz(400, 5, 0.0, 2), 2000, 3);
  const double high = clustering_coefficient(watts_strogatz(400, 5, 0.9, 2), 2000, 3);
  EXPECT_LT(high, low * 0.5);
}

TEST(WattsStrogatz, Validation) {
  EXPECT_THROW(watts_strogatz(10, 0, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 5, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 2, 1.5, 1), std::invalid_argument);
}

TEST(StochasticBlockModel, CommunityStructure) {
  const Graph g = stochastic_block_model(150, 3, 0.3, 0.01, 5);
  // Count within vs across edges (block = id % 3).
  std::size_t within = 0, across = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    (g.edge_u(e) % 3 == g.edge_v(e) % 3 ? within : across) += 1;
  }
  EXPECT_GT(within, across * 3);
}

TEST(StochasticBlockModel, EdgeCountNearExpectation) {
  const Graph g = stochastic_block_model(105, 3, 0.20, 0.023, 42);
  // Matched to US Pol. Books: expect roughly 440 edges.
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 441.0, 90.0);
}

TEST(ForestFire, GrowsConnectedHeavyTailedGraph) {
  const Graph g = forest_fire(1500, 0.35, 7);
  EXPECT_EQ(g.num_nodes(), 1500u);
  EXPECT_EQ(connected_components(g), 1u);  // every arrival links to someone
  const auto s = degree_stats(g);
  EXPECT_GE(s.min, 1u);
  EXPECT_GT(static_cast<double>(s.max), 5.0 * s.mean);  // hubs
}

TEST(ForestFire, BurningProbabilityControlsDensity) {
  const auto low = degree_stats(forest_fire(800, 0.1, 3)).mean;
  const auto high = degree_stats(forest_fire(800, 0.45, 3)).mean;
  EXPECT_GT(high, low * 1.5);
}

TEST(ForestFire, Validation) {
  EXPECT_THROW(forest_fire(10, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(forest_fire(10, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(forest_fire(1, 0.3, 1), std::invalid_argument);
}

TEST(PowerlawConfiguration, DegreeBoundsRespected) {
  const Graph g = powerlaw_configuration(500, 2.0, 3, 50, 17);
  EXPECT_EQ(g.num_nodes(), 500u);
  const auto s = degree_stats(g);
  // Collisions may reduce degrees slightly, never increase them.
  EXPECT_LE(s.max, 50u);
  EXPECT_GT(s.mean, 3.0);
}

TEST(PowerlawConfiguration, Validation) {
  EXPECT_THROW(powerlaw_configuration(10, 2.0, 0, 5, 1), std::invalid_argument);
  EXPECT_THROW(powerlaw_configuration(10, 2.0, 6, 5, 1), std::invalid_argument);
  EXPECT_THROW(powerlaw_configuration(10, 2.0, 2, 10, 1), std::invalid_argument);
}

TEST(EdgeProbModels, ConstantUniformBeta) {
  const Graph base = erdos_renyi_gnm(60, 150, 3);
  const Graph c = assign_edge_probs(base, EdgeProbModel::constant(0.4), 1);
  for (EdgeId e = 0; e < c.num_edges(); ++e) EXPECT_DOUBLE_EQ(c.edge_prob(e), 0.4);

  const Graph u = assign_edge_probs(base, EdgeProbModel::uniform(0.2, 0.8), 1);
  double mean = 0.0;
  for (EdgeId e = 0; e < u.num_edges(); ++e) {
    EXPECT_GE(u.edge_prob(e), 0.2);
    EXPECT_LE(u.edge_prob(e), 0.8);
    mean += u.edge_prob(e);
  }
  EXPECT_NEAR(mean / u.num_edges(), 0.5, 0.06);

  const Graph bt = assign_edge_probs(base, EdgeProbModel::beta(4.0, 2.0), 1);
  mean = 0.0;
  for (EdgeId e = 0; e < bt.num_edges(); ++e) mean += bt.edge_prob(e);
  EXPECT_NEAR(mean / bt.num_edges(), 4.0 / 6.0, 0.06);
}

TEST(EdgeProbModels, StructuralFavorsEmbeddedEdges) {
  // A triangle edge has positive Jaccard; a pendant edge has zero.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  const Graph g = assign_edge_probs(b.build(), EdgeProbModel::structural(0.4, 0.5), 1);
  EXPECT_GT(g.edge_prob(g.find_edge(0, 1)), g.edge_prob(g.find_edge(2, 3)));
  EXPECT_DOUBLE_EQ(g.edge_prob(g.find_edge(2, 3)), 0.4);
}

TEST(EdgeProbModels, PreservesTopology) {
  const Graph base = barabasi_albert(100, 4, 5);
  const Graph g = assign_edge_probs(base, EdgeProbModel::uniform(0.1, 0.9), 2);
  ASSERT_EQ(g.num_edges(), base.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.edge_u(e), base.edge_u(e));
    EXPECT_EQ(g.edge_v(e), base.edge_v(e));
  }
}

TEST(Attributes, HomophilyIncreasesNeighborAgreement) {
  const Graph base = watts_strogatz(300, 4, 0.05, 7);
  const Graph lo = assign_attributes(base, 1, 8, 0.0, 9);
  const Graph hi = assign_attributes(base, 1, 8, 0.95, 9);
  auto agreement = [](const Graph& g) {
    std::size_t agree = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      agree += g.node_attributes(g.edge_u(e))[0] == g.node_attributes(g.edge_v(e))[0];
    }
    return static_cast<double>(agree) / g.num_edges();
  };
  EXPECT_GT(agreement(hi), agreement(lo) + 0.15);
}

TEST(Attributes, Validation) {
  const Graph base = erdos_renyi_gnm(10, 15, 1);
  EXPECT_THROW(assign_attributes(base, 0, 4, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(assign_attributes(base, 2, 0, 0.5, 1), std::invalid_argument);
}

TEST(BetaSampling, MomentsMatch) {
  util::Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = sample_beta(2.0, 5.0, rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0 / 7.0, 0.01);
  EXPECT_NEAR(var, 2.0 * 5.0 / (49.0 * 8.0), 0.005);
}

TEST(GammaSampling, MeanMatchesShape) {
  util::Rng rng(23);
  for (double shape : {0.5, 1.0, 3.5}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += sample_gamma(shape, rng);
    EXPECT_NEAR(sum / n, shape, shape * 0.06) << "shape=" << shape;
  }
}

// Parameterized sweep: every generator must produce a simple graph (no
// self-loops, no duplicate edges — duplicates would have been merged, so we
// check the invariant structurally) and be deterministic in its seed.
struct GenCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph gen_gnm(std::uint64_t s) { return erdos_renyi_gnm(80, 160, s); }
Graph gen_gnp(std::uint64_t s) { return erdos_renyi_gnp(80, 0.05, s); }
Graph gen_ba(std::uint64_t s) { return barabasi_albert(80, 3, s); }
Graph gen_ws(std::uint64_t s) { return watts_strogatz(80, 3, 0.2, s); }
Graph gen_sbm(std::uint64_t s) { return stochastic_block_model(80, 4, 0.25, 0.02, s); }
Graph gen_pl(std::uint64_t s) { return powerlaw_configuration(80, 2.2, 2, 20, s); }
Graph gen_ff(std::uint64_t s) { return forest_fire(80, 0.3, s); }

class GeneratorInvariants : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorInvariants, SimpleGraph) {
  const Graph g = GetParam().make(31);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NE(g.edge_u(e), g.edge_v(e));
    EXPECT_LT(g.edge_u(e), g.edge_v(e));
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1], nbrs[i]);  // sorted & distinct
    }
  }
}

TEST_P(GeneratorInvariants, SeedDeterminism) {
  const Graph a = GetParam().make(77);
  const Graph b = GetParam().make(77);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e));
    EXPECT_EQ(a.edge_v(e), b.edge_v(e));
  }
}

TEST_P(GeneratorInvariants, SeedSensitivity) {
  const Graph a = GetParam().make(1);
  const Graph b = GetParam().make(2);
  // Different seeds should not produce identical edge sets (WS at beta=0
  // would, but all sweep cases have randomness).
  bool differs = a.num_edges() != b.num_edges();
  for (EdgeId e = 0; !differs && e < a.num_edges(); ++e) {
    differs = a.edge_u(e) != b.edge_u(e) || a.edge_v(e) != b.edge_v(e);
  }
  EXPECT_TRUE(differs);
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorInvariants,
                         ::testing::Values(GenCase{"gnm", gen_gnm},
                                           GenCase{"gnp", gen_gnp},
                                           GenCase{"ba", gen_ba},
                                           GenCase{"ws", gen_ws},
                                           GenCase{"sbm", gen_sbm},
                                           GenCase{"pl", gen_pl},
                                           GenCase{"ff", gen_ff}),
                         [](const auto& pinfo) { return pinfo.param.name; });

}  // namespace
}  // namespace recon::graph
