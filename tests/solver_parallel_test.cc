// Determinism regression tests for the parallel solver engine (branch-tree
// subtree fan-out, SAA scenario parallel_reduce, adaptive shard planning).
//
// Every assertion here is EXACT double/vector equality — never EXPECT_NEAR:
// the engine's contract (docs/API.md, "Solver parallelism") is that thread
// count, chunk-to-worker assignment, and scenario-order permutations change
// *nothing*, down to the last ulp. These tests run under the TSan and ASan
// CI jobs as well, so the lock-free scheduling underneath is exercised with
// race detection on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/attack.h"
#include "core/batch_select.h"
#include "core/branch_tree.h"
#include "core/retry_policy.h"
#include "graph/generators.h"
#include "sim/fault.h"
#include "sim/observation.h"
#include "sim/problem.h"
#include "solver/saa.h"
#include "solver/strategy_mip.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace recon {
namespace {

using graph::NodeId;
using sim::Observation;
using sim::Problem;

Problem fixture_problem(bool ba, int seed, NodeId n = 120) {
  sim::ProblemOptions opts;
  opts.num_targets = 25;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(ba ? graph::barabasi_albert(n, 5, seed)
                                  : graph::erdos_renyi_gnm(n, 4 * n, seed),
                               graph::EdgeProbModel::uniform(0.2, 0.95), seed + 1),
      opts);
}

void advance_observation(const Problem& p, Observation& obs, int steps, int seed) {
  const sim::World w(p, static_cast<std::uint64_t>(seed) + 500);
  util::Rng rng(static_cast<std::uint64_t>(seed));
  for (int step = 0; step < steps; ++step) {
    const auto u = static_cast<NodeId>(rng.below(p.graph.num_nodes()));
    if (obs.is_friend(u)) continue;
    if (w.attempt_accept(u, obs.attempts(u), obs.acceptance_prob(u))) {
      obs.record_accept(u, w.true_neighbors(u));
    } else {
      obs.record_reject(u);
    }
  }
}

/// First `size` requestable nodes — a deterministic, friend-free batch.
std::vector<NodeId> requestable_prefix(const Observation& obs, std::size_t size) {
  std::vector<NodeId> batch;
  const auto& p = obs.problem();
  for (NodeId u = 0; u < p.graph.num_nodes() && batch.size() < size; ++u) {
    if (!obs.is_friend(u) && obs.attempts(u) == 0) batch.push_back(u);
  }
  return batch;
}

TEST(BranchTreeParallel, GammaBitIdenticalAcrossThreadCounts) {
  // A 12-node batch makes a 4096-branch tree, deep enough that the parallel
  // path splits it into real subtrees at every tested pool size.
  for (const bool ba : {true, false}) {
    const Problem p = fixture_problem(ba, 3);
    Observation obs(p);
    advance_observation(p, obs, 15, 3);
    const auto batch = requestable_prefix(obs, 12);
    ASSERT_EQ(batch.size(), 12u);
    for (const auto policy :
         {core::MarginalPolicy::kWeighted, core::MarginalPolicy::kPaperLiteral}) {
      for (NodeId u = 60; u < 70; ++u) {
        if (obs.is_friend(u)) continue;
        const double reference = core::branch_tree_gamma(obs, batch, u, policy);
        for (const unsigned threads : {1u, 2u, 8u}) {
          util::ThreadPool pool(threads);
          EXPECT_EQ(core::branch_tree_gamma(obs, batch, u, policy, &pool), reference)
              << (ba ? "BA" : "ER") << " node=" << u << " threads=" << threads;
        }
      }
    }
  }
}

TEST(BranchTreeParallel, SelectBitIdenticalAcrossThreadCounts) {
  for (const bool ba : {true, false}) {
    const Problem p = fixture_problem(ba, 5, /*n=*/60);
    Observation obs(p);
    advance_observation(p, obs, 10, 5);
    core::BranchTreeOptions seq;
    seq.batch_size = 9;  // final rounds exceed the subtree cutoff
    const auto reference = core::branch_tree_select(obs, seq);
    ASSERT_FALSE(reference.empty());
    for (const unsigned threads : {1u, 2u, 8u}) {
      util::ThreadPool pool(threads);
      core::BranchTreeOptions par = seq;
      par.pool = &pool;
      EXPECT_EQ(core::branch_tree_select(obs, par), reference)
          << (ba ? "BA" : "ER") << " threads=" << threads;
    }
  }
}

TEST(SaaParallel, ObjectiveBitIdenticalAcrossThreadCountsAndScenarioOrder) {
  for (const bool ba : {true, false}) {
    const Problem p = fixture_problem(ba, 7);
    Observation obs(p);
    advance_observation(p, obs, 20, 7);
    auto scenarios = solver::sample_scenarios(obs, 101, 13);  // odd on purpose
    const auto batch = requestable_prefix(obs, 8);
    const double reference = solver::saa_objective(obs, scenarios, batch);

    std::mt19937 perm_rng(321);  // shuffling test inputs only, not simulation
    for (const unsigned threads : {1u, 2u, 8u}) {
      util::ThreadPool pool(threads);
      const solver::SaaEvalOptions eval{&pool, /*antithetic_pairs=*/false};
      EXPECT_EQ(solver::saa_objective(obs, scenarios, batch, eval), reference)
          << (ba ? "BA" : "ER") << " threads=" << threads;
      // The scenario *order* must not matter either: the sorted-sum merge
      // makes the mean a function of the multiset of benefits alone.
      auto permuted = scenarios;
      std::shuffle(permuted.begin(), permuted.end(), perm_rng);
      EXPECT_EQ(solver::saa_objective(obs, permuted, batch, eval), reference)
          << (ba ? "BA" : "ER") << " threads=" << threads << " (permuted)";
      EXPECT_EQ(solver::saa_objective(obs, permuted, batch), reference)
          << (ba ? "BA" : "ER") << " (permuted, sequential)";
    }
  }
}

TEST(SaaParallel, ScenarioBenefitsMatchSequentialEntrywise) {
  const Problem p = fixture_problem(true, 9);
  Observation obs(p);
  advance_observation(p, obs, 18, 9);
  const auto scenarios = solver::sample_scenarios(obs, 64, 21);
  const auto batch = requestable_prefix(obs, 6);
  const auto reference = solver::scenario_benefits(obs, scenarios, batch);
  for (const unsigned threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(solver::scenario_benefits(obs, scenarios, batch, &pool), reference)
        << "threads=" << threads;
  }
}

TEST(SaaParallel, AntitheticPairsBitIdenticalAcrossThreadsAndPairOrder) {
  for (const bool ba : {true, false}) {
    const Problem p = fixture_problem(ba, 11);
    Observation obs(p);
    advance_observation(p, obs, 20, 11);
    const auto scenarios = solver::sample_scenarios_antithetic(obs, 80, 17);
    ASSERT_EQ(scenarios.size() % 2, 0u);
    const auto batch = requestable_prefix(obs, 8);
    const double reference =
        solver::saa_objective(obs, scenarios, batch,
                              solver::SaaEvalOptions{nullptr, true});

    std::mt19937 perm_rng(654);  // shuffling test inputs only, not simulation
    for (const unsigned threads : {1u, 2u, 8u}) {
      util::ThreadPool pool(threads);
      const solver::SaaEvalOptions eval{&pool, /*antithetic_pairs=*/true};
      EXPECT_EQ(solver::saa_objective(obs, scenarios, batch, eval), reference)
          << (ba ? "BA" : "ER") << " threads=" << threads;
      // Permuting whole (U, 1-U) pairs keeps the multiset of pair sums, so
      // the objective must not move a bit.
      std::vector<std::size_t> pair_order(scenarios.size() / 2);
      std::iota(pair_order.begin(), pair_order.end(), 0u);
      std::shuffle(pair_order.begin(), pair_order.end(), perm_rng);
      std::vector<solver::Scenario> permuted;
      permuted.reserve(scenarios.size());
      for (const std::size_t pair : pair_order) {
        permuted.push_back(scenarios[2 * pair]);
        permuted.push_back(scenarios[2 * pair + 1]);
      }
      EXPECT_EQ(solver::saa_objective(obs, permuted, batch, eval), reference)
          << (ba ? "BA" : "ER") << " threads=" << threads << " (pairs permuted)";
    }
  }
}

TEST(SaaParallel, AntitheticOddScenarioCountThrows) {
  // The chunking-hazard guard: an odd count means some (U, 1-U) pair has
  // been separated before evaluation even starts — refuse loudly rather
  // than silently de-pairing the reduction units.
  const Problem p = fixture_problem(false, 13);
  Observation obs(p);
  auto scenarios = solver::sample_scenarios_antithetic(obs, 40, 3);
  scenarios.pop_back();
  const auto batch = requestable_prefix(obs, 4);
  util::ThreadPool pool(2);
  for (util::ThreadPool* pl : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    EXPECT_THROW(solver::saa_objective(obs, scenarios, batch,
                                       solver::SaaEvalOptions{pl, true}),
                 std::invalid_argument);
  }
}

TEST(SaaParallel, FaultedRetriedAttackBitIdenticalWithPool) {
  // End-to-end: a full attack through the SAA-greedy strategy under fault
  // injection and exponential-backoff retries must leave a bit-identical
  // trace whether or not the per-round solves fan out across a pool.
  const Problem p = fixture_problem(true, 15);
  const sim::World w(p, 29);

  sim::FaultOptions fo;
  fo.timeout_rate = 0.15;
  fo.throttle_rate = 0.1;
  core::RetryPolicy retry;
  retry.backoff = core::RetryBackoff::kExponential;
  retry.base_delay = 1.0;
  retry.jitter = 0.25;

  solver::MipStrategyOptions o;
  o.batch_size = 4;
  o.scenarios_per_batch = 60;
  o.allow_retries = true;
  o.greedy_only = true;

  sim::FaultModel fault_seq(fo);
  core::AttackRunOptions ro_seq;
  ro_seq.fault = &fault_seq;
  ro_seq.retry = &retry;
  solver::MipBatchStrategy seq(o);
  const auto reference = core::run_attack(p, w, seq, 30.0, ro_seq);
  ASSERT_FALSE(reference.batches.empty());

  for (const unsigned threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    solver::MipStrategyOptions po = o;
    po.pool = &pool;
    sim::FaultModel fault_par(fo);
    core::AttackRunOptions ro_par;
    ro_par.fault = &fault_par;
    ro_par.retry = &retry;
    solver::MipBatchStrategy par(po);
    const auto trace = core::run_attack(p, w, par, 30.0, ro_par);
    ASSERT_EQ(trace.batches.size(), reference.batches.size()) << threads;
    for (std::size_t i = 0; i < trace.batches.size(); ++i) {
      EXPECT_EQ(trace.batches[i].requests, reference.batches[i].requests)
          << "batch " << i << " threads=" << threads;
      EXPECT_EQ(trace.batches[i].accepted, reference.batches[i].accepted)
          << "batch " << i << " threads=" << threads;
      EXPECT_EQ(trace.batches[i].outcome, reference.batches[i].outcome)
          << "batch " << i << " threads=" << threads;
      EXPECT_EQ(trace.batches[i].cost, reference.batches[i].cost)
          << "batch " << i << " threads=" << threads;
    }
  }
}

TEST(ShardPlan, BoundsPartitionTheCandidateRange) {
  std::vector<double> work(257, 1.0);
  for (const std::size_t parties : {1u, 2u, 5u, 16u}) {
    for (const double npu : {1.0, 64.0, 1e6}) {
      const auto bounds = core::plan_score_shards(work, parties, npu);
      ASSERT_GE(bounds.size(), 2u) << parties << " " << npu;
      EXPECT_EQ(bounds.front(), 0u);
      EXPECT_EQ(bounds.back(), work.size());
      for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
        EXPECT_LT(bounds[s], bounds[s + 1]) << "empty shard " << s;
      }
    }
  }
  EXPECT_EQ(core::plan_score_shards({}, 4, 64.0),
            (std::vector<std::size_t>{0}));  // empty input: empty partition
}

TEST(ShardPlan, HubHeavyPrefixSplitsFinerThanTheTail) {
  // BA-like work profile: a few hubs with huge rows up front, a long flat
  // tail behind them. Equal-work shards must put far fewer candidates into
  // the first shard than into the last.
  std::vector<double> work(400, 1.0);
  for (std::size_t i = 0; i < 20; ++i) work[i] = 200.0;
  const auto bounds = core::plan_score_shards(work, /*parties=*/4, 64.0);
  ASSERT_GE(bounds.size(), 3u);
  const std::size_t first = bounds[1] - bounds[0];
  const std::size_t last = bounds[bounds.size() - 1] - bounds[bounds.size() - 2];
  EXPECT_LT(first, last);
  // And the shard count respects the 4..32-per-participant clamp.
  const std::size_t shards = bounds.size() - 1;
  EXPECT_GE(shards, 4u * 4u / 2u);  // >= half the lower clamp (rounding slack)
  EXPECT_LE(shards, 32u * 4u + 1u);
}

TEST(ShardPlan, CalibrationNeverChangesSelectedBatches) {
  // The EWMA that sizes shards drifts with measured timings, so consecutive
  // runs may use different shard layouts — the selected batch must not care.
  const Problem p = fixture_problem(true, 17, /*n=*/220);
  Observation obs(p);
  advance_observation(p, obs, 12, 17);
  core::BatchSelectOptions seq;
  seq.batch_size = 10;
  const auto reference = core::batch_select(obs, seq);
  ASSERT_FALSE(reference.empty());
  util::ThreadPool pool(4);
  core::BatchSelectOptions par = seq;
  par.pool = &pool;
  for (int run = 0; run < 5; ++run) {
    EXPECT_EQ(core::batch_select(obs, par), reference) << "run " << run;
  }
}

}  // namespace
}  // namespace recon
