// Tests for B&B, SAA sampling, FOB greedy/exact, and the discretized MIP —
// including full cross-validation of all three solution paths (enumeration,
// submodular B&B, LP-based MIP) on small instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/builder.h"
#include "graph/generators.h"
#include "sim/observation.h"
#include "sim/problem.h"
#include "sim/world.h"
#include "solver/benders.h"
#include "solver/bnb.h"
#include "solver/fob.h"
#include "solver/mip.h"
#include "solver/saa.h"
#include "util/rng.h"

namespace recon::solver {
namespace {

using graph::NodeId;
using sim::Observation;
using sim::Problem;

Problem small_problem(int seed, graph::NodeId n = 16, graph::EdgeId m = 30) {
  sim::ProblemOptions opts;
  opts.num_targets = 6;
  opts.base_acceptance = 0.5;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(n, m, seed),
                               graph::EdgeProbModel::uniform(0.2, 0.9), seed + 1),
      opts);
}

TEST(Bnb, SolvesKnapsackLikeSelection) {
  // Maximize sum of values with |S| = 2; modular, so bound is exact.
  const std::vector<double> values{5.0, 1.0, 4.0, 2.0};
  BnbOracle oracle;
  oracle.num_items = 4;
  oracle.cardinality = 2;
  oracle.evaluate = [&](const std::vector<std::size_t>& s) {
    double v = 0.0;
    for (auto i : s) v += values[i];
    return v;
  };
  oracle.bound = [&](const std::vector<std::size_t>& s, std::size_t next) {
    double v = 0.0;
    for (auto i : s) v += values[i];
    std::vector<double> rest(values.begin() + static_cast<long>(next), values.end());
    std::sort(rest.rbegin(), rest.rend());
    for (std::size_t i = 0; i < std::min(rest.size(), oracle.cardinality - s.size()); ++i) {
      v += rest[i];
    }
    return v;
  };
  const BnbResult r = branch_and_bound(oracle);
  EXPECT_DOUBLE_EQ(r.best_value, 9.0);
  EXPECT_EQ(r.best_set, (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(r.completed);
}

TEST(Bnb, NodeLimitReportsIncomplete) {
  BnbOracle oracle;
  oracle.num_items = 20;
  oracle.cardinality = 10;
  oracle.evaluate = [](const std::vector<std::size_t>& s) {
    return static_cast<double>(s.size());
  };
  oracle.bound = [](const std::vector<std::size_t>&, std::size_t) { return 1e9; };
  BnbLimits limits;
  limits.max_nodes = 50;
  const BnbResult r = branch_and_bound(oracle, limits);
  EXPECT_FALSE(r.completed);
}

TEST(Bnb, Validation) {
  BnbOracle oracle;
  oracle.num_items = 2;
  oracle.cardinality = 3;
  oracle.evaluate = [](const std::vector<std::size_t>&) { return 0.0; };
  oracle.bound = [](const std::vector<std::size_t>&, std::size_t) { return 0.0; };
  EXPECT_THROW(branch_and_bound(oracle), std::invalid_argument);
  oracle.cardinality = 1;
  oracle.evaluate = nullptr;
  EXPECT_THROW(branch_and_bound(oracle), std::invalid_argument);
}

TEST(Saa, ScenariosRespectObservation) {
  const Problem p = small_problem(1);
  Observation obs(p);
  const sim::World w(p, 9);
  obs.record_accept(0, w.true_neighbors(0));
  obs.record_reject(1);
  const auto scenarios = sample_scenarios(obs, 50, 7);
  ASSERT_EQ(scenarios.size(), 50u);
  for (const auto& sc : scenarios) {
    EXPECT_EQ(sc.accept[0], 0);  // friends never "accept" again
    for (graph::EdgeId e = 0; e < p.graph.num_edges(); ++e) {
      if (obs.edge_state(e) == sim::EdgeState::kPresent) {
        EXPECT_EQ(sc.edge_exists[e], 1);
      }
      if (obs.edge_state(e) == sim::EdgeState::kAbsent) {
        EXPECT_EQ(sc.edge_exists[e], 0);
      }
    }
  }
}

TEST(Saa, AcceptanceFrequencyMatchesModel) {
  const Problem p = small_problem(2);
  Observation obs(p);
  const auto scenarios = sample_scenarios(obs, 20000, 3);
  double acc = 0.0;
  for (const auto& sc : scenarios) acc += sc.accept[5];
  EXPECT_NEAR(acc / 20000.0, 0.5, 0.02);
}

TEST(Saa, AntitheticIsUnbiasedAndReducesVariance) {
  const Problem p = small_problem(6);
  Observation obs(p);
  const std::vector<NodeId> batch{0, 3, 7, 11};
  // Reference value from a very large iid sample.
  const auto big = sample_scenarios(obs, 40000, 99);
  const double reference = saa_objective(obs, big, batch);
  // Compare estimator variance: many small batches, iid vs antithetic.
  const std::size_t batch_size = 40;
  const int trials = 200;
  double iid_mean = 0.0, iid_sq = 0.0, anti_mean = 0.0, anti_sq = 0.0;
  for (int t = 0; t < trials; ++t) {
    const double iid = saa_objective(
        obs, sample_scenarios(obs, batch_size, util::derive_seed(7, t)), batch);
    const double anti = saa_objective(
        obs, sample_scenarios_antithetic(obs, batch_size, util::derive_seed(8, t)),
        batch);
    iid_mean += iid;
    iid_sq += iid * iid;
    anti_mean += anti;
    anti_sq += anti * anti;
  }
  iid_mean /= trials;
  anti_mean /= trials;
  const double iid_var = iid_sq / trials - iid_mean * iid_mean;
  const double anti_var = anti_sq / trials - anti_mean * anti_mean;
  // Unbiased: both estimator means near the reference.
  EXPECT_NEAR(anti_mean, reference, reference * 0.03);
  EXPECT_NEAR(iid_mean, reference, reference * 0.03);
  // Variance reduction (comfortably below, not marginal).
  EXPECT_LT(anti_var, iid_var * 0.8);
}

TEST(Saa, AntitheticRespectsObservation) {
  const Problem p = small_problem(7);
  Observation obs(p);
  const sim::World w(p, 9);
  obs.record_accept(0, w.true_neighbors(0));
  const auto scenarios = sample_scenarios_antithetic(obs, 21, 5);  // rounded to 22
  EXPECT_EQ(scenarios.size(), 22u);
  for (const auto& sc : scenarios) {
    EXPECT_EQ(sc.accept[0], 0);
    for (graph::EdgeId e = 0; e < p.graph.num_edges(); ++e) {
      if (obs.edge_state(e) == sim::EdgeState::kPresent) {
        EXPECT_EQ(sc.edge_exists[e], 1);
      }
    }
  }
}

TEST(Saa, ObjectiveMonotoneInBatch) {
  const Problem p = small_problem(3);
  Observation obs(p);
  const auto scenarios = sample_scenarios(obs, 200, 5);
  std::vector<NodeId> batch;
  double last = 0.0;
  for (NodeId u = 0; u < 6; ++u) {
    batch.push_back(u);
    const double v = saa_objective(obs, scenarios, batch);
    EXPECT_GE(v, last - 1e-9);
    last = v;
  }
}

TEST(Saa, ScenarioBenefitSubmodular) {
  // For random scenarios and random nested sets A ⊆ B and u ∉ B:
  // Δ(u | A) >= Δ(u | B).
  const Problem p = small_problem(4);
  Observation obs(p);
  const auto scenarios = sample_scenarios(obs, 30, 11);
  util::Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<NodeId> a, b;
    for (NodeId u = 0; u < p.graph.num_nodes(); ++u) {
      const double r = rng.uniform();
      if (r < 0.2) {
        a.push_back(u);
        b.push_back(u);
      } else if (r < 0.4) {
        b.push_back(u);
      }
    }
    NodeId u;
    do {
      u = static_cast<NodeId>(rng.below(p.graph.num_nodes()));
    } while (std::find(b.begin(), b.end(), u) != b.end());
    auto with = [&](std::vector<NodeId> s) {
      s.push_back(u);
      return s;
    };
    for (const auto& sc : scenarios) {
      const double da = scenario_benefit(obs, sc, with(a)) - scenario_benefit(obs, sc, a);
      const double db = scenario_benefit(obs, sc, with(b)) - scenario_benefit(obs, sc, b);
      ASSERT_GE(da, db - 1e-9);
    }
  }
}

TEST(Saa, BenefitRejectsFriendInBatch) {
  const Problem p = small_problem(5);
  Observation obs(p);
  const sim::World w(p, 9);
  obs.record_accept(0, w.true_neighbors(0));
  const auto scenarios = sample_scenarios(obs, 5, 3);
  EXPECT_THROW(scenario_benefit(obs, scenarios[0], {0}), std::invalid_argument);
}

TEST(Saa, KleywegtBound) {
  // T grows with k log n; sanity-check shape and validation.
  const double t1 = kleywegt_sample_bound(100, 2, 0.1, 0.05, 1.0);
  const double t2 = kleywegt_sample_bound(100, 4, 0.1, 0.05, 1.0);
  const double t3 = kleywegt_sample_bound(100, 2, 0.05, 0.05, 1.0);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t3, t1 * 3.9);
  EXPECT_THROW(kleywegt_sample_bound(10, 1, 0.0, 0.05, 1.0), std::invalid_argument);
  EXPECT_THROW(kleywegt_sample_bound(10, 1, 0.1, 1.5, 1.0), std::invalid_argument);
}

double brute_force_best(const Observation& obs, const std::vector<Scenario>& scenarios,
                        std::size_t k, const std::vector<NodeId>& candidates,
                        std::vector<NodeId>* best_set = nullptr) {
  // Enumerate all k-subsets.
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  double best = -1.0;
  for (;;) {
    std::vector<NodeId> batch;
    for (auto i : idx) batch.push_back(candidates[i]);
    const double v = saa_objective(obs, scenarios, batch);
    if (v > best) {
      best = v;
      if (best_set != nullptr) *best_set = batch;
    }
    // Next combination.
    std::size_t pos = k;
    while (pos > 0 && idx[pos - 1] == candidates.size() - k + pos - 1) --pos;
    if (pos == 0) break;
    ++idx[pos - 1];
    for (std::size_t i = pos; i < k; ++i) idx[i] = idx[i - 1] + 1;
  }
  return best;
}

class FobSolvers : public ::testing::TestWithParam<int> {};

TEST_P(FobSolvers, ExactMatchesBruteForce) {
  const int seed = GetParam();
  const Problem p = small_problem(seed);
  Observation obs(p);
  const sim::World w(p, static_cast<std::uint64_t>(seed) + 50);
  obs.record_accept(0, w.true_neighbors(0));  // nontrivial ω
  const auto candidates = fob_candidates(obs, false);
  const auto scenarios = sample_scenarios(obs, 60, static_cast<std::uint64_t>(seed));
  const std::size_t k = 3;
  const double brute = brute_force_best(obs, scenarios, k, candidates);
  const FobResult exact = fob_exact(obs, scenarios, k, candidates);
  EXPECT_TRUE(exact.exact);
  EXPECT_NEAR(exact.objective, brute, 1e-9) << "seed " << seed;
  // Greedy achieves at least (1 - 1/e) of optimal (usually much more).
  const FobResult greedy = fob_greedy(obs, scenarios, k, candidates);
  EXPECT_GE(greedy.objective, (1.0 - std::exp(-1.0)) * brute - 1e-9);
  EXPECT_LE(greedy.objective, exact.objective + 1e-9);
}

TEST_P(FobSolvers, MipMatchesExact) {
  const int seed = GetParam();
  const Problem p = small_problem(seed, 10, 18);
  Observation obs(p);
  const auto candidates = fob_candidates(obs, false);
  const auto scenarios = sample_scenarios(obs, 8, static_cast<std::uint64_t>(seed) + 2);
  const std::size_t k = 2;
  const double brute = brute_force_best(obs, scenarios, k, candidates);
  const MipResult mip = solve_fob_mip(obs, scenarios, k, candidates);
  EXPECT_TRUE(mip.optimal);
  EXPECT_NEAR(mip.objective, brute, 1e-7) << "seed " << seed;
  EXPECT_GE(mip.lp_bound, brute - 1e-7);  // LP relaxation is an upper bound
}

INSTANTIATE_TEST_SUITE_P(Seeds, FobSolvers, ::testing::Range(1, 7));

TEST(Fob, GreedyLazyInvariant) {
  // Lazy greedy must return the same batch as plain greedy.
  const Problem p = small_problem(9, 20, 40);
  Observation obs(p);
  const auto candidates = fob_candidates(obs, false);
  const auto scenarios = sample_scenarios(obs, 40, 21);
  const FobResult lazy = fob_greedy(obs, scenarios, 4, candidates);
  // Plain greedy reference.
  std::vector<NodeId> batch;
  for (int round = 0; round < 4; ++round) {
    NodeId best = graph::kInvalidNode;
    double best_gain = 0.0;
    const double base = batch.empty() ? 0.0 : saa_objective(obs, scenarios, batch);
    for (NodeId u : candidates) {
      if (std::find(batch.begin(), batch.end(), u) != batch.end()) continue;
      auto with = batch;
      with.push_back(u);
      const double gain = saa_objective(obs, scenarios, with) - base;
      if (gain > best_gain) {
        best_gain = gain;
        best = u;
      }
    }
    if (best == graph::kInvalidNode) break;
    batch.push_back(best);
  }
  EXPECT_EQ(lazy.batch, batch);
}

TEST(Fob, CandidateCapStillValid) {
  const Problem p = small_problem(10, 24, 50);
  Observation obs(p);
  const auto candidates = fob_candidates(obs, false);
  const auto scenarios = sample_scenarios(obs, 40, 5);
  FobExactOptions opts;
  opts.candidate_cap = 6;
  const FobResult capped = fob_exact(obs, scenarios, 3, candidates, opts);
  const FobResult full = fob_exact(obs, scenarios, 3, candidates);
  EXPECT_LE(capped.objective, full.objective + 1e-9);
  EXPECT_GE(capped.objective, 0.8 * full.objective);  // cap keeps top nodes
}

TEST_P(FobSolvers, BendersMatchesExact) {
  const int seed = GetParam();
  const Problem p = small_problem(seed, 14, 26);
  Observation obs(p);
  const auto candidates = fob_candidates(obs, false);
  const auto scenarios = sample_scenarios(obs, 30, static_cast<std::uint64_t>(seed) + 9);
  const std::size_t k = 3;
  const double brute = brute_force_best(obs, scenarios, k, candidates);
  const BendersResult benders = solve_fob_benders(obs, scenarios, k, candidates);
  EXPECT_TRUE(benders.optimal);
  EXPECT_NEAR(benders.objective, brute, 1e-6) << "seed " << seed;
  EXPECT_GT(benders.cuts_generated, 0u);
}

TEST(Benders, RecourseMatchesScenarioBenefitAtBinaryPoints) {
  // At binary x, first_stage(x) + Q(x) must equal the SAA objective of the
  // selected batch exactly.
  const Problem p = small_problem(8, 16, 30);
  Observation obs(p);
  const auto candidates = fob_candidates(obs, false);
  const auto scenarios = sample_scenarios(obs, 25, 7);
  util::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> x(candidates.size(), 0.0);
    std::vector<NodeId> batch;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (rng.bernoulli(0.25)) {
        x[i] = 1.0;
        batch.push_back(candidates[i]);
      }
    }
    const double total = first_stage_value(obs, scenarios, candidates, x) +
                         evaluate_recourse(obs, scenarios, candidates, x).value;
    EXPECT_NEAR(total, saa_objective(obs, scenarios, batch), 1e-9) << trial;
  }
}

TEST(Benders, RecourseIsConcaveAlongSegments) {
  // Q((xa + xb)/2) >= (Q(xa) + Q(xb)) / 2 for random fractional points.
  const Problem p = small_problem(9, 16, 30);
  Observation obs(p);
  const auto candidates = fob_candidates(obs, false);
  const auto scenarios = sample_scenarios(obs, 20, 3);
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xa(candidates.size()), xb(candidates.size()),
        mid(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      xa[i] = rng.uniform();
      xb[i] = rng.uniform();
      mid[i] = 0.5 * (xa[i] + xb[i]);
    }
    const double qa = evaluate_recourse(obs, scenarios, candidates, xa).value;
    const double qb = evaluate_recourse(obs, scenarios, candidates, xb).value;
    const double qm = evaluate_recourse(obs, scenarios, candidates, mid).value;
    EXPECT_GE(qm, 0.5 * (qa + qb) - 1e-9);
  }
}

TEST(Benders, SupergradientIsGlobalOverestimate) {
  // Q(y) <= Q(x) + g(x)ᵀ(y − x) for all y (definition of a supergradient of
  // a concave function).
  const Problem p = small_problem(10, 14, 26);
  Observation obs(p);
  const auto candidates = fob_candidates(obs, false);
  const auto scenarios = sample_scenarios(obs, 20, 5);
  util::Rng rng(13);
  std::vector<double> x(candidates.size());
  for (auto& v : x) v = rng.uniform();
  const auto at_x = evaluate_recourse(obs, scenarios, candidates, x);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> y(candidates.size());
    for (auto& v : y) v = rng.uniform();
    const double qy = evaluate_recourse(obs, scenarios, candidates, y).value;
    double linear = at_x.value;
    for (std::size_t i = 0; i < y.size(); ++i) {
      linear += at_x.supergradient[i] * (y[i] - x[i]);
    }
    EXPECT_LE(qy, linear + 1e-9) << trial;
  }
}

TEST(Benders, Validation) {
  const Problem p = small_problem(11, 10, 18);
  Observation obs(p);
  const auto scenarios = sample_scenarios(obs, 5, 1);
  EXPECT_THROW(solve_fob_benders(obs, {}, 2, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(solve_fob_benders(obs, scenarios, 5, {0, 1}), std::invalid_argument);
  EXPECT_THROW(
      evaluate_recourse(obs, scenarios, {0, 1}, std::vector<double>(3, 0.0)),
      std::invalid_argument);
}

TEST(Mip, LpRelaxationStructure) {
  const Problem p = small_problem(11, 8, 12);
  Observation obs(p);
  const auto candidates = fob_candidates(obs, false);
  const auto scenarios = sample_scenarios(obs, 4, 9);
  const LpProblem lp = build_fob_lp(obs, scenarios, 2, candidates);
  EXPECT_GE(lp.num_vars(), candidates.size());
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // x part sums to k.
  double sum = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) sum += r.x[i];
  EXPECT_NEAR(sum, 2.0, 1e-7);
}

TEST(Mip, ThrowsWhenTooFewCandidates) {
  const Problem p = small_problem(12, 8, 12);
  Observation obs(p);
  const auto scenarios = sample_scenarios(obs, 2, 1);
  EXPECT_THROW(solve_fob_mip(obs, scenarios, 3, {0, 1}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace recon::solver
