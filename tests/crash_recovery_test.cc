// Chaos tests for the crash-resilience layer: crash-point coverage, atomic
// publish under injected kills, supervised recovery that is byte-identical
// to an uninterrupted run, restart bounds, and corrupted-generation
// quarantine. Kill-based tests fork a child, arm a crash point there, and
// assert the parent-visible state afterwards — the same torn state a power
// cut would leave, produced deterministically.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/async_attack.h"
#include "core/attack.h"
#include "core/checkpoint.h"
#include "core/checkpoint_chain.h"
#include "core/pm_arest.h"
#include "core/retry_policy.h"
#include "core/supervisor.h"
#include "graph/format.h"
#include "graph/generators.h"
#include "sim/fault.h"
#include "sim/problem.h"
#include "sim/trace_io.h"
#include "util/crashpoint.h"
#include "util/fs.h"
#include "util/thread_pool.h"

namespace recon::core {
namespace {

using graph::NodeId;
using sim::Problem;

Problem test_problem(int seed) {
  sim::ProblemOptions opts;
  opts.num_targets = 20;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  graph::Graph g = graph::barabasi_albert(100, 4, seed);
  return sim::make_problem(
      graph::assign_edge_probs(std::move(g),
                               graph::EdgeProbModel::uniform(0.3, 0.95), seed + 1),
      opts);
}

/// mkdtemp-backed scratch directory, recursively (one level) removed on
/// destruction — chain files, quarantines, and tmp leftovers included.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/recon_crash_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    if (p == nullptr) throw std::runtime_error("mkdtemp failed");
    path = p;
  }
  ~TempDir() {
    if (DIR* d = ::opendir(path.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") std::remove((path + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path.c_str());
  }
  std::string path;
};

/// select_seconds is the one wall-clock field in a trace; zero it so byte
/// comparison tests pure attack content.
sim::AttackTrace zeroed(sim::AttackTrace t) {
  for (auto& b : t.batches) b.select_seconds = 0.0;
  return t;
}

std::string trace_bytes(const sim::AttackTrace& t) {
  std::ostringstream out;
  sim::write_traces(out, {zeroed(t)});
  return out.str();
}

int wait_exit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.is_open()) << path;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Crash-point registry.
// ---------------------------------------------------------------------------

// Every registered site must actually execute during one pass over the
// durable writers it claims to instrument — a site in the table that never
// fires would make env-armed chaos sweeps of it vacuous.
TEST(CrashPoints, EveryRegisteredSiteFires) {
  namespace cp = util::crashpoint;
  cp::reset_counts();
  TempDir dir;
  const Problem p = test_problem(12);
  const sim::World w(p, 99);

  // Single-file checkpoint writes: ckpt.* and durable.*.
  const std::string ck = dir.path + "/ck";
  PmArest strategy(PmArestOptions{.batch_size = 5});
  AttackRunOptions ro;
  ro.checkpoint_path = ck;
  ro.checkpoint_every_rounds = 1;
  ro.stop_after_rounds = 2;
  run_attack(p, w, strategy, 30.0, ro);
  const AttackCheckpoint snapshot = read_checkpoint_file(ck);

  // Chain publishes: chain.* (three writes at max_generations=2 force a
  // prune, so chain.pruned fires too).
  CheckpointChain chain(dir.path + "/chain",
                        CheckpointChainOptions{.max_generations = 2});
  for (int i = 0; i < 3; ++i) chain.write(snapshot);

  // Trace and graph-binary publishes: trace.* and graph.*.
  sim::write_traces_file(dir.path + "/t.traces", {snapshot.trace});
  graph::write_graph_binary_file(dir.path + "/g.bin", p.graph);

  for (const std::string& site : cp::all_sites()) {
    EXPECT_GT(cp::hit_count(site), 0u) << "site never executed: " << site;
  }
}

TEST(CrashPoints, ArmRejectsUnknownSiteAndZeroCount) {
  namespace cp = util::crashpoint;
  EXPECT_THROW(cp::arm("no.such.site", 1), std::invalid_argument);
  EXPECT_THROW(cp::arm("ckpt.tmp-written", 0), std::invalid_argument);
  cp::disarm();
}

TEST(CrashPoints, ArmedSiteKillsAtNthExecution) {
  TempDir dir;
  const Problem p = test_problem(13);
  const sim::World w(p, 7);
  const std::string ck = dir.path + "/ck";
  PmArest strategy(PmArestOptions{.batch_size = 5});
  AttackRunOptions ro;
  ro.checkpoint_path = ck;
  ro.stop_after_rounds = 1;
  run_attack(p, w, strategy, 30.0, ro);
  const AttackCheckpoint snapshot = read_checkpoint_file(ck);

  CheckpointChain chain(dir.path + "/chain");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    util::crashpoint::arm("chain.gen-published", 2);
    try {
      chain.write(snapshot);  // survives: first execution
      chain.write(snapshot);  // dies mid-call, after publishing gen 1
    } catch (...) {
      ::_exit(9);
    }
    ::_exit(7);  // unreachable when the kill fires
  }
  EXPECT_EQ(wait_exit(pid), util::crashpoint::kExitCode);
  // Both generations were published (the kill is *after* the second rename),
  // and the chain recovers from the newest.
  const auto good = chain.load_last_good();
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->generation, 1u);
  EXPECT_EQ(good->quarantined, 0u);
}

// ---------------------------------------------------------------------------
// Atomic publish: a kill at any instrumented point leaves the destination
// either the old complete document or the new one — never torn.
// ---------------------------------------------------------------------------

TEST(AtomicPublish, CheckpointFileSurvivesKillAtEverySite) {
  TempDir dir;
  const Problem p = test_problem(14);
  const sim::World w(p, 5);
  const std::string staging = dir.path + "/stage";
  const auto checkpoint_after = [&](std::uint64_t rounds) {
    PmArest strategy(PmArestOptions{.batch_size = 5});
    AttackRunOptions ro;
    ro.checkpoint_path = staging;
    ro.stop_after_rounds = rounds;
    run_attack(p, w, strategy, 30.0, ro);
    return read_checkpoint_file(staging);
  };
  const AttackCheckpoint old_cp = checkpoint_after(1);
  const AttackCheckpoint new_cp = checkpoint_after(2);
  ASSERT_NE(old_cp.round, new_cp.round);

  const std::vector<std::string> sites = {
      "ckpt.tmp-open", "ckpt.tmp-torn", "ckpt.tmp-written",
      "durable.fsynced", "durable.renamed"};
  for (const std::string& site : sites) {
    const std::string path = dir.path + "/ck." + site;
    write_checkpoint_file(path, old_cp);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      util::crashpoint::arm(site, 1);
      try {
        write_checkpoint_file(path, new_cp);
      } catch (...) {
        ::_exit(9);
      }
      ::_exit(7);
    }
    EXPECT_EQ(wait_exit(pid), util::crashpoint::kExitCode) << site;
    const AttackCheckpoint got = read_checkpoint_file(path);  // must parse
    if (site == "durable.renamed") {
      EXPECT_EQ(got.round, new_cp.round) << site;  // kill lands after rename
    } else {
      EXPECT_EQ(got.round, old_cp.round) << site;
    }
  }
}

TEST(AtomicPublish, TraceAndGraphFilesSurviveTornWriteKills) {
  TempDir dir;
  const Problem p = test_problem(15);

  const std::string tr = dir.path + "/t.traces";
  sim::AttackTrace one;
  one.batches.emplace_back();
  one.batches.back().requests = {1};
  one.batches.back().accepted = {1};
  one.batches.back().cost = 1.0;
  one.batches.back().cumulative_cost = 1.0;
  sim::write_traces_file(tr, {one});
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    util::crashpoint::arm("trace.tmp-torn", 1);
    try {
      sim::write_traces_file(tr, {one, one});
    } catch (...) {
      ::_exit(9);
    }
    ::_exit(7);
  }
  EXPECT_EQ(wait_exit(pid), util::crashpoint::kExitCode);
  EXPECT_EQ(sim::read_traces_file(tr).size(), 1u);  // old document intact

  const std::string gb = dir.path + "/g.bin";
  graph::write_graph_binary_file(gb, p.graph);
  pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    util::crashpoint::arm("graph.tmp-torn", 1);
    try {
      graph::write_graph_binary_file(gb, p.graph);
    } catch (...) {
      ::_exit(9);
    }
    ::_exit(7);
  }
  EXPECT_EQ(wait_exit(pid), util::crashpoint::kExitCode);
  const graph::Graph mapped = graph::map_graph_binary_file(gb);
  EXPECT_EQ(mapped.num_nodes(), p.graph.num_nodes());
}

// ---------------------------------------------------------------------------
// Supervised chaos sweep: kill the worker at every chain / durable / trace
// site, let the supervisor restart it from the last good generation, and
// require the final trace to be byte-identical to an uninterrupted run.
// ---------------------------------------------------------------------------

struct SweepConfig {
  bool async = false;
  bool faulted = false;
  unsigned threads = 0;  ///< 0 = no thread pool
};

sim::FaultOptions sweep_fault() {
  sim::FaultOptions fo;
  fo.timeout_rate = 0.1;
  fo.drop_rate = 0.05;
  fo.throttle_rate = 0.05;
  fo.seed = 17;
  return fo;
}

RetryPolicy sweep_retry() {
  RetryPolicy retry;
  retry.backoff = RetryBackoff::kFixed;
  retry.base_delay = 2.0;
  return retry;
}

constexpr double kSweepBudget = 30.0;
constexpr std::uint64_t kSweepWorldSeed = 424242;

sim::AttackTrace reference_trace(const Problem& p, const SweepConfig& cfg) {
  const sim::World w(p, kSweepWorldSeed);
  const RetryPolicy retry = sweep_retry();
  if (cfg.async) {
    AsyncAttackOptions ao;
    ao.window = 4;
    std::unique_ptr<sim::FaultModel> fm;
    if (cfg.faulted) {
      fm = std::make_unique<sim::FaultModel>(sweep_fault());
      ao.fault = fm.get();
      ao.allow_retries = true;
      ao.retry = &retry;
    }
    return run_async_attack(p, w, ao, kSweepBudget).trace;
  }
  // The reference is deliberately pool-free: parallel and sequential
  // selection are bit-identical, so one reference serves every thread count.
  PmArestOptions po{.batch_size = 5};
  po.allow_retries = cfg.faulted;
  PmArest strategy(po);
  AttackRunOptions ro;
  std::unique_ptr<sim::FaultModel> fm;
  if (cfg.faulted) {
    fm = std::make_unique<sim::FaultModel>(sweep_fault());
    ro.fault = fm.get();
    ro.retry = &retry;
  }
  return run_attack(p, w, strategy, kSweepBudget, ro);
}

/// One supervised run with `site`:`nth` armed in the first worker attempt.
/// Returns the supervisor result; `out_path` receives the worker's final
/// trace (select_seconds zeroed in the worker so files byte-compare).
SuperviseResult run_supervised_case(const Problem& p, const SweepConfig& cfg,
                                    CheckpointChain& chain,
                                    const std::string& out_path,
                                    const std::string& site, std::uint64_t nth) {
  const SupervisedWorker worker = [&](const AttackCheckpoint* resume,
                                      int /*attempt*/) -> int {
    const sim::World w(p, kSweepWorldSeed);
    const RetryPolicy retry = sweep_retry();
    sim::AttackTrace trace;
    if (cfg.async) {
      AsyncAttackOptions ao;
      ao.window = 4;
      ao.checkpoint_chain = &chain;
      ao.checkpoint_every_events = 1;
      ao.resume = resume;
      std::unique_ptr<sim::FaultModel> fm;
      if (cfg.faulted) {
        fm = std::make_unique<sim::FaultModel>(sweep_fault());
        ao.fault = fm.get();
        ao.allow_retries = true;
        ao.retry = &retry;
      }
      trace = run_async_attack(p, w, ao, kSweepBudget).trace;
    } else {
      // The pool (when any) lives strictly inside the forked worker: the
      // supervisor parent must stay single-threaded across fork().
      std::unique_ptr<util::ThreadPool> pool;
      PmArestOptions po{.batch_size = 5};
      po.allow_retries = cfg.faulted;
      if (cfg.threads > 0) {
        pool = std::make_unique<util::ThreadPool>(cfg.threads);
        po.pool = pool.get();
      }
      PmArest strategy(po);
      AttackRunOptions ro;
      ro.checkpoint_chain = &chain;
      ro.checkpoint_every_rounds = 1;
      ro.resume = resume;
      std::unique_ptr<sim::FaultModel> fm;
      if (cfg.faulted) {
        fm = std::make_unique<sim::FaultModel>(sweep_fault());
        ro.fault = fm.get();
        ro.retry = &retry;
      }
      trace = run_attack(p, w, strategy, kSweepBudget, ro);
    }
    sim::write_traces_file(out_path, {zeroed(trace)});
    return 0;
  };

  SuperviseOptions so;
  so.max_restarts = 3;
  so.backoff_base_seconds = 0.001;
  so.backoff_max_seconds = 0.002;
  util::crashpoint::arm(site, nth);
  const SuperviseResult result = run_supervised(chain, so, worker);
  // The armed state is inherited by forked workers but lives in this (the
  // parent/test) process too — disarm before the next in-process write.
  util::crashpoint::disarm();
  return result;
}

void run_sweep(const SweepConfig& cfg) {
  const Problem p = test_problem(11);
  const std::string ref = trace_bytes(reference_trace(p, cfg));

  struct Case {
    const char* site;
    std::uint64_t nth;
  };
  const std::vector<Case> cases = {
      {"chain.tmp-open", 1},   {"chain.tmp-torn", 1},
      {"chain.tmp-written", 1}, {"chain.gen-published", 1},
      {"chain.manifest-written", 1}, {"chain.pruned", 1},
      {"durable.fsynced", 1},  {"durable.renamed", 1},
      {"trace.tmp-torn", 1},   {"trace.tmp-written", 1},
      {"chain.tmp-written", 3}, {"chain.gen-published", 3},
      {"durable.renamed", 3},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(c.site) + ":" + std::to_string(c.nth));
    TempDir dir;
    CheckpointChain chain(dir.path + "/chain");
    const std::string out = dir.path + "/out.traces";
    const SuperviseResult r =
        run_supervised_case(p, cfg, chain, out, c.site, c.nth);
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_FALSE(r.crash_loop);
    // Every swept site executes at least once per run, so nth=1 always
    // kills attempt 0 — the recovery path genuinely ran.
    if (c.nth == 1) {
      EXPECT_EQ(r.restarts, 1);
    }
    EXPECT_EQ(util::read_file_bytes(out), ref);
  }
}

TEST(SupervisedChaos, SyncSweepByteIdentical) { run_sweep({}); }

TEST(SupervisedChaos, AsyncSweepByteIdentical) { run_sweep({.async = true}); }

TEST(SupervisedChaos, FaultedRetriedSweepByteIdentical) {
  run_sweep({.faulted = true});
}

TEST(SupervisedChaos, TwoThreadSweepByteIdentical) { run_sweep({.threads = 2}); }

TEST(SupervisedChaos, EightThreadSweepByteIdentical) {
  run_sweep({.threads = 8});
}

// ---------------------------------------------------------------------------
// Supervisor restart bounds and stop semantics.
// ---------------------------------------------------------------------------

AttackCheckpoint synthetic_checkpoint(std::uint64_t round) {
  AttackCheckpoint cp;
  cp.round = round;
  cp.strategy_name = "synthetic";
  return cp;
}

TEST(Supervisor, RestartBudgetExhaustedHaltsNonzero) {
  TempDir dir;
  CheckpointChain chain(dir.path + "/chain");
  SuperviseOptions so;
  so.max_restarts = 2;
  so.backoff_base_seconds = 0.001;
  so.backoff_max_seconds = 0.002;
  // Progresses every attempt (so crash-loop detection never trips), but
  // always crashes: only the restart budget can end this.
  const SuperviseResult r = run_supervised(
      chain, so, [&](const AttackCheckpoint*, int attempt) -> int {
        chain.write(synthetic_checkpoint(static_cast<std::uint64_t>(attempt) + 1));
        return 42;
      });
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.restart_budget_exhausted);
  EXPECT_FALSE(r.crash_loop);
  EXPECT_EQ(r.restarts, so.max_restarts + 1);
  // Every attempt wrote its generation before crashing, so the chain records
  // exactly max_restarts + 1 launches (workers run in forked children — the
  // chain, not parent-side counters, is the witness).
  const auto good = chain.load_last_good();
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->checkpoint.round,
            static_cast<std::uint64_t>(so.max_restarts) + 1);
}

TEST(Supervisor, CrashLoopWithoutProgressDetected) {
  TempDir dir;
  CheckpointChain chain(dir.path + "/chain");
  SuperviseOptions so;
  so.max_restarts = 10;
  so.crash_loop_threshold = 3;
  so.backoff_base_seconds = 0.001;
  so.backoff_max_seconds = 0.002;
  // Crashes without ever writing a checkpoint: the loop detector must give
  // up long before the restart budget.
  const SuperviseResult r = run_supervised(
      chain, so, [](const AttackCheckpoint*, int) -> int { return 42; });
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.crash_loop);
  EXPECT_FALSE(r.restart_budget_exhausted);
  EXPECT_EQ(r.restarts, so.crash_loop_threshold);
}

TEST(Supervisor, GracefulStopExitPassesThroughWithoutRestart) {
  TempDir dir;
  CheckpointChain chain(dir.path + "/chain");
  const SuperviseResult r = run_supervised(
      chain, SuperviseOptions{},
      [](const AttackCheckpoint*, int) -> int { return kWorkerStopExit; });
  EXPECT_EQ(r.exit_code, kWorkerStopExit);
  EXPECT_EQ(r.restarts, 0);
}

TEST(Supervisor, ResumesFromNewestGoodGeneration) {
  TempDir dir;
  CheckpointChain chain(dir.path + "/chain");
  chain.write(synthetic_checkpoint(3));
  chain.write(synthetic_checkpoint(7));
  const SuperviseResult r = run_supervised(
      chain, SuperviseOptions{},
      [&](const AttackCheckpoint* resume, int) -> int {
        // The worker runs in a fork; report the observation via exit code.
        return resume != nullptr && resume->round == 7 ? 0 : 33;
      });
  EXPECT_EQ(r.exit_code, 0);
}

// ---------------------------------------------------------------------------
// Cooperative stop: a should_stop runner writes a final forced snapshot,
// and resuming from it completes the attack byte-identically.
// ---------------------------------------------------------------------------

TEST(CooperativeStop, ForcedSnapshotResumesByteIdentical) {
  TempDir dir;
  const Problem p = test_problem(16);
  const sim::World w(p, kSweepWorldSeed);
  PmArest full_strategy(PmArestOptions{.batch_size = 5});
  const sim::AttackTrace full = run_attack(p, w, full_strategy, kSweepBudget);

  CheckpointChain chain(dir.path + "/chain");
  int polls = 0;
  PmArest first_half(PmArestOptions{.batch_size = 5});
  AttackRunOptions stop_opts;
  stop_opts.checkpoint_chain = &chain;
  stop_opts.checkpoint_every_rounds = 0;  // only the forced stop snapshot
  stop_opts.should_stop = [&]() { return ++polls > 3; };
  const sim::AttackTrace partial =
      run_attack(p, w, first_half, kSweepBudget, stop_opts);
  ASSERT_LT(partial.batches.size(), full.batches.size());

  const auto good = chain.load_last_good();
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->checkpoint.round, partial.batches.size());

  PmArest second_half(PmArestOptions{.batch_size = 5});
  AttackRunOptions resume_opts;
  resume_opts.resume = &good->checkpoint;
  const sim::AttackTrace resumed =
      run_attack(p, w, second_half, kSweepBudget, resume_opts);
  EXPECT_EQ(trace_bytes(resumed), trace_bytes(full));
}

// ---------------------------------------------------------------------------
// Corrupted-generation fuzz: bit flips and truncations of a generation must
// quarantine it (never silently delete) and fall back deterministically.
// ---------------------------------------------------------------------------

class ChainFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    const Problem p = test_problem(17);
    const sim::World w(p, 77);
    chain_base_ = dir_.path + "/chain";
    CheckpointChain chain(chain_base_);
    PmArest strategy(PmArestOptions{.batch_size = 5});
    AttackRunOptions ro;
    ro.checkpoint_chain = &chain;
    ro.checkpoint_every_rounds = 1;
    run_attack(p, w, strategy, kSweepBudget, ro);
    gens_ = chain.list_generations();
    ASSERT_GE(gens_.size(), 3u);
    for (const std::uint64_t g : gens_) {
      pristine_[g] = util::read_file_bytes(chain.generation_path(g));
    }
  }

  /// Restores every generation file and removes quarantine leftovers, so
  /// each corruption case starts from the identical pristine directory.
  void restore_pristine() {
    CheckpointChain chain(chain_base_);
    for (const auto& [g, bytes] : pristine_) {
      const std::string path = chain.generation_path(g);
      std::remove((path + ".quarantine").c_str());
      write_raw(path, bytes);
    }
  }

  std::uint64_t newest() const { return gens_.back(); }
  std::uint64_t second_newest() const { return gens_[gens_.size() - 2]; }

  TempDir dir_;
  std::string chain_base_;
  std::vector<std::uint64_t> gens_;
  std::map<std::uint64_t, std::string> pristine_;
};

TEST_F(ChainFuzz, BitFlipsQuarantineNewestAndFallBack) {
  const std::string& bytes = pristine_[newest()];
  for (const std::size_t offset :
       {std::size_t{0}, bytes.size() / 3, bytes.size() - 2}) {
    SCOPED_TRACE("flip at " + std::to_string(offset));
    restore_pristine();
    CheckpointChain chain(chain_base_);
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x20);
    write_raw(chain.generation_path(newest()), corrupt);

    const auto good = chain.load_last_good();
    ASSERT_TRUE(good.has_value());
    EXPECT_EQ(good->generation, second_newest());
    EXPECT_EQ(good->quarantined, 1u);
    EXPECT_FALSE(util::path_exists(chain.generation_path(newest())));
    EXPECT_TRUE(
        util::path_exists(chain.generation_path(newest()) + ".quarantine"));
    // Deterministic: a second recovery pass (fresh chain object, quarantine
    // already in place) lands on the same generation without re-quarantining.
    CheckpointChain again(chain_base_);
    const auto second = again.load_last_good();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->generation, second_newest());
    EXPECT_EQ(second->quarantined, 0u);
  }
}

TEST_F(ChainFuzz, TruncationsQuarantineNewestAndFallBack) {
  const std::string& bytes = pristine_[newest()];
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    SCOPED_TRACE("truncate to " + std::to_string(keep));
    restore_pristine();
    CheckpointChain chain(chain_base_);
    write_raw(chain.generation_path(newest()), bytes.substr(0, keep));

    const auto good = chain.load_last_good();
    ASSERT_TRUE(good.has_value());
    EXPECT_EQ(good->generation, second_newest());
    EXPECT_EQ(good->quarantined, 1u);
    EXPECT_TRUE(
        util::path_exists(chain.generation_path(newest()) + ".quarantine"));
  }
}

TEST_F(ChainFuzz, AllGenerationsCorruptMeansFreshStart) {
  restore_pristine();
  CheckpointChain chain(chain_base_);
  for (const std::uint64_t g : gens_) {
    std::string corrupt = pristine_[g];
    corrupt[corrupt.size() / 2] = static_cast<char>(corrupt[corrupt.size() / 2] ^ 0xFF);
    write_raw(chain.generation_path(g), corrupt);
  }
  EXPECT_FALSE(chain.load_last_good().has_value());
  EXPECT_TRUE(chain.list_generations().empty());
  for (const std::uint64_t g : gens_) {
    EXPECT_TRUE(util::path_exists(chain.generation_path(g) + ".quarantine"));
  }
  // New writes must not reuse quarantined indices: the same index holding
  // two different documents would make "which gen-N was that?" ambiguous.
  const std::uint64_t fresh = chain.write(synthetic_checkpoint(1));
  EXPECT_GT(fresh, newest());
}

// ---------------------------------------------------------------------------
// Torn-trace recovery (read_traces_recover).
// ---------------------------------------------------------------------------

std::string two_batch_trace_doc() {
  sim::AttackTrace t;
  for (int i = 0; i < 2; ++i) {
    sim::BatchRecord b;
    b.requests = {static_cast<NodeId>(10 + i), static_cast<NodeId>(20 + i)};
    b.accepted = {1, 0};
    b.delta.friends = 1.0;
    b.cost = 2.0;
    b.cumulative_cost = 2.0 * (i + 1);
    t.batches.push_back(std::move(b));
  }
  std::ostringstream out;
  sim::write_traces(out, {t});
  return out.str();
}

TEST(TraceRecovery, TornTailDroppedOnlyInRecoverMode) {
  const std::string doc = two_batch_trace_doc();
  // Cut mid-way through the final batch line — the torn append a crash
  // leaves behind.
  const std::size_t last_line = doc.rfind("batch ");
  const std::string torn = doc.substr(0, last_line + 10);

  std::istringstream strict(torn);
  EXPECT_THROW(sim::read_traces(strict), std::runtime_error);

  std::istringstream lenient(torn);
  const auto traces = sim::read_traces_recover(lenient);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].batches.size(), 1u);  // torn record dropped
  EXPECT_EQ(traces[0].batches[0].requests, (std::vector<NodeId>{10, 20}));
}

TEST(TraceRecovery, MissingEndMarkerToleratedOnlyInRecoverMode) {
  const std::string doc = two_batch_trace_doc();
  const std::string no_end = doc.substr(0, doc.rfind("end "));

  std::istringstream strict(no_end);
  EXPECT_THROW(sim::read_traces(strict), std::runtime_error);

  std::istringstream lenient(no_end);
  const auto traces = sim::read_traces_recover(lenient);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].batches.size(), 2u);  // both records were complete
}

TEST(TraceRecovery, MidFileCorruptionStillThrowsInRecoverMode) {
  const std::string doc = two_batch_trace_doc();
  // Corrupt the *first* batch line: not a torn tail, so recovery must not
  // paper over it.
  std::string corrupt = doc;
  const std::size_t first = corrupt.find("sel=");
  corrupt.replace(first, 4, "sXl=");
  std::istringstream in(corrupt);
  EXPECT_THROW(sim::read_traces_recover(in), std::runtime_error);

  // An end-count mismatch means lost traces, not a torn record.
  std::string bad_count = doc;
  bad_count.replace(bad_count.rfind("end 1"), 5, "end 5");
  std::istringstream in2(bad_count);
  EXPECT_THROW(sim::read_traces_recover(in2), std::runtime_error);
}

TEST(TraceRecovery, FileVariantRecoversTornTail) {
  TempDir dir;
  const std::string path = dir.path + "/torn.traces";
  const std::string doc = two_batch_trace_doc();
  write_raw(path, doc.substr(0, doc.rfind("batch ") + 12));
  EXPECT_THROW(sim::read_traces_file(path), std::runtime_error);
  const auto traces = sim::read_traces_file_recover(path);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].batches.size(), 1u);
}

}  // namespace
}  // namespace recon::core
