// Tests for the cross-batch score cache: exact equivalence with the
// uncached selector over full attacks, cache-efficiency accounting, and the
// strategy-level wiring (PM-AReST use_cache on/off produce identical runs).
#include <gtest/gtest.h>

#include "core/attack.h"
#include "core/batch_select.h"
#include "core/cached_selector.h"
#include "core/m_arest.h"
#include "core/pm_arest.h"
#include "graph/generators.h"
#include "sim/observation.h"
#include "sim/problem.h"
#include "sim/world.h"

namespace recon::core {
namespace {

using graph::NodeId;
using sim::Observation;
using sim::Problem;

Problem cache_problem(int seed, graph::NodeId n = 150, double boost = 0.15) {
  sim::ProblemOptions opts;
  opts.num_targets = 30;
  opts.base_acceptance = 0.35;
  opts.mutual_boost = boost;  // exercises q-increase invalidation
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(n, 4, seed),
                               graph::EdgeProbModel::uniform(0.25, 0.95), seed + 1),
      opts);
}

// Drive a full attack with BOTH selectors in lockstep on the same
// observation; every batch must be identical. The mutual-friend boost makes
// stale-cache bugs visible (scores can rise, not only fall).
class CachedEquivalence : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(CachedEquivalence, BatchesIdenticalThroughFullAttack) {
  const int seed = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  const bool retries = std::get<2>(GetParam());
  const Problem p = cache_problem(seed);
  const sim::World w(p, static_cast<std::uint64_t>(seed) * 13 + 1);
  Observation obs(p);
  CachedSelector cached(obs, MarginalPolicy::kWeighted);

  const std::uint32_t cap = retries ? 5 : 1;
  double budget = 90.0;
  while (budget > 0) {
    BatchSelectOptions bs;
    bs.batch_size = k;
    bs.allow_retries = retries;
    bs.max_attempts_per_node = cap;
    bs.remaining_budget = budget;
    const auto reference = batch_select(obs, bs);
    const auto fast = cached.select_batch(k, retries, cap, budget);
    ASSERT_EQ(fast, reference) << "seed=" << seed << " k=" << k
                               << " budget=" << budget;
    if (fast.empty()) break;
    for (NodeId u : fast) {
      if (w.attempt_accept(u, obs.attempts(u), obs.acceptance_prob(u))) {
        obs.record_accept(u, w.true_neighbors(u));
        cached.notify_accept(u);
      } else {
        obs.record_reject(u);
        cached.notify_reject(u);
      }
      budget -= 1.0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CachedEquivalence,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 7),
                                            ::testing::Bool()));

TEST(CachedSelector, PoolBackedSelectorMatchesUncachedThroughFullAttack) {
  // The pool-composed cache (parallel dirty rescore + sequential pick loop)
  // must stay bit-identical to the plain uncached selector, at every pool
  // size, across a whole attack.
  for (const unsigned threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const Problem p = cache_problem(2);
    const sim::World w(p, 27);
    Observation obs(p);
    CachedSelector cached(obs, MarginalPolicy::kWeighted,
                          /*cost_sensitive=*/false, &pool);
    double budget = 80.0;
    while (budget > 0) {
      BatchSelectOptions bs;
      bs.batch_size = 6;
      bs.remaining_budget = budget;
      const auto reference = batch_select(obs, bs);
      const auto fast = cached.select_batch(6, false, 1, budget);
      ASSERT_EQ(fast, reference) << "threads=" << threads << " budget=" << budget;
      if (fast.empty()) break;
      for (NodeId u : fast) {
        if (w.attempt_accept(u, obs.attempts(u), obs.acceptance_prob(u))) {
          obs.record_accept(u, w.true_neighbors(u));
          cached.notify_accept(u);
        } else {
          obs.record_reject(u);
          cached.notify_reject(u);
        }
        budget -= 1.0;
      }
    }
  }
}

TEST(CachedSelector, PoolDoesNotChangeRescoreCount) {
  // Parallel rescoring fans the same dirty set across workers; the atomic
  // counter must land on the sequential value.
  const Problem p = cache_problem(3, 300);
  util::ThreadPool pool(4);
  Observation obs_seq(p), obs_par(p);
  CachedSelector seq(obs_seq, MarginalPolicy::kWeighted);
  CachedSelector par(obs_par, MarginalPolicy::kWeighted, false, &pool);
  (void)seq.select_batch(5, false, 1, 300.0);
  (void)par.select_batch(5, false, 1, 300.0);
  EXPECT_EQ(seq.rescore_count(), par.rescore_count());
  obs_seq.record_reject(7);
  obs_par.record_reject(7);
  seq.notify_reject(7);
  par.notify_reject(7);
  (void)seq.select_batch(5, false, 1, 300.0);
  (void)par.select_batch(5, false, 1, 300.0);
  EXPECT_EQ(seq.rescore_count(), par.rescore_count());
}

TEST(PmArestCache, CachePlusPoolMatchesSequentialAttack) {
  // use_cache && pool is no longer an error path: it must reproduce the
  // exact attack of the cache-less, pool-less strategy.
  util::ThreadPool pool(3);
  for (int seed = 1; seed <= 3; ++seed) {
    const Problem p = cache_problem(seed);
    const sim::World w(p, static_cast<std::uint64_t>(seed) + 31);
    PmArestOptions plain;
    plain.batch_size = 6;
    plain.use_cache = false;
    PmArestOptions fast = plain;
    fast.use_cache = true;
    fast.pool = &pool;
    PmArest splain(plain), sfast(fast);
    const auto tplain = run_attack(p, w, splain, 100.0);
    const auto tfast = run_attack(p, w, sfast, 100.0);
    ASSERT_EQ(tplain.batches.size(), tfast.batches.size()) << "seed " << seed;
    for (std::size_t i = 0; i < tplain.batches.size(); ++i) {
      ASSERT_EQ(tplain.batches[i].requests, tfast.batches[i].requests)
          << "seed " << seed << " batch " << i;
    }
    EXPECT_DOUBLE_EQ(tplain.total_benefit(), tfast.total_benefit());
  }
}

TEST(CachedSelector, RescoresOnlyDirtyRegion) {
  const Problem p = cache_problem(4, 400);
  const sim::World w(p, 9);
  Observation obs(p);
  CachedSelector cached(obs, MarginalPolicy::kWeighted);
  // First batch scores everyone once.
  (void)cached.select_batch(5, false, 1, 400.0);
  const std::uint64_t after_first = cached.rescore_count();
  EXPECT_GE(after_first, 350u);  // ~n initial scores
  // Observe one reject: only that node should be re-scored next batch.
  obs.record_reject(0);
  cached.notify_reject(0);
  (void)cached.select_batch(5, false, 1, 400.0);
  EXPECT_LE(cached.rescore_count() - after_first, 2u);
  // Observe one accept on a low-degree periphery node (late BA arrivals have
  // degree ~4): only its small 2-hop region is re-scored, far less than n.
  const NodeId periphery = 399;
  ASSERT_LE(p.graph.degree(periphery), 12u);
  const std::uint64_t before_accept = cached.rescore_count();
  obs.record_accept(periphery, w.true_neighbors(periphery));
  cached.notify_accept(periphery);
  (void)cached.select_batch(5, false, 1, 400.0);
  const std::uint64_t delta = cached.rescore_count() - before_accept;
  EXPECT_GT(delta, 0u);
  EXPECT_LT(delta, 200u);
}

TEST(PmArestCache, OnAndOffProduceIdenticalAttacks) {
  for (int seed = 1; seed <= 4; ++seed) {
    const Problem p = cache_problem(seed);
    const sim::World w(p, static_cast<std::uint64_t>(seed) + 77);
    PmArestOptions on;
    on.batch_size = 6;
    on.allow_retries = true;
    on.use_cache = true;
    PmArestOptions off = on;
    off.use_cache = false;
    PmArest son(on), soff(off);
    const auto ton = run_attack(p, w, son, 120.0);
    const auto toff = run_attack(p, w, soff, 120.0);
    ASSERT_EQ(ton.batches.size(), toff.batches.size()) << "seed " << seed;
    for (std::size_t i = 0; i < ton.batches.size(); ++i) {
      ASSERT_EQ(ton.batches[i].requests, toff.batches[i].requests)
          << "seed " << seed << " batch " << i;
    }
    EXPECT_DOUBLE_EQ(ton.total_benefit(), toff.total_benefit());
  }
}

TEST(PmArestCache, StrategyReusableAcrossRuns) {
  // begin() must fully reset the cache so a strategy object can be reused
  // for a different world/observation.
  const Problem p = cache_problem(5);
  PmArest strategy(PmArestOptions{.batch_size = 5});
  const sim::World w1(p, 1), w2(p, 2);
  const auto t1 = run_attack(p, w1, strategy, 40.0);
  const auto t2 = run_attack(p, w2, strategy, 40.0);
  // Re-running world 1 reproduces the original trace exactly.
  const auto t1b = run_attack(p, w1, strategy, 40.0);
  ASSERT_EQ(t1.batches.size(), t1b.batches.size());
  for (std::size_t i = 0; i < t1.batches.size(); ++i) {
    EXPECT_EQ(t1.batches[i].requests, t1b.batches[i].requests);
  }
  (void)t2;
}

TEST(MArestCache, DelegatesToCachedK1) {
  const Problem p = cache_problem(6);
  const sim::World w(p, 3);
  MArest m;
  const auto trace = run_attack(p, w, m, 30.0);
  EXPECT_EQ(trace.batches.size(), 30u);
  for (const auto& b : trace.batches) EXPECT_EQ(b.requests.size(), 1u);
  EXPECT_EQ(m.name(), "M-AReST");
}

}  // namespace
}  // namespace recon::core
