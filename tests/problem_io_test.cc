// Tests for full Problem serialization: roundtrips across model variants and
// attack-equivalence of the loaded instance.
#include <gtest/gtest.h>

#include <sstream>

#include "core/attack.h"
#include "core/pm_arest.h"
#include "graph/generators.h"
#include "sim/problem_io.h"

namespace recon::sim {
namespace {

using graph::NodeId;

Problem rich_problem() {
  graph::Graph g = graph::watts_strogatz(60, 3, 0.2, 5);
  g = graph::assign_edge_probs(g, graph::EdgeProbModel::uniform(0.2, 0.9), 6);
  g = graph::assign_attributes(g, 2, 5, 0.6, 7);
  ProblemOptions opts;
  opts.num_targets = 12;
  opts.seed = 9;
  Problem p = make_problem(std::move(g), opts);
  p.acceptance = make_attribute_acceptance(p.graph, 0.25, 0.3, 0.1, 11);
  p.cost.assign(p.graph.num_nodes(), 1.0);
  p.cost[3] = 2.5;
  p.validate();
  return p;
}

void expect_problems_equal(const Problem& a, const Problem& b) {
  ASSERT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (graph::EdgeId e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge_u(e), b.graph.edge_u(e));
    EXPECT_EQ(a.graph.edge_v(e), b.graph.edge_v(e));
    EXPECT_DOUBLE_EQ(a.graph.edge_prob(e), b.graph.edge_prob(e));
  }
  EXPECT_EQ(a.targets, b.targets);
  EXPECT_EQ(a.acceptance.q0, b.acceptance.q0);
  EXPECT_DOUBLE_EQ(a.acceptance.mutual_boost, b.acceptance.mutual_boost);
  EXPECT_DOUBLE_EQ(a.acceptance.attr_weight, b.acceptance.attr_weight);
  EXPECT_EQ(a.acceptance.attacker_attrs, b.acceptance.attacker_attrs);
  EXPECT_EQ(a.benefit.bf, b.benefit.bf);
  EXPECT_EQ(a.benefit.bfof, b.benefit.bfof);
  EXPECT_EQ(a.benefit.bi, b.benefit.bi);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.graph.attribute_dim(), b.graph.attribute_dim());
  if (a.graph.has_attributes()) {
    for (NodeId u = 0; u < a.graph.num_nodes(); ++u) {
      const auto aa = a.graph.node_attributes(u);
      const auto bb = b.graph.node_attributes(u);
      for (std::size_t d = 0; d < aa.size(); ++d) EXPECT_EQ(aa[d], bb[d]);
    }
  }
}

TEST(ProblemIo, RichRoundTrip) {
  const Problem original = rich_problem();
  std::stringstream ss;
  write_problem(ss, original);
  const Problem loaded = read_problem(ss);
  expect_problems_equal(original, loaded);
}

TEST(ProblemIo, PaperBenefitSerializedCompactly) {
  ProblemOptions opts;
  opts.num_targets = 10;
  opts.seed = 3;
  const Problem p = make_problem(graph::barabasi_albert(80, 3, 2), opts);
  std::stringstream ss;
  write_problem(ss, p);
  EXPECT_NE(ss.str().find("benefit paper"), std::string::npos);
  EXPECT_EQ(ss.str().find("benefit custom"), std::string::npos);
  const Problem loaded = read_problem(ss);
  expect_problems_equal(p, loaded);
}

TEST(ProblemIo, CustomBenefitRoundTrips) {
  ProblemOptions opts;
  opts.num_targets = 8;
  opts.paper_benefit = false;  // uniform benefit != paper model
  opts.seed = 3;
  const Problem p = make_problem(graph::erdos_renyi_gnm(30, 60, 1), opts);
  std::stringstream ss;
  write_problem(ss, p);
  EXPECT_NE(ss.str().find("benefit custom"), std::string::npos);
  const Problem loaded = read_problem(ss);
  expect_problems_equal(p, loaded);
}

TEST(ProblemIo, LoadedProblemReproducesAttacksExactly) {
  const Problem original = rich_problem();
  std::stringstream ss;
  write_problem(ss, original);
  const Problem loaded = read_problem(ss);
  const World w1(original, 42), w2(loaded, 42);
  core::PmArest s1(core::PmArestOptions{.batch_size = 5});
  core::PmArest s2(core::PmArestOptions{.batch_size = 5});
  const auto t1 = core::run_attack(original, w1, s1, 30.0);
  const auto t2 = core::run_attack(loaded, w2, s2, 30.0);
  ASSERT_EQ(t1.batches.size(), t2.batches.size());
  for (std::size_t i = 0; i < t1.batches.size(); ++i) {
    EXPECT_EQ(t1.batches[i].requests, t2.batches[i].requests);
    EXPECT_EQ(t1.batches[i].accepted, t2.batches[i].accepted);
  }
  EXPECT_DOUBLE_EQ(t1.total_benefit(), t2.total_benefit());
}

TEST(ProblemIo, RejectsMalformedInput) {
  std::stringstream bad1("#wrong header\n");
  EXPECT_THROW(read_problem(bad1), std::runtime_error);
  std::stringstream bad2("#recon-problem v1\ngraph 2 1\ne 0 1 0.5\nbenefit paper\n");
  EXPECT_THROW(read_problem(bad2), std::runtime_error);  // missing acceptance
  std::stringstream bad3(
      "#recon-problem v1\ngraph 2 1\ne 0 1 0.5\ntargets 1 5\n"
      "acceptance uniform 0.5\nbenefit paper\ncosts uniform\n");
  EXPECT_THROW(read_problem(bad3), std::runtime_error);  // target out of range
  std::stringstream bad4(
      "#recon-problem v1\ngraph 2 1\ne 0 1 0.5\nwhatever\n");
  EXPECT_THROW(read_problem(bad4), std::runtime_error);
}

TEST(ProblemIo, FileRoundTrip) {
  const Problem p = rich_problem();
  const std::string path = "/tmp/recon_problem_io_test.txt";
  write_problem_file(path, p);
  const Problem loaded = read_problem_file(path);
  expect_problems_equal(p, loaded);
  EXPECT_THROW(read_problem_file("/nonexistent/problem.txt"), std::runtime_error);
}

}  // namespace
}  // namespace recon::sim
