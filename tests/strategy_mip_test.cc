// Tests for the Exact-MIP attack strategy (SAA + B&B each round, Thm. 3).
#include <gtest/gtest.h>

#include <memory>

#include "core/attack.h"
#include "core/pm_arest.h"
#include "graph/generators.h"
#include "sim/problem.h"
#include "solver/strategy_mip.h"

namespace recon::solver {
namespace {

sim::Problem mip_problem(int seed) {
  sim::ProblemOptions opts;
  opts.num_targets = 12;
  opts.base_acceptance = 0.45;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(40, 90, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.9), seed + 1),
      opts);
}

TEST(MipStrategy, Validation) {
  MipStrategyOptions o;
  o.batch_size = 0;
  EXPECT_THROW(MipBatchStrategy{o}, std::invalid_argument);
  o.batch_size = 3;
  o.scenarios_per_batch = 0;
  EXPECT_THROW(MipBatchStrategy{o}, std::invalid_argument);
}

TEST(MipStrategy, NamesReflectMode) {
  MipStrategyOptions o;
  o.batch_size = 3;
  EXPECT_EQ(MipBatchStrategy(o).name(), "Exact-MIP");
  o.use_benders = true;
  EXPECT_EQ(MipBatchStrategy(o).name(), "Exact-LShaped");
  o.use_benders = false;
  o.greedy_only = true;
  EXPECT_EQ(MipBatchStrategy(o).name(), "SAA-Greedy");
}

TEST(MipStrategy, BendersVariantMatchesBnbVariant) {
  // Same scenarios (same per-round seeds) -> the two exact solvers must
  // pick identical batches through a whole attack.
  const sim::Problem p = mip_problem(4);
  const sim::World w(p, 7);
  MipStrategyOptions o;
  o.batch_size = 3;
  o.scenarios_per_batch = 80;
  o.candidate_cap = 12;
  MipBatchStrategy bnb(o);
  o.use_benders = true;
  MipBatchStrategy benders(o);
  const auto t1 = core::run_attack(p, w, bnb, 9.0);
  const auto t2 = core::run_attack(p, w, benders, 9.0);
  ASSERT_EQ(t1.batches.size(), t2.batches.size());
  for (std::size_t i = 0; i < t1.batches.size(); ++i) {
    EXPECT_EQ(t1.batches[i].requests, t2.batches[i].requests);
  }
  EXPECT_TRUE(benders.all_exact());
}

TEST(MipStrategy, RunsFullAttackWithinBudget) {
  const sim::Problem p = mip_problem(1);
  const sim::World w(p, 5);
  MipStrategyOptions o;
  o.batch_size = 3;
  o.scenarios_per_batch = 120;
  o.candidate_cap = 15;
  MipBatchStrategy strategy(o);
  const auto trace = core::run_attack(p, w, strategy, 12.0);
  EXPECT_EQ(trace.total_requests(), 12u);
  EXPECT_TRUE(strategy.all_exact());
  EXPECT_GT(trace.total_benefit(), 0.0);
  for (const auto& b : trace.batches) EXPECT_LE(b.requests.size(), 3u);
}

TEST(MipStrategy, CompetitiveWithBatchSelect) {
  // The paper's Fig. 6 conclusion: exact batch selection buys only a sliver
  // over greedy BATCHSELECT. Assert the two land within 12% of each other.
  const sim::Problem p = mip_problem(2);
  const int runs = 6;
  const double budget = 12.0;
  const auto greedy = core::run_monte_carlo(
      p,
      [](int) {
        return std::make_unique<core::PmArest>(core::PmArestOptions{.batch_size = 3});
      },
      runs, budget, 31);
  const auto exact = core::run_monte_carlo(
      p,
      [](int) {
        MipStrategyOptions o;
        o.batch_size = 3;
        o.scenarios_per_batch = 200;
        o.candidate_cap = 15;
        return std::make_unique<MipBatchStrategy>(o);
      },
      runs, budget, 31);
  EXPECT_GT(exact.mean_benefit(), greedy.mean_benefit() * 0.88);
  EXPECT_LT(exact.mean_benefit(), greedy.mean_benefit() * 1.12);
}

TEST(MipStrategy, ResamplesScenariosEachRound) {
  // Different rounds must not reuse the same scenario seed: two consecutive
  // identical observations should still be able to produce different batches
  // only via scenario noise, but more importantly the strategy must remain
  // deterministic across whole-attack replays.
  const sim::Problem p = mip_problem(3);
  const sim::World w(p, 9);
  MipStrategyOptions o;
  o.batch_size = 2;
  o.scenarios_per_batch = 60;
  o.candidate_cap = 10;
  MipBatchStrategy s1(o), s2(o);
  const auto t1 = core::run_attack(p, w, s1, 8.0);
  const auto t2 = core::run_attack(p, w, s2, 8.0);
  ASSERT_EQ(t1.batches.size(), t2.batches.size());
  for (std::size_t i = 0; i < t1.batches.size(); ++i) {
    EXPECT_EQ(t1.batches[i].requests, t2.batches[i].requests);
  }
}

}  // namespace
}  // namespace recon::solver
