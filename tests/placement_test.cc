// Tests for greedy submodular monitor placement.
#include <gtest/gtest.h>

#include <memory>

#include "core/attack.h"
#include "core/pm_arest.h"
#include "defense/detector.h"
#include "defense/placement.h"
#include "graph/generators.h"
#include "sim/problem.h"

namespace recon::defense {
namespace {

using graph::NodeId;

sim::AttackTrace trace_of(const std::vector<std::vector<NodeId>>& batches,
                          double benefit_per_batch = 1.0) {
  sim::AttackTrace t;
  double q = 0.0;
  for (const auto& reqs : batches) {
    sim::BatchRecord b;
    b.requests = reqs;
    b.accepted.assign(reqs.size(), 1);
    b.delta.friends = benefit_per_batch;
    q += benefit_per_batch;
    b.cumulative.friends = q;
    b.cost = static_cast<double>(reqs.size());
    b.cumulative_cost += b.cost;
    t.batches.push_back(std::move(b));
  }
  return t;
}

TEST(PlacementValue, CountsAndWeighs) {
  // Trace 1 requests {0,1} then {2}; total benefit 2.
  // Trace 2 requests {3} then {2}; total benefit 2.
  const std::vector<sim::AttackTrace> traces{trace_of({{0, 1}, {2}}),
                                             trace_of({{3}, {2}})};
  // Monitor on 2 catches both traces, but only in batch 2 (denies 1 each).
  EXPECT_DOUBLE_EQ(placement_value(traces, {2}, 10, /*weighted=*/false), 2.0);
  EXPECT_DOUBLE_EQ(placement_value(traces, {2}, 10, /*weighted=*/true), 2.0);
  // Monitor on 0 catches only trace 1, at batch 1 (denies all 2).
  EXPECT_DOUBLE_EQ(placement_value(traces, {0}, 10, false), 1.0);
  EXPECT_DOUBLE_EQ(placement_value(traces, {0}, 10, true), 2.0);
  EXPECT_DOUBLE_EQ(placement_value(traces, {}, 10, true), 0.0);
  EXPECT_THROW(placement_value(traces, {99}, 10, true), std::invalid_argument);
}

TEST(GreedyPlacement, PrefersEarlyHighCoverage) {
  // Node 5 appears first in every trace; nodes 6,7 each appear in one trace
  // later. With budget 1 the greedy must take 5.
  const std::vector<sim::AttackTrace> traces{trace_of({{5}, {6}}),
                                             trace_of({{5}, {7}})};
  PlacementOptions opts;
  opts.budget_monitors = 1;
  const auto placement = greedy_monitor_placement(traces, 10, opts);
  ASSERT_EQ(placement.size(), 1u);
  EXPECT_EQ(placement[0], 5u);
}

TEST(GreedyPlacement, AvoidsRedundantMonitors) {
  // Nodes 1 and 2 always appear together in batch 1; node 3 appears alone in
  // a different trace. Budget 2 should pick one of {1,2} plus 3, never both
  // of {1,2}.
  const std::vector<sim::AttackTrace> traces{
      trace_of({{1, 2}}), trace_of({{1, 2}}), trace_of({{3}})};
  PlacementOptions opts;
  opts.budget_monitors = 2;
  const auto placement = greedy_monitor_placement(traces, 10, opts);
  ASSERT_EQ(placement.size(), 2u);
  EXPECT_TRUE(placement[0] == 1u || placement[0] == 2u);
  EXPECT_EQ(placement[1], 3u);
}

TEST(GreedyPlacement, StopsWhenNothingToGain) {
  const std::vector<sim::AttackTrace> traces{trace_of({{4}})};
  PlacementOptions opts;
  opts.budget_monitors = 5;
  const auto placement = greedy_monitor_placement(traces, 10, opts);
  EXPECT_EQ(placement.size(), 1u);  // one monitor already covers everything
}

TEST(GreedyPlacement, RespectsExclusions) {
  const std::vector<sim::AttackTrace> traces{trace_of({{4}, {5}})};
  PlacementOptions opts;
  opts.budget_monitors = 1;
  opts.excluded = {4};
  const auto placement = greedy_monitor_placement(traces, 10, opts);
  ASSERT_EQ(placement.size(), 1u);
  EXPECT_EQ(placement[0], 5u);
  opts.excluded = {99};
  EXPECT_THROW(greedy_monitor_placement(traces, 10, opts), std::invalid_argument);
}

TEST(GreedyPlacement, BeatsFrequencyRankingOnDeniedBenefit) {
  // End-to-end: optimize on training traces, evaluate on held-out traces;
  // the coverage placement must deny at least as much benefit as the naive
  // frequency top-k for the same budget.
  sim::ProblemOptions popts;
  popts.num_targets = 25;
  popts.target_mode = sim::TargetMode::kBfsBall;
  popts.base_acceptance = 0.35;
  popts.seed = 7;
  const sim::Problem p = sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(300, 4, 7),
                               graph::EdgeProbModel::uniform(0.3, 0.9), 8),
      popts);
  const core::StrategyFactory attacker = [](int r) {
    core::PmArestOptions o;
    o.batch_size = 5;
    // Randomize batch sizes per run so traces differ and no single node
    // covers everything.
    o.vary_k_min = 3;
    o.vary_k_max = 8;
    o.seed = 100 + static_cast<std::uint64_t>(r);
    return std::make_unique<core::PmArest>(o);
  };
  const auto train = core::run_monte_carlo(p, attacker, 10, 40.0, 21).traces;
  const auto test = core::run_monte_carlo(p, attacker, 10, 40.0, 22).traces;

  PlacementOptions opts;
  opts.budget_monitors = 4;
  const auto coverage = greedy_monitor_placement(train, p.graph.num_nodes(), opts);
  const auto frequency =
      choose_monitors_by_simulation(p, 4, 10, 40.0, 5, 21);

  const double v_cov =
      placement_value(test, coverage, p.graph.num_nodes(), true);
  const double v_freq =
      placement_value(test, frequency, p.graph.num_nodes(), true);
  EXPECT_GE(v_cov, v_freq * 0.95);  // never meaningfully worse
  EXPECT_GT(v_cov, 0.0);
}

}  // namespace
}  // namespace recon::defense
