// Tests for the event-driven rolling-window attack.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "core/async_attack.h"
#include "core/attack.h"
#include "core/m_arest.h"
#include "core/pm_arest.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "sim/problem.h"

namespace recon::core {
namespace {

using graph::NodeId;
using sim::Problem;

Problem async_problem(int seed, graph::NodeId n = 150) {
  sim::ProblemOptions opts;
  opts.num_targets = 30;
  opts.base_acceptance = 0.4;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::barabasi_albert(n, 4, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.9), seed + 1),
      opts);
}

TEST(AsyncAttack, WindowOneIsExactlySequential) {
  // With W = 1 the rolling attacker selects with full information after each
  // response — identical decisions (and world randomness) to M-AReST.
  const Problem p = async_problem(1);
  const sim::World w(p, 11);
  AsyncAttackOptions opts;
  opts.window = 1;
  opts.mean_delay = 300.0;
  opts.delay_model = ResponseDelayModel::kFixed;
  const auto async = run_async_attack(p, w, opts, 30.0);
  MArest sequential;
  const auto seq = run_attack(p, w, sequential, 30.0);
  ASSERT_EQ(async.trace.batches.size(), seq.batches.size());
  for (std::size_t i = 0; i < seq.batches.size(); ++i) {
    EXPECT_EQ(async.trace.batches[i].requests, seq.batches[i].requests);
    EXPECT_EQ(async.trace.batches[i].accepted, seq.batches[i].accepted);
    // Cost accounting matches too: with W = 1 the send-time cumulative cost
    // equals the synchronous per-round spend.
    EXPECT_DOUBLE_EQ(async.trace.batches[i].cost, seq.batches[i].cost);
    EXPECT_DOUBLE_EQ(async.trace.batches[i].cumulative_cost,
                     seq.batches[i].cumulative_cost);
  }
  EXPECT_DOUBLE_EQ(async.trace.total_benefit(), seq.total_benefit());
  // Sequential pays one full delay per request.
  EXPECT_NEAR(async.makespan_seconds, 30.0 * 300.0, 1e-6);
}

TEST(AsyncAttack, FixedDelayMakespanIsWaves) {
  // With fixed delays, W outstanding requests complete in waves:
  // makespan = ceil(K / W) * delay.
  const Problem p = async_problem(2);
  const sim::World w(p, 7);
  AsyncAttackOptions opts;
  opts.window = 10;
  opts.mean_delay = 100.0;
  opts.delay_model = ResponseDelayModel::kFixed;
  const auto r = run_async_attack(p, w, opts, 30.0);
  EXPECT_EQ(r.requests_sent, 30u);
  EXPECT_NEAR(r.makespan_seconds, 3 * 100.0, 1e-6);
}

TEST(AsyncAttack, WiderWindowIsFasterAndAtMostSlightlyWorse) {
  const Problem p = async_problem(3, 250);
  double q1 = 0.0, q15 = 0.0, t1 = 0.0, t15 = 0.0;
  const int runs = 8;
  for (int r = 0; r < runs; ++r) {
    const sim::World w(p, util::derive_seed(31, r));
    AsyncAttackOptions narrow;
    narrow.window = 1;
    narrow.mean_delay = 300.0;
    narrow.seed = util::derive_seed(5, r);
    AsyncAttackOptions wide = narrow;
    wide.window = 15;
    const auto a1 = run_async_attack(p, w, narrow, 60.0);
    const auto a15 = run_async_attack(p, w, wide, 60.0);
    q1 += a1.trace.total_benefit();
    q15 += a15.trace.total_benefit();
    t1 += a1.makespan_seconds;
    t15 += a15.makespan_seconds;
  }
  EXPECT_GE(q1, q15 * 0.97);       // information loss is small
  EXPECT_LT(t15, t1 * 0.25);       // but the speedup is large
  EXPECT_GT(q15, q1 * 0.8);
}

TEST(AsyncAttack, RollingMatchesSynchronousBatchBenefit) {
  // Same parallelism knob (W = k = 10): the rolling attacker's continuously
  // refreshed information balances its constant in-flight staleness, so the
  // benefits land within a few percent (the rolling win is wall time, not
  // benefit — see ablation_async).
  const Problem p = async_problem(4, 250);
  double rolling = 0.0, synchronous = 0.0;
  const int runs = 8;
  for (int r = 0; r < runs; ++r) {
    const sim::World w(p, util::derive_seed(77, r));
    AsyncAttackOptions opts;
    opts.window = 10;
    opts.mean_delay = 300.0;
    opts.seed = util::derive_seed(9, r);
    rolling += run_async_attack(p, w, opts, 60.0).trace.total_benefit();
    PmArest batch(PmArestOptions{.batch_size = 10});
    synchronous += run_attack(p, w, batch, 60.0).total_benefit();
  }
  EXPECT_GE(rolling, synchronous * 0.99);
}

TEST(AsyncAttack, RetriesReattempt) {
  const Problem p = async_problem(5, 80);
  const sim::World w(p, 3);
  AsyncAttackOptions opts;
  opts.window = 5;
  opts.allow_retries = true;
  const auto r = run_async_attack(p, w, opts, 150.0);
  std::map<NodeId, int> attempts;
  for (const auto& b : r.trace.batches) {
    for (NodeId u : b.requests) ++attempts[u];
  }
  int retried = 0;
  for (const auto& [u, a] : attempts) retried += a > 1;
  EXPECT_GT(retried, 0);
}

TEST(AsyncAttack, NeverTwoInFlightToSameNode) {
  const Problem p = async_problem(6, 80);
  const sim::World w(p, 9);
  AsyncAttackOptions opts;
  opts.window = 8;
  opts.allow_retries = true;
  const auto r = run_async_attack(p, w, opts, 120.0);
  // The selector skips in-flight nodes, so a retry can only be sent after
  // the previous attempt resolved; the observable invariant is that accepts
  // are unique (a node is friended at most once).
  std::set<NodeId> accepted;
  for (const auto& b : r.trace.batches) {
    for (std::size_t i = 0; i < b.requests.size(); ++i) {
      if (b.accepted[i]) {
        EXPECT_TRUE(accepted.insert(b.requests[i]).second);
      }
    }
  }
}

TEST(AsyncAttack, CostCurveUsesSendTimeAccountingLikeSyncRunner) {
  // Both runners charge a request the moment it is sent. With W = k = budget
  // the whole budget is in flight before the first response, so every
  // resolved record reports the full spend — exactly what the synchronous
  // k-batch reports for its single round.
  const Problem p = async_problem(8, 120);
  const sim::World w(p, 17);
  AsyncAttackOptions opts;
  opts.window = 10;
  const auto async = run_async_attack(p, w, opts, 10.0);
  ASSERT_EQ(async.trace.batches.size(), 10u);
  for (const auto& b : async.trace.batches) {
    EXPECT_DOUBLE_EQ(b.cumulative_cost, 10.0);
  }
  PmArest batch(PmArestOptions{.batch_size = 10});
  const auto sync = run_attack(p, w, batch, 10.0);
  ASSERT_EQ(sync.batches.size(), 1u);
  EXPECT_DOUBLE_EQ(sync.batches.back().cumulative_cost,
                   async.trace.batches.back().cumulative_cost);
}

TEST(AsyncAttack, DefaultAttemptCapScalesWithRequestCost) {
  // Quarter-cost requests: a budget of 2.5 funds 10 attempts, so the default
  // cap must be ceil(budget / min cost) = 10, not the unit-cost ceil(budget)
  // = 3 (which would strand budget once every node hit 3 attempts).
  graph::GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  Problem p;
  p.graph = b.build();
  p.targets = {0, 1, 2};
  p.is_target.assign(3, 1);
  p.benefit = sim::make_paper_benefit(p.graph, p.is_target);
  p.acceptance = sim::make_constant_acceptance(0.05);
  p.cost.assign(3, 0.25);
  const sim::World w(p, 19);
  AsyncAttackOptions opts;
  opts.window = 1;
  opts.allow_retries = true;
  const auto r = run_async_attack(p, w, opts, 2.5);
  // With the old cap the run would stall at 3 nodes x 3 attempts = 9 sends.
  EXPECT_EQ(r.requests_sent, 10u);
  std::map<NodeId, int> attempts;
  for (const auto& batch : r.trace.batches) {
    for (NodeId u : batch.requests) ++attempts[u];
  }
  int max_attempts = 0;
  for (const auto& [u, a] : attempts) max_attempts = std::max(max_attempts, a);
  EXPECT_GT(max_attempts, 3);
}

TEST(AsyncAttack, Validation) {
  const Problem p = async_problem(7, 40);
  const sim::World w(p, 1);
  AsyncAttackOptions opts;
  opts.window = 0;
  EXPECT_THROW(run_async_attack(p, w, opts, 10.0), std::invalid_argument);
  opts.window = 2;
  EXPECT_THROW(run_async_attack(p, w, opts, 0.0), std::invalid_argument);
  opts.mean_delay = -1.0;
  EXPECT_THROW(run_async_attack(p, w, opts, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace recon::core
