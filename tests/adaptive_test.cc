// Tests for the generic adaptive-optimization framework (Golovin–Krause) and
// its two instantiations: stochastic coverage and acceptance-marginalized
// Max-Crawling.
#include <gtest/gtest.h>

#include <cmath>

#include "adaptive/adaptive.h"
#include "adaptive/crawling.h"
#include "graph/generators.h"
#include "sim/problem.h"
#include "util/rng.h"

namespace recon::adaptive {
namespace {

StochasticCoverage small_coverage() {
  // 6 elements, 4 sensors.
  return StochasticCoverage(
      6, {{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}}, {0.9, 0.8, 0.7, 0.6});
}

TEST(StochasticCoverage, ValueCountsUnionOfWorkingRegions) {
  const auto inst = small_coverage();
  // Items 0 and 2 selected; only 0 works.
  EXPECT_DOUBLE_EQ(inst.value({0, 2}, {1, 0, 0, 0}), 3.0);
  // Both work: {0,1,2} ∪ {3,4,5} = 6.
  EXPECT_DOUBLE_EQ(inst.value({0, 2}, {1, 1, 1, 1}), 6.0);
  EXPECT_DOUBLE_EQ(inst.value({}, {1, 1, 1, 1}), 0.0);
}

TEST(StochasticCoverage, ClosedFormMarginalMatchesSampling) {
  const auto inst = small_coverage();
  PartialRealization psi;
  psi.add(0, 1);  // sensor 0 works: covers {0,1,2}
  // Closed form for item 1: p=0.8, fresh = {3} -> 0.8.
  EXPECT_DOUBLE_EQ(inst.expected_marginal(1, psi, 1, 1), 0.8);
  // Generic sampling path (via Instance::expected_marginal) must agree;
  // exercise it through a copy of the instance upcast to Instance.
  const Instance& generic = inst;
  double sampled = 0.0;
  const std::size_t samples = 20000;
  std::vector<Item> with = psi.items;
  with.push_back(1);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto phi = generic.sample_consistent(psi, util::derive_seed(7, s));
    sampled += generic.value(with, phi) - generic.value(psi.items, phi);
  }
  sampled /= static_cast<double>(samples);
  EXPECT_NEAR(sampled, 0.8, 0.02);
}

TEST(StochasticCoverage, RealizationFrequencies) {
  const auto inst = small_coverage();
  double works = 0.0;
  const int n = 20000;
  for (int s = 0; s < n; ++s) {
    works += inst.sample_realization(util::derive_seed(3, s))[3];
  }
  EXPECT_NEAR(works / n, 0.6, 0.02);
}

TEST(StochasticCoverage, Validation) {
  EXPECT_THROW(StochasticCoverage(3, {{0, 5}}, {0.5}), std::invalid_argument);
  EXPECT_THROW(StochasticCoverage(3, {{0}}, {1.5}), std::invalid_argument);
  EXPECT_THROW(StochasticCoverage(3, {{0}, {1}}, {0.5}), std::invalid_argument);
}

TEST(AdaptiveGreedy, SolvesCoverageNearOptimally) {
  const auto inst = small_coverage();
  const auto greedy = make_adaptive_greedy(inst, 5);
  const double adaptive_value = evaluate_policy(inst, greedy, 2, 400, 11);
  const double nonadaptive_opt = best_nonadaptive_value(inst, 2, 400, 11);
  // Adaptive greedy with the (1 - 1/e) guarantee vs the *nonadaptive*
  // optimum (a lower bound on the adaptive optimum): greedy should actually
  // beat the nonadaptive optimum here thanks to adaptivity.
  EXPECT_GE(adaptive_value, (1.0 - std::exp(-1.0)) * nonadaptive_opt - 0.05);
}

TEST(AdaptiveGreedy, AdaptivityHelpsWhenFailuresAreInformative) {
  // Two redundant high-value sensors covering the same region with p = 0.5
  // plus two disjoint cheap ones: the adaptive policy retries the big region
  // only when the first sensor fails.
  StochasticCoverage inst(10,
                          {{0, 1, 2, 3, 4, 5}, {0, 1, 2, 3, 4, 5}, {6, 7}, {8, 9}},
                          {0.5, 0.5, 1.0, 1.0});
  const auto greedy = make_adaptive_greedy(inst, 5);
  const double adaptive_value = evaluate_policy(inst, greedy, 2, 600, 13);
  const double nonadaptive_opt = best_nonadaptive_value(inst, 2, 600, 13);
  EXPECT_GT(adaptive_value, nonadaptive_opt + 0.2);
}

TEST(AdaptiveGreedy, RunPolicyStopsOnNoItem) {
  const auto inst = small_coverage();
  const Policy null_policy = [](const PartialRealization&) { return kNoItem; };
  EXPECT_DOUBLE_EQ(run_policy(inst, null_policy, 4, 1), 0.0);
  const Policy bad_policy = [](const PartialRealization&) { return Item{99}; };
  EXPECT_THROW(run_policy(inst, bad_policy, 1, 1), std::logic_error);
}

TEST(AdaptiveGreedy, CoverageIsEmpiricallyAdaptiveSubmodular) {
  const auto inst = small_coverage();
  // Closed-form marginals: the margin check is exact (no sampling noise).
  EXPECT_GE(empirical_submodularity_margin(inst, 60, 17), -1e-9);
}

sim::Problem crawl_problem(int seed) {
  sim::ProblemOptions opts;
  opts.num_targets = 7;
  opts.base_acceptance = 0.45;
  opts.seed = static_cast<std::uint64_t>(seed);
  return sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(16, 32, seed),
                               graph::EdgeProbModel::uniform(0.3, 0.9), seed + 1),
      opts);
}

TEST(CrawlingInstance, ClosedFormMarginalMatchesSampling) {
  const sim::Problem p = crawl_problem(1);
  const CrawlingInstance inst(p);
  PartialRealization psi;
  psi.add(0, 1);
  psi.add(1, 0);
  psi.add(5, 1);
  const Instance& generic = inst;
  for (Item item : {2u, 7u, 11u}) {
    const double closed = inst.expected_marginal(item, psi, 0, 0);
    double sampled = 0.0;
    std::vector<Item> with = psi.items;
    with.push_back(item);
    const std::size_t samples = 30000;
    for (std::size_t s = 0; s < samples; ++s) {
      const auto phi = generic.sample_consistent(psi, util::derive_seed(9, s));
      sampled += generic.value(with, phi) - generic.value(psi.items, phi);
    }
    sampled /= static_cast<double>(samples);
    EXPECT_NEAR(sampled, closed, std::max(0.05, closed * 0.03)) << "item " << item;
  }
}

TEST(CrawlingInstance, EmpiricallyAdaptiveSubmodular) {
  const sim::Problem p = crawl_problem(2);
  const CrawlingInstance inst(p);
  EXPECT_GE(empirical_submodularity_margin(inst, 50, 23), -1e-9);
}

TEST(CrawlingInstance, GreedyBeatsTheGuarantee) {
  const sim::Problem p = crawl_problem(3);
  const CrawlingInstance inst(p);
  const auto greedy = make_adaptive_greedy(inst, 5);
  const double adaptive_value = evaluate_policy(inst, greedy, 4, 300, 31);
  const double nonadaptive_opt = best_nonadaptive_value(inst, 4, 300, 31);
  EXPECT_GE(adaptive_value, (1.0 - std::exp(-1.0)) * nonadaptive_opt * 0.98);
}

TEST(OptimalAdaptive, DominatesNonadaptiveAndBoundsGreedy) {
  // On tiny instances with exact (closed-form) marginals, verify the full
  // Golovin-Krause chain against the TRUE adaptive optimum:
  //   greedy >= (1 - 1/e) * OPT_adaptive   and   OPT_adaptive >= OPT_fixed.
  const auto inst = small_coverage();
  for (std::size_t k : {1u, 2u, 3u}) {
    const double opt_adaptive = optimal_adaptive_value(inst, k);
    const double opt_fixed = best_nonadaptive_value(inst, k, 4000, 3);
    EXPECT_GE(opt_adaptive, opt_fixed - 0.05) << "k=" << k;
    const auto greedy = make_adaptive_greedy(inst, 5);
    const double greedy_value = evaluate_policy(inst, greedy, k, 4000, 7);
    EXPECT_GE(greedy_value, (1.0 - std::exp(-1.0)) * opt_adaptive - 0.05)
        << "k=" << k;
    EXPECT_LE(greedy_value, opt_adaptive + 0.1) << "k=" << k;
  }
}

TEST(OptimalAdaptive, HandComputedTwoSensors) {
  // Two sensors covering disjoint regions {0} and {1,2} with p = 0.5, k = 1:
  // the optimum picks the bigger region: 0.5 * 2 = 1.
  StochasticCoverage inst(3, {{0}, {1, 2}}, {0.5, 0.5});
  EXPECT_NEAR(optimal_adaptive_value(inst, 1), 1.0, 1e-12);
  // k = 2: both are selected regardless of outcomes: 0.5*1 + 0.5*2 = 1.5.
  EXPECT_NEAR(optimal_adaptive_value(inst, 2), 1.5, 1e-12);
}

TEST(OptimalAdaptive, AdaptivityGapVisible) {
  // Redundant big region (two p=0.5 copies) vs a sure singleton, k = 2:
  //   nonadaptive best: {big1, big2}: (1-0.25)*3 = 2.25
  //                  or {big, sure}: 0.5*3 + 1 = 2.5.
  //   adaptive: pick big1; if it works (p=.5) take the sure singleton
  //   (3 + 1 = 4), else retry big2 (0.5*3 + 0.5*0... plus nothing) ->
  //   0.5*4 + 0.5*(0.5*3 + 0.5*0 + ... ) — compute: failure branch value =
  //   optimal continuation = max(big2: 1.5, sure: 1) = 1.5.
  //   total = 0.5*(3+1) + 0.5*1.5 = 2.75 > 2.5.
  StochasticCoverage inst(4, {{0, 1, 2}, {0, 1, 2}, {3}}, {0.5, 0.5, 1.0});
  const double opt_adaptive = optimal_adaptive_value(inst, 2);
  EXPECT_NEAR(opt_adaptive, 2.75, 1e-12);
  const double opt_fixed = best_nonadaptive_value(inst, 2, 6000, 9);
  EXPECT_NEAR(opt_fixed, 2.5, 0.06);
  EXPECT_GT(opt_adaptive, opt_fixed + 0.15);
}

TEST(OptimalAdaptive, CrawlingGreedyNearOptimal) {
  // Tiny Max-Crawling: exact adaptive optimum vs adaptive greedy with
  // closed-form marginals.
  sim::ProblemOptions opts;
  opts.num_targets = 4;
  opts.base_acceptance = 0.5;
  opts.seed = 11;
  const sim::Problem p = sim::make_problem(
      graph::assign_edge_probs(graph::erdos_renyi_gnm(9, 16, 4),
                               graph::EdgeProbModel::uniform(0.4, 0.9), 5),
      opts);
  const CrawlingInstance inst(p);
  const double opt = optimal_adaptive_value(inst, 3);
  const auto greedy = make_adaptive_greedy(inst, 5);
  const double greedy_value = evaluate_policy(inst, greedy, 3, 3000, 13);
  EXPECT_GE(greedy_value, (1.0 - std::exp(-1.0)) * opt * 0.98);
  EXPECT_LE(greedy_value, opt * 1.02 + 0.05);
}

TEST(OptimalAdaptive, RejectsLargeInstances) {
  StochasticCoverage inst(13, std::vector<std::vector<std::uint32_t>>(13, {0}),
                          std::vector<double>(13, 0.5));
  EXPECT_THROW(optimal_adaptive_value(inst, 2), std::invalid_argument);
}

TEST(CrawlingInstance, ValueMonotoneInAcceptedSet) {
  const sim::Problem p = crawl_problem(4);
  const CrawlingInstance inst(p);
  const auto phi = inst.sample_realization(5);
  std::vector<Item> items;
  double last = 0.0;
  for (Item u = 0; u < inst.num_items(); ++u) {
    items.push_back(u);
    const double v = inst.value(items, phi);
    EXPECT_GE(v, last - 1e-12);
    last = v;
  }
}

}  // namespace
}  // namespace recon::adaptive
